//! Functional DAE equivalence across whole models: restructured loop order
//! must produce bit-identical activations ("DAE-enabled CNNs entail no
//! accuracy drops", paper Sec. III-A).

use dae_dvfs::{dae_forward_depthwise, dae_forward_pointwise, Granularity};
use tinynn::models::{mobilenet_v2_sized, person_detection_sized, vww_sized};
use tinynn::{Layer, Model, Shape, Tensor};

/// Runs a full inference where every depthwise/pointwise layer uses the DAE
/// loop order with granularity `g` (residual blocks handled like
/// `Model::infer`).
fn infer_with_dae(model: &Model, input: &Tensor, g: Granularity) -> Tensor {
    let mut x = input.clone();
    for block in &model.blocks {
        let skip = block.residual.then(|| x.clone());
        for nl in &block.layers {
            x = match &nl.layer {
                Layer::Depthwise(dw) => dae_forward_depthwise(dw, &x, g).expect("dw forward"),
                Layer::Pointwise(pw) => dae_forward_pointwise(pw, &x, g).expect("pw forward"),
                other => other.forward(&x).expect("layer forward"),
            };
        }
        if let Some(s) = skip {
            let data = x.data_mut();
            for (o, v) in data.iter_mut().zip(s.data()) {
                *o = o.saturating_add(*v);
            }
        }
    }
    x
}

fn deterministic_input(shape: Shape) -> Tensor {
    Tensor::from_fn(shape, |y, x, c| {
        (((y * 131 + x * 31 + c * 7) % 251) as i32 - 125) as i8
    })
}

#[test]
fn vww_dae_inference_is_bit_exact() {
    let model = vww_sized(32);
    let input = deterministic_input(model.input_shape);
    let reference = model.infer(&input).expect("baseline inference");
    for g in Granularity::PAPER_SET {
        let out = infer_with_dae(&model, &input, g);
        assert_eq!(out, reference, "vww diverged at {g}");
    }
}

#[test]
fn person_detection_dae_inference_is_bit_exact() {
    let model = person_detection_sized(32);
    let input = deterministic_input(model.input_shape);
    let reference = model.infer(&input).expect("baseline inference");
    for g in [Granularity(2), Granularity(8), Granularity(16)] {
        assert_eq!(
            infer_with_dae(&model, &input, g),
            reference,
            "pd diverged at {g}"
        );
    }
}

#[test]
fn mobilenet_v2_dae_inference_is_bit_exact_with_residuals() {
    let model = mobilenet_v2_sized(32);
    let input = deterministic_input(model.input_shape);
    let reference = model.infer(&input).expect("baseline inference");
    for g in [Granularity(4), Granularity(12)] {
        assert_eq!(
            infer_with_dae(&model, &input, g),
            reference,
            "mbv2 diverged at {g}"
        );
    }
}

#[test]
fn granularity_larger_than_unit_count_is_safe() {
    // g = 16 on layers with fewer than 16 channels/columns must still be
    // exact (single partial group).
    let model = vww_sized(32);
    let input = deterministic_input(model.input_shape);
    let reference = model.infer(&input).expect("baseline inference");
    assert_eq!(infer_with_dae(&model, &input, Granularity(16)), reference);
}
