//! Smoke test: every root example must build and exit 0.
//!
//! Examples are load-bearing documentation; without this gate they can
//! silently rot (they are compiled by `cargo test` but never executed).

use std::process::Command;

const EXAMPLES: [&str; 7] = [
    "quickstart",
    "clock_explorer",
    "qos_sweep",
    "battery_lifetime",
    "vww_deployment",
    "cross_target",
    "plan_service",
];

#[test]
fn all_examples_exit_zero() {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    for example in EXAMPLES {
        let output = Command::new(&cargo)
            .args(["run", "--release", "--example", example])
            .current_dir(manifest_dir)
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn cargo for example {example}: {e}"));
        assert!(
            output.status.success(),
            "example {example} exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
            output.status.code(),
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr),
        );
        assert!(
            !output.stdout.is_empty(),
            "example {example} printed nothing — expected a report"
        );
    }
}
