//! The target abstraction and plan-artifact surfaces: cross-target
//! parity, artifact round-trips and validated imports, and API-boundary
//! input validation.

use dae_dvfs::{
    DaeDvfsError, DeploymentPlan, DseConfig, GenericCortexMTarget, OperatingModes, PlanArtifact,
    PlanRequest, Planner, Stm32F767Target, PLAN_ARTIFACT_SCHEMA_VERSION,
};
use stm32_rcc::Hertz;
use tinynn::models::{paper_models, vww, vww_sized};

// ---- cross-target parity ------------------------------------------------

#[test]
fn generic_target_with_f767_parameters_reproduces_f767_pareto_fronts() {
    for model in paper_models() {
        let native = Planner::for_target(Stm32F767Target::paper(), &model).expect("native builds");
        let generic =
            Planner::for_target(GenericCortexMTarget::f767(), &model).expect("generic builds");
        assert_eq!(
            native.fronts(),
            generic.fronts(),
            "{}: Pareto fronts must be bit-identical across target descriptions",
            model.name
        );
    }
}

#[test]
fn generic_target_with_f767_parameters_reproduces_f767_plans() {
    let model = vww();
    let native = Planner::for_target(Stm32F767Target::paper(), &model).expect("native builds");
    let generic =
        Planner::for_target(GenericCortexMTarget::f767(), &model).expect("generic builds");
    // Baselines agree: the generic description's "fastest HFO" is exactly
    // TinyEngine's stock 216 MHz configuration.
    let baseline_native = native.baseline_latency().expect("baseline");
    let baseline_generic = generic.baseline_latency().expect("baseline");
    assert_eq!(baseline_native, baseline_generic);
    for slack in [0.1, 0.3, 0.5] {
        let a = native.run(slack).expect("native plans");
        let b = generic.run(slack).expect("generic plans");
        assert_eq!(a.plan.decisions, b.plan.decisions, "slack {slack}");
        assert_eq!(a.inference_secs, b.inference_secs);
        assert_eq!(a.total_energy, b.total_energy);
    }
}

/// A genuinely different board: slower clock ladder from a 25 MHz
/// crystal, half the cache, leaner power envelope, slower flash.
fn slow_board() -> GenericCortexMTarget {
    let modes = OperatingModes::from_sysclks(
        Hertz::mhz(25),
        Hertz::mhz(25),
        &[
            Hertz::mhz(75),
            Hertz::mhz(100),
            Hertz::mhz(125),
            Hertz::mhz(150),
        ],
    )
    .expect("ladder reachable from a 25 MHz HSE");
    GenericCortexMTarget::new("cortex-m-slow")
        .with_modes(modes)
        .with_cache(mcu_sim::cache::CacheConfig {
            size_bytes: 8 * 1024,
            line_bytes: 32,
            ways: 2,
        })
        .with_power(
            stm32_power::PowerModel::nucleo_f767zi()
                .with_static_power(stm32_power::Watts::milliwatts(12.0))
                .with_core_w_per_hz(0.6e-9)
                .with_clock_gated_power(stm32_power::Watts::milliwatts(8.0)),
        )
        .with_memory(
            mcu_sim::MemoryTiming::stm32f767()
                .with_flash_ladder(stm32_rcc::WaitStateLadder::new(Hertz::mhz(25), 9)),
        )
}

#[test]
fn different_board_plans_differently_but_meets_its_qos() {
    let model = vww_sized(32);
    let f767 = Planner::for_target(Stm32F767Target::paper(), &model).expect("f767 builds");
    let slow = Planner::for_target(slow_board(), &model).expect("slow board builds");
    assert_ne!(
        f767.fronts(),
        slow.fronts(),
        "a different ladder/cache/power must move the fronts"
    );
    // The slow board's baseline is its own 150 MHz fastest point, so its
    // windows are wider in absolute terms; plans still close under them.
    let report = slow.run(0.3).expect("slow board plans");
    assert!(report.inference_secs <= report.plan.qos_secs + 1e-12);
    for d in &report.plan.decisions {
        assert!(
            d.point.hfo.sysclk() <= Hertz::mhz(150),
            "slow board must not exceed its ladder: {}",
            d.point.hfo
        );
    }
}

// ---- plan artifacts -----------------------------------------------------

#[test]
fn artifact_round_trip_deploys_identically_across_planners() {
    let model = vww_sized(32);
    // Process A: optimize and export.
    let producer = Planner::for_target(Stm32F767Target::paper(), &model).expect("builds");
    let plan = producer
        .plan(&PlanRequest::slack(0.3))
        .expect("producer plans");
    let json = plan.to_artifact(&producer).to_json();

    // Process B: a fresh planner (same model, same target), import,
    // validate, deploy.
    let consumer = Planner::for_target(Stm32F767Target::paper(), &model).expect("builds");
    let artifact = PlanArtifact::from_json(&json).expect("parses");
    assert_eq!(artifact.schema_version, PLAN_ARTIFACT_SCHEMA_VERSION);
    assert_eq!(artifact.target, "stm32f767");
    let imported = DeploymentPlan::from_artifact(&artifact, &consumer).expect("validates");
    assert_eq!(imported, plan, "import must be bit-identical");

    let a = producer.deploy(&plan).expect("producer deploys");
    let b = consumer.deploy(&imported).expect("consumer deploys");
    assert_eq!(a.inference_secs, b.inference_secs);
    assert_eq!(a.total_energy, b.total_energy);
}

fn mismatch_field(result: Result<DeploymentPlan, DaeDvfsError>) -> &'static str {
    match result.unwrap_err() {
        DaeDvfsError::ArtifactMismatch { field, .. } => field,
        other => panic!("expected ArtifactMismatch, got {other:?}"),
    }
}

#[test]
fn artifact_rejected_on_wrong_target() {
    let model = vww_sized(32);
    let f767 = Planner::for_target(Stm32F767Target::paper(), &model).expect("builds");
    let plan = f767.plan(&PlanRequest::slack(0.3)).expect("plans");
    let artifact = plan.to_artifact(&f767);
    // Even though generic-f767 prices identically, the target id differs:
    // the import must refuse rather than guess.
    let generic = Planner::for_target(GenericCortexMTarget::f767(), &model).expect("builds");
    assert_eq!(
        mismatch_field(DeploymentPlan::from_artifact(&artifact, &generic)),
        "target"
    );
}

#[test]
fn artifact_rejected_on_schema_config_model_and_shape_mismatches() {
    let model = vww_sized(32);
    let planner = Planner::for_target(Stm32F767Target::paper(), &model).expect("builds");
    let plan = planner.plan(&PlanRequest::slack(0.3)).expect("plans");
    let artifact = plan.to_artifact(&planner);

    // Future schema version.
    let mut wrong = artifact.clone();
    wrong.schema_version += 1;
    assert_eq!(
        mismatch_field(DeploymentPlan::from_artifact(&wrong, &planner)),
        "schema_version"
    );

    // Tampered model fingerprint.
    let mut wrong = artifact.clone();
    wrong.model_fingerprint ^= 1;
    assert_eq!(
        mismatch_field(DeploymentPlan::from_artifact(&wrong, &planner)),
        "model_fingerprint"
    );

    // A planner under a different configuration (ablated DP resolution).
    let ablated = Planner::for_target(
        Stm32F767Target::with_config(DseConfig::paper().with_dp_resolution(500)),
        &model,
    )
    .expect("builds");
    assert_eq!(
        mismatch_field(DeploymentPlan::from_artifact(&artifact, &ablated)),
        "config_fingerprint"
    );

    // A different model (name + fingerprint both move; name is checked
    // first).
    let other = Planner::for_target(Stm32F767Target::paper(), &vww_sized(48)).expect("builds");
    let field = mismatch_field(DeploymentPlan::from_artifact(&artifact, &other));
    assert!(field == "model" || field == "model_fingerprint");
}

// ---- input validation through the planner API ---------------------------

fn invalid_field<T: std::fmt::Debug>(result: Result<T, DaeDvfsError>) -> &'static str {
    match result.unwrap_err() {
        DaeDvfsError::InvalidRequest { field, .. } => field,
        other => panic!("expected InvalidRequest, got {other:?}"),
    }
}

#[test]
fn degenerate_inputs_rejected_at_the_api_boundary() {
    let model = vww_sized(32);
    let planner = Planner::for_target(Stm32F767Target::paper(), &model).expect("builds");

    for bad_qos in [f64::NAN, f64::INFINITY, -1.0, 0.0] {
        assert_eq!(invalid_field(planner.optimize(bad_qos)), "qos_secs");
        assert_eq!(
            invalid_field(planner.optimize_sequence(bad_qos)),
            "qos_secs"
        );
        assert_eq!(
            invalid_field(planner.plan(&PlanRequest::qos(bad_qos))),
            "qos_secs"
        );
    }
    for bad_slack in [f64::NAN, -0.3, 0.0] {
        assert_eq!(invalid_field(planner.run(bad_slack)), "slack");
        assert_eq!(
            invalid_field(planner.plan(&PlanRequest::slack(bad_slack))),
            "slack"
        );
        assert_eq!(
            invalid_field(dae_dvfs::run_dae_dvfs(
                &model,
                bad_slack,
                &DseConfig::paper()
            )),
            "slack"
        );
    }
    assert_eq!(
        invalid_field(planner.plan(&PlanRequest::slack(0.3).with_dp_resolution(0))),
        "dp_resolution"
    );

    // A degenerate configuration is rejected at planner construction.
    let mut config = DseConfig::paper();
    config.dp_resolution = 0;
    assert_eq!(
        invalid_field(Planner::for_target(
            Stm32F767Target::with_config(config),
            &model
        )),
        "dp_resolution"
    );
    let empty_granularities = DseConfig::paper().with_granularities(Vec::new());
    assert_eq!(
        invalid_field(Planner::new(&model, &empty_granularities)),
        "granularities"
    );
}

#[test]
fn request_resolution_override_changes_only_the_solver_grid() {
    let model = vww_sized(32);
    let planner = Planner::for_target(Stm32F767Target::paper(), &model).expect("builds");
    let qos = planner.baseline_latency().expect("baseline") * 1.3;
    // A coarse override still yields a feasible plan...
    let coarse = planner
        .plan(&PlanRequest::qos(qos).with_dp_resolution(250))
        .expect("coarse plan solves");
    assert!(coarse.predicted_latency_secs <= qos + 1e-12);
    // ...and the default-resolution request equals plain optimize.
    let default = planner
        .plan(&PlanRequest::qos(qos))
        .expect("default solves");
    assert_eq!(default, planner.optimize(qos).expect("optimize"));
}

#[test]
fn substrate_ablations_reprice_the_baseline() {
    // The cpu/memory fields added to DseConfig flow into the baseline
    // machine too, not just the DSE: a slower core must lengthen the
    // baseline latency (and hence every slack-derived QoS window).
    let model = vww_sized(32);
    let slow_cpu = mcu_sim::CpuModel {
        mac_mcycles: 2000,
        ..mcu_sim::CpuModel::cortex_m7()
    };
    let stock = Planner::new(&model, &DseConfig::paper()).expect("builds");
    let ablated = Planner::new(&model, &DseConfig::paper().with_cpu(slow_cpu)).expect("builds");
    assert!(
        ablated.baseline_latency().expect("baseline") > stock.baseline_latency().expect("baseline"),
        "a slower core must slow the baseline"
    );
}

#[test]
fn compare_with_baselines_works_on_non_f767_targets() {
    // The iso-latency baselines replay on the target's machine, so a
    // board with its own ladder/power/substrate gets consistent windows
    // (no panic) and energies priced with its own power model.
    let model = vww_sized(32);
    let planner = Planner::for_target(slow_board(), &model).expect("builds");
    let cmp = planner.compare_with_baselines(0.3).expect("compares");
    assert!(cmp.ours.as_f64() > 0.0);
    assert!(
        cmp.tinyengine > cmp.tinyengine_gated,
        "WFI idle must cost more than clock gating on any target"
    );
}

#[test]
fn target_accessor_exposes_platform_identity() {
    let model = vww_sized(32);
    let planner = Planner::for_target(slow_board(), &model).expect("builds");
    assert_eq!(planner.target().id(), "cortex-m-slow");
    assert_eq!(planner.config().modes.lfo_sysclk(), Hertz::mhz(25));
}
