//! Cross-crate integration tests: the full methodology from model zoo to
//! deployed iso-latency windows.

use dae_dvfs::{compare_with_baselines, deploy, optimize, run_dae_dvfs, DseConfig, FrequencyMap};
use tinyengine::{plan_memory, qos_window, run_iso_latency, IdlePolicy, TinyEngine};
use tinynn::models::{mobilenet_v2, paper_models, person_detection, vww};

#[test]
fn all_models_deploy_under_all_slack_levels() {
    let cfg = DseConfig::paper();
    for model in paper_models() {
        for slack in [0.1, 0.3, 0.5] {
            let report = run_dae_dvfs(&model, slack, &cfg)
                .unwrap_or_else(|e| panic!("{} @ {slack}: {e}", model.name));
            assert!(
                report.inference_secs <= report.plan.qos_secs + 1e-12,
                "{} @ {slack}: QoS violated",
                model.name
            );
            assert!(report.total_energy.as_f64() > 0.0);
        }
    }
}

#[test]
fn headline_ordering_holds_everywhere() {
    // Our approach never loses to either baseline, and plain TinyEngine is
    // never better than its clock-gated variant.
    let cfg = DseConfig::paper();
    for model in paper_models() {
        for slack in [0.1, 0.3, 0.5] {
            let cmp = compare_with_baselines(&model, slack, &cfg).expect("comparison runs");
            assert!(
                cmp.ours < cmp.tinyengine_gated,
                "{} @ {slack}: ours {} vs gated {}",
                model.name,
                cmp.ours,
                cmp.tinyengine_gated
            );
            assert!(
                cmp.tinyengine_gated < cmp.tinyengine,
                "{} @ {slack}: gating must beat busy idle",
                model.name
            );
        }
    }
}

#[test]
fn gains_grow_from_tight_to_moderate_slack() {
    let cfg = DseConfig::paper();
    for model in paper_models() {
        let tight = compare_with_baselines(&model, 0.1, &cfg).expect("tight");
        let moderate = compare_with_baselines(&model, 0.3, &cfg).expect("moderate");
        assert!(
            moderate.gain_vs_tinyengine_pct() > tight.gain_vs_tinyengine_pct(),
            "{}: {:.1}% -> {:.1}%",
            model.name,
            tight.gain_vs_tinyengine_pct(),
            moderate.gain_vs_tinyengine_pct()
        );
    }
}

#[test]
fn plans_are_deterministic() {
    let model = vww();
    let cfg = DseConfig::paper();
    let baseline = TinyEngine::new()
        .run(&model)
        .expect("baseline")
        .total_time_secs;
    let qos = qos_window(baseline, 0.3);
    let a = optimize(&model, qos, &cfg).expect("first");
    let b = optimize(&model, qos, &cfg).expect("second");
    assert_eq!(a, b, "optimization must be deterministic");
    let ra = deploy(&model, &a, &cfg).expect("deploy a");
    let rb = deploy(&model, &b, &cfg).expect("deploy b");
    assert_eq!(ra, rb);
}

#[test]
fn tight_qos_selects_no_slower_plan_than_relaxed() {
    let cfg = DseConfig::paper();
    let model = person_detection();
    let baseline = TinyEngine::new()
        .run(&model)
        .expect("baseline")
        .total_time_secs;
    let tight = optimize(&model, qos_window(baseline, 0.1), &cfg).expect("tight");
    let relaxed = optimize(&model, qos_window(baseline, 0.5), &cfg).expect("relaxed");
    assert!(tight.predicted_latency_secs <= relaxed.predicted_latency_secs + 1e-9);
    assert!(relaxed.predicted_energy <= tight.predicted_energy);
}

#[test]
fn frequency_maps_cover_every_layer_with_valid_choices() {
    let cfg = DseConfig::paper();
    let model = mobilenet_v2();
    let baseline = TinyEngine::new()
        .run(&model)
        .expect("baseline")
        .total_time_secs;
    let plan = optimize(&model, qos_window(baseline, 0.3), &cfg).expect("plan");
    let map = FrequencyMap::from_plan(&plan, 0.3);
    assert_eq!(map.rows.len(), model.layer_count());
    for row in &map.rows {
        assert!(
            cfg.modes.hfo.iter().any(|p| p.sysclk() == row.hfo),
            "{}: frequency {} not in the HFO ladder",
            row.name,
            row.hfo
        );
        assert!([0u8, 2, 4, 8, 12, 16].contains(&row.granularity));
        if row.kind == tinynn::LayerKind::Rest {
            assert_eq!(row.granularity, 0, "rest layers must not be DAE-scheduled");
        }
    }
}

#[test]
fn memory_plans_fit_and_baselines_run_on_shared_machine_state() {
    for model in paper_models() {
        let plan = plan_memory(&model).expect("plan resolves");
        assert!(plan.fits(), "{}: activations exceed SRAM", model.name);
    }
    // Baselines over the same window are comparable.
    let model = vww();
    let engine = TinyEngine::new();
    let t = engine.run(&model).expect("baseline").total_time_secs;
    let qos = qos_window(t, 0.5);
    let busy = run_iso_latency(&engine, &model, qos, IdlePolicy::Busy216).expect("busy");
    let wfi = run_iso_latency(&engine, &model, qos, IdlePolicy::Wfi216).expect("wfi");
    let gated = run_iso_latency(&engine, &model, qos, IdlePolicy::ClockGated).expect("gated");
    assert!(busy.total_energy > wfi.total_energy);
    assert!(wfi.total_energy > gated.total_energy);
    assert_eq!(busy.inference.total_energy, gated.inference.total_energy);
}

#[test]
fn infeasible_window_is_a_clean_error() {
    let cfg = DseConfig::paper();
    let model = vww();
    let err = optimize(&model, 1e-5, &cfg).expect_err("cannot run in 10 µs");
    let msg = err.to_string();
    assert!(msg.contains("infeasible"), "unhelpful message: {msg}");
}
