//! Wire-protocol conformance tests for the HTTP plan server, driven by
//! raw [`TcpStream`]s so the bytes on the wire — not a client library's
//! idea of them — are what is asserted: malformed request lines,
//! oversized heads and bodies, partial writes, clients that vanish
//! mid-exchange, pipelining, and the single-flight behaviour observable
//! through `/stats`. The status-code mapping itself is unit-tested next
//! to the handler; these tests check that the server holds the contract
//! under adversarial socket behaviour without dying.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use dae_dvfs::{
    PlanServer, PlanService, Planner, ServerConfig, ServerHandle, ServiceConfig, ServiceStats,
    Stm32F767Target,
};
use repro_bench::{httpc, serving};
use tinynn::models::vww_sized;

/// Builds the one-planner service every test serves, runs `f` against a
/// live server configured by `server_config`, and returns the closure's
/// value plus the service counters after the drain. The route is named
/// `vww`.
fn with_server<R: Send>(
    server_config: ServerConfig,
    f: impl FnOnce(&ServerHandle) -> R + Send,
) -> (R, ServiceStats) {
    let target = Stm32F767Target::paper();
    let model = vww_sized(32);
    let planner = Arc::new(Planner::for_target(target, &model).expect("planner builds"));
    let mut service = PlanService::new(
        ServiceConfig::default()
            .with_workers(2)
            .with_batch_linger(Duration::from_millis(1)),
    )
    .expect("service config validates");
    let key = service.register(planner);
    let value = service.run(|svc| {
        PlanServer::new(svc, server_config)
            .expect("server config validates")
            .route("vww", key)
            .expect("route registers")
            .serve(f)
            .expect("server binds an ephemeral loopback port")
    });
    (value, service.stats())
}

/// Writes raw bytes on a fresh connection and reads until the server
/// closes. Returns everything the server sent (possibly nothing).
fn raw_exchange(addr: SocketAddr, bytes: &[u8]) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout sets");
    stream.write_all(bytes).expect("request writes");
    let mut response = Vec::new();
    let _ = stream.read_to_end(&mut response);
    response
}

/// The status code of a raw response buffer.
fn status_of(response: &[u8]) -> u16 {
    let text = String::from_utf8_lossy(response);
    let line = text.split("\r\n").next().unwrap_or_default();
    line.split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {line:?}"))
}

#[test]
fn malformed_request_lines_get_400_not_a_dead_server() {
    with_server(ServerConfig::default(), |handle| {
        for garbage in [
            &b"GET\r\n\r\n"[..],
            b"GET /healthz HTTP/1.1 extra\r\n\r\n",
            b"GET /healthz HTTP/2.0\r\n\r\n",
            b"\x00\xffbinary\r\n\r\n",
            b"GET /healthz HTTP/1.1\r\ncontent-length: 3\r\ncontent-length: 7\r\n\r\nabc",
            b"POST /v1/plan HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n",
            // RFC 9110 content-length is 1*DIGIT: a leading sign parses
            // under usize::parse but must be rejected, or this server
            // disagrees with any stricter proxy in front of it.
            b"POST /v1/plan HTTP/1.1\r\ncontent-length: +5\r\n\r\n{1:2}",
            b"POST /v1/plan HTTP/1.1\r\ncontent-length: \r\n\r\n",
        ] {
            let response = raw_exchange(handle.addr(), garbage);
            assert_eq!(status_of(&response), 400, "for {garbage:?}");
        }
        // The server is still alive and serving after all of that.
        let health = httpc::get(handle.addr(), "/healthz").expect("still serving");
        assert_eq!(health.status, 200);
    });
}

#[test]
fn oversized_heads_and_bodies_are_bounced_with_431_and_413() {
    let config = ServerConfig::default()
        .with_max_header_bytes(256)
        .with_max_body_bytes(128);
    with_server(config, |handle| {
        let padding = "x".repeat(512);
        let big_head = format!("GET /healthz HTTP/1.1\r\nx-pad: {padding}\r\n\r\n");
        assert_eq!(
            status_of(&raw_exchange(handle.addr(), big_head.as_bytes())),
            431
        );

        // The body limit is enforced from the declared length, before any
        // body bytes are read.
        let declared = b"POST /v1/plan HTTP/1.1\r\ncontent-length: 4096\r\n\r\n";
        assert_eq!(status_of(&raw_exchange(handle.addr(), declared)), 413);

        let small = httpc::get(handle.addr(), "/healthz").expect("still serving");
        assert_eq!(small.status, 200);
    });
}

#[test]
fn requests_arriving_one_byte_at_a_time_still_parse() {
    with_server(ServerConfig::default(), |handle| {
        let request = b"GET /stats HTTP/1.1\r\nconnection: close\r\n\r\n";
        let mut stream = TcpStream::connect(handle.addr()).expect("connects");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("timeout sets");
        for chunk in request.chunks(7) {
            stream.write_all(chunk).expect("partial write lands");
            stream.flush().expect("flushes");
            std::thread::sleep(Duration::from_millis(2));
        }
        let mut response = Vec::new();
        stream.read_to_end(&mut response).expect("response reads");
        assert_eq!(status_of(&response), 200);
        assert!(String::from_utf8_lossy(&response).contains("\"submitted\""));
    });
}

#[test]
fn a_stalled_client_is_timed_out_and_the_slot_reclaimed() {
    let config = ServerConfig::default().with_read_timeout(Duration::from_millis(100));
    with_server(config, |handle| {
        let mut stream = TcpStream::connect(handle.addr()).expect("connects");
        // Half a request line, then silence: the server must give up on
        // us and close without writing anything.
        stream.write_all(b"GET /heal").expect("partial write lands");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("timeout sets");
        let mut leftovers = Vec::new();
        stream.read_to_end(&mut leftovers).expect("EOF, not a hang");
        assert!(
            leftovers.is_empty(),
            "a timed-out read must close silently, got {leftovers:?}"
        );
        // The worker slot freed by the timeout serves the next client.
        let health = httpc::get(handle.addr(), "/healthz").expect("still serving");
        assert_eq!(health.status, 200);
    });
}

#[test]
fn a_trickling_client_is_bounded_by_one_read_budget_not_two() {
    // A client that lands one byte just before the deadline must not buy
    // itself a whole extra socket timeout inside the final blocking read:
    // the server clamps the socket timeout to the budget's remainder, so
    // total assembly time stays ~read_timeout, not ~2x.
    let budget = Duration::from_millis(400);
    let config = ServerConfig::default().with_read_timeout(budget);
    with_server(config, |handle| {
        let mut stream = TcpStream::connect(handle.addr()).expect("connects");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("timeout sets");
        let started = std::time::Instant::now();
        stream.write_all(b"GET /heal").expect("partial write lands");
        std::thread::sleep(Duration::from_millis(300));
        stream.write_all(b"t").expect("late byte lands");
        let mut leftovers = Vec::new();
        stream.read_to_end(&mut leftovers).expect("EOF, not a hang");
        let elapsed = started.elapsed();
        assert!(
            leftovers.is_empty(),
            "a timed-out read must close silently, got {leftovers:?}"
        );
        // Unclamped, the read that began at ~300ms would block until
        // ~700ms; leave slack for scheduler jitter but stay well below.
        assert!(
            elapsed < Duration::from_millis(600),
            "assembly must be cut off at ~one budget, took {elapsed:?}"
        );
    });
}

#[test]
fn a_client_dropping_mid_exchange_does_not_kill_the_server() {
    with_server(ServerConfig::default(), |handle| {
        for _ in 0..4 {
            let mut stream = TcpStream::connect(handle.addr()).expect("connects");
            stream
                .write_all(b"POST /v1/plan HTTP/1.1\r\ncontent-length: 40\r\n\r\n{\"planner\"")
                .expect("partial body lands");
            drop(stream); // vanish mid-request, response never read
        }
        let health = httpc::get(handle.addr(), "/healthz").expect("still serving");
        assert_eq!(health.status, 200);
    });
}

#[test]
fn pipelined_requests_in_one_write_are_both_answered_in_order() {
    with_server(ServerConfig::default(), |handle| {
        let two = b"GET /healthz HTTP/1.1\r\n\r\n\
                    GET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n";
        let response = raw_exchange(handle.addr(), two);
        let text = String::from_utf8_lossy(&response);
        assert_eq!(
            text.matches("HTTP/1.1 200 OK").count(),
            2,
            "both pipelined requests must be answered: {text}"
        );
        assert_eq!(text.matches("ok\n").count(), 2);
    });
}

#[test]
fn unknown_routes_and_methods_map_to_404_and_405() {
    let ((), _) = with_server(ServerConfig::default(), |handle| {
        assert_eq!(
            httpc::get(handle.addr(), "/nope").expect("answers").status,
            404
        );
        assert_eq!(
            httpc::post(
                handle.addr(),
                "/v1/plan",
                "{\"planner\": \"ghost\", \"slack\": 0.3}"
            )
            .expect("answers")
            .status,
            404
        );
        let put = raw_exchange(
            handle.addr(),
            b"PUT /healthz HTTP/1.1\r\nconnection: close\r\n\r\n",
        );
        assert_eq!(status_of(&put), 405);
        // Known paths with the wrong *supported* method are still 405,
        // not "unknown path" 404s.
        assert_eq!(
            httpc::get(handle.addr(), "/v1/plan")
                .expect("answers")
                .status,
            405
        );
        for path in ["/healthz", "/stats"] {
            assert_eq!(
                httpc::post(handle.addr(), path, "")
                    .expect("answers")
                    .status,
                405
            );
        }
    });
}

#[test]
fn infeasible_budgets_are_422_and_bad_json_is_400() {
    with_server(ServerConfig::default(), |handle| {
        let infeasible = httpc::post(
            handle.addr(),
            "/v1/plan",
            "{\"planner\": \"vww\", \"qos_secs\": 1e-9}",
        )
        .expect("answers");
        assert_eq!(infeasible.status, 422, "{}", infeasible.body_str());

        let garbage = httpc::post(handle.addr(), "/v1/plan", "not json").expect("answers");
        assert_eq!(garbage.status, 400);
        assert!(garbage.body_str().starts_with("{\"error\":"));

        let ambiguous = httpc::post(
            handle.addr(),
            "/v1/plan",
            "{\"planner\": \"vww\", \"slack\": 0.3, \"qos_secs\": 0.5}",
        )
        .expect("answers");
        assert_eq!(ambiguous.status, 400);
    });
}

#[test]
fn a_server_outside_service_run_answers_503_not_serving() {
    let target = Stm32F767Target::paper();
    let model = vww_sized(32);
    let planner = Arc::new(Planner::for_target(target, &model).expect("planner builds"));
    let mut service = PlanService::new(ServiceConfig::default()).expect("config validates");
    let key = service.register(planner);
    // No `service.run` wrapper: the service exists but is not serving.
    let server = PlanServer::new(&service, ServerConfig::default())
        .expect("server config validates")
        .route("vww", key)
        .expect("route registers");
    server
        .serve(|handle| {
            let response = httpc::post(
                handle.addr(),
                "/v1/plan",
                "{\"planner\": \"vww\", \"slack\": 0.3}",
            )
            .expect("answers");
            assert_eq!(response.status, 503, "{}", response.body_str());
            // Health stays green: liveness is the wire, not the solver.
            assert_eq!(
                httpc::get(handle.addr(), "/healthz")
                    .expect("answers")
                    .status,
                200
            );
        })
        .expect("server binds");
}

#[test]
fn concurrent_identical_requests_share_one_solve_visible_in_stats() {
    let clients = 8;
    let ((), stats) = with_server(ServerConfig::default().with_workers(8), |handle| {
        std::thread::scope(|s| {
            for _ in 0..clients {
                s.spawn(move || {
                    let response = httpc::post(
                        handle.addr(),
                        "/v1/plan",
                        "{\"planner\": \"vww\", \"slack\": 0.35}",
                    )
                    .expect("answers");
                    assert_eq!(response.status, 200, "{}", response.body_str());
                });
            }
        });
        let stats = httpc::get(handle.addr(), "/stats").expect("answers");
        assert_eq!(stats.status, 200);
        let body = stats.body_str();
        assert!(
            body.contains("\"inserted\": 1"),
            "eight identical requests must share one cache insert: {body}"
        );
    });
    assert_eq!(stats.cache.inserted, 1);
    assert_eq!(stats.submitted, clients as u64);
    assert_eq!(stats.completed, stats.submitted);
}

#[test]
fn warm_repeats_are_served_inline_with_byte_identical_bodies() {
    let repeats = 5u64;
    let (cold_len, stats) = with_server(ServerConfig::default(), |handle| {
        let body = "{\"planner\": \"vww\", \"slack\": 0.4}";
        let cold = httpc::post(handle.addr(), "/v1/plan", body).expect("answers");
        assert_eq!(cold.status, 200, "{}", cold.body_str());
        for _ in 0..repeats {
            let warm = httpc::post(handle.addr(), "/v1/plan", body).expect("answers");
            assert_eq!(warm.status, 200);
            assert_eq!(
                warm.body, cold.body,
                "fast-path responses must be byte-identical to the cold one"
            );
        }
        // The hot-path counters are on the wire, not just in the struct.
        let report = httpc::get(handle.addr(), "/stats").expect("answers");
        assert_eq!(report.status, 200);
        let text = report.body_str();
        for field in ["\"inline_hits\"", "\"bytes_served\"", "\"enqueued\""] {
            assert!(text.contains(field), "missing {field} in {text}");
        }
        cold.body.len() as u64
    });
    assert_eq!(stats.submitted, 1 + repeats);
    assert_eq!(stats.enqueued, 1, "only the cold request may enqueue");
    assert_eq!(
        stats.inline_hits, repeats,
        "every repeat must ride the inline fast path: {stats:?}"
    );
    assert!(
        stats.inline_hits <= stats.cache.hits,
        "inline hits are a subset of cache hits: {stats:?}"
    );
    assert_eq!(
        stats.bytes_served,
        (1 + repeats) * cold_len,
        "bytes_served must account for every payload byte"
    );
}

#[test]
fn query_strings_are_stripped_before_route_matching() {
    with_server(ServerConfig::default(), |handle| {
        // Probes and scrapers tack query strings onto fixed paths; the
        // route table must see the path alone.
        for path in ["/healthz?probe=k8s", "/stats?verbose=1", "/metrics?f=1"] {
            let response = httpc::get(handle.addr(), path).expect("answers");
            assert_eq!(response.status, 200, "{path}: {}", response.body_str());
        }
        // Stripping must not loosen the method mapping: a known path
        // with a query string and the wrong method is still a 405.
        assert_eq!(
            httpc::post(handle.addr(), "/stats?x=1", "")
                .expect("answers")
                .status,
            405
        );
        // An unknown path stays unknown no matter the query string.
        assert_eq!(
            httpc::get(handle.addr(), "/nope?x=1")
                .expect("answers")
                .status,
            404
        );
    });
}

#[test]
fn plan_responses_carry_receipts_the_ring_and_metrics_confirm() {
    with_server(ServerConfig::default(), |handle| {
        let body = "{\"planner\": \"vww\", \"slack\": 0.35}";
        let cold = httpc::post(handle.addr(), "/v1/plan", body).expect("answers");
        assert_eq!(cold.status, 200, "{}", cold.body_str());

        // Every plan response carries an `X-Plan-Receipt` whose `hash=`
        // field is the FNV-1a of exactly the body bytes on the wire.
        let receipt = cold
            .receipt
            .as_deref()
            .expect("cold response has a receipt");
        assert_eq!(
            serving::receipt_hash(receipt),
            Some(dae_dvfs::obs::plan_hash(&cold.body)),
            "receipt must pin the served bytes: {receipt}"
        );
        let fingerprint = receipt
            .strip_prefix("fp=")
            .and_then(|rest| rest.split(';').next())
            .expect("receipt leads with fp=");

        // The warm repeat answers with the same fingerprint and hash but
        // a hit path — the receipt tells the paths apart on the wire.
        let warm = httpc::post(handle.addr(), "/v1/plan", body).expect("answers");
        let warm_receipt = warm
            .receipt
            .as_deref()
            .expect("warm response has a receipt");
        assert!(
            warm_receipt.starts_with(&format!("fp={fingerprint};path=inline-hit;")),
            "warm repeat must ride the inline fast path: {warm_receipt}"
        );
        assert_eq!(
            serving::receipt_hash(warm_receipt),
            serving::receipt_hash(receipt),
            "one key, one hash, every path"
        );

        // The ring replays the receipt as JSON at its fingerprint.
        let ring =
            httpc::get(handle.addr(), &format!("/v1/receipt/{fingerprint}")).expect("answers");
        assert_eq!(ring.status, 200, "{}", ring.body_str());
        let text = ring.body_str();
        assert!(
            text.contains(&format!("\"fingerprint\": \"{fingerprint}\"")),
            "{text}"
        );
        assert!(
            text.contains(&format!(
                "\"plan_hash\": \"{:016x}\"",
                dae_dvfs::obs::plan_hash(&cold.body)
            )),
            "{text}"
        );

        // Malformed and unknown fingerprints map to 400 and 404.
        assert_eq!(
            httpc::get(handle.addr(), "/v1/receipt/short")
                .expect("answers")
                .status,
            400
        );
        assert_eq!(
            httpc::get(handle.addr(), "/v1/receipt/0000000000000000")
                .expect("answers")
                .status,
            404
        );

        // `/metrics` folds the same traffic into per-path histograms.
        let metrics = httpc::get(handle.addr(), "/metrics").expect("answers");
        assert_eq!(metrics.status, 200);
        let text = metrics.body_str();
        for needle in ["inline-hit", "solved", "requests_total"] {
            assert!(text.contains(needle), "missing {needle} in {text}");
        }
    });
}

#[test]
fn disabling_receipts_strips_the_header_and_empties_the_ring() {
    with_server(ServerConfig::default().with_receipts(false), |handle| {
        let body = "{\"planner\": \"vww\", \"slack\": 0.35}";
        let response = httpc::post(handle.addr(), "/v1/plan", body).expect("answers");
        assert_eq!(response.status, 200, "{}", response.body_str());
        assert_eq!(
            response.receipt, None,
            "receipts off must mean no X-Plan-Receipt header"
        );
        // Nothing was recorded: any well-formed fingerprint misses.
        assert_eq!(
            httpc::get(handle.addr(), "/v1/receipt/0123456789abcdef")
                .expect("answers")
                .status,
            404
        );
    });
}

#[test]
fn graceful_drain_fulfills_every_admitted_request() {
    let clients = 8;
    let (outcomes, stats) = with_server(ServerConfig::default().with_workers(4), |handle| {
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..clients)
                .map(|i| {
                    s.spawn(move || {
                        // Distinct budgets: real cold solves, in flight
                        // when the shutdown lands.
                        let body = format!("{{\"planner\": \"vww\", \"slack\": 0.{}5}}", i + 1);
                        httpc::post(handle.addr(), "/v1/plan", &body)
                    })
                })
                .collect();
            std::thread::sleep(Duration::from_millis(20));
            handle.shutdown();
            handles
                .into_iter()
                .map(|h| h.join().expect("client thread survives"))
                .collect::<Vec<_>>()
        })
    });
    // A client that raced the shutdown may have been turned away at the
    // door (transport error) — but every request the server *admitted*
    // must have been answered in full with a 200.
    let answered = outcomes
        .iter()
        .filter(|outcome| match outcome {
            Ok(response) => {
                assert_eq!(response.status, 200, "{}", response.body_str());
                assert!(response.body_str().contains("\"artifact\""));
                true
            }
            Err(_) => false,
        })
        .count();
    assert!(answered > 0, "the head start must admit some requests");
    assert_eq!(
        stats.completed, stats.submitted,
        "drain must fulfill every admitted ticket: {stats:?}"
    );
    assert_eq!(stats.failed, 0);
}
