//! End-to-end tests of the on-disk plan registry under the serving
//! stack: a "process restart" (new service, new server, re-opened
//! registry directory) must answer the same requests from disk — no
//! solver run — with responses byte-identical to the ones the first
//! process served; corrupt entries must be quarantined at startup and
//! never served; and slack budgets must warm-start exactly like the
//! in-memory hit path, including `qos_quantum_secs` snapping.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use dae_dvfs::{
    PlanRegistry, PlanServer, PlanService, Planner, ServerConfig, ServiceConfig, ServiceStats,
    Stm32F767Target,
};
use repro_bench::httpc;
use tinynn::models::vww_sized;

/// A per-test registry directory under the system temp dir; tests run in
/// one process, so the test tag keeps them from colliding.
fn unique_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dae-dvfs-e2e-{}-{tag}", std::process::id()))
}

fn planner() -> Arc<Planner> {
    Arc::new(Planner::for_target(Stm32F767Target::paper(), &vww_sized(32)).expect("planner builds"))
}

fn service_config() -> ServiceConfig {
    ServiceConfig::default()
        .with_workers(2)
        .with_batch_linger(Duration::from_millis(1))
        .with_qos_quantum_secs(1e-6)
}

/// One simulated process lifetime: a fresh service over `planner` with
/// the registry at `dir` attached, serving HTTP under the route `vww`.
/// Replays `bodies` as `POST /v1/plan`, returns the responses in order
/// plus the stats after the drain.
fn one_process(
    planner: &Arc<Planner>,
    config: &ServiceConfig,
    dir: &PathBuf,
    bodies: &[String],
) -> (Vec<String>, ServiceStats) {
    let mut service = PlanService::new(config.clone()).expect("service config validates");
    let key = service.register(planner.clone());
    service
        .attach_registry(PlanRegistry::open(dir).expect("registry opens"))
        .expect("startup re-validation scans the directory");
    let responses = service.run(|svc| {
        PlanServer::new(svc, ServerConfig::default())
            .expect("server config validates")
            .route("vww", key)
            .expect("route registers")
            .serve(|handle| {
                bodies
                    .iter()
                    .map(|body| {
                        let response =
                            httpc::post(handle.addr(), "/v1/plan", body).expect("answers");
                        assert_eq!(response.status, 200, "{}", response.body_str());
                        response.body_str()
                    })
                    .collect::<Vec<_>>()
            })
            .expect("server binds")
    });
    (responses, service.stats())
}

#[test]
fn a_restarted_process_answers_from_disk_bit_identically() {
    let dir = unique_dir("restart");
    let _ = std::fs::remove_dir_all(&dir);
    let planner = planner();
    let config = service_config();
    let bodies: Vec<String> = [
        "{\"planner\": \"vww\", \"slack\": 0.3}",
        "{\"planner\": \"vww\", \"slack\": 0.5}",
        "{\"planner\": \"vww\", \"slack\": 0.3, \"solver\": \"sequence-dp\"}",
    ]
    .map(String::from)
    .to_vec();

    let (cold, cold_stats) = one_process(&planner, &config, &dir, &bodies);
    assert!(cold_stats.batches > 0, "the first process must solve");
    assert_eq!(cold_stats.registry_hits, 0);
    assert_eq!(
        cold_stats.registry_writes, cold_stats.cache.inserted,
        "every solve must be written through: {cold_stats:?}"
    );

    // The restart: a brand-new service and server — only the directory
    // carries state across.
    let (warm, warm_stats) = one_process(&planner, &config, &dir, &bodies);
    assert_eq!(
        warm_stats.batches, 0,
        "the restarted process must not solve at all: {warm_stats:?}"
    );
    assert_eq!(warm_stats.registry_hits, warm_stats.cache.inserted);
    assert_eq!(warm_stats.registry_writes, 0);
    assert_eq!(warm_stats.quarantined, 0);
    assert_eq!(
        cold, warm,
        "disk-warmed responses must be byte-identical to the originals"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn slack_requests_warm_start_with_quantum_snapping_bit_identically() {
    // The bugfix pin: a slack budget must be re-resolved against the
    // cached baseline and snapped onto the `qos_quantum_secs` grid on the
    // registry warm-start path exactly like the in-memory hit path — a
    // raw (unsnapped) window would compute a different content address
    // and silently cold-solve (or worse, serve a differently-quantized
    // plan).
    let dir = unique_dir("snap");
    let _ = std::fs::remove_dir_all(&dir);
    let planner = planner();
    // A quantum coarse enough that snapping visibly moves the window.
    let config = service_config().with_qos_quantum_secs(1e-4);
    let body = vec!["{\"planner\": \"vww\", \"slack\": 0.37}".to_string()];

    let (cold, cold_stats) = one_process(&planner, &config, &dir, &body);
    assert_eq!(cold_stats.cache.inserted, 1);

    let (warm, warm_stats) = one_process(&planner, &config, &dir, &body);
    assert_eq!(
        (warm_stats.batches, warm_stats.registry_hits),
        (0, 1),
        "the snapped slack window must hit the stored entry: {warm_stats:?}"
    );
    assert_eq!(cold, warm, "snapped warm-start must be bit-identical");
    // The served window really is on the quantum grid, not the raw
    // baseline-resolved value.
    let qos = warm[0]
        .split("\"qos_secs\": ")
        .nth(1)
        .and_then(|rest| rest.split([',', '\n']).next())
        .and_then(|s| s.trim().parse::<f64>().ok())
        .expect("response carries qos_secs");
    let quantum = 1e-4;
    let snapped = (qos / quantum).floor() * quantum;
    assert!(
        (qos - snapped).abs() < 1e-12,
        "served window {qos} must sit on the {quantum} grid"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn evicted_entries_come_back_from_disk_not_the_solver() {
    let dir = unique_dir("evict");
    let _ = std::fs::remove_dir_all(&dir);
    let planner = planner();
    // A one-entry LRU: the second request evicts the first.
    let config = service_config().with_cache_capacity(1);
    let a = "{\"planner\": \"vww\", \"slack\": 0.3}".to_string();
    let b = "{\"planner\": \"vww\", \"slack\": 0.6}".to_string();
    let bodies = vec![a.clone(), b, a];

    let (responses, stats) = one_process(&planner, &config, &dir, &bodies);
    assert_eq!(
        responses[0], responses[2],
        "the disk-warmed replay of an evicted entry must be byte-identical"
    );
    assert_eq!(stats.cache.evicted, 2, "{stats:?}");
    assert_eq!(
        stats.registry_hits, 1,
        "the evicted entry must come back from disk, not a solve: {stats:?}"
    );
    assert_eq!(stats.batches, 2, "only the two distinct windows solve");
    assert_eq!(stats.registry_writes, 2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_entries_are_quarantined_at_startup_and_never_served() {
    let dir = unique_dir("corrupt");
    let _ = std::fs::remove_dir_all(&dir);
    let planner = planner();
    let config = service_config();
    let bodies: Vec<String> = [
        "{\"planner\": \"vww\", \"slack\": 0.3}",
        "{\"planner\": \"vww\", \"slack\": 0.5}",
    ]
    .map(String::from)
    .to_vec();

    let (cold, cold_stats) = one_process(&planner, &config, &dir, &bodies);
    assert_eq!(cold_stats.registry_writes, 2);

    // Corrupt both stored entries: one truncated mid-file, one with a
    // flipped bit inside the artifact payload.
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("reads dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_file() && p.extension().is_some_and(|x| x == "json"))
        .collect();
    entries.sort();
    assert_eq!(entries.len(), 2);
    let truncated = std::fs::read(&entries[0]).expect("reads");
    std::fs::write(&entries[0], &truncated[..truncated.len() / 2]).expect("truncates");
    let mut flipped = std::fs::read(&entries[1]).expect("reads");
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x01;
    std::fs::write(&entries[1], &flipped).expect("flips");

    // Restart: startup re-validation must quarantine both, the requests
    // must be solved fresh (never served from the corrupt bytes), and
    // the fresh solves must be written back and byte-identical anyway —
    // determinism, not the disk, is what guarantees the bytes here.
    let (warm, warm_stats) = one_process(&planner, &config, &dir, &bodies);
    assert_eq!(
        warm_stats.quarantined, 2,
        "both corrupt entries must be quarantined: {warm_stats:?}"
    );
    assert_eq!(
        warm_stats.registry_hits, 0,
        "corrupt bytes are never served"
    );
    assert!(warm_stats.batches > 0, "the requests are solved fresh");
    assert_eq!(warm_stats.registry_writes, 2, "fresh solves re-populate");
    assert_eq!(cold, warm, "fresh solves reproduce the original bytes");
    // The corrupt bytes moved to quarantine/; the original content
    // addresses now hold the fresh re-writes (same names — the address
    // is the key, and the key did not change).
    assert_eq!(
        std::fs::read_dir(dir.join("quarantine"))
            .expect("quarantine dir exists")
            .count(),
        2
    );
    let _ = std::fs::remove_dir_all(&dir);
}
