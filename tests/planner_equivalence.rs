//! Equivalence of the `Planner` against the pre-refactor straight-line
//! pipeline.
//!
//! The compiled-schedule refactor must not move a single bit: this test
//! carries an independent re-implementation of the historical path — fresh
//! DAE lowering for every DSE point and every replay, no schedule cache,
//! no shared power model — and asserts that `Planner::optimize` /
//! `Planner::optimize_sequence` produce identical plans for VWW, person
//! detection and MobileNet-V2 at the paper's three slack levels.

use dae_dvfs::{
    dae_segments, pareto_front, solve_dp, solve_sequence, DeploymentPlan, DseConfig, DsePoint,
    Granularity, LayerDecision, MckpItem, PlanRequest, Planner, Solver, Stm32F767Target,
};
use mcu_sim::{Machine, SegmentClass};
use stm32_power::Joules;
use stm32_rcc::{PllConfig, SysclkConfig};
use tinyengine::{qos_window, KernelProfile, TinyEngine};
use tinynn::{LayerKind, Model};

// ---- independent re-implementation of the pre-refactor pipeline --------

fn legacy_lower(model: &Model) -> Vec<KernelProfile> {
    let plan = model.plan().expect("plan resolves");
    model
        .layers()
        .zip(plan.iter())
        .map(|(nl, info)| tinyengine::layer_profile(&nl.layer, info))
        .collect()
}

fn legacy_evaluate_point(
    profile: &KernelProfile,
    g: Granularity,
    hfo: &PllConfig,
    config: &DseConfig,
) -> DsePoint {
    let hfo_cfg = SysclkConfig::Pll(*hfo);
    let mut machine = Machine::new(hfo_cfg)
        .with_switch_model(config.switch_model)
        .with_power(config.power.clone());
    let mut first_stage_secs = 0.0;
    let mut first_seen = false;
    for seg in dae_segments(profile, g, &config.cache) {
        match seg.class {
            SegmentClass::Memory => {
                machine.switch_clock(config.modes.lfo);
                machine.prepare_pll(*hfo);
            }
            SegmentClass::Compute | SegmentClass::Other => {
                machine.switch_clock(hfo_cfg);
            }
        }
        let dt = machine.run_segment(&seg);
        if !first_seen && seg.class == SegmentClass::Memory {
            first_stage_secs = dt;
        }
        first_seen = true;
    }
    DsePoint {
        granularity: g,
        hfo: *hfo,
        latency_secs: machine.elapsed_secs(),
        energy: machine.energy(),
        switches: machine.switch_count(),
        first_stage_secs,
    }
}

fn legacy_explore_layer(profile: &KernelProfile, config: &DseConfig) -> Vec<DsePoint> {
    let dae_capable = matches!(profile.kind, LayerKind::Depthwise | LayerKind::Pointwise);
    let mut points = Vec::new();
    for &hfo in &config.modes.hfo {
        if dae_capable {
            for &g in &config.granularities {
                points.push(legacy_evaluate_point(profile, g, &hfo, config));
            }
        } else {
            points.push(legacy_evaluate_point(profile, Granularity(0), &hfo, config));
        }
    }
    points
}

fn legacy_execute_decisions(
    profiles: &[KernelProfile],
    decisions: &[LayerDecision],
    config: &DseConfig,
) -> (f64, Joules) {
    let first_hfo = SysclkConfig::Pll(decisions[0].point.hfo);
    let mut machine = Machine::new(first_hfo)
        .with_switch_model(config.switch_model)
        .with_power(config.power.clone());
    for (profile, decision) in profiles.iter().zip(decisions) {
        let hfo_cfg = SysclkConfig::Pll(decision.point.hfo);
        for seg in dae_segments(profile, decision.point.granularity, &config.cache) {
            match seg.class {
                SegmentClass::Memory => {
                    machine.switch_clock(config.modes.lfo);
                    machine.prepare_pll(decision.point.hfo);
                }
                SegmentClass::Compute | SegmentClass::Other => {
                    machine.switch_clock(hfo_cfg);
                }
            }
            machine.run_segment(&seg);
        }
    }
    (machine.elapsed_secs(), machine.energy())
}

const LEGACY_DP_RESOLUTION: usize = 2000;

/// The seed repository's `optimize`, verbatim modulo the fresh-lowering
/// helpers above.
fn legacy_optimize(model: &Model, qos_secs: f64, config: &DseConfig) -> DeploymentPlan {
    let profiles = legacy_lower(model);
    let idle_power = config.power.clock_gated_power.as_f64();

    let fronts: Vec<Vec<DsePoint>> = profiles
        .iter()
        .map(|p| pareto_front(legacy_explore_layer(p, config)))
        .collect();

    let classes: Vec<Vec<MckpItem>> = fronts
        .iter()
        .map(|front| {
            front
                .iter()
                .map(|pt| MckpItem {
                    time_secs: pt.latency_secs,
                    energy: pt.energy.as_f64() - idle_power * pt.latency_secs,
                })
                .collect()
        })
        .collect();

    let build_decisions = |choices: &[usize]| -> Vec<LayerDecision> {
        profiles
            .iter()
            .zip(&fronts)
            .zip(choices)
            .map(|((profile, front), &choice)| LayerDecision {
                name: profile.name.clone(),
                kind: profile.kind,
                point: front[choice].clone(),
            })
            .collect()
    };

    let min_time: f64 = classes
        .iter()
        .map(|c| c.iter().map(|i| i.time_secs).fold(f64::INFINITY, f64::min))
        .sum();
    let rounding_margin = 1.0 + (classes.len() + 1) as f64 / LEGACY_DP_RESOLUTION as f64;
    let reserve_cap = (qos_secs - min_time * rounding_margin).max(0.0);

    let window_energy =
        |latency: f64, energy: Joules| energy.as_f64() + idle_power * (qos_secs - latency);

    let mut best: Option<(f64, Vec<LayerDecision>, f64, Joules)> = None;
    let mut consider = |decisions: Vec<LayerDecision>, latency: f64, energy: Joules| {
        if latency <= qos_secs {
            let score = window_energy(latency, energy);
            if best.as_ref().is_none_or(|(s, ..)| score < *s) {
                best = Some((score, decisions, latency, energy));
            }
        }
    };

    let base = solve_dp(&classes, qos_secs, LEGACY_DP_RESOLUTION).expect("dp solves");
    let base_decisions = build_decisions(&base.choices);
    let (base_latency, base_energy) = legacy_execute_decisions(&profiles, &base_decisions, config);
    let overhead = (base_latency - base.total_time_secs).max(0.0);
    consider(base_decisions, base_latency, base_energy);

    let mut reserves: Vec<f64> = [0.5, 1.0, 1.5, 2.0, 3.0]
        .iter()
        .map(|k| (k * overhead).min(reserve_cap))
        .filter(|r| *r > 0.0)
        .collect();
    for frac in [0.1, 0.2, 0.3, 0.5, 0.7] {
        reserves.push(frac * reserve_cap);
    }
    reserves.push(reserve_cap);
    reserves.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    reserves.dedup();
    for reserve in reserves {
        let budget = qos_secs - reserve;
        if budget <= 0.0 {
            continue;
        }
        if let Ok(solution) = solve_dp(&classes, budget, LEGACY_DP_RESOLUTION) {
            let decisions = build_decisions(&solution.choices);
            let (latency, energy) = legacy_execute_decisions(&profiles, &decisions, config);
            consider(decisions, latency, energy);
        }
    }

    let fastest: Vec<usize> = fronts
        .iter()
        .map(|front| {
            front
                .iter()
                .enumerate()
                .min_by(|a, b| {
                    a.1.latency_secs
                        .partial_cmp(&b.1.latency_secs)
                        .expect("latencies are finite")
                })
                .map(|(i, _)| i)
                .expect("fronts are non-empty")
        })
        .collect();
    let decisions = build_decisions(&fastest);
    let (latency, energy) = legacy_execute_decisions(&profiles, &decisions, config);
    consider(decisions, latency, energy);

    let (_, decisions, latency, energy) = best.expect("paper QoS windows are feasible");
    DeploymentPlan {
        model: model.name.clone(),
        qos_secs,
        decisions,
        predicted_latency_secs: latency,
        predicted_energy: energy,
    }
}

fn legacy_optimize_sequence(model: &Model, qos_secs: f64, config: &DseConfig) -> DeploymentPlan {
    let profiles = legacy_lower(model);
    let idle_power = config.power.clock_gated_power.as_f64();
    let fronts: Vec<Vec<DsePoint>> = profiles
        .iter()
        .map(|p| pareto_front(legacy_explore_layer(p, config)))
        .collect();
    let solution = solve_sequence(&fronts, qos_secs, LEGACY_DP_RESOLUTION, config, idle_power)
        .expect("sequence DP solves");
    let decisions: Vec<LayerDecision> = profiles
        .iter()
        .zip(&fronts)
        .zip(&solution.choices)
        .map(|((profile, front), &choice)| LayerDecision {
            name: profile.name.clone(),
            kind: profile.kind,
            point: front[choice].clone(),
        })
        .collect();
    let (latency, energy) = legacy_execute_decisions(&profiles, &decisions, config);
    assert!(latency <= qos_secs, "legacy sequence plan must be feasible");
    DeploymentPlan {
        model: model.name.clone(),
        qos_secs,
        decisions,
        predicted_latency_secs: latency,
        predicted_energy: energy,
    }
}

// ---- the equivalence assertions ----------------------------------------

fn assert_plans_identical(new: &DeploymentPlan, old: &DeploymentPlan, context: &str) {
    assert_eq!(new.decisions, old.decisions, "{context}: decisions differ");
    assert!(
        (new.predicted_latency_secs - old.predicted_latency_secs).abs() <= 1e-12,
        "{context}: latency {} vs {}",
        new.predicted_latency_secs,
        old.predicted_latency_secs
    );
    assert!(
        (new.predicted_energy.as_f64() - old.predicted_energy.as_f64()).abs() <= 1e-12,
        "{context}: energy {} vs {}",
        new.predicted_energy,
        old.predicted_energy
    );
    assert_eq!(new.model, old.model);
    assert_eq!(new.qos_secs, old.qos_secs);
}

#[test]
fn planner_optimize_matches_pre_refactor_path_on_all_models() {
    let config = DseConfig::paper();
    let engine = TinyEngine::new();
    for model in tinynn::models::paper_models() {
        let baseline = engine.run(&model).expect("baseline runs").total_time_secs;
        // One planner amortizes the DSE across all three slacks; the
        // legacy path recomputes everything per call. The planner is built
        // through the new Target path, which `Planner::new` wraps — so
        // this single test pins legacy ≡ Planner::new ≡ for_target.
        let planner =
            Planner::for_target(Stm32F767Target::paper(), &model).expect("planner builds");
        for slack in [0.1, 0.3, 0.5] {
            let qos = qos_window(baseline, slack);
            let cached = planner.optimize(qos).expect("planner optimizes");
            let fresh = legacy_optimize(&model, qos, &config);
            assert_plans_identical(&cached, &fresh, &format!("{} @ {slack}", model.name));
        }
    }
}

#[test]
fn target_path_and_request_surface_match_legacy_free_functions() {
    // The full matrix the issue pins: VWW / person detection / MobileNet-V2
    // at slacks 0.1 / 0.3 / 0.5 — legacy free functions vs `Planner::new`
    // vs `Planner::for_target(Stm32F767Target::paper())` vs the typed
    // `PlanRequest` surface, all bit-identical.
    let config = DseConfig::paper();
    for model in tinynn::models::paper_models() {
        let via_new = Planner::new(&model, &config).expect("Planner::new builds");
        let via_target =
            Planner::for_target(Stm32F767Target::paper(), &model).expect("for_target builds");
        let baseline = via_target.baseline_latency().expect("baseline runs");
        for slack in [0.1, 0.3, 0.5] {
            let qos = qos_window(baseline, slack);
            let context = format!("{} @ {slack}", model.name);

            let wrapper = dae_dvfs::optimize(&model, qos, &config).expect("wrapper optimizes");
            let new_plan = via_new.optimize(qos).expect("new optimizes");
            let target_plan = via_target.optimize(qos).expect("target optimizes");
            let via_qos_request = via_target
                .plan(&PlanRequest::qos(qos))
                .expect("qos request solves");
            let via_slack_request = via_target
                .plan(&PlanRequest::slack(slack))
                .expect("slack request solves");
            assert_plans_identical(&new_plan, &wrapper, &context);
            assert_plans_identical(&target_plan, &wrapper, &context);
            assert_plans_identical(&via_qos_request, &wrapper, &context);
            assert_plans_identical(&via_slack_request, &wrapper, &context);

            // The deployment report agrees between wrapper and target path.
            let wrapper_report =
                dae_dvfs::deploy(&model, &wrapper, &config).expect("wrapper deploys");
            let target_report = via_target.deploy(&target_plan).expect("target deploys");
            assert_eq!(wrapper_report.inference_secs, target_report.inference_secs);
            assert_eq!(
                wrapper_report.total_energy.as_f64(),
                target_report.total_energy.as_f64()
            );

            // Sequence solver through the request surface.
            let seq_wrapper =
                dae_dvfs::optimize_sequence(&model, qos, &config).expect("seq wrapper");
            let seq_request = via_target
                .plan(&PlanRequest::qos(qos).with_solver(Solver::SequenceDp))
                .expect("seq request solves");
            assert_plans_identical(&seq_request, &seq_wrapper, &format!("seq {context}"));
        }
    }
}

#[test]
fn planner_sequence_matches_pre_refactor_path() {
    let config = DseConfig::paper();
    let model = tinynn::models::vww();
    let baseline = TinyEngine::new()
        .run(&model)
        .expect("baseline runs")
        .total_time_secs;
    let planner = Planner::new(&model, &config).expect("planner builds");
    for slack in [0.1, 0.3, 0.5] {
        let qos = qos_window(baseline, slack);
        let cached = planner
            .optimize_sequence(qos)
            .expect("planner seq-optimizes");
        let fresh = legacy_optimize_sequence(&model, qos, &config);
        assert_plans_identical(&cached, &fresh, &format!("seq vww @ {slack}"));
    }
}

#[test]
fn resweep_matches_sweep_bit_for_bit() {
    // The incremental entry point must be indistinguishable from a cold
    // sweep: after `sweep` primes the pooled workspace's checkpoints,
    // `resweep` answers the same windows from the retained table (or a
    // transparent full refill) with bit-identical plans — twice, so the
    // second call also exercises checkpoints written by `resweep` itself.
    let model = tinynn::models::vww_sized(32);
    let planner = Planner::for_target(Stm32F767Target::paper(), &model).expect("planner builds");
    let baseline = planner.baseline_latency().expect("baseline runs");
    let windows: Vec<f64> = [0.1, 0.25, 0.3, 0.5]
        .iter()
        .map(|&s| qos_window(baseline, s))
        .collect();
    let cold = planner.sweep(windows.clone()).expect("sweep solves");
    for round in 0..2 {
        let warm = planner.resweep(windows.clone()).expect("resweep solves");
        assert_eq!(warm, cold, "resweep round {round} diverged from sweep");
    }
}

#[test]
fn free_function_wrappers_match_planner() {
    // The thin wrappers construct a throw-away planner; spot-check they
    // agree with an explicitly shared one.
    let config = DseConfig::paper();
    let model = tinynn::models::vww();
    let planner = Planner::new(&model, &config).expect("planner builds");
    let qos = qos_window(planner.baseline_latency().expect("baseline"), 0.3);
    let via_wrapper = dae_dvfs::optimize(&model, qos, &config).expect("wrapper optimizes");
    let via_planner = planner.optimize(qos).expect("planner optimizes");
    assert_eq!(via_wrapper, via_planner);

    let deployed_wrapper =
        dae_dvfs::deploy(&model, &via_wrapper, &config).expect("wrapper deploys");
    let deployed_planner = planner.deploy(&via_planner).expect("planner deploys");
    assert_eq!(deployed_wrapper, deployed_planner);
}
