//! Property-based tests over the core invariants of every substrate.

use dae_dvfs::{
    dae_forward_depthwise, dae_forward_pointwise, dae_segments, mckp_resweep, mckp_sweep,
    pareto_front, sequence_resweep, sequence_sweep, solve_dp, solve_dp_sweep, solve_exhaustive,
    solve_sequence, solve_sequence_sweep, DseConfig, DsePoint, Granularity, MckpItem,
    OperatingModes, SolverWorkspace,
};
use mcu_sim::cache::{reuse_hit_ratio, Cache, CacheConfig};
use mcu_sim::{MemoryTiming, MemoryTraffic, OpCounts};
use proptest::prelude::*;
use stm32_power::{EnergyMeter, Joules, Watts};
use stm32_rcc::{flash_wait_states, ClockSource, Hertz, PllConfig};
use tinyengine::cost::UnitGeometry;
use tinyengine::KernelProfile;
use tinynn::layers::{DepthwiseConv2d, PointwiseConv2d};
use tinynn::models::synth;
use tinynn::quant::{QuantParams, QuantizedMultiplier};
use tinynn::{Shape, Tensor};

proptest! {
    // ---- stm32-rcc ------------------------------------------------------

    #[test]
    fn pll_construction_matches_eq1_or_rejects(
        hse_mhz in 1u64..=50,
        m in 1u32..=70,
        n in 40u32..=440,
        p_idx in 0usize..4,
    ) {
        let p = [2u32, 4, 6, 8][p_idx];
        let src = ClockSource::hse(Hertz::mhz(hse_mhz));
        match PllConfig::new(src, m, n, p) {
            Ok(cfg) => {
                // Eq. 1 holds exactly.
                let expected = hse_mhz * 1_000_000 * u64::from(n)
                    / (u64::from(m) * u64::from(p));
                prop_assert_eq!(cfg.sysclk().as_u64(), expected);
                // All datasheet windows hold.
                prop_assert!(cfg.vco_input() >= Hertz::mhz(1));
                prop_assert!(cfg.vco_input() <= Hertz::mhz(2));
                prop_assert!(cfg.vco_output() >= Hertz::mhz(100));
                prop_assert!(cfg.vco_output() <= Hertz::mhz(432));
                prop_assert!(cfg.sysclk() <= Hertz::mhz(216));
            }
            Err(_) => {
                // Rejection must correspond to a violated constraint.
                let vco_in = hse_mhz as f64 / f64::from(m);
                let vco_out = vco_in * f64::from(n);
                let sysclk = vco_out / f64::from(p);
                let valid = (2..=63).contains(&m)
                    && (50..=432).contains(&n)
                    && (1.0..=2.0).contains(&vco_in)
                    && (100.0..=432.0).contains(&vco_out)
                    && sysclk <= 216.0;
                prop_assert!(!valid, "valid config rejected: {m} {n} {p}");
            }
        }
    }

    #[test]
    fn flash_wait_states_monotone(a in 1u64..=216, b in 1u64..=216) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(
            flash_wait_states(Hertz::mhz(lo)) <= flash_wait_states(Hertz::mhz(hi))
        );
    }

    // ---- stm32-power ----------------------------------------------------

    #[test]
    fn energy_meter_is_additive(
        powers in prop::collection::vec(0.0f64..2.0, 1..20),
        durations in prop::collection::vec(0.0f64..1.0, 1..20),
    ) {
        let mut meter = EnergyMeter::new();
        let mut expected = 0.0;
        let mut time = 0.0;
        for (p, d) in powers.iter().zip(&durations) {
            meter.record("x", Watts::new(*p), *d);
            expected += p * d;
            time += d;
        }
        prop_assert!((meter.total_energy().as_f64() - expected).abs() < 1e-9);
        prop_assert!((meter.total_time() - time).abs() < 1e-9);
    }

    // ---- mcu-sim --------------------------------------------------------

    #[test]
    fn cache_hits_never_exceed_accesses(lines in prop::collection::vec(0u64..2000, 1..500)) {
        let mut cache = Cache::new(CacheConfig::stm32f767());
        for l in lines {
            cache.access_line(l);
        }
        let s = cache.stats();
        prop_assert_eq!(s.hits + s.misses, s.accesses());
        prop_assert!(s.hit_ratio() >= 0.0 && s.hit_ratio() <= 1.0);
    }

    #[test]
    fn reuse_ratio_bounded_and_monotone(ws1 in 1u64..1_000_000, ws2 in 1u64..1_000_000) {
        let cfg = CacheConfig::stm32f767();
        let (lo, hi) = if ws1 <= ws2 { (ws1, ws2) } else { (ws2, ws1) };
        let r_lo = reuse_hit_ratio(lo, &cfg);
        let r_hi = reuse_hit_ratio(hi, &cfg);
        prop_assert!((0.0..=1.0).contains(&r_lo));
        prop_assert!(r_hi <= r_lo);
    }

    #[test]
    fn memory_traffic_time_scales_down_with_frequency(
        hits in 0u64..10_000,
        sram in 0u64..10_000,
        flash in 0u64..10_000,
    ) {
        let t = MemoryTiming::stm32f767();
        let traffic = MemoryTraffic {
            cache_hits: hits,
            sram_line_fills: sram,
            flash_line_fills: flash,
            sram_uncached: 0,
        };
        let slow = traffic.time(&t, Hertz::mhz(50));
        let fast = traffic.time(&t, Hertz::mhz(216));
        prop_assert!(fast <= slow + 1e-15, "time must not increase with frequency");
    }

    // ---- quantization ---------------------------------------------------

    #[test]
    fn quantized_multiplier_close_to_float(value in 0.0001f64..0.9999, acc in -1_000_000i32..1_000_000) {
        let q = QuantizedMultiplier::from_f64(value);
        let exact = f64::from(acc) * value;
        let got = f64::from(q.apply(acc));
        prop_assert!((got - exact).abs() <= 1.0, "acc {acc} x {value}: {got} vs {exact}");
    }

    #[test]
    fn requantize_always_in_i8_range(acc in any::<i32>()) {
        let q = QuantParams::test_default();
        let v = q.requantize(acc);
        prop_assert!((-128..=127).contains(&i32::from(v)));
    }

    // ---- DAE functional equivalence --------------------------------------

    #[test]
    fn dae_depthwise_equivalence(
        channels in 1usize..12,
        h in 3usize..10,
        g in 1u8..20,
        seed in 0u64..1000,
    ) {
        let name = format!("prop-dw-{seed}");
        let q = QuantParams::from_scales(0.5, 0.05, 3.0);
        let dw = DepthwiseConv2d::new(
            3, 1, 1, channels,
            synth::weights(&name, channels * 9),
            synth::biases(&name, channels),
            q,
        ).expect("geometry consistent");
        let input = Tensor::from_fn(Shape::new(h, h, channels), |y, x, c| {
            (((y * 37 + x * 11 + c * 3 + seed as usize) % 251) as i32 - 125) as i8
        });
        let reference = dw.forward(&input).expect("forward");
        let dae = dae_forward_depthwise(&dw, &input, Granularity(g)).expect("dae");
        prop_assert_eq!(dae, reference);
    }

    #[test]
    fn dae_pointwise_equivalence(
        c_in in 1usize..10,
        c_out in 1usize..10,
        h in 2usize..8,
        g in 1u8..20,
        seed in 0u64..1000,
    ) {
        let name = format!("prop-pw-{seed}");
        let q = QuantParams::from_scales(0.5, 0.05, 3.0);
        let pw = PointwiseConv2d::new(
            c_in, c_out,
            synth::weights(&name, c_in * c_out),
            synth::biases(&name, c_out),
            q,
        ).expect("geometry consistent");
        let input = Tensor::from_fn(Shape::new(h, h, c_in), |y, x, c| {
            (((y * 53 + x * 7 + c * 13 + seed as usize) % 251) as i32 - 125) as i8
        });
        let reference = pw.forward(&input).expect("forward");
        let dae = dae_forward_pointwise(&pw, &input, Granularity(g)).expect("dae");
        prop_assert_eq!(dae, reference);
    }

    // ---- DAE scheduling invariants ---------------------------------------

    #[test]
    fn dae_segments_conserve_macs(
        units in 1u64..128,
        unit_bytes in 16u64..4096,
        macs_per_unit in 1u64..10_000,
        g_idx in 0usize..6,
    ) {
        let g = Granularity::PAPER_SET[g_idx];
        let profile = KernelProfile {
            name: "prop".into(),
            kind: tinynn::LayerKind::Depthwise,
            geometry: UnitGeometry::DepthwiseChannels {
                tensor_lines: (units * unit_bytes).div_ceil(32),
                tensor_bytes: units * unit_bytes,
            },
            units,
            unit_input_bytes: unit_bytes,
            unit_output_bytes: unit_bytes,
            unit_ops: OpCounts { mac: macs_per_unit, ..OpCounts::ZERO },
            weight_walk_ops: OpCounts::ZERO,
            baseline_unroll: 1,
            weight_bytes: 9 * units,
        };
        let cache = CacheConfig::stm32f767();
        let total: u64 = dae_segments(&profile, g, &cache)
            .iter()
            .map(|s| s.ops.mac)
            .sum();
        prop_assert_eq!(total, units * macs_per_unit);
    }

    // ---- Pareto + MCKP ----------------------------------------------------

    #[test]
    fn pareto_front_is_nondominated_and_complete(
        points in prop::collection::vec((1u64..1000, 1u64..1000), 1..60),
    ) {
        let pll = PllConfig::new(ClockSource::hse(Hertz::mhz(50)), 25, 216, 2)
            .expect("valid reference PLL");
        let input: Vec<DsePoint> = points
            .iter()
            .map(|&(t, e)| DsePoint {
                granularity: Granularity(0),
                hfo: pll,
                latency_secs: t as f64 * 1e-3,
                energy: Joules::new(e as f64 * 1e-3),
                switches: 0,
                first_stage_secs: 0.0,
            })
            .collect();
        let front = pareto_front(input.clone());
        prop_assert!(!front.is_empty());
        // 1. Mutually non-dominated, sorted.
        for w in front.windows(2) {
            prop_assert!(w[0].latency_secs < w[1].latency_secs);
            prop_assert!(w[0].energy > w[1].energy);
        }
        // 2. Complete: every input point is dominated-or-equal by some
        // front member.
        for p in &input {
            prop_assert!(front.iter().any(|f| f.latency_secs <= p.latency_secs
                && f.energy <= p.energy));
        }
    }

    #[test]
    fn mckp_dp_feasible_and_near_optimal(
        class_sizes in prop::collection::vec(1usize..5, 1..6),
        seed in 0u64..500,
    ) {
        let mut rng = synth::SplitMix64::new(seed);
        let classes: Vec<Vec<MckpItem>> = class_sizes
            .iter()
            .map(|&n| {
                (0..n)
                    .map(|_| MckpItem {
                        time_secs: (rng.next_u64() % 1000 + 1) as f64 * 1e-3,
                        energy: (rng.next_u64() % 1000 + 1) as f64 * 1e-3,
                    })
                    .collect()
            })
            .collect();
        let min_time: f64 = classes
            .iter()
            .map(|c| c.iter().map(|i| i.time_secs).fold(f64::INFINITY, f64::min))
            .sum();
        let budget = min_time * 1.7 + 0.01;
        let resolution = 4000;
        let dp = solve_dp(&classes, budget, resolution).expect("feasible by construction");
        prop_assert!(dp.total_time_secs <= budget + 1e-9, "DP result must be feasible");
        // Optimality within the discretization bound.
        let slack = classes.len() as f64 * budget / resolution as f64;
        if budget - slack > min_time {
            let ex = solve_exhaustive(&classes, budget - slack).expect("feasible");
            prop_assert!(dp.total_energy <= ex.total_energy + 1e-9);
        }
    }

    // ---- solver core: multi-budget sweeps --------------------------------

    #[test]
    fn dp_sweep_matches_per_call_within_discretization_bound(
        class_sizes in prop::collection::vec(1usize..5, 1..5),
        seed in 0u64..300,
        budget_factors in prop::collection::vec(10u64..200, 1..5),
        resolution in 100usize..500,
        edge_bucket in 0usize..300,
    ) {
        let mut rng = synth::SplitMix64::new(seed);
        let classes: Vec<Vec<MckpItem>> = class_sizes
            .iter()
            .map(|&n| {
                (0..n)
                    .map(|_| MckpItem {
                        time_secs: (rng.next_u64() % 1000 + 1) as f64 * 1e-3,
                        energy: (rng.next_u64() % 1000 + 1) as f64 * 1e-3,
                    })
                    .collect()
            })
            .collect();
        let min_time: f64 = classes
            .iter()
            .map(|c| c.iter().map(|i| i.time_secs).fold(f64::INFINITY, f64::min))
            .sum();
        // Budgets ≥ 1.1 × the feasibility floor so ceil-rounding cannot
        // push the fastest selection past any budget at these resolutions.
        let mut budgets: Vec<f64> = budget_factors
            .iter()
            .map(|&f| min_time * (1.1 + f as f64 * 1e-2))
            .collect();
        // One budget sitting *exactly* on a bucket edge of the shared
        // grid: the grid's scale depends only on the smallest budget, so
        // appending a larger edge-aligned budget leaves the scale intact.
        let scale = budgets.iter().cloned().fold(f64::INFINITY, f64::min) / resolution as f64;
        budgets.push(scale * (resolution + edge_bucket) as f64);

        let swept = solve_dp_sweep(&classes, &budgets, resolution).expect("batch is valid");
        prop_assert_eq!(swept.len(), budgets.len());
        for (sol, &budget) in swept.iter().zip(&budgets) {
            let sol = sol.as_ref().expect("feasible by construction");
            let per_call = solve_dp(&classes, budget, resolution).expect("feasible");
            // Feasible in real time (up to the solver's float rounding).
            prop_assert!(sol.total_time_secs <= budget * (1.0 + 1e-9) + 1e-12);
            // Both answers lie in [OPT(B), OPT(B − n·B/resolution)] — the
            // per-call grid is the coarser of the two.
            let slack = classes.len() as f64 * budget / resolution as f64;
            let opt = solve_exhaustive(&classes, budget).expect("feasible");
            prop_assert!(sol.total_energy >= opt.total_energy - 1e-9);
            prop_assert!(per_call.total_energy >= opt.total_energy - 1e-9);
            if budget - slack > min_time {
                let opt_tight = solve_exhaustive(&classes, budget - slack).expect("feasible");
                prop_assert!(
                    sol.total_energy <= opt_tight.total_energy + 1e-9,
                    "sweep {} worse than shrunken-budget optimum {}",
                    sol.total_energy,
                    opt_tight.total_energy
                );
                prop_assert!(per_call.total_energy <= opt_tight.total_energy + 1e-9);
            }
        }
    }

    // ---- incremental re-solve ≡ full refill ------------------------------

    #[test]
    fn mckp_resweep_after_mutation_matches_full_refill_bit_for_bit(
        class_sizes in prop::collection::vec(1usize..5, 2..6),
        seed in 0u64..500,
        budget_factors in prop::collection::vec(10u64..200, 1..4),
        resolution in 200usize..800,
        class_idx in 0usize..8,
        mutation in 0usize..5,
    ) {
        let mut rng = synth::SplitMix64::new(seed);
        let mut classes: Vec<Vec<MckpItem>> = class_sizes
            .iter()
            .map(|&n| {
                (0..n)
                    .map(|_| MckpItem {
                        time_secs: (rng.next_u64() % 1000 + 1) as f64 * 1e-3,
                        energy: (rng.next_u64() % 1000 + 1) as f64 * 1e-3,
                    })
                    .collect()
            })
            .collect();
        let min_time: f64 = classes
            .iter()
            .map(|c| c.iter().map(|i| i.time_secs).fold(f64::INFINITY, f64::min))
            .sum();
        let budgets: Vec<f64> = budget_factors
            .iter()
            .map(|&f| min_time * (1.1 + f as f64 * 1e-2))
            .collect();

        // Prime the workspace checkpoints with a full fill of the base
        // instance, remembering the exact shared-grid scale.
        let mut ws = SolverWorkspace::new();
        let scale = mckp_sweep(&classes, &budgets, resolution, &mut ws)
            .expect("base sweep is valid")
            .scale();

        // One mutation confined to class `j`.
        let nclasses = classes.len();
        let j = class_idx % nclasses;
        match mutation {
            0 => classes[j][0].energy += 0.373e-3,
            // Push the quantized weight across at least two bucket
            // boundaries of the (unchanged) shared grid:
            // ceil((t + 2·scale)/scale) ≥ ceil(t/scale) + 2.
            1 => classes[j][0].time_secs += 2.0 * scale,
            2 => {
                // Class shrink (energy nudge when already a singleton).
                if classes[j].len() > 1 {
                    classes[j].pop();
                } else {
                    classes[j][0].energy += 0.211e-3;
                }
            }
            3 => classes[j].push(MckpItem {
                time_secs: (rng.next_u64() % 1000 + 1) as f64 * 1e-3,
                energy: (rng.next_u64() % 1000 + 1) as f64 * 1e-3,
            }),
            _ => {} // no drift at all
        }

        // Incremental re-solve on the warm workspace vs a cold full fill.
        let mut scratch = SolverWorkspace::new();
        let warm = mckp_resweep(&classes, &budgets, resolution, &mut ws)
            .expect("resweep is valid");
        let cold = mckp_sweep(&classes, &budgets, resolution, &mut scratch)
            .expect("scratch sweep is valid");

        // Incremental cost bound: only the suffix from the mutated class
        // on refills (nothing at all when nothing drifted).
        if mutation == 4 {
            prop_assert_eq!(warm.refilled_classes(), 0);
        } else {
            prop_assert!(
                warm.refilled_classes() <= nclasses - j,
                "mutating class {} of {} refilled {} classes",
                j,
                nclasses,
                warm.refilled_classes()
            );
        }

        for &budget in &budgets {
            match (warm.best_for(budget), cold.best_for(budget)) {
                (Ok(inc), Ok(full)) => {
                    prop_assert_eq!(&inc.choices, &full.choices);
                    prop_assert_eq!(
                        inc.total_time_secs.to_bits(),
                        full.total_time_secs.to_bits()
                    );
                    prop_assert_eq!(
                        inc.total_energy.to_bits(),
                        full.total_energy.to_bits()
                    );
                }
                (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
                (a, b) => prop_assert!(false, "warm {a:?} vs cold {b:?} disagree"),
            }
        }
    }

    #[test]
    fn sequence_resweep_after_mutation_matches_full_refill_bit_for_bit(
        layer_specs in prop::collection::vec(
            prop::collection::vec((1u64..40, 1u64..40, 0usize..3, 0u64..3), 1..3),
            1..4,
        ),
        budget_factors in prop::collection::vec(0u64..150, 1..4),
        layer_idx in 0usize..8,
        mutation in 0usize..5,
    ) {
        let config = DseConfig::paper();
        let modes = OperatingModes::fig4();
        let mhz = [100u64, 168, 216];
        let mut fronts: Vec<Vec<DsePoint>> = layer_specs
            .iter()
            .map(|items| {
                items
                    .iter()
                    .map(|&(t, e, f_idx, stage)| DsePoint {
                        granularity: Granularity(if stage > 0 { 8 } else { 0 }),
                        hfo: *modes
                            .hfo_at(stm32_rcc::Hertz::mhz(mhz[f_idx]))
                            .expect("ladder frequency"),
                        latency_secs: t as f64 * 1e-4,
                        energy: Joules::new(e as f64 * 1e-5),
                        switches: 0,
                        first_stage_secs: stage as f64 * 1e-4,
                    })
                    .collect()
            })
            .collect();
        let min_time: f64 = fronts
            .iter()
            .map(|f| f.iter().map(|p| p.latency_secs).fold(f64::INFINITY, f64::min))
            .sum();
        let budgets: Vec<f64> = budget_factors
            .iter()
            .map(|&f| min_time * (1.5 + f as f64 * 1e-2) + fronts.len() as f64 * 250e-6)
            .collect();
        let resolution = 4000;

        let mut ws = SolverWorkspace::new();
        let scale = sequence_sweep(&fronts, &budgets, resolution, &config, 0.0, &mut ws)
            .expect("base sweep is valid")
            .scale();

        let nlayers = fronts.len();
        let j = layer_idx % nlayers;
        match mutation {
            0 => {
                let e = fronts[j][0].energy.as_f64();
                fronts[j][0].energy = Joules::new(e + 0.173e-4);
            }
            // Latency drift crossing bucket boundaries of the shared grid.
            1 => fronts[j][0].latency_secs += 2.0 * scale,
            2 => {
                // Front shrink (energy nudge when already a singleton).
                // Popping may remove a frequency from the universe, which
                // invalidates all checkpoints — still bit-identical.
                if fronts[j].len() > 1 {
                    fronts[j].pop();
                } else {
                    let e = fronts[j][0].energy.as_f64();
                    fronts[j][0].energy = Joules::new(e + 0.211e-4);
                }
            }
            3 => {
                let f = mhz[layer_idx % mhz.len()];
                fronts[j].push(DsePoint {
                    granularity: Granularity(8),
                    hfo: *modes
                        .hfo_at(stm32_rcc::Hertz::mhz(f))
                        .expect("ladder frequency"),
                    latency_secs: 17e-4,
                    energy: Joules::new(13e-5),
                    switches: 0,
                    first_stage_secs: 1e-4,
                });
            }
            _ => {} // no drift at all
        }

        let mut scratch = SolverWorkspace::new();
        let warm = sequence_resweep(&fronts, &budgets, resolution, &config, 0.0, &mut ws)
            .expect("resweep is valid");
        let cold = sequence_sweep(&fronts, &budgets, resolution, &config, 0.0, &mut scratch)
            .expect("scratch sweep is valid");

        // Value/latency drifts keep the frequency universe intact, so the
        // refill bound holds; shrink/grow may invalidate the universe and
        // only promise bit-identity.
        if mutation == 4 {
            prop_assert_eq!(warm.refilled_layers(), 0);
        } else if mutation < 2 {
            prop_assert!(
                warm.refilled_layers() <= nlayers - j,
                "mutating layer {} of {} refilled {} layers",
                j,
                nlayers,
                warm.refilled_layers()
            );
        }

        for &budget in &budgets {
            match (warm.best_for(budget), cold.best_for(budget)) {
                (Ok(inc), Ok(full)) => {
                    prop_assert_eq!(&inc.choices, &full.choices);
                    prop_assert_eq!(
                        inc.total_time_secs.to_bits(),
                        full.total_time_secs.to_bits()
                    );
                    prop_assert_eq!(
                        inc.total_energy.to_bits(),
                        full.total_energy.to_bits()
                    );
                    prop_assert_eq!(inc.frequency_changes, full.frequency_changes);
                }
                (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
                (a, b) => prop_assert!(false, "warm {a:?} vs cold {b:?} disagree"),
            }
        }
    }
}

/// Brute-force sequence cost of a choice vector: per-item latency/energy
/// plus a full entry overhead whenever consecutive HFO frequencies differ
/// (matching `seqdp`'s cost model with relock time reduced by the item's
/// first staging segment).
fn sequence_cost(fronts: &[Vec<DsePoint>], choices: &[usize], config: &DseConfig) -> (f64, f64) {
    let relock = config.switch_model.pll_relock_secs();
    let mut t = 0.0;
    let mut e = 0.0;
    let mut prev: Option<stm32_rcc::Hertz> = None;
    for (front, &c) in fronts.iter().zip(choices) {
        let p = &front[c];
        t += p.latency_secs;
        e += p.energy.as_f64();
        if let Some(pf) = prev {
            if pf != p.hfo.sysclk() {
                let o = (relock - p.first_stage_secs).max(0.0);
                t += o;
                let stall_power = config.power.power(&stm32_power::PowerState::RunWarmPll {
                    sysclk: config.modes.lfo,
                    warm_pll: p.hfo,
                });
                e += stall_power.as_f64() * o;
            }
        }
        prev = Some(p.hfo.sysclk());
    }
    (t, e)
}

proptest! {
    #[test]
    fn sequence_dp_matches_brute_force_on_tiny_instances(
        layer_specs in prop::collection::vec(
            prop::collection::vec((1u64..40, 1u64..40, 0usize..3, 0u64..3), 1..3),
            1..4,
        ),
    ) {
        let config = DseConfig::paper();
        let modes = OperatingModes::fig4();
        let mhz = [100u64, 168, 216];
        let fronts: Vec<Vec<DsePoint>> = layer_specs
            .iter()
            .map(|items| {
                items
                    .iter()
                    .map(|&(t, e, f_idx, stage)| DsePoint {
                        granularity: Granularity(if stage > 0 { 8 } else { 0 }),
                        hfo: *modes
                            .hfo_at(stm32_rcc::Hertz::mhz(mhz[f_idx]))
                            .expect("ladder frequency"),
                        latency_secs: t as f64 * 1e-4,
                        energy: Joules::new(e as f64 * 1e-5),
                        switches: 0,
                        first_stage_secs: stage as f64 * 1e-4,
                    })
                    .collect()
            })
            .collect();
        let min_time: f64 = fronts
            .iter()
            .map(|f| f.iter().map(|p| p.latency_secs).fold(f64::INFINITY, f64::min))
            .sum();
        let budget = min_time * 2.0 + fronts.len() as f64 * 250e-6;

        // Brute force over all choice vectors, minimizing the same
        // window-adjusted objective (idle power 0 keeps it simple).
        let mut best: Option<f64> = None;
        let mut choices = vec![0usize; fronts.len()];
        'outer: loop {
            let (t, e) = sequence_cost(&fronts, &choices, &config);
            if t <= budget && best.is_none_or(|b| e < b) {
                best = Some(e);
            }
            let mut k = 0;
            loop {
                if k == fronts.len() {
                    break 'outer;
                }
                choices[k] += 1;
                if choices[k] < fronts[k].len() {
                    break;
                }
                choices[k] = 0;
                k += 1;
            }
        }

        let dp = solve_sequence(&fronts, budget, 8000, &config, 0.0);
        match (best, dp) {
            (Some(opt), Ok(sol)) => {
                prop_assert!(sol.total_time_secs <= budget + 1e-9);
                // DP is optimal up to discretization (ceil-rounding may
                // exclude boundary selections, never admit worse ones
                // below the optimum).
                prop_assert!(
                    sol.total_energy >= opt - 1e-12,
                    "DP beat brute force: {} < {opt}",
                    sol.total_energy
                );
                let slack = (fronts.len() + 1) as f64 * budget / 8000.0;
                // Re-check: brute force restricted to the shrunken budget.
                let mut shrunk: Option<f64> = None;
                let mut ch = vec![0usize; fronts.len()];
                'o2: loop {
                    let (t, e) = sequence_cost(&fronts, &ch, &config);
                    if t <= budget - slack && shrunk.is_none_or(|b| e < b) {
                        shrunk = Some(e);
                    }
                    let mut k = 0;
                    loop {
                        if k == fronts.len() {
                            break 'o2;
                        }
                        ch[k] += 1;
                        if ch[k] < fronts[k].len() {
                            break;
                        }
                        ch[k] = 0;
                        k += 1;
                    }
                }
                if let Some(s) = shrunk {
                    prop_assert!(
                        sol.total_energy <= s + 1e-9,
                        "DP {} worse than shrunken-budget optimum {s}",
                        sol.total_energy
                    );
                }
            }
            (None, Err(_)) => {} // both infeasible: consistent
            (Some(_), Err(e)) => {
                // The DP may miss boundary-exact selections; only fail if
                // the brute-force optimum had real slack.
                let (t, _) = {
                    // recompute best-time selection
                    let mut bt = f64::INFINITY;
                    let mut ch = vec![0usize; fronts.len()];
                    'o3: loop {
                        let (t, _) = sequence_cost(&fronts, &ch, &config);
                        bt = bt.min(t);
                        let mut k = 0;
                        loop {
                            if k == fronts.len() {
                                break 'o3;
                            }
                            ch[k] += 1;
                            if ch[k] < fronts[k].len() {
                                break;
                            }
                            ch[k] = 0;
                            k += 1;
                        }
                    }
                    (bt, 0.0)
                };
                let margin = (fronts.len() + 1) as f64 * budget / 8000.0;
                prop_assert!(
                    t > budget - margin,
                    "DP infeasible ({e}) though brute force fits with slack: {t} vs {budget}"
                );
            }
            (None, Ok(sol)) => {
                prop_assert!(false, "DP found {sol:?} where brute force found nothing");
            }
        }
    }

    #[test]
    fn sequence_sweep_matches_per_call_within_discretization_bound(
        layer_specs in prop::collection::vec(
            prop::collection::vec((1u64..40, 1u64..40, 0usize..3, 0u64..3), 1..3),
            1..4,
        ),
        budget_factors in prop::collection::vec(0u64..150, 1..4),
    ) {
        let config = DseConfig::paper();
        let modes = OperatingModes::fig4();
        let mhz = [100u64, 168, 216];
        let fronts: Vec<Vec<DsePoint>> = layer_specs
            .iter()
            .map(|items| {
                items
                    .iter()
                    .map(|&(t, e, f_idx, stage)| DsePoint {
                        granularity: Granularity(if stage > 0 { 8 } else { 0 }),
                        hfo: *modes
                            .hfo_at(stm32_rcc::Hertz::mhz(mhz[f_idx]))
                            .expect("ladder frequency"),
                        latency_secs: t as f64 * 1e-4,
                        energy: Joules::new(e as f64 * 1e-5),
                        switches: 0,
                        first_stage_secs: stage as f64 * 1e-4,
                    })
                    .collect()
            })
            .collect();
        let min_time: f64 = fronts
            .iter()
            .map(|f| f.iter().map(|p| p.latency_secs).fold(f64::INFINITY, f64::min))
            .sum();
        // Every budget clears the all-fastest schedule including a full
        // re-lock at every boundary, so per-call and sweep are both
        // feasible by construction.
        let budgets: Vec<f64> = budget_factors
            .iter()
            .map(|&f| min_time * (1.5 + f as f64 * 1e-2) + fronts.len() as f64 * 250e-6)
            .collect();
        let resolution = 4000;

        let swept = solve_sequence_sweep(&fronts, &budgets, resolution, &config, 0.0)
            .expect("batch is valid");
        for (sol, &budget) in swept.iter().zip(&budgets) {
            let sol = sol.as_ref().expect("feasible by construction");
            let per_call =
                solve_sequence(&fronts, budget, resolution, &config, 0.0).expect("feasible");
            prop_assert!(sol.total_time_secs <= budget * (1.0 + 1e-9) + 1e-12);
            // Both lie in [OPT(B), OPT(B − (n+1)·B/resolution)] of the
            // exact sequence objective (idle power 0 ⇒ objective = raw
            // energy), pinned by brute force over all choice vectors.
            let mut opt: Option<f64> = None;
            let mut opt_tight: Option<f64> = None;
            let slack = (fronts.len() + 1) as f64 * budget / resolution as f64;
            let mut ch = vec![0usize; fronts.len()];
            'bf: loop {
                let (t, e) = sequence_cost(&fronts, &ch, &config);
                if t <= budget && opt.is_none_or(|b| e < b) {
                    opt = Some(e);
                }
                if t <= budget - slack && opt_tight.is_none_or(|b| e < b) {
                    opt_tight = Some(e);
                }
                let mut k = 0;
                loop {
                    if k == fronts.len() {
                        break 'bf;
                    }
                    ch[k] += 1;
                    if ch[k] < fronts[k].len() {
                        break;
                    }
                    ch[k] = 0;
                    k += 1;
                }
            }
            let opt = opt.expect("feasible by construction");
            prop_assert!(sol.total_energy >= opt - 1e-12);
            prop_assert!(per_call.total_energy >= opt - 1e-12);
            if let Some(tight) = opt_tight {
                prop_assert!(
                    sol.total_energy <= tight + 1e-9,
                    "sweep {} worse than shrunken-budget optimum {tight}",
                    sol.total_energy
                );
                prop_assert!(per_call.total_energy <= tight + 1e-9);
            }
        }
    }
}

// ---- plan artifacts ---------------------------------------------------

/// Composes an awkward but finite f64 from integer raw material:
/// `mantissa × 10^(exp-20)`, covering sub-microsecond latencies up to
/// astronomically scaled values, none of them round decimals.
fn tricky_f64(mantissa: u64, exp: usize) -> f64 {
    (mantissa as f64) * 10f64.powi(exp as i32 - 20)
}

proptest! {
    #[test]
    fn plan_artifact_json_round_trip_is_bit_identical(
        layer_specs in prop::collection::vec(
            (1u64..(1u64 << 53), 0usize..40, 0u64..(1u64 << 50), 0usize..6, 0usize..3, 0u64..1000),
            1..12,
        ),
        qos_mantissa in 1u64..(1u64 << 53),
        model_fp in any::<i32>(),
        config_fp in any::<i32>(),
    ) {
        use dae_dvfs::{DeploymentPlan, LayerDecision, PlanArtifact};
        use tinynn::LayerKind;

        let modes = OperatingModes::paper();
        let kinds = [LayerKind::Depthwise, LayerKind::Pointwise, LayerKind::Rest];
        let decisions: Vec<LayerDecision> = layer_specs
            .iter()
            .enumerate()
            .map(|(i, &(lat_m, lat_e, energy_m, g_idx, kind_idx, switches))| {
                LayerDecision {
                    name: format!("layer-{i} \"odd\\name\""),
                    kind: kinds[kind_idx],
                    point: DsePoint {
                        granularity: Granularity::PAPER_SET[g_idx],
                        hfo: modes.hfo[i % modes.hfo.len()],
                        latency_secs: tricky_f64(lat_m, lat_e),
                        energy: Joules::new(tricky_f64(energy_m, lat_e % 25)),
                        switches,
                        first_stage_secs: tricky_f64(lat_m / 7 + 1, lat_e / 2),
                    },
                }
            })
            .collect();
        let plan = DeploymentPlan {
            model: "prop-model-π".into(),
            qos_secs: tricky_f64(qos_mantissa, 21),
            predicted_latency_secs: decisions.iter().map(|d| d.point.latency_secs).sum(),
            predicted_energy: Joules::new(
                decisions.iter().map(|d| d.point.energy.as_f64()).sum(),
            ),
            decisions,
        };

        let artifact = PlanArtifact::from_plan(
            &plan,
            "prop-target",
            model_fp as u32 as u64,
            config_fp as u32 as u64,
        );
        let json = artifact.to_json();
        let parsed = PlanArtifact::from_json(&json).expect("artifact JSON parses back");
        prop_assert_eq!(&parsed, &artifact);

        let back = parsed.to_plan_unchecked().expect("artifact decodes");
        prop_assert_eq!(&back.model, &plan.model);
        prop_assert_eq!(back.qos_secs.to_bits(), plan.qos_secs.to_bits());
        prop_assert_eq!(
            back.predicted_latency_secs.to_bits(),
            plan.predicted_latency_secs.to_bits()
        );
        prop_assert_eq!(
            back.predicted_energy.as_f64().to_bits(),
            plan.predicted_energy.as_f64().to_bits()
        );
        prop_assert_eq!(back.decisions.len(), plan.decisions.len());
        for (b, a) in back.decisions.iter().zip(&plan.decisions) {
            prop_assert_eq!(b, a);
            // PartialEq admits -0.0 == 0.0; pin the exact bits too.
            prop_assert_eq!(
                b.point.latency_secs.to_bits(),
                a.point.latency_secs.to_bits()
            );
            prop_assert_eq!(
                b.point.energy.as_f64().to_bits(),
                a.point.energy.as_f64().to_bits()
            );
            prop_assert_eq!(
                b.point.first_stage_secs.to_bits(),
                a.point.first_stage_secs.to_bits()
            );
        }
    }
}

// ---- compiled schedule cache -----------------------------------------

proptest! {
    #[test]
    fn compiled_schedules_match_fresh_lowering(
        g in 0u8..=24,
        size_kb_idx in 0usize..5,
        ways_idx in 0usize..3,
        layer_idx in 0usize..32,
    ) {
        use dae_dvfs::CompiledLayer;

        let cache = CacheConfig {
            size_bytes: [4u32, 8, 16, 32, 64][size_kb_idx] * 1024,
            line_bytes: 32,
            ways: [2u32, 4, 8][ways_idx],
        };
        let mut config = DseConfig::paper();
        config.cache = cache;
        // Make the arbitrary granularity part of the compiled universe.
        let g = Granularity(g);
        if !config.granularities.contains(&g) {
            config.granularities.push(g);
        }

        let model = tinynn::models::vww_sized(32);
        let plan = model.plan().expect("plan resolves");
        let profiles: Vec<KernelProfile> = model
            .layers()
            .zip(plan.iter())
            .map(|(nl, info)| tinyengine::layer_profile(&nl.layer, info))
            .collect();
        let profile = &profiles[layer_idx % profiles.len()];

        let compiled = CompiledLayer::compile(profile.clone(), &config);
        let fresh = dae_segments(profile, g, &cache);
        if profile.dae_capable() {
            // In the compiled universe: cached slice must equal the fresh
            // lowering element-wise.
            let cached = compiled.schedule(g).expect("g was added to the universe");
            prop_assert_eq!(cached.as_ref(), fresh.as_slice());
        } else {
            // Rest layers only compile the baseline schedule; the fallback
            // path must still agree with a fresh lowering.
            prop_assert!(compiled.schedule(Granularity(0)).is_some());
        }
        let via_fallback = compiled.schedule_for(g, &cache);
        prop_assert_eq!(via_fallback.as_ref(), fresh.as_slice());
    }
}

// ---- serving byte-identity -------------------------------------------

/// The one planner shared by every case of the serving byte-identity
/// property: planner construction dominates the per-case cost, and the
/// property is about the serving paths, not the planner.
fn serving_planner() -> std::sync::Arc<dae_dvfs::Planner> {
    use std::sync::{Arc, OnceLock};
    static PLANNER: OnceLock<Arc<dae_dvfs::Planner>> = OnceLock::new();
    PLANNER
        .get_or_init(|| {
            let model = tinynn::models::vww_sized(32);
            Arc::new(
                dae_dvfs::Planner::for_target(dae_dvfs::Stm32F767Target::paper(), &model)
                    .expect("planner builds"),
            )
        })
        .clone()
}

proptest! {
    /// Every way the service can answer — post-solve write-through,
    /// warm in-memory hit on the inline fast path, and a registry load
    /// after a restart — must hand back cached bytes identical to a
    /// fresh `DeploymentPlan::to_artifact(..).to_json()` rendering of
    /// the plan it carries. This is the zero-serialization contract:
    /// the bytes rendered once at solve time *are* the canonical
    /// serialization, not an approximation of it.
    #[test]
    fn served_bytes_are_the_fresh_artifact_rendering_on_every_path(
        steps in prop::collection::vec(2u8..19, 1..4),
    ) {
        use std::sync::atomic::{AtomicU64, Ordering};
        use dae_dvfs::{PlanRegistry, PlanRequest, PlanService, ServedPlan, ServiceConfig};

        // Each case spins up two services and a real on-disk registry;
        // six sampled inputs cover the property, 128 would just burn CI.
        static CASE: AtomicU64 = AtomicU64::new(0);
        let case = CASE.fetch_add(1, Ordering::Relaxed);
        if case >= 6 {
            return;
        }
        let planner = serving_planner();
        let requests: Vec<PlanRequest> = steps
            .iter()
            .map(|&s| PlanRequest::slack(0.05 * f64::from(s)))
            .collect();
        let dir = std::env::temp_dir().join(format!(
            "dae-dvfs-prop-{}-{case}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let fresh = |served: &ServedPlan| served.plan().to_artifact(&planner).to_json().into_bytes();

        // First life: cold solves (the write-through path) and warm
        // repeats (the inline fast path).
        let mut service = PlanService::new(ServiceConfig::default()).expect("config validates");
        let key = service.register(planner.clone());
        service
            .attach_registry(PlanRegistry::open(&dir).expect("registry opens"))
            .expect("empty registry validates");
        let cold_bytes = service.run(|svc| {
            let cold: Vec<ServedPlan> = requests
                .iter()
                .map(|r| svc.plan_served(key, r).expect("cold request solves"))
                .collect();
            for served in &cold {
                prop_assert_eq!(&**served.bytes(), fresh(served).as_slice());
            }
            for (request, cold) in requests.iter().zip(&cold) {
                let hit = svc.plan_served(key, request).expect("warm hit answers");
                prop_assert_eq!(hit.bytes(), cold.bytes());
                prop_assert_eq!(&**hit.bytes(), fresh(&hit).as_slice());
            }
            cold.iter().map(|s| s.bytes().to_vec()).collect::<Vec<_>>()
        });

        // Second life: the LRU is gone, only the registry carries state.
        // Every answer must come off disk — and still render identically.
        let mut reopened = PlanService::new(ServiceConfig::default()).expect("config validates");
        let key = reopened.register(planner.clone());
        reopened
            .attach_registry(PlanRegistry::open(&dir).expect("registry reopens"))
            .expect("written artifacts re-validate");
        reopened.run(|svc| {
            for (request, cold) in requests.iter().zip(&cold_bytes) {
                let loaded = svc.plan_served(key, request).expect("registry hit answers");
                prop_assert_eq!(&**loaded.bytes(), cold.as_slice());
                prop_assert_eq!(&**loaded.bytes(), fresh(&loaded).as_slice());
            }
        });
        prop_assert_eq!(
            reopened.stats().batches,
            0,
            "the reopened service must answer from the registry, not solve"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

// ---- receipt plan-hash stability -------------------------------------

proptest! {
    /// A receipt's `plan_hash` is a bit-identity pin: on every serving
    /// path — cold solve, warm in-memory hit, registry load after a
    /// restart — it must equal both the FNV-1a of the bytes actually
    /// served *and* the FNV-1a of a fresh
    /// `DeploymentPlan::to_artifact(..).to_json()` rendering of the plan
    /// those bytes carry. Together with the byte-identity property above
    /// this pins the receipt contract: for one canonical request, every
    /// path, restart and machine reports one hash.
    #[test]
    fn receipt_plan_hash_pins_the_served_bytes_on_every_path(
        steps in prop::collection::vec(2u8..19, 1..4),
    ) {
        use std::sync::atomic::{AtomicU64, Ordering};
        use dae_dvfs::{obs, PlanRegistry, PlanRequest, PlanService, ServedPlan, ServiceConfig};

        // Same budget rationale as the byte-identity property: each case
        // spins up two services and an on-disk registry.
        static CASE: AtomicU64 = AtomicU64::new(0);
        let case = CASE.fetch_add(1, Ordering::Relaxed);
        if case >= 6 {
            return;
        }
        let planner = serving_planner();
        let requests: Vec<PlanRequest> = steps
            .iter()
            .map(|&s| PlanRequest::slack(0.05 * f64::from(s)))
            .collect();
        let dir = std::env::temp_dir().join(format!(
            "dae-dvfs-receipt-prop-{}-{case}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let fresh_hash = |served: &ServedPlan| {
            obs::plan_hash(served.plan().to_artifact(&planner).to_json().as_bytes())
        };

        // First life: cold solves, then warm repeats of the same keys.
        let mut service = PlanService::new(ServiceConfig::default()).expect("config validates");
        let key = service.register(planner.clone());
        service
            .attach_registry(PlanRegistry::open(&dir).expect("registry opens"))
            .expect("empty registry validates");
        let cold_hashes = service.run(|svc| {
            let mut cold_hashes = Vec::new();
            for request in &requests {
                let (served, receipt) =
                    svc.plan_receipted(key, request).expect("cold request solves");
                prop_assert_eq!(receipt.plan_hash, obs::plan_hash(served.bytes()));
                prop_assert_eq!(receipt.plan_hash, fresh_hash(&served));
                cold_hashes.push((receipt.fingerprint(), receipt.plan_hash));
            }
            for (request, (fingerprint, hash)) in requests.iter().zip(&cold_hashes) {
                let (served, receipt) =
                    svc.plan_receipted(key, request).expect("warm hit answers");
                prop_assert_eq!(receipt.fingerprint(), *fingerprint);
                prop_assert_eq!(receipt.plan_hash, *hash);
                prop_assert_eq!(receipt.plan_hash, obs::plan_hash(served.bytes()));
            }
            cold_hashes
        });

        // Second life: only the registry carries state; the receipts off
        // the disk tier must report the cold hashes bit-for-bit.
        let mut reopened = PlanService::new(ServiceConfig::default()).expect("config validates");
        let key = reopened.register(planner.clone());
        reopened
            .attach_registry(PlanRegistry::open(&dir).expect("registry reopens"))
            .expect("written artifacts re-validate");
        reopened.run(|svc| {
            for (request, (fingerprint, hash)) in requests.iter().zip(&cold_hashes) {
                let (served, receipt) =
                    svc.plan_receipted(key, request).expect("registry hit answers");
                prop_assert_eq!(receipt.fingerprint(), *fingerprint);
                prop_assert_eq!(receipt.plan_hash, *hash);
                prop_assert_eq!(receipt.plan_hash, obs::plan_hash(served.bytes()));
                prop_assert_eq!(receipt.plan_hash, fresh_hash(&served));
            }
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
}
