//! Multi-threaded stress tests of the concurrent plan-serving subsystem:
//! ≥8 threads hammer one `PlanService` with overlapping requests, and
//! every returned plan must be bit-identical to the corresponding serial
//! reference — `Planner::plan` in `Exact` mode, a singleton
//! `Planner::sweep` in the default `Swept` mode (batch-invariance) —
//! with the cache counters consistent (`hits + misses == requests`).

use std::sync::Arc;

use dae_dvfs::{
    CoalesceMode, DseConfig, PlanRequest, PlanService, Planner, ServiceConfig, ServiceError, Solver,
};
use tinyengine::qos_window;
use tinynn::models::vww_sized;

const THREADS: usize = 8;
const ROUNDS: usize = 12;

fn planner() -> Arc<Planner> {
    Arc::new(Planner::new(&vww_sized(32), &DseConfig::paper()).expect("planner builds"))
}

/// The overlapping request mix: slack and absolute-window budgets over
/// both solvers, several of them aliases of each other after slack
/// resolution.
fn request_pool(baseline: f64) -> Vec<PlanRequest> {
    vec![
        PlanRequest::slack(0.1),
        PlanRequest::slack(0.3),
        PlanRequest::slack(0.5),
        // An alias of slack(0.3) once resolved: same cache entry.
        PlanRequest::qos(qos_window(baseline, 0.3)),
        PlanRequest::qos(qos_window(baseline, 0.75)),
        PlanRequest::slack(0.3).with_solver(Solver::SequenceDp),
        PlanRequest::qos(qos_window(baseline, 0.5)).with_solver(Solver::SequenceDp),
        PlanRequest::slack(0.2).with_dp_resolution(800),
    ]
}

#[test]
fn exact_mode_is_bit_identical_to_serial_planner_plan_under_contention() {
    let planner = planner();
    let baseline = planner.baseline_latency().expect("baseline runs");
    let pool = request_pool(baseline);
    // Serial references, computed before any service exists.
    let references: Vec<_> = pool
        .iter()
        .map(|request| planner.plan(request).expect("serial plan solves"))
        .collect();

    let mut service = PlanService::new(
        ServiceConfig::default()
            .with_workers(4)
            .with_mode(CoalesceMode::Exact),
    )
    .expect("config validates");
    let key = service.register(planner.clone());

    service.run(|svc| {
        std::thread::scope(|s| {
            for offset in 0..THREADS {
                let pool = &pool;
                let references = &references;
                s.spawn(move || {
                    for round in 0..ROUNDS {
                        let index = (offset + round) % pool.len();
                        let plan = svc
                            .plan(key, &pool[index])
                            .expect("service answers the request");
                        assert_eq!(
                            *plan, references[index],
                            "service plan diverged from serial Planner::plan \
                             for request {index}"
                        );
                    }
                });
            }
        });
    });

    let stats = service.stats();
    let requests = (THREADS * ROUNDS) as u64;
    assert_eq!(stats.submitted, requests);
    assert_eq!(stats.completed, requests);
    assert_eq!(stats.rejected, 0);
    assert_eq!(stats.failed, 0);
    // Cache-counter consistency: every admitted request is exactly one
    // hit or one miss.
    assert_eq!(
        stats.cache.hits + stats.cache.misses,
        requests,
        "cache stats inconsistent: {stats:?}"
    );
    assert!(stats.cache.joined <= stats.cache.misses);
    // 8 distinct requests alias to 7 distinct cache keys (the slack(0.3)
    // window alias), so at most 7 solves ever ran.
    assert_eq!(stats.cache.inserted, 7);
    assert!(stats.hit_rate() > 0.5, "hot keys should mostly hit");
    assert_eq!(stats.queue_depth, 0, "drain left requests queued");
}

#[test]
fn swept_mode_is_bit_identical_to_singleton_sweeps_under_contention() {
    let planner = planner();
    let baseline = planner.baseline_latency().expect("baseline runs");
    let windows: Vec<f64> = (0..10)
        .map(|i| qos_window(baseline, 0.08 + 0.09 * i as f64))
        .collect();
    // Batch-invariance references: each window swept alone.
    let references: Vec<_> = windows
        .iter()
        .map(|&w| {
            planner
                .sweep([w])
                .expect("singleton sweep solves")
                .remove(0)
        })
        .collect();

    let mut service = PlanService::new(
        ServiceConfig::default()
            .with_workers(4)
            .with_mode(CoalesceMode::Swept)
            // Tiny cache: constant eviction pressure forces re-solves in
            // ever-different batch compositions.
            .with_cache_capacity(2)
            .with_cache_shards(1),
    )
    .expect("config validates");
    let key = service.register(planner.clone());

    service.run(|svc| {
        std::thread::scope(|s| {
            for offset in 0..THREADS {
                let windows = &windows;
                let references = &references;
                s.spawn(move || {
                    for round in 0..ROUNDS {
                        let index = (offset * 3 + round) % windows.len();
                        let plan = svc
                            .plan(key, &PlanRequest::qos(windows[index]))
                            .expect("service answers the request");
                        assert_eq!(
                            *plan, references[index],
                            "coalesced answer depends on batch composition \
                             for window {index}"
                        );
                    }
                });
            }
        });
    });

    let stats = service.stats();
    let requests = (THREADS * ROUNDS) as u64;
    assert_eq!(stats.completed, requests);
    assert_eq!(stats.cache.hits + stats.cache.misses, requests);
    assert_eq!(stats.failed, 0);
    // The tiny cache must have evicted (we re-solved under varying batch
    // compositions) — that is the point of this configuration.
    assert!(
        stats.cache.evicted > 0,
        "eviction pressure missing: {stats:?}"
    );
    assert_eq!(
        stats.batched_requests,
        stats.cache.misses - stats.cache.joined
    );
}

#[test]
fn swept_plans_agree_with_exact_plans_within_the_documented_bound() {
    let planner = planner();
    let baseline = planner.baseline_latency().expect("baseline runs");
    let gated = planner.config().power.clock_gated_power.as_f64();
    let windows: Vec<f64> = (0..6)
        .map(|i| qos_window(baseline, 0.1 + 0.15 * i as f64))
        .collect();

    let mut service =
        PlanService::new(ServiceConfig::default().with_workers(2)).expect("config validates");
    let key = service.register(planner.clone());
    let plans = service.run(|svc| {
        windows
            .iter()
            .map(|&w| svc.plan(key, &PlanRequest::qos(w)).expect("solves"))
            .collect::<Vec<_>>()
    });
    for (plan, &qos) in plans.iter().zip(&windows) {
        assert!(plan.predicted_latency_secs <= qos + 1e-12);
        let exact = planner.plan(&PlanRequest::qos(qos)).expect("serial solves");
        let window_energy = |latency: f64, energy: f64| energy + gated * (qos - latency);
        let swept = window_energy(plan.predicted_latency_secs, plan.predicted_energy.as_f64());
        let serial = window_energy(
            exact.predicted_latency_secs,
            exact.predicted_energy.as_f64(),
        );
        assert!(
            swept <= serial * 1.005,
            "swept answer materially worse than Planner::plan at {qos}: {swept} vs {serial}"
        );
    }
}

#[test]
fn service_surfaces_per_request_errors_without_poisoning_the_batch() {
    let planner = planner();
    let baseline = planner.baseline_latency().expect("baseline runs");
    let good = qos_window(baseline, 0.3);

    let mut service =
        PlanService::new(ServiceConfig::default().with_workers(2)).expect("config validates");
    let key = service.register(planner);
    service.run(|svc| {
        let infeasible = svc.submit(key, &PlanRequest::qos(1e-9)).expect("admitted");
        let feasible = svc.submit(key, &PlanRequest::qos(good)).expect("admitted");
        assert!(matches!(
            infeasible.wait().unwrap_err(),
            ServiceError::Plan(_)
        ));
        let plan = feasible.wait().expect("feasible request still answered");
        assert!(plan.predicted_latency_secs <= good);
    });
    let stats = service.stats();
    assert_eq!(stats.completed, 2);
    assert_eq!(stats.failed, 1);
    assert_eq!(stats.cache.hits + stats.cache.misses, 2);
}
