//! Umbrella crate re-exporting the whole DAE-DVFS reproduction workspace.

pub use dae_dvfs as core;
pub use mcu_sim;
pub use stm32_power;
pub use stm32_rcc;
pub use tinyengine;
pub use tinynn;
