//! Offline stand-in for the crates.io `criterion` crate.
//!
//! The build environment for this repository has no network access to a
//! cargo registry, so the real `criterion` cannot be fetched. This crate
//! implements the (small) subset of criterion's API that the `repro-bench`
//! benches use — [`Criterion`], [`BenchmarkId`], [`black_box`], the
//! `benchmark_group` flow, and the [`criterion_group!`]/[`criterion_main!`]
//! macros — backed by a simple wall-clock harness: each benchmark is warmed
//! up briefly, then timed over enough iterations to fill a fixed measurement
//! window, and the mean ns/iter is printed.
//!
//! Swapping back to the real criterion is a one-line change in
//! `crates/bench/Cargo.toml`; no bench source needs to change.
//!
//! ```
//! use criterion::{black_box, Criterion};
//!
//! let mut c = Criterion::default();
//! let mut group = c.benchmark_group("example");
//! group.sample_size(10);
//! group.bench_function("add", |b| b.iter(|| black_box(2 + 2)));
//! group.finish();
//! ```

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterised benchmark (`function_name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.id.fmt(f)
    }
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    measured: Option<MeasuredSample>,
    measurement_window: Duration,
}

struct MeasuredSample {
    total: Duration,
    iterations: u64,
}

impl Bencher {
    /// Warm up, then run `routine` repeatedly until the measurement window
    /// is filled, recording mean time per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until ~10% of the window has elapsed (at least once).
        let warmup_budget = self.measurement_window / 10;
        let warmup_start = Instant::now();
        loop {
            black_box(routine());
            if warmup_start.elapsed() >= warmup_budget {
                break;
            }
        }

        let mut iterations: u64 = 0;
        let start = Instant::now();
        loop {
            black_box(routine());
            iterations += 1;
            if start.elapsed() >= self.measurement_window {
                break;
            }
        }
        self.measured = Some(MeasuredSample {
            total: start.elapsed(),
            iterations,
        });
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; scales the measurement window so
    /// smaller sample sizes finish faster, as with real criterion.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<S: Display, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full_name = format!("{}/{}", self.name, id);
        self.run_one(&full_name, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full_name = format!("{}/{}", self.name, id);
        self.run_one(&full_name, &mut |b: &mut Bencher| f(b, input));
        self
    }

    pub fn finish(self) {}

    fn run_one(&mut self, full_name: &str, f: &mut dyn FnMut(&mut Bencher)) {
        // Real criterion's default is 100 samples; scale the window down for
        // groups that lowered sample_size to keep heavy benches quick.
        let window = self.criterion.measurement_window * (self.sample_size as u32).min(100) / 100;
        let mut bencher = Bencher {
            measured: None,
            measurement_window: window.max(Duration::from_millis(10)),
        };
        f(&mut bencher);
        match bencher.measured {
            Some(m) => {
                let ns_per_iter = m.total.as_nanos() as f64 / m.iterations as f64;
                println!(
                    "{full_name:<50} {:>14} ns/iter  ({} iters in {:?})",
                    format_ns(ns_per_iter),
                    m.iterations,
                    m.total
                );
            }
            None => println!("{full_name:<50}  (no measurement: closure never called iter)"),
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}e9", ns / 1e9)
    } else {
        format!("{:.1}", ns)
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    measurement_window: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            // Much shorter than real criterion's 5 s: the full suite has
            // dozens of benches and must stay runnable in CI.
            measurement_window: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Accepted for API compatibility with `criterion_group!`'s standard
    /// expansion; command-line filtering is not implemented.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: 100,
        }
    }

    pub fn bench_function<S: Display, F>(&mut self, id: S, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.to_string();
        self.benchmark_group(name.clone())
            .bench_function("bench", f);
        self
    }
}

/// Declares a function running each listed benchmark under one `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares a `main` that runs each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
