//! Offline stand-in for the crates.io `proptest` crate.
//!
//! The build environment for this repository has no network access to a
//! cargo registry, so the real `proptest` cannot be fetched. This crate
//! implements the subset of proptest's API that `tests/proptests.rs` uses:
//!
//! * the [`proptest!`] macro (functions with `arg in strategy` parameters),
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * range strategies (`1u64..=50`, `0usize..4`, `0.0f64..2.0`, …),
//! * [`any::<T>()`](any) for primitive integers,
//! * `prop::collection::vec(strategy, len_range)`, and
//! * tuples of strategies up to arity 8.
//!
//! Semantics differ from real proptest in two deliberate ways: inputs are
//! drawn from a deterministic per-test RNG (seeded from the test name), so
//! every run explores the same cases and failures reproduce exactly; and
//! there is no shrinking — a failing case panics with its assertion message
//! directly. Swapping back to the real proptest is a one-line change in the
//! root `Cargo.toml`; no test source needs to change.
//!
//! ```
//! use proptest::prelude::*;
//!
//! proptest! {
//!     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! addition_commutes();
//! ```

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Number of random cases each `proptest!` test runs (real proptest
/// defaults to 256; halved here to keep the heavy DP/brute-force
/// equivalence tests fast in CI).
pub const DEFAULT_CASES: u32 = 128;

/// Deterministic splitmix64 generator; seeded per test from the test name.
pub struct Rng {
    state: u64,
}

impl Rng {
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the test name keeps runs reproducible across
        // platforms and invocations.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A source of random values of one type. The only operation is sampling;
/// real proptest's value trees and shrinking are intentionally absent.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut Rng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let lo = self.start as i128;
                let span = (self.end as i128 - lo) as u128;
                (lo + (u128::from(rng.next_u64()) % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut Rng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let lo = *self.start() as i128;
                let span = (*self.end() as i128 - lo) as u128 + 1;
                (lo + (u128::from(rng.next_u64()) % span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut Rng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7)
}

/// Types with a whole-domain default strategy, à la proptest's `Arbitrary`.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut Rng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut Rng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut Rng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy drawing from a type's whole domain.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut Rng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the default strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

pub mod collection {
    use super::{Rng, Strategy};
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec()`](fn@vec); the concrete `usize`-based type
    /// (mirroring real proptest) is what pins bare `1..20` literals to
    /// `usize` during inference.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        start: usize,
        end_excl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                start: n,
                end_excl: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            Self {
                start: r.start,
                end_excl: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                start: *r.start(),
                end_excl: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from a [`SizeRange`].
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    /// `prop::collection::vec(element, 1..20)` — a vector whose length is
    /// drawn from `len` and whose elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut Rng) -> Self::Value {
            let n = (self.len.start..self.len.end_excl).sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, Arbitrary, Strategy};

    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Each test runs [`DEFAULT_CASES`](crate::DEFAULT_CASES) deterministic
/// cases; a failing `prop_assert!` panics immediately (no shrinking).
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::Rng::deterministic(stringify!($name));
                for _case in 0..$crate::DEFAULT_CASES {
                    $( let $arg = $crate::Strategy::sample(&($strat), &mut rng); )+
                    $body
                }
            }
        )*
    };
}

/// Like `assert!`, inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Like `assert_eq!`, inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}
