//! Operating / low-power states of the MCU.

use std::fmt;

use stm32_rcc::{PllConfig, SysclkConfig};

/// The power-relevant state of the MCU at an instant.
///
/// The evaluation needs four qualitatively different states:
///
/// * [`PowerState::Run`] — core executing at the given clock configuration;
/// * [`PowerState::RunWarmPll`] — core executing from a direct source while a
///   PLL is *kept locked* in the background. This is the paper's LFO phase:
///   SYSCLK comes from the HSE but the HFO PLL keeps drawing power so that
///   hopping back onto it is a cheap mux toggle;
/// * [`PowerState::SleepWfi`] — WFI sleep: the core clock is gated, bus and
///   peripherals keep running (TinyEngine's plain busy-wait replacement);
/// * [`PowerState::ClockGated`] — the paper's "clock gating" baseline
///   enhancement: non-utilized clocks and the voltage regulator are turned
///   down while waiting for the QoS deadline;
/// * [`PowerState::Stop`] — deepest stop mode, microamp territory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PowerState {
    /// Actively executing at the given clock configuration.
    Run(SysclkConfig),
    /// Executing at `sysclk` (usually HSE-direct) with `warm_pll` locked in
    /// the background.
    RunWarmPll {
        /// The active SYSCLK source.
        sysclk: SysclkConfig,
        /// The PLL kept locked for fast HFO re-entry.
        warm_pll: PllConfig,
    },
    /// WFI sleep at the given clock configuration (core gated).
    SleepWfi(SysclkConfig),
    /// Aggressive clock gating + regulator low-power mode.
    ClockGated,
    /// Stop mode (everything off except backup domain).
    Stop,
}

impl PowerState {
    /// The active SYSCLK configuration, if the core is clocked.
    pub fn sysclk_config(&self) -> Option<&SysclkConfig> {
        match self {
            PowerState::Run(cfg) | PowerState::SleepWfi(cfg) => Some(cfg),
            PowerState::RunWarmPll { sysclk, .. } => Some(sysclk),
            PowerState::ClockGated | PowerState::Stop => None,
        }
    }

    /// Whether the core is executing instructions in this state.
    pub fn is_executing(&self) -> bool {
        matches!(self, PowerState::Run(_) | PowerState::RunWarmPll { .. })
    }
}

impl fmt::Display for PowerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PowerState::Run(cfg) => write!(f, "run @ {cfg}"),
            PowerState::RunWarmPll { sysclk, warm_pll } => {
                write!(f, "run @ {sysclk} (warm {warm_pll})")
            }
            PowerState::SleepWfi(cfg) => write!(f, "wfi sleep @ {cfg}"),
            PowerState::ClockGated => write!(f, "clock gated"),
            PowerState::Stop => write!(f, "stop mode"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm32_rcc::{ClockSource, Hertz};

    fn pll216() -> PllConfig {
        PllConfig::new(ClockSource::hse(Hertz::mhz(50)), 25, 216, 2).unwrap()
    }

    #[test]
    fn sysclk_config_accessor() {
        let lfo = SysclkConfig::hse_direct(Hertz::mhz(50));
        assert_eq!(PowerState::Run(lfo).sysclk_config(), Some(&lfo));
        assert_eq!(
            PowerState::RunWarmPll {
                sysclk: lfo,
                warm_pll: pll216()
            }
            .sysclk_config(),
            Some(&lfo)
        );
        assert_eq!(PowerState::ClockGated.sysclk_config(), None);
        assert_eq!(PowerState::Stop.sysclk_config(), None);
    }

    #[test]
    fn executing_states() {
        let lfo = SysclkConfig::hse_direct(Hertz::mhz(50));
        assert!(PowerState::Run(lfo).is_executing());
        assert!(PowerState::RunWarmPll {
            sysclk: lfo,
            warm_pll: pll216()
        }
        .is_executing());
        assert!(!PowerState::SleepWfi(lfo).is_executing());
        assert!(!PowerState::ClockGated.is_executing());
        assert!(!PowerState::Stop.is_executing());
    }

    #[test]
    fn display_is_nonempty() {
        let lfo = SysclkConfig::hse_direct(Hertz::mhz(50));
        for s in [
            PowerState::Run(lfo),
            PowerState::SleepWfi(lfo),
            PowerState::ClockGated,
            PowerState::Stop,
        ] {
            assert!(!s.to_string().is_empty());
        }
    }
}
