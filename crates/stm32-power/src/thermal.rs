//! Thermal drift and the paper's compensated measurement protocol.
//!
//! Silicon leakage grows with die temperature, and die temperature follows
//! dissipated power with a thermal time constant — so long measurement
//! campaigns drift. The paper handles this by "systematically comparing
//! each power measurement with the power consumption of the baseline input
//! model at the corresponding timestamp" (Sec. IV). This module provides
//! both halves: a first-order thermal model that *produces* the drift, and
//! [`BaselineReference`] which *removes* it the way the paper does.

use crate::units::Watts;

/// First-order thermal model of the package: die temperature relaxes
/// toward `ambient + θ·P` with time constant `τ`, and leakage adds a
/// temperature-dependent fraction on top of the electrical power.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalModel {
    /// Ambient temperature, °C.
    pub ambient_c: f64,
    /// Junction-to-ambient thermal resistance, °C per watt.
    pub theta_c_per_w: f64,
    /// Thermal time constant, seconds.
    pub tau_secs: f64,
    /// Fractional leakage increase per °C above 25 °C.
    pub leakage_per_c: f64,
}

impl ThermalModel {
    /// Calibrated for a Nucleo-144 board in still air.
    pub fn nucleo_still_air() -> Self {
        ThermalModel {
            ambient_c: 25.0,
            theta_c_per_w: 45.0,
            tau_secs: 90.0,
            leakage_per_c: 0.004,
        }
    }

    /// Steady-state die temperature at a constant power draw.
    pub fn steady_state_c(&self, power: Watts) -> f64 {
        self.ambient_c + self.theta_c_per_w * power.as_f64()
    }
}

impl Default for ThermalModel {
    fn default() -> Self {
        ThermalModel::nucleo_still_air()
    }
}

/// Evolving thermal state of the die.
///
/// # Examples
///
/// ```
/// use stm32_power::{ThermalModel, ThermalState, Watts};
///
/// let model = ThermalModel::nucleo_still_air();
/// let mut state = ThermalState::new(&model);
/// // Ten minutes at 300 mW: the die warms toward steady state and the
/// // observed power exceeds the electrical power via leakage.
/// for _ in 0..600 {
///     state.step(&model, Watts::milliwatts(300.0), 1.0);
/// }
/// assert!(state.temperature_c() > 30.0);
/// let observed = state.observed_power(&model, Watts::milliwatts(300.0));
/// assert!(observed.as_mw() > 300.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalState {
    temp_c: f64,
}

impl ThermalState {
    /// Starts at ambient temperature.
    pub fn new(model: &ThermalModel) -> Self {
        ThermalState {
            temp_c: model.ambient_c,
        }
    }

    /// Current die temperature, °C.
    pub fn temperature_c(&self) -> f64 {
        self.temp_c
    }

    /// Advances the state by `dt_secs` under electrical power `power`
    /// (exact solution of the first-order ODE over the step).
    ///
    /// # Panics
    ///
    /// Panics if `dt_secs` is negative or non-finite.
    pub fn step(&mut self, model: &ThermalModel, power: Watts, dt_secs: f64) {
        assert!(
            dt_secs.is_finite() && dt_secs >= 0.0,
            "time step must be a non-negative finite time"
        );
        let target = model.steady_state_c(power);
        let alpha = (-dt_secs / model.tau_secs).exp();
        self.temp_c = target + (self.temp_c - target) * alpha;
    }

    /// Leakage multiplier at the current temperature.
    pub fn leakage_factor(&self, model: &ThermalModel) -> f64 {
        1.0 + model.leakage_per_c * (self.temp_c - 25.0)
    }

    /// Power an external sensor would observe: electrical power inflated by
    /// the temperature-dependent leakage.
    pub fn observed_power(&self, model: &ThermalModel, electrical: Watts) -> Watts {
        Watts::new(electrical.as_f64() * self.leakage_factor(model).max(0.0))
    }
}

/// The paper's compensation reference: a time-stamped power trace of the
/// *baseline input model* recorded under the same thermal conditions.
///
/// A candidate measurement at timestamp `t` is reported relative to the
/// baseline's power at the same timestamp, cancelling the common thermal
/// drift term.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BaselineReference {
    samples: Vec<(f64, Watts)>,
}

impl BaselineReference {
    /// Creates an empty reference.
    pub fn new() -> Self {
        BaselineReference::default()
    }

    /// Records a baseline sample.
    ///
    /// # Panics
    ///
    /// Panics if timestamps are not non-decreasing.
    pub fn record(&mut self, timestamp: f64, power: Watts) {
        if let Some(&(last, _)) = self.samples.last() {
            assert!(timestamp >= last, "timestamps must be non-decreasing");
        }
        self.samples.push((timestamp, power));
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Baseline power at `timestamp`, linearly interpolated (clamped at the
    /// trace ends).
    ///
    /// # Panics
    ///
    /// Panics if the reference is empty.
    pub fn power_at(&self, timestamp: f64) -> Watts {
        assert!(!self.samples.is_empty(), "no baseline samples recorded");
        let first = self.samples[0];
        let last = *self.samples.last().expect("non-empty");
        if timestamp <= first.0 {
            return first.1;
        }
        if timestamp >= last.0 {
            return last.1;
        }
        let idx = self
            .samples
            .partition_point(|&(t, _)| t <= timestamp)
            .min(self.samples.len() - 1);
        let (t1, p1) = self.samples[idx - 1];
        let (t2, p2) = self.samples[idx];
        if t2 == t1 {
            return p2;
        }
        let w = (timestamp - t1) / (t2 - t1);
        Watts::new(p1.as_f64() + (p2.as_f64() - p1.as_f64()) * w)
    }

    /// The paper's compensation: the candidate measurement corrected by the
    /// baseline's drift at the same timestamp, relative to the baseline's
    /// initial (cold) power.
    ///
    /// With a purely multiplicative drift `d(t)` this returns
    /// `measured/d(t)` exactly; see the tests.
    ///
    /// # Panics
    ///
    /// Panics if the reference is empty or its initial power is zero.
    pub fn compensate(&self, measured: Watts, timestamp: f64) -> Watts {
        let cold = self.samples[0].1;
        assert!(cold.as_f64() > 0.0, "baseline cold power must be positive");
        let drift = self.power_at(timestamp).as_f64() / cold.as_f64();
        Watts::new(measured.as_f64() / drift.max(f64::MIN_POSITIVE))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn temperature_relaxes_to_steady_state() {
        let model = ThermalModel::nucleo_still_air();
        let mut state = ThermalState::new(&model);
        let p = Watts::milliwatts(300.0);
        for _ in 0..100 {
            state.step(&model, p, 10.0);
        }
        let expected = model.steady_state_c(p);
        assert!(
            (state.temperature_c() - expected).abs() < 0.1,
            "T {} vs steady {expected}",
            state.temperature_c()
        );
    }

    #[test]
    fn warmer_die_leaks_more() {
        let model = ThermalModel::nucleo_still_air();
        let mut cold = ThermalState::new(&model);
        let mut hot = ThermalState::new(&model);
        hot.step(&model, Watts::milliwatts(300.0), 1e6);
        let p = Watts::milliwatts(100.0);
        assert!(hot.observed_power(&model, p) > cold.observed_power(&model, p));
        cold.step(&model, Watts::ZERO, 1.0);
        assert!((cold.leakage_factor(&model) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn step_is_exact_regardless_of_granularity() {
        // One 100 s step equals one hundred 1 s steps (exact ODE solution).
        let model = ThermalModel::nucleo_still_air();
        let p = Watts::milliwatts(250.0);
        let mut coarse = ThermalState::new(&model);
        coarse.step(&model, p, 100.0);
        let mut fine = ThermalState::new(&model);
        for _ in 0..100 {
            fine.step(&model, p, 1.0);
        }
        assert!((coarse.temperature_c() - fine.temperature_c()).abs() < 1e-9);
    }

    #[test]
    fn interpolation_clamps_and_interpolates() {
        let mut r = BaselineReference::new();
        r.record(0.0, Watts::milliwatts(100.0));
        r.record(10.0, Watts::milliwatts(110.0));
        assert_eq!(r.power_at(-5.0).as_mw(), 100.0);
        assert_eq!(r.power_at(20.0).as_mw(), 110.0);
        assert!((r.power_at(5.0).as_mw() - 105.0).abs() < 1e-9);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn compensation_cancels_multiplicative_drift() {
        // True candidate power is 80 mW; the rail drifts by d(t) = 1 + t/100.
        let mut r = BaselineReference::new();
        let baseline_true = 120.0;
        for t in 0..=10 {
            let t = f64::from(t);
            let drift = 1.0 + t / 100.0;
            r.record(t, Watts::milliwatts(baseline_true * drift));
        }
        for t in [0.0, 2.5, 7.0, 10.0] {
            let drift = 1.0 + t / 100.0;
            let measured = Watts::milliwatts(80.0 * drift);
            let compensated = r.compensate(measured, t);
            assert!(
                (compensated.as_mw() - 80.0).abs() < 1e-9,
                "at t={t}: {compensated}"
            );
        }
    }

    #[test]
    fn compensation_with_thermal_model_reduces_error() {
        // End-to-end: simulate a warming board, measure a candidate late in
        // the campaign, and check compensation brings it close to the cold
        // truth.
        let model = ThermalModel::nucleo_still_air();
        let mut state = ThermalState::new(&model);
        let baseline_p = Watts::milliwatts(200.0);
        let candidate_p = Watts::milliwatts(150.0);

        let mut r = BaselineReference::new();
        let mut t = 0.0;
        for _ in 0..120 {
            state.step(&model, baseline_p, 5.0);
            t += 5.0;
            r.record(t, state.observed_power(&model, baseline_p));
        }
        let raw = state.observed_power(&model, candidate_p);
        let compensated = r.compensate(raw, t);
        let raw_err = (raw.as_mw() - 150.0).abs();
        let comp_err = (compensated.as_mw() - 150.0).abs();
        assert!(
            comp_err < raw_err / 2.0,
            "compensation should halve the error: raw {raw_err:.3}, comp {comp_err:.3}"
        );
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn out_of_order_timestamps_rejected() {
        let mut r = BaselineReference::new();
        r.record(10.0, Watts::milliwatts(100.0));
        r.record(5.0, Watts::milliwatts(100.0));
    }

    #[test]
    #[should_panic(expected = "no baseline samples")]
    fn empty_reference_panics() {
        let _ = BaselineReference::new().power_at(0.0);
    }
}
