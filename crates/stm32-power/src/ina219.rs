//! Behavioural model of the INA219 current/power sensor.
//!
//! The paper samples board power with an INA219 on the supply rail. The
//! sensor quantizes: it measures the shunt voltage with a 12-bit ADC and
//! reports power as `current_lsb × 20 × register`. We model the
//! quantization, the configurable shunt, and the conversion/sampling cadence
//! so profiling code sees realistic discretized readings rather than the
//! model's infinitely precise floats.

use crate::units::Watts;

/// Static configuration of the sensor and its shunt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ina219Config {
    /// Shunt resistance in ohms (0.1 Ω on the common breakout).
    pub shunt_ohms: f64,
    /// Bus (supply) voltage in volts; the Nucleo is powered at 5 V.
    pub bus_volts: f64,
    /// Current corresponding to one LSB of the current register, in amps.
    pub current_lsb: f64,
    /// Conversion time per sample, seconds (532 µs at 12-bit resolution).
    pub conversion_time: f64,
}

impl Ina219Config {
    /// The configuration used for the paper-style setup: 0.1 Ω shunt, 5 V
    /// bus, calibrated for a 400 mA range.
    pub fn paper_setup() -> Self {
        Ina219Config {
            shunt_ohms: 0.1,
            bus_volts: 5.0,
            // 400 mA full range over the 15-bit calibrated current register.
            current_lsb: 0.4 / 32768.0,
            conversion_time: 532e-6,
        }
    }
}

impl Default for Ina219Config {
    fn default() -> Self {
        Ina219Config::paper_setup()
    }
}

/// A simulated INA219 attached to the board's supply rail.
///
/// # Examples
///
/// ```
/// use stm32_power::{Ina219, Watts};
///
/// let mut sensor = Ina219::new(Default::default());
/// let reading = sensor.sample(Watts::milliwatts(150.0));
/// // Quantization error is bounded by one power LSB.
/// assert!((reading.as_mw() - 150.0).abs() < 1.5);
/// assert_eq!(sensor.samples_taken(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Ina219 {
    config: Ina219Config,
    samples: u64,
}

impl Ina219 {
    /// Creates a sensor with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the shunt resistance, bus voltage, or current LSB are not
    /// strictly positive.
    pub fn new(config: Ina219Config) -> Self {
        assert!(config.shunt_ohms > 0.0, "shunt resistance must be positive");
        assert!(config.bus_volts > 0.0, "bus voltage must be positive");
        assert!(config.current_lsb > 0.0, "current LSB must be positive");
        Ina219 { config, samples: 0 }
    }

    /// The sensor configuration.
    pub fn config(&self) -> &Ina219Config {
        &self.config
    }

    /// Number of samples taken so far.
    pub fn samples_taken(&self) -> u64 {
        self.samples
    }

    /// Power represented by one LSB of the power register
    /// (`20 × current_lsb × bus_volts` per the datasheet).
    pub fn power_lsb(&self) -> Watts {
        Watts::new(20.0 * self.config.current_lsb)
    }

    /// Samples the rail: converts `true_power` into a quantized reading the
    /// way the INA219's register pipeline would.
    pub fn sample(&mut self, true_power: Watts) -> Watts {
        self.samples += 1;
        // current = P / V_bus, quantized to the current LSB.
        let current = true_power.as_f64() / self.config.bus_volts;
        let counts = (current / self.config.current_lsb).round();
        // Power register = counts * 20 LSB weighting (datasheet), reported
        // as counts*power_lsb*V normalization folded back to watts.
        let measured_current = counts * self.config.current_lsb;
        Watts::new((measured_current * self.config.bus_volts).max(0.0))
    }

    /// Wall-clock time consumed by `n` conversions.
    pub fn sampling_time(&self, n: u64) -> f64 {
        n as f64 * self.config.conversion_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantization_error_bounded() {
        let mut s = Ina219::new(Ina219Config::paper_setup());
        for mw in [10.0, 47.0, 150.0, 295.5] {
            let r = s.sample(Watts::milliwatts(mw));
            // One current LSB at 5 V = 0.4/32768*5 ≈ 61 µW.
            assert!(
                (r.as_mw() - mw).abs() <= 0.062,
                "reading {r} too far from {mw} mW"
            );
        }
        assert_eq!(s.samples_taken(), 4);
    }

    #[test]
    fn zero_power_reads_zero() {
        let mut s = Ina219::new(Default::default());
        assert_eq!(s.sample(Watts::ZERO).as_f64(), 0.0);
    }

    #[test]
    fn sampling_time_scales() {
        let s = Ina219::new(Default::default());
        assert!((s.sampling_time(1000) - 0.532).abs() < 1e-9);
    }

    #[test]
    fn reading_is_deterministic() {
        let mut a = Ina219::new(Default::default());
        let mut b = Ina219::new(Default::default());
        assert_eq!(
            a.sample(Watts::milliwatts(123.4)),
            b.sample(Watts::milliwatts(123.4))
        );
    }

    #[test]
    #[should_panic(expected = "shunt resistance")]
    fn zero_shunt_rejected() {
        let _ = Ina219::new(Ina219Config {
            shunt_ohms: 0.0,
            ..Default::default()
        });
    }
}
