//! Internal voltage regulator scaling (PWR_CR1.VOS + over-drive).
//!
//! The STM32F7 raises the core voltage with frequency; dynamic power scales
//! with `V²·f`, which is why the highest frequencies are disproportionately
//! expensive — one of the levers the DVFS methodology exploits.

use stm32_rcc::Hertz;

/// Regulator output scale, ordered from the lowest to the highest voltage.
///
/// Frequency ceilings follow RM0410: Scale 3 up to 144 MHz, Scale 2 up to
/// 168 MHz, Scale 1 up to 180 MHz, and Scale 1 with over-drive up to 216 MHz.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum VoltageScale {
    /// VOS scale 3 (lowest voltage), SYSCLK ≤ 144 MHz.
    Scale3,
    /// VOS scale 2, SYSCLK ≤ 168 MHz.
    Scale2,
    /// VOS scale 1, SYSCLK ≤ 180 MHz.
    Scale1,
    /// VOS scale 1 with over-drive, SYSCLK ≤ 216 MHz.
    Scale1OverDrive,
}

impl VoltageScale {
    /// Nominal core voltage for this scale, in volts.
    pub fn core_voltage(self) -> f64 {
        match self {
            VoltageScale::Scale3 => 1.14,
            VoltageScale::Scale2 => 1.19,
            VoltageScale::Scale1 => 1.24,
            VoltageScale::Scale1OverDrive => 1.29,
        }
    }

    /// Maximum SYSCLK permitted at this scale.
    pub fn max_sysclk(self) -> Hertz {
        match self {
            VoltageScale::Scale3 => Hertz::mhz(144),
            VoltageScale::Scale2 => Hertz::mhz(168),
            VoltageScale::Scale1 => Hertz::mhz(180),
            VoltageScale::Scale1OverDrive => Hertz::mhz(216),
        }
    }

    /// Dynamic-power multiplier relative to Scale 3: `(V / V_scale3)²`.
    pub fn dynamic_factor(self) -> f64 {
        let v = self.core_voltage();
        let v0 = VoltageScale::Scale3.core_voltage();
        (v / v0) * (v / v0)
    }
}

/// The lowest (most efficient) regulator scale that supports `sysclk`.
///
/// ```
/// use stm32_power::{required_scale, VoltageScale};
/// use stm32_rcc::Hertz;
///
/// assert_eq!(required_scale(Hertz::mhz(50)), VoltageScale::Scale3);
/// assert_eq!(required_scale(Hertz::mhz(216)), VoltageScale::Scale1OverDrive);
/// ```
///
/// # Panics
///
/// Panics if `sysclk` exceeds 216 MHz, which no valid
/// [`stm32_rcc::SysclkConfig`] can produce.
pub fn required_scale(sysclk: Hertz) -> VoltageScale {
    for scale in [
        VoltageScale::Scale3,
        VoltageScale::Scale2,
        VoltageScale::Scale1,
        VoltageScale::Scale1OverDrive,
    ] {
        if sysclk <= scale.max_sysclk() {
            return scale;
        }
    }
    panic!("SYSCLK {sysclk} exceeds the 216 MHz device maximum");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_selection_matches_rm0410() {
        assert_eq!(required_scale(Hertz::mhz(16)), VoltageScale::Scale3);
        assert_eq!(required_scale(Hertz::mhz(144)), VoltageScale::Scale3);
        assert_eq!(required_scale(Hertz::mhz(145)), VoltageScale::Scale2);
        assert_eq!(required_scale(Hertz::mhz(168)), VoltageScale::Scale2);
        assert_eq!(required_scale(Hertz::mhz(169)), VoltageScale::Scale1);
        assert_eq!(required_scale(Hertz::mhz(180)), VoltageScale::Scale1);
        assert_eq!(
            required_scale(Hertz::mhz(181)),
            VoltageScale::Scale1OverDrive
        );
        assert_eq!(
            required_scale(Hertz::mhz(216)),
            VoltageScale::Scale1OverDrive
        );
    }

    #[test]
    #[should_panic(expected = "216 MHz")]
    fn beyond_max_panics() {
        let _ = required_scale(Hertz::mhz(217));
    }

    #[test]
    fn voltages_increase_with_scale() {
        let scales = [
            VoltageScale::Scale3,
            VoltageScale::Scale2,
            VoltageScale::Scale1,
            VoltageScale::Scale1OverDrive,
        ];
        for w in scales.windows(2) {
            assert!(w[0].core_voltage() < w[1].core_voltage());
            assert!(w[0].dynamic_factor() < w[1].dynamic_factor());
            assert!(w[0] < w[1]);
        }
        assert_eq!(VoltageScale::Scale3.dynamic_factor(), 1.0);
    }
}
