//! Power and energy model of the STM32F767 Nucleo board.
//!
//! The paper measures board power with an INA219 sensor while sweeping the
//! clock tree. This crate replaces the physical rail with an analytic model
//! that reproduces the observations the methodology depends on:
//!
//! * power grows roughly linearly with SYSCLK, super-linearly once the
//!   voltage regulator has to raise the core voltage for high frequencies;
//! * **iso-frequency configurations differ in power** through the hidden VCO
//!   frequency of the PLL (Fig. 2 of the paper);
//! * direct-HSE operation (the paper's LFO) avoids the PLL's own draw;
//! * idle strategies differ hugely: busy idling at 216 MHz vs clock-gated
//!   sleep vs stop mode.
//!
//! # Examples
//!
//! ```
//! use stm32_power::PowerModel;
//! use stm32_rcc::{ClockSource, Hertz, PllConfig, SysclkConfig};
//!
//! # fn main() -> Result<(), stm32_rcc::RccError> {
//! let model = PowerModel::nucleo_f767zi();
//! let hfo = SysclkConfig::Pll(PllConfig::new(
//!     ClockSource::hse(Hertz::mhz(50)), 25, 216, 2)?);
//! let lfo = SysclkConfig::hse_direct(Hertz::mhz(50));
//!
//! let p_hfo = model.run_power(&hfo);
//! let p_lfo = model.run_power(&lfo);
//! assert!(p_hfo > p_lfo, "216 MHz must draw more than 50 MHz");
//! # Ok(())
//! # }
//! ```

pub mod battery;
pub mod energy;
pub mod ina219;
pub mod model;
pub mod regulator;
pub mod states;
pub mod thermal;
pub mod units;

pub use battery::Battery;
pub use energy::{EnergyBreakdown, EnergyMeter};
pub use ina219::{Ina219, Ina219Config};
pub use model::PowerModel;
pub use regulator::{required_scale, VoltageScale};
pub use states::PowerState;
pub use thermal::{BaselineReference, ThermalModel, ThermalState};
pub use units::{Joules, Watts};
