//! Energy accounting across execution phases.

use std::collections::BTreeMap;
use std::fmt;

use crate::units::{Joules, Watts};

/// Per-tag energy breakdown produced by an [`EnergyMeter`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EnergyBreakdown {
    entries: BTreeMap<String, Joules>,
}

impl EnergyBreakdown {
    /// Energy recorded under `tag`, zero if the tag never appeared.
    pub fn energy(&self, tag: &str) -> Joules {
        self.entries.get(tag).copied().unwrap_or(Joules::ZERO)
    }

    /// Iterates over `(tag, energy)` pairs in tag order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Joules)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Number of distinct tags.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no energy has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl fmt::Display for EnergyBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (tag, e) in &self.entries {
            writeln!(f, "{tag:>24}: {e}")?;
        }
        Ok(())
    }
}

/// Accumulates energy over time, tagged by execution phase.
///
/// The meter is the single integration point between the power model (which
/// gives instantaneous watts) and the timing simulator (which gives phase
/// durations): `E += P · Δt`.
///
/// # Examples
///
/// ```
/// use stm32_power::{EnergyMeter, Watts};
///
/// let mut meter = EnergyMeter::new();
/// meter.record("compute", Watts::milliwatts(100.0), 0.5);
/// meter.record("memory", Watts::milliwatts(40.0), 0.5);
/// meter.record("compute", Watts::milliwatts(100.0), 0.5);
///
/// assert!((meter.total_energy().as_mj() - 120.0).abs() < 1e-9);
/// assert!((meter.total_time() - 1.5).abs() < 1e-12);
/// assert!((meter.breakdown().energy("compute").as_mj() - 100.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EnergyMeter {
    total: Joules,
    time: f64,
    breakdown: EnergyBreakdown,
}

impl EnergyMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        EnergyMeter::default()
    }

    /// Records `duration_secs` spent at `power` under `tag`.
    ///
    /// The tag is borrowed: recording under an already-seen tag (the hot
    /// path when replaying a compiled schedule) performs no allocation.
    ///
    /// # Panics
    ///
    /// Panics if `duration_secs` is negative or non-finite.
    pub fn record(&mut self, tag: impl AsRef<str>, power: Watts, duration_secs: f64) {
        assert!(
            duration_secs.is_finite() && duration_secs >= 0.0,
            "duration must be a non-negative finite time, got {duration_secs}"
        );
        let e = power * duration_secs;
        self.total += e;
        self.time += duration_secs;
        let tag = tag.as_ref();
        if let Some(slot) = self.breakdown.entries.get_mut(tag) {
            *slot += e;
        } else {
            self.breakdown.entries.insert(tag.to_owned(), e);
        }
    }

    /// Merges another meter into this one (tags are combined).
    pub fn merge(&mut self, other: &EnergyMeter) {
        self.total += other.total;
        self.time += other.time;
        for (tag, e) in other.breakdown.iter() {
            *self
                .breakdown
                .entries
                .entry(tag.to_owned())
                .or_insert(Joules::ZERO) += e;
        }
    }

    /// Total accumulated energy.
    pub fn total_energy(&self) -> Joules {
        self.total
    }

    /// Total accumulated time in seconds.
    pub fn total_time(&self) -> f64 {
        self.time
    }

    /// Average power over the recorded interval.
    ///
    /// # Panics
    ///
    /// Panics if no time has been recorded.
    pub fn average_power(&self) -> Watts {
        assert!(self.time > 0.0, "no time recorded");
        self.total / self.time
    }

    /// The per-tag breakdown.
    pub fn breakdown(&self) -> &EnergyBreakdown {
        &self.breakdown
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn additivity() {
        let mut m = EnergyMeter::new();
        m.record("a", Watts::new(1.0), 1.0);
        m.record("b", Watts::new(2.0), 2.0);
        assert!((m.total_energy().as_f64() - 5.0).abs() < 1e-12);
        assert!((m.total_time() - 3.0).abs() < 1e-12);
        let by_tag: f64 = m.breakdown().iter().map(|(_, e)| e.as_f64()).sum();
        assert!((by_tag - m.total_energy().as_f64()).abs() < 1e-12);
    }

    #[test]
    fn average_power() {
        let mut m = EnergyMeter::new();
        m.record("x", Watts::new(2.0), 1.0);
        m.record("x", Watts::new(4.0), 1.0);
        assert!((m.average_power().as_f64() - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "no time recorded")]
    fn average_power_empty_panics() {
        let _ = EnergyMeter::new().average_power();
    }

    #[test]
    fn merge_combines_tags() {
        let mut a = EnergyMeter::new();
        a.record("compute", Watts::new(1.0), 1.0);
        let mut b = EnergyMeter::new();
        b.record("compute", Watts::new(1.0), 2.0);
        b.record("memory", Watts::new(1.0), 1.0);
        a.merge(&b);
        assert!((a.breakdown().energy("compute").as_f64() - 3.0).abs() < 1e-12);
        assert!((a.breakdown().energy("memory").as_f64() - 1.0).abs() < 1e-12);
        assert!((a.total_time() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn zero_duration_is_noop_energy() {
        let mut m = EnergyMeter::new();
        m.record("z", Watts::new(10.0), 0.0);
        assert_eq!(m.total_energy(), Joules::ZERO);
        assert_eq!(m.breakdown().len(), 1);
    }

    #[test]
    fn unknown_tag_is_zero() {
        let m = EnergyMeter::new();
        assert_eq!(m.breakdown().energy("nope"), Joules::ZERO);
        assert!(m.breakdown().is_empty());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_duration_rejected() {
        let mut m = EnergyMeter::new();
        m.record("bad", Watts::new(1.0), -1.0);
    }
}
