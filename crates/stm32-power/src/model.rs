//! The analytic board power model.

use stm32_rcc::{ClockSource, Hertz, PllConfig, SysclkConfig};

use crate::regulator::required_scale;
use crate::states::PowerState;
use crate::units::Watts;

/// Analytic power model of an STM32F767ZI Nucleo board.
///
/// Total run power is decomposed as
///
/// ```text
/// P = P_static                         (board + leakage)
///   + P_source                         (HSE drive or HSI oscillator)
///   + k_core · f_sysclk · (V/V₀)²      (core + bus dynamic power)
///   + [P_pll_base + k_vco · f_vco]     (if a PLL is locked)
/// ```
///
/// The coefficients are calibrated so that the *shape* of the paper's
/// figures holds: ~50–200 mW over the 25–216 MHz range, a visible power gap
/// between iso-frequency configurations with different VCO frequencies
/// (Fig. 2), and super-linear growth at over-drive frequencies.
///
/// All knobs are public-by-builder so ablations can stress them.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerModel {
    /// Constant board + leakage power.
    pub static_power: Watts,
    /// Core + bus dynamic power per Hz of SYSCLK at voltage scale 3.
    pub core_w_per_hz: f64,
    /// Fixed PLL bias power when a PLL is locked.
    pub pll_base: Watts,
    /// PLL dynamic power per Hz of VCO frequency.
    pub vco_w_per_hz: f64,
    /// HSE drive power per Hz of crystal frequency.
    pub hse_w_per_hz: f64,
    /// Fixed HSI oscillator power (the paper notes the HSI draws more than
    /// the HSE).
    pub hsi_power: Watts,
    /// Fraction of core dynamic power still drawn in WFI sleep
    /// (bus/peripheral clocks keep running).
    pub wfi_core_fraction: f64,
    /// Total power in the clock-gated idle state.
    pub clock_gated_power: Watts,
    /// Total power in stop mode.
    pub stop_power: Watts,
}

impl PowerModel {
    /// Calibrated model for the STM32F767ZI Nucleo board used in the paper.
    ///
    /// The coefficients are chosen so that energy-per-cycle over the HFO
    /// ladder has the physical U-shape that makes DVFS worthwhile: static
    /// power amortizes badly at low frequencies while the regulator's `V²`
    /// factor penalizes the over-drive frequencies, with the sweet spot in
    /// the 100–150 MHz range — consistent with the paper's observation
    /// that relaxing the QoS (allowing lower frequencies) reduces energy.
    pub fn nucleo_f767zi() -> Self {
        PowerModel {
            static_power: Watts::milliwatts(20.0),
            core_w_per_hz: 0.80e-9, // 0.80 mW/MHz at scale 3
            pll_base: Watts::milliwatts(3.0),
            vco_w_per_hz: 0.12e-9, // 0.12 mW/MHz of VCO
            hse_w_per_hz: 0.04e-9, // 2 mW at 50 MHz
            hsi_power: Watts::milliwatts(3.5),
            wfi_core_fraction: 0.35,
            clock_gated_power: Watts::milliwatts(12.0),
            stop_power: Watts::milliwatts(1.5),
        }
    }

    /// Replaces the constant board + leakage power (builder style).
    pub fn with_static_power(mut self, power: Watts) -> Self {
        self.static_power = power;
        self
    }

    /// Replaces the core dynamic-power coefficient, W/Hz at voltage scale 3
    /// (builder style).
    pub fn with_core_w_per_hz(mut self, coeff: f64) -> Self {
        self.core_w_per_hz = coeff;
        self
    }

    /// Replaces the PLL dynamic-power coefficient, W/Hz of VCO frequency
    /// (builder style).
    pub fn with_vco_w_per_hz(mut self, coeff: f64) -> Self {
        self.vco_w_per_hz = coeff;
        self
    }

    /// Replaces the clock-gated idle power (builder style).
    pub fn with_clock_gated_power(mut self, power: Watts) -> Self {
        self.clock_gated_power = power;
        self
    }

    /// Power drawn by the clock *source* alone.
    fn source_power(&self, source: ClockSource) -> Watts {
        match source {
            ClockSource::Hsi => self.hsi_power,
            ClockSource::Hse(f) => Watts::new(self.hse_w_per_hz * f.as_f64()),
        }
    }

    /// Core + bus dynamic power at `sysclk`, including the voltage-scale
    /// factor the regulator imposes.
    fn core_power(&self, sysclk: Hertz) -> Watts {
        let scale = required_scale(sysclk);
        Watts::new(self.core_w_per_hz * sysclk.as_f64() * scale.dynamic_factor())
    }

    /// Power drawn by a locked PLL with the given configuration.
    pub fn pll_power(&self, pll: &PllConfig) -> Watts {
        self.pll_base + Watts::new(self.vco_w_per_hz * pll.vco_output().as_f64())
    }

    /// Full-board power while executing at `cfg` (no warm background PLL).
    ///
    /// ```
    /// use stm32_power::PowerModel;
    /// use stm32_rcc::{Hertz, SysclkConfig};
    ///
    /// let m = PowerModel::nucleo_f767zi();
    /// let lfo = m.run_power(&SysclkConfig::hse_direct(Hertz::mhz(50)));
    /// // 20 static + 40 core + 2 HSE = 62 mW
    /// assert!((lfo.as_mw() - 62.0).abs() < 1e-9);
    /// ```
    pub fn run_power(&self, cfg: &SysclkConfig) -> Watts {
        let mut p = self.static_power + self.core_power(cfg.sysclk());
        p += match cfg {
            SysclkConfig::HsiDirect => self.source_power(ClockSource::Hsi),
            SysclkConfig::HseDirect(f) => self.source_power(ClockSource::Hse(*f)),
            SysclkConfig::Pll(pll) => self.source_power(pll.source()) + self.pll_power(pll),
        };
        p
    }

    /// Power for an arbitrary [`PowerState`].
    pub fn power(&self, state: &PowerState) -> Watts {
        match state {
            PowerState::Run(cfg) => self.run_power(cfg),
            PowerState::RunWarmPll { sysclk, warm_pll } => {
                // The warm PLL draws its own power on top of the direct-
                // source run power. If the active source *is* the PLL this
                // state degenerates to plain Run.
                match sysclk {
                    SysclkConfig::Pll(p) if p == warm_pll => self.run_power(sysclk),
                    _ => self.run_power(sysclk) + self.pll_power(warm_pll),
                }
            }
            PowerState::SleepWfi(cfg) => {
                // Core gated: only a fraction of the dynamic power remains.
                let full = self.core_power(cfg.sysclk());
                let gated = Watts::new(full.as_f64() * self.wfi_core_fraction);
                let mut p = self.static_power + gated;
                p += match cfg {
                    SysclkConfig::HsiDirect => self.source_power(ClockSource::Hsi),
                    SysclkConfig::HseDirect(f) => self.source_power(ClockSource::Hse(*f)),
                    SysclkConfig::Pll(pll) => self.source_power(pll.source()) + self.pll_power(pll),
                };
                p
            }
            PowerState::ClockGated => self.clock_gated_power,
            PowerState::Stop => self.stop_power,
        }
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel::nucleo_f767zi()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pll(hse: u64, m: u32, n: u32, p: u32) -> PllConfig {
        PllConfig::new(ClockSource::hse(Hertz::mhz(hse)), m, n, p).unwrap()
    }

    #[test]
    fn power_monotone_in_frequency() {
        let model = PowerModel::nucleo_f767zi();
        // Fixed PLLM=25 ladder: higher PLLN -> higher sysclk and VCO.
        let mut last = Watts::ZERO;
        for n in [75u32, 100, 150, 168, 216] {
            let p = model.run_power(&SysclkConfig::Pll(pll(50, 25, n, 2)));
            assert!(p > last, "power not increasing at PLLN={n}");
            last = p;
        }
    }

    #[test]
    fn iso_frequency_power_gap() {
        let model = PowerModel::nucleo_f767zi();
        // 100 MHz the cool way (VCO 200) vs the hot way (VCO 400, PLLP=4).
        let cool = model.run_power(&SysclkConfig::Pll(pll(16, 8, 100, 2)));
        let hot = model.run_power(&SysclkConfig::Pll(pll(50, 25, 200, 4)));
        assert!(hot > cool);
        let gap = (hot.as_f64() - cool.as_f64()) / cool.as_f64();
        assert!(gap > 0.15, "expected a significant gap, got {gap:.2}");
    }

    #[test]
    fn lfo_cheaper_than_any_hfo() {
        let model = PowerModel::nucleo_f767zi();
        let lfo = model.run_power(&SysclkConfig::hse_direct(Hertz::mhz(50)));
        for n in [75u32, 100, 150, 168, 216] {
            let hfo = model.run_power(&SysclkConfig::Pll(pll(50, 25, n, 2)));
            assert!(lfo < hfo, "LFO should undercut HFO @ PLLN={n}");
        }
    }

    #[test]
    fn hsi_draws_more_than_hse() {
        let model = PowerModel::nucleo_f767zi();
        let hsi = model.run_power(&SysclkConfig::HsiDirect);
        // Compare against HSE direct at the same 16 MHz.
        let hse = model.run_power(&SysclkConfig::hse_direct(Hertz::mhz(16)));
        assert!(hsi > hse, "paper: HSI yields higher power than HSE");
    }

    #[test]
    fn warm_pll_adds_pll_power() {
        let model = PowerModel::nucleo_f767zi();
        let lfo = SysclkConfig::hse_direct(Hertz::mhz(50));
        let warm = PowerState::RunWarmPll {
            sysclk: lfo,
            warm_pll: pll(50, 25, 216, 2),
        };
        let plain = model.power(&PowerState::Run(lfo));
        let with_warm = model.power(&warm);
        let delta = with_warm.as_f64() - plain.as_f64();
        let expected = model.pll_power(&pll(50, 25, 216, 2)).as_f64();
        assert!((delta - expected).abs() < 1e-12);
    }

    #[test]
    fn warm_pll_degenerates_when_active() {
        let model = PowerModel::nucleo_f767zi();
        let cfg = SysclkConfig::Pll(pll(50, 25, 216, 2));
        let state = PowerState::RunWarmPll {
            sysclk: cfg,
            warm_pll: pll(50, 25, 216, 2),
        };
        assert_eq!(model.power(&state), model.run_power(&cfg));
    }

    #[test]
    fn idle_state_ordering() {
        let model = PowerModel::nucleo_f767zi();
        let busy216 = model.power(&PowerState::Run(SysclkConfig::Pll(pll(50, 25, 216, 2))));
        let wfi216 = model.power(&PowerState::SleepWfi(SysclkConfig::Pll(pll(
            50, 25, 216, 2,
        ))));
        let gated = model.power(&PowerState::ClockGated);
        let stop = model.power(&PowerState::Stop);
        assert!(busy216 > wfi216, "WFI must beat busy idle");
        assert!(wfi216 > gated, "clock gating must beat WFI");
        assert!(gated > stop, "stop must beat clock gating");
    }

    #[test]
    fn overdrive_superlinear() {
        let model = PowerModel::nucleo_f767zi();
        // 108 MHz (scale 3) vs 216 MHz (over-drive): more than 2x the
        // core power because of the voltage factor.
        let p108 = model.run_power(&SysclkConfig::Pll(pll(50, 50, 216, 2)));
        let p216 = model.run_power(&SysclkConfig::Pll(pll(50, 25, 216, 2)));
        // Subtract the non-core shares (static + HSE) for a cleaner check.
        let base = model.static_power.as_f64() + 2.0e-3;
        let ratio = (p216.as_f64() - base) / (p108.as_f64() - base);
        assert!(
            ratio > 2.0,
            "expected super-linear scaling, got ratio {ratio:.2}"
        );
    }

    #[test]
    fn builder_overrides_coefficients() {
        let custom = PowerModel::nucleo_f767zi()
            .with_static_power(Watts::milliwatts(10.0))
            .with_core_w_per_hz(0.4e-9)
            .with_vco_w_per_hz(0.06e-9)
            .with_clock_gated_power(Watts::milliwatts(6.0));
        let stock = PowerModel::nucleo_f767zi();
        let cfg = SysclkConfig::Pll(pll(50, 25, 216, 2));
        assert!(custom.run_power(&cfg) < stock.run_power(&cfg));
        assert_eq!(custom.clock_gated_power, Watts::milliwatts(6.0));
    }

    #[test]
    fn run_power_in_plausible_range() {
        let model = PowerModel::nucleo_f767zi();
        for n in [75u32, 100, 150, 168, 216] {
            let p = model.run_power(&SysclkConfig::Pll(pll(50, 25, n, 2)));
            assert!(
                p.as_mw() > 30.0 && p.as_mw() < 350.0,
                "implausible power {p} at PLLN={n}"
            );
        }
    }
}
