//! Battery lifetime estimation for duty-cycled inference workloads.
//!
//! The paper motivates DVFS with "battery-operated edge devices … the
//! execution of resource-intensive and computationally hungry DNNs can
//! rapidly deplete the battery, particularly concerning devices with
//! extended operational requirements." This module turns per-window energy
//! numbers into the quantity a deployment engineer actually cares about:
//! days of operation on a given cell.

use crate::units::Joules;

/// A battery as seen by the energy budget: usable capacity and conversion
/// efficiency of the regulator between cell and board rail.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Battery {
    /// Usable capacity in joules.
    pub capacity: Joules,
    /// Fraction of cell energy that reaches the board (regulator
    /// efficiency, self-discharge folded in).
    pub efficiency: f64,
}

impl Battery {
    /// A battery from its milliamp-hour rating and nominal voltage.
    ///
    /// # Panics
    ///
    /// Panics if the rating, voltage, or efficiency are not positive, or
    /// if efficiency exceeds 1.
    pub fn from_mah(mah: f64, volts: f64, efficiency: f64) -> Self {
        assert!(
            mah > 0.0 && volts > 0.0,
            "capacity and voltage must be positive"
        );
        assert!(
            efficiency > 0.0 && efficiency <= 1.0,
            "efficiency must be in (0, 1]"
        );
        Battery {
            capacity: Joules::new(mah * 3.6 * volts),
            efficiency,
        }
    }

    /// A CR123A-class lithium primary cell (1500 mAh @ 3 V, 85% efficient
    /// conversion) — a common far-edge choice.
    pub fn cr123a() -> Self {
        Battery::from_mah(1500.0, 3.0, 0.85)
    }

    /// Two AA alkaline cells (2500 mAh @ 3 V, 80%).
    pub fn double_aa() -> Self {
        Battery::from_mah(2500.0, 3.0, 0.80)
    }

    /// Energy deliverable to the board.
    pub fn usable(&self) -> Joules {
        Joules::new(self.capacity.as_f64() * self.efficiency)
    }

    /// Number of inference windows this battery sustains.
    ///
    /// # Panics
    ///
    /// Panics if `energy_per_window` is zero.
    pub fn windows(&self, energy_per_window: Joules) -> f64 {
        assert!(
            energy_per_window.as_f64() > 0.0,
            "window energy must be positive"
        );
        self.usable().as_f64() / energy_per_window.as_f64()
    }

    /// Lifetime in days at a given inference cadence.
    ///
    /// `window_secs` is the iso-latency window length (inference + idle
    /// tail); `windows_per_day` how many of them run per day; the rest of
    /// the day is spent at `standby` power.
    ///
    /// # Panics
    ///
    /// Panics if the cadence does not fit in a day or inputs are
    /// non-positive.
    pub fn lifetime_days(
        &self,
        energy_per_window: Joules,
        window_secs: f64,
        windows_per_day: f64,
        standby: crate::units::Watts,
    ) -> f64 {
        assert!(windows_per_day > 0.0, "cadence must be positive");
        let active_secs = window_secs * windows_per_day;
        assert!(
            active_secs <= 86_400.0,
            "cadence exceeds one day of wall time"
        );
        let daily = energy_per_window.as_f64() * windows_per_day
            + standby.as_f64() * (86_400.0 - active_secs);
        self.usable().as_f64() / daily
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::Watts;

    #[test]
    fn mah_conversion() {
        // 1000 mAh @ 3 V = 3.6 * 3 kJ.
        let b = Battery::from_mah(1000.0, 3.0, 1.0);
        assert!((b.capacity.as_f64() - 10_800.0).abs() < 1e-9);
        assert_eq!(b.usable(), b.capacity);
    }

    #[test]
    fn efficiency_scales_usable_energy() {
        let b = Battery::from_mah(1000.0, 3.0, 0.5);
        assert!((b.usable().as_f64() - 5_400.0).abs() < 1e-9);
    }

    #[test]
    fn windows_count() {
        let b = Battery::from_mah(1000.0, 3.0, 1.0);
        // 10.8 kJ / 5 mJ = 2.16e6 windows.
        let n = b.windows(Joules::millijoules(5.0));
        assert!((n - 2.16e6).abs() / 2.16e6 < 1e-12);
    }

    #[test]
    fn lower_window_energy_extends_lifetime() {
        let b = Battery::cr123a();
        let standby = Watts::milliwatts(0.05);
        let a = b.lifetime_days(Joules::millijoules(6.0), 0.03, 10_000.0, standby);
        let c = b.lifetime_days(Joules::millijoules(4.5), 0.03, 10_000.0, standby);
        assert!(c > a, "25% less energy must live longer: {a} vs {c}");
        assert!(a > 10.0 && c < 10_000.0, "plausible range: {a}..{c}");
    }

    #[test]
    fn standby_dominates_at_low_cadence() {
        let b = Battery::cr123a();
        let standby = Watts::milliwatts(1.0);
        let rare = b.lifetime_days(Joules::millijoules(5.0), 0.03, 10.0, standby);
        // At 10 inferences/day, daily energy ≈ standby only: 86.4 J/day.
        let expected = b.usable().as_f64() / (86_400.0 * 1e-3 + 0.05);
        assert!((rare - expected).abs() / expected < 0.01);
    }

    #[test]
    #[should_panic(expected = "cadence exceeds")]
    fn impossible_cadence_rejected() {
        let b = Battery::cr123a();
        let _ = b.lifetime_days(Joules::millijoules(5.0), 1.0, 100_000.0, Watts::ZERO);
    }

    #[test]
    #[should_panic(expected = "efficiency")]
    fn bad_efficiency_rejected() {
        let _ = Battery::from_mah(1000.0, 3.0, 1.5);
    }
}
