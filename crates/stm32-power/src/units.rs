//! Power and energy newtypes.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// Electrical power in watts.
///
/// ```
/// use stm32_power::Watts;
///
/// let p = Watts::milliwatts(150.0);
/// assert_eq!(p.as_mw(), 150.0);
/// let e = p * 2.0; // 2 seconds at 150 mW
/// assert_eq!(e.as_mj(), 300.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Watts(f64);

impl Watts {
    /// Zero power.
    pub const ZERO: Watts = Watts(0.0);

    /// Creates a power from watts.
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite values.
    pub fn new(watts: f64) -> Self {
        assert!(
            watts.is_finite() && watts >= 0.0,
            "power must be a non-negative finite value, got {watts}"
        );
        Watts(watts)
    }

    /// Creates a power from milliwatts.
    pub fn milliwatts(mw: f64) -> Self {
        Watts::new(mw / 1e3)
    }

    /// The value in watts.
    pub fn as_f64(self) -> f64 {
        self.0
    }

    /// The value in milliwatts.
    pub fn as_mw(self) -> f64 {
        self.0 * 1e3
    }
}

impl fmt::Display for Watts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1.0 {
            write!(f, "{:.3} mW", self.as_mw())
        } else {
            write!(f, "{:.3} W", self.0)
        }
    }
}

impl Add for Watts {
    type Output = Watts;
    fn add(self, rhs: Watts) -> Watts {
        Watts(self.0 + rhs.0)
    }
}

impl AddAssign for Watts {
    fn add_assign(&mut self, rhs: Watts) {
        self.0 += rhs.0;
    }
}

impl Sub for Watts {
    type Output = Watts;
    fn sub(self, rhs: Watts) -> Watts {
        Watts::new(self.0 - rhs.0)
    }
}

impl Mul<f64> for Watts {
    /// Power × time (seconds) = energy.
    type Output = Joules;
    fn mul(self, secs: f64) -> Joules {
        Joules::new(self.0 * secs)
    }
}

impl Sum for Watts {
    fn sum<I: Iterator<Item = Watts>>(iter: I) -> Watts {
        iter.fold(Watts::ZERO, |a, b| a + b)
    }
}

/// Energy in joules.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Joules(f64);

impl Joules {
    /// Zero energy.
    pub const ZERO: Joules = Joules(0.0);

    /// Creates an energy from joules.
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite values.
    pub fn new(joules: f64) -> Self {
        assert!(
            joules.is_finite() && joules >= 0.0,
            "energy must be a non-negative finite value, got {joules}"
        );
        Joules(joules)
    }

    /// Creates an energy from millijoules.
    pub fn millijoules(mj: f64) -> Self {
        Joules::new(mj / 1e3)
    }

    /// The value in joules.
    pub fn as_f64(self) -> f64 {
        self.0
    }

    /// The value in millijoules.
    pub fn as_mj(self) -> f64 {
        self.0 * 1e3
    }

    /// Relative difference `(self - other) / other`, positive when `self`
    /// is larger. Used for "energy gain %" reporting.
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    pub fn relative_to(self, other: Joules) -> f64 {
        assert!(other.0 > 0.0, "cannot compare against zero energy");
        (self.0 - other.0) / other.0
    }
}

impl fmt::Display for Joules {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1.0 {
            write!(f, "{:.3} mJ", self.as_mj())
        } else {
            write!(f, "{:.3} J", self.0)
        }
    }
}

impl Add for Joules {
    type Output = Joules;
    fn add(self, rhs: Joules) -> Joules {
        Joules(self.0 + rhs.0)
    }
}

impl AddAssign for Joules {
    fn add_assign(&mut self, rhs: Joules) {
        self.0 += rhs.0;
    }
}

impl Sub for Joules {
    type Output = Joules;
    fn sub(self, rhs: Joules) -> Joules {
        Joules::new(self.0 - rhs.0)
    }
}

impl Div<f64> for Joules {
    /// Energy ÷ time (seconds) = average power.
    type Output = Watts;
    fn div(self, secs: f64) -> Watts {
        Watts::new(self.0 / secs)
    }
}

impl Sum for Joules {
    fn sum<I: Iterator<Item = Joules>>(iter: I) -> Joules {
        iter.fold(Joules::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_times_time_is_energy() {
        let e = Watts::milliwatts(100.0) * 10.0;
        assert!((e.as_f64() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn energy_over_time_is_power() {
        let p = Joules::new(1.0) / 10.0;
        assert!((p.as_mw() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn sums() {
        let total: Watts = [Watts::new(0.1), Watts::new(0.2)].into_iter().sum();
        assert!((total.as_f64() - 0.3).abs() < 1e-12);
        let total: Joules = [Joules::new(1.0), Joules::new(2.0)].into_iter().sum();
        assert!((total.as_f64() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn relative_comparison() {
        let base = Joules::new(2.0);
        let better = Joules::new(1.5);
        assert!((better.relative_to(base) + 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_power_rejected() {
        let _ = Watts::new(-0.1);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_energy_by_subtraction_rejected() {
        let _ = Joules::new(1.0) - Joules::new(2.0);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(Watts::milliwatts(150.0).to_string(), "150.000 mW");
        assert_eq!(Watts::new(1.5).to_string(), "1.500 W");
        assert_eq!(Joules::millijoules(2.0).to_string(), "2.000 mJ");
        assert_eq!(Joules::new(3.0).to_string(), "3.000 J");
    }
}
