//! A small hand-rolled Rust lexer.
//!
//! The workspace builds offline, so the linter cannot lean on `syn` or
//! `proc-macro2`; it tokenizes source files itself. The lexer is
//! deliberately lossless: every byte of the input ends up in exactly one
//! token, so `tokens.concat() == source` holds for any file it accepts
//! (the round-trip property the workspace-wide property test pins).
//!
//! It recognizes just enough structure for the lint rules: identifiers
//! (including raw `r#ident`), lifetimes vs. char literals, all the string
//! flavors (`"…"`, `r#"…"#`, `b"…"`, `br"…"`, `c"…"`), nested block
//! comments, numbers with suffixes, and multi-character punctuation
//! (`::`, `->`, `..=`, …). It does **not** parse; rules pattern-match on
//! the token stream.

/// Classification of a [`Token`]. `Whitespace`, `LineComment` and
/// `BlockComment` are "trivia": rules skip them via
/// [`significant`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// A run of whitespace characters.
    Whitespace,
    /// `// …` up to (not including) the newline. Doc line comments too.
    LineComment,
    /// `/* … */`, nesting handled. Doc block comments too.
    BlockComment,
    /// Identifier or keyword, including raw identifiers (`r#match`).
    Ident,
    /// A lifetime such as `'a` (or the loop label form `'outer`).
    Lifetime,
    /// Integer or float literal, including any type suffix (`1_000u32`).
    Number,
    /// String-like literal: `"…"`, `r"…"`, `b"…"`, `br#"…"#`, `c"…"`,
    /// or a char/byte-char literal `'x'` / `b'\n'`.
    Str,
    /// A single punctuation token, possibly multi-character (`::`, `=>`).
    Punct,
}

/// One lexed token: its kind, the exact source slice it covers, and the
/// 1-based line its first byte sits on.
#[derive(Debug, Clone)]
pub struct Token<'a> {
    pub kind: TokenKind,
    pub text: &'a str,
    pub line: u32,
}

/// A lexing failure, with the 1-based line where it was detected.
#[derive(Debug, Clone)]
pub struct LexError {
    pub line: u32,
    pub message: String,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

/// Multi-character punctuation, longest first so greedy matching is
/// correct (`..=` before `..` before `.`).
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "...", "..=", "..", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<",
    ">>", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=",
];

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Lexer<'a> {
    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn peek_at(&self, offset: usize) -> Option<char> {
        self.src.get(self.pos + offset..)?.chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        if c == '\n' {
            self.line += 1;
        }
        self.pos += c.len_utf8();
        Some(c)
    }

    fn error(&self, message: impl Into<String>) -> LexError {
        LexError {
            line: self.line,
            message: message.into(),
        }
    }

    /// Consumes a double-quoted body after the opening `"`, honoring
    /// backslash escapes.
    fn quoted_body(&mut self) -> Result<(), LexError> {
        loop {
            match self.bump() {
                Some('\\') => {
                    self.bump();
                }
                Some('"') => return Ok(()),
                Some(_) => {}
                None => return Err(self.error("unterminated string literal")),
            }
        }
    }

    /// Consumes `#…#"…"#…#` after the leading `r` (hashes may be zero).
    fn raw_string_body(&mut self) -> Result<(), LexError> {
        let mut hashes = 0usize;
        while self.peek() == Some('#') {
            hashes += 1;
            self.bump();
        }
        if self.bump() != Some('"') {
            return Err(self.error("malformed raw string opener"));
        }
        loop {
            match self.bump() {
                Some('"') => {
                    let mut seen = 0usize;
                    while seen < hashes && self.peek() == Some('#') {
                        seen += 1;
                        self.bump();
                    }
                    if seen == hashes {
                        return Ok(());
                    }
                }
                Some(_) => {}
                None => return Err(self.error("unterminated raw string literal")),
            }
        }
    }

    /// Consumes a char/byte-char body after the opening `'`.
    fn char_body(&mut self) -> Result<(), LexError> {
        match self.bump() {
            Some('\\') => {
                self.bump();
                // `\u{…}` escapes run until the closing brace.
                if self.src[..self.pos].ends_with('u') && self.peek() == Some('{') {
                    while let Some(c) = self.bump() {
                        if c == '}' {
                            break;
                        }
                    }
                }
            }
            Some(_) => {}
            None => return Err(self.error("unterminated char literal")),
        }
        if self.bump() == Some('\'') {
            Ok(())
        } else {
            Err(self.error("unterminated char literal"))
        }
    }

    fn ident_run(&mut self) {
        while self.peek().is_some_and(is_ident_continue) {
            self.bump();
        }
    }

    /// Lexes one token starting at `self.pos`; returns its kind.
    fn next_kind(&mut self) -> Result<TokenKind, LexError> {
        let c = self.peek().expect("next_kind called at end of input");

        if c.is_whitespace() {
            while self.peek().is_some_and(char::is_whitespace) {
                self.bump();
            }
            return Ok(TokenKind::Whitespace);
        }

        if c == '/' {
            match self.peek_at(1) {
                Some('/') => {
                    while self.peek().is_some_and(|c| c != '\n') {
                        self.bump();
                    }
                    return Ok(TokenKind::LineComment);
                }
                Some('*') => {
                    self.bump();
                    self.bump();
                    let mut depth = 1usize;
                    loop {
                        match self.bump() {
                            Some('/') if self.peek() == Some('*') => {
                                self.bump();
                                depth += 1;
                            }
                            Some('*') if self.peek() == Some('/') => {
                                self.bump();
                                depth -= 1;
                                if depth == 0 {
                                    return Ok(TokenKind::BlockComment);
                                }
                            }
                            Some(_) => {}
                            None => return Err(self.error("unterminated block comment")),
                        }
                    }
                }
                _ => {}
            }
        }

        // String-family prefixes: r"", r#""#, r#ident, b"", b'', br"", c"".
        if matches!(c, 'r' | 'b' | 'c') {
            let one = self.peek_at(1);
            let two = self.peek_at(2);
            match (c, one, two) {
                ('r', Some('"'), _) | ('r', Some('#'), Some('"' | '#')) => {
                    self.bump();
                    self.raw_string_body()?;
                    return Ok(TokenKind::Str);
                }
                ('r', Some('#'), Some(i)) if is_ident_start(i) => {
                    self.bump();
                    self.bump();
                    self.ident_run();
                    return Ok(TokenKind::Ident);
                }
                ('b' | 'c', Some('"'), _) => {
                    self.bump();
                    self.bump();
                    self.quoted_body()?;
                    return Ok(TokenKind::Str);
                }
                ('b', Some('\''), _) => {
                    self.bump();
                    self.bump();
                    self.char_body()?;
                    return Ok(TokenKind::Str);
                }
                ('b', Some('r'), Some('"' | '#')) => {
                    self.bump();
                    self.bump();
                    self.raw_string_body()?;
                    return Ok(TokenKind::Str);
                }
                _ => {}
            }
        }

        if is_ident_start(c) {
            self.ident_run();
            return Ok(TokenKind::Ident);
        }

        if c == '"' {
            self.bump();
            self.quoted_body()?;
            return Ok(TokenKind::Str);
        }

        if c == '\'' {
            // Lifetime (`'a`, not followed by a closing quote) vs. char
            // literal (`'a'`, `'\n'`, `'∞'`).
            if self.peek_at(1).is_some_and(is_ident_start) {
                let mut probe = self.pos + 1;
                while self.src[probe..]
                    .chars()
                    .next()
                    .is_some_and(is_ident_continue)
                {
                    probe += self.src[probe..]
                        .chars()
                        .next()
                        .expect("checked")
                        .len_utf8();
                }
                if self.bytes.get(probe) != Some(&b'\'') {
                    self.bump();
                    self.ident_run();
                    return Ok(TokenKind::Lifetime);
                }
            }
            self.bump();
            self.char_body()?;
            return Ok(TokenKind::Str);
        }

        if c.is_ascii_digit() {
            self.bump();
            if c == '0' && matches!(self.peek(), Some('x' | 'o' | 'b')) {
                self.bump();
            }
            while self
                .peek()
                .is_some_and(|c| c.is_ascii_hexdigit() || c == '_')
            {
                self.bump();
            }
            // A fractional part only if the dot is followed by a digit
            // (so `0..n` and `1.max(2)` stay method/range punctuation).
            if self.peek() == Some('.') && self.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
                self.bump();
                while self.peek().is_some_and(|c| c.is_ascii_digit() || c == '_') {
                    self.bump();
                }
            }
            // Exponent, only when it looks like one (`1e9`, `2.5E-3`).
            if matches!(self.peek(), Some('e' | 'E')) {
                let after = self.peek_at(1);
                let signed_digit = matches!(after, Some('+' | '-'))
                    && self.peek_at(2).is_some_and(|c| c.is_ascii_digit());
                if after.is_some_and(|c| c.is_ascii_digit()) || signed_digit {
                    self.bump();
                    if matches!(self.peek(), Some('+' | '-')) {
                        self.bump();
                    }
                    while self.peek().is_some_and(|c| c.is_ascii_digit() || c == '_') {
                        self.bump();
                    }
                }
            }
            // Type suffix (`u32`, `f64`, `usize`) rides with the number.
            if self.peek().is_some_and(is_ident_start) {
                self.ident_run();
            }
            return Ok(TokenKind::Number);
        }

        for p in PUNCTS {
            if self.src[self.pos..].starts_with(p) {
                for _ in 0..p.len() {
                    self.bump();
                }
                return Ok(TokenKind::Punct);
            }
        }
        self.bump();
        Ok(TokenKind::Punct)
    }
}

/// Tokenizes `source` losslessly: the concatenation of the returned
/// tokens' `text` slices is byte-identical to `source`.
///
/// # Errors
///
/// Unterminated strings, chars or block comments (the only constructs
/// with a required closer) report the line they started failing on.
pub fn tokenize(source: &str) -> Result<Vec<Token<'_>>, LexError> {
    let mut lexer = Lexer {
        src: source,
        bytes: source.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut tokens = Vec::new();
    while lexer.pos < source.len() {
        let start = lexer.pos;
        let line = lexer.line;
        let kind = lexer.next_kind()?;
        debug_assert!(lexer.pos > start, "lexer must always make progress");
        tokens.push(Token {
            kind,
            text: &source[start..lexer.pos],
            line,
        });
    }
    Ok(tokens)
}

/// Filters trivia out of a token stream: the rules operate on the
/// significant tokens only (identifiers, literals, punctuation).
pub fn significant<'a, 'b>(tokens: &'b [Token<'a>]) -> Vec<&'b Token<'a>> {
    tokens
        .iter()
        .filter(|t| {
            !matches!(
                t.kind,
                TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(src: &str) -> Vec<Token<'_>> {
        let tokens = tokenize(src).expect("tokenize");
        let rebuilt: String = tokens.iter().map(|t| t.text).collect();
        assert_eq!(rebuilt, src, "round-trip must be byte-identical");
        tokens
    }

    #[test]
    fn idents_keywords_and_raw_idents() {
        let tokens = roundtrip("fn r#match(x_1: u32) {}");
        let idents: Vec<&str> = tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect();
        assert_eq!(idents, ["fn", "r#match", "x_1", "u32"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let tokens = roundtrip("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(tokens
            .iter()
            .any(|t| t.kind == TokenKind::Lifetime && t.text == "'a"));
        assert!(tokens
            .iter()
            .any(|t| t.kind == TokenKind::Str && t.text == "'x'"));
    }

    #[test]
    fn string_flavors() {
        for src in [
            r#""plain \"escaped\"""#,
            r##"r#"raw "inner" body"#"##,
            r#"b"bytes""#,
            r#"br"raw bytes""#,
            "b'\\n'",
            "'\\u{1F600}'",
        ] {
            let tokens = roundtrip(src);
            assert_eq!(tokens.len(), 1, "{src:?}");
            assert_eq!(tokens[0].kind, TokenKind::Str, "{src:?}");
        }
    }

    #[test]
    fn nested_block_comments() {
        let tokens = roundtrip("/* outer /* inner */ still outer */ x");
        assert_eq!(tokens[0].kind, TokenKind::BlockComment);
        assert!(tokenize("/* unterminated").is_err());
    }

    #[test]
    fn numbers_with_suffixes_ranges_and_methods() {
        let tokens = roundtrip("0..n 1.max(2) 2.5e-3f64 0xFF_u8 1_000");
        let numbers: Vec<&str> = tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Number)
            .map(|t| t.text)
            .collect();
        assert_eq!(numbers, ["0", "1", "2", "2.5e-3f64", "0xFF_u8", "1_000"]);
        assert!(tokens
            .iter()
            .any(|t| t.kind == TokenKind::Punct && t.text == ".."));
    }

    #[test]
    fn multi_char_puncts_lex_greedily() {
        let tokens = roundtrip("a..=b c::d e->f g=>h i<<=j");
        let puncts: Vec<&str> = tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Punct)
            .map(|t| t.text)
            .collect();
        assert_eq!(puncts, ["..=", "::", "->", "=>", "<<="]);
    }

    #[test]
    fn line_numbers_are_one_based_and_track_newlines() {
        let tokens = roundtrip("a\nb\n\nc");
        let lines: Vec<(u32, &str)> = tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| (t.line, t.text))
            .collect();
        assert_eq!(lines, [(1, "a"), (2, "b"), (4, "c")]);
    }
}
