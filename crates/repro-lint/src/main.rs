//! CLI for the workspace linter.
//!
//! ```text
//! cargo run -p repro-lint --release -- --check
//! ```
//!
//! Prints findings as `path:line: [rule] message`. `--check` exits
//! nonzero when any unwaivered finding (or stale waiver) remains — the
//! CI gate. `--verbose` additionally lists waived findings with their
//! reasons. `--root <dir>` lints a different tree (default: the current
//! directory).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut check = false;
    let mut verbose = false;
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--verbose" => verbose = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("repro-lint: --root requires a directory argument");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("repro-lint: unknown argument `{other}`");
                eprintln!("usage: repro-lint [--check] [--verbose] [--root <dir>]");
                return ExitCode::from(2);
            }
        }
    }

    let report = match repro_lint::run(&root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("repro-lint: error: {e}");
            return ExitCode::from(2);
        }
    };

    for finding in &report.findings {
        println!("{finding}");
    }
    for waiver in &report.stale_waivers {
        println!(
            "lint-waivers.toml:{}: [stale-waiver] waiver for `{}` on `{}` (pattern `{}`) \
             matched nothing; remove it",
            waiver.line, waiver.rule, waiver.file, waiver.pattern
        );
    }
    if verbose {
        for (finding, reason) in &report.waived {
            println!("{finding} [waived: {reason}]");
        }
    }
    println!(
        "repro-lint: {} finding(s), {} waived, {} stale waiver(s), {} files scanned",
        report.findings.len(),
        report.waived.len(),
        report.stale_waivers.len(),
        report.files_scanned
    );

    if check && !report.is_clean() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
