//! The `lint-waivers.toml` parser and matcher.
//!
//! The workspace builds offline (no `toml` crate), so this module parses
//! the one shape the waiver file uses — a sequence of `[[waiver]]` tables
//! with `key = "value"` string entries — and rejects anything else.
//! Every waiver must carry a non-trivial `reason`: a waiver that cannot
//! say *why* the finding is acceptable is itself a finding.

/// One entry from `lint-waivers.toml`. A finding is waived when its rule
/// matches `rule`, its path ends with `file`, and the source line it
/// flags contains `pattern`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// Rule id the waiver applies to (e.g. `determinism`).
    pub rule: String,
    /// Path suffix the waiver applies to (e.g. `service/front.rs`).
    pub file: String,
    /// Substring of the flagged source line.
    pub pattern: String,
    /// Why the finding is acceptable. Required, and required to be more
    /// than a shrug.
    pub reason: String,
    /// 1-based line of the `[[waiver]]` header, for stale-waiver reports.
    pub line: u32,
}

impl Waiver {
    /// Whether this waiver covers a finding produced by `rule` at `path`
    /// on a line whose text is `line_text`.
    pub fn matches(&self, rule: &str, path: &str, line_text: &str) -> bool {
        rule == self.rule && path.ends_with(&self.file) && line_text.contains(&self.pattern)
    }
}

/// Parses the waiver file.
///
/// # Errors
///
/// Reports the first malformed line: unknown keys, missing required
/// keys, non-string values, or a `reason` too short to justify anything.
pub fn parse(source: &str) -> Result<Vec<Waiver>, String> {
    let mut waivers: Vec<Waiver> = Vec::new();
    let mut current: Option<Waiver> = None;

    for (index, raw) in source.lines().enumerate() {
        let line_no = (index + 1) as u32;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[waiver]]" {
            if let Some(done) = current.take() {
                finish(done, &mut waivers)?;
            }
            current = Some(Waiver {
                rule: String::new(),
                file: String::new(),
                pattern: String::new(),
                reason: String::new(),
                line: line_no,
            });
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!(
                "lint-waivers.toml:{line_no}: expected `key = \"value\"` or `[[waiver]]`, got `{line}`"
            ));
        };
        let Some(waiver) = current.as_mut() else {
            return Err(format!(
                "lint-waivers.toml:{line_no}: key `{}` outside any [[waiver]] table",
                key.trim()
            ));
        };
        let value = value.trim();
        let unquoted = value
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or_else(|| {
                format!(
                    "lint-waivers.toml:{line_no}: value for `{}` must be a double-quoted string",
                    key.trim()
                )
            })?;
        if unquoted.contains('\\') {
            return Err(format!(
                "lint-waivers.toml:{line_no}: escape sequences are not supported; use a plain substring pattern"
            ));
        }
        let slot = match key.trim() {
            "rule" => &mut waiver.rule,
            "file" => &mut waiver.file,
            "pattern" => &mut waiver.pattern,
            "reason" => &mut waiver.reason,
            other => {
                return Err(format!(
                    "lint-waivers.toml:{line_no}: unknown key `{other}` (expected rule/file/pattern/reason)"
                ))
            }
        };
        if !slot.is_empty() {
            return Err(format!(
                "lint-waivers.toml:{line_no}: duplicate key `{}`",
                key.trim()
            ));
        }
        *slot = unquoted.to_string();
    }
    if let Some(done) = current.take() {
        finish(done, &mut waivers)?;
    }
    Ok(waivers)
}

fn finish(waiver: Waiver, out: &mut Vec<Waiver>) -> Result<(), String> {
    let at = waiver.line;
    for (name, value) in [
        ("rule", &waiver.rule),
        ("file", &waiver.file),
        ("pattern", &waiver.pattern),
        ("reason", &waiver.reason),
    ] {
        if value.is_empty() {
            return Err(format!(
                "lint-waivers.toml:{at}: waiver is missing required key `{name}`"
            ));
        }
    }
    // A reason has to actually explain something. Four words is a floor,
    // not a standard, but it rejects "ok", "legacy" and friends.
    if waiver.reason.split_whitespace().count() < 4 {
        return Err(format!(
            "lint-waivers.toml:{at}: reason `{}` is too short to justify a waiver",
            waiver.reason
        ));
    }
    out.push(waiver);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"
# comment
[[waiver]]
rule = "determinism"
file = "service/front.rs"
pattern = "deadline"
reason = "the batch linger deadline is wall-clock by design"

[[waiver]]
rule = "allow-attr"
file = "service/cache.rs"
pattern = "unreachable_patterns"
reason = "single-planner builds collapse the match arms"
"#;

    #[test]
    fn parses_waivers_and_matches_by_suffix_and_substring() {
        let waivers = parse(GOOD).expect("parse");
        assert_eq!(waivers.len(), 2);
        assert!(waivers[0].matches(
            "determinism",
            "crates/core/src/service/front.rs",
            "let deadline = start + linger;"
        ));
        assert!(!waivers[0].matches("determinism", "crates/core/src/service/front.rs", "other"));
        assert!(!waivers[0].matches(
            "panic-hygiene",
            "crates/core/src/service/front.rs",
            "deadline"
        ));
        assert!(!waivers[0].matches("determinism", "crates/core/src/solver/front.rs", "deadline"));
    }

    #[test]
    fn rejects_missing_keys_short_reasons_and_unknown_keys() {
        assert!(parse("[[waiver]]\nrule = \"x\"")
            .unwrap_err()
            .contains("missing required key"));
        let short = "[[waiver]]\nrule = \"r\"\nfile = \"f\"\npattern = \"p\"\nreason = \"ok\"";
        assert!(parse(short).unwrap_err().contains("too short"));
        let unknown = "[[waiver]]\nbogus = \"x\"";
        assert!(parse(unknown).unwrap_err().contains("unknown key"));
        let bare = "rule = \"x\"";
        assert!(parse(bare).unwrap_err().contains("outside any"));
    }
}
