//! `repro-lint` — the workspace's invariant linter.
//!
//! A hand-rolled static-analysis pass (own lexer, no external parser
//! crates — the build environment is offline) over every Rust source in
//! the workspace, enforcing the invariants the serving stack depends on:
//!
//! - **Locking discipline** — raw `std::sync` primitives live only in
//!   `crates/core/src/sync.rs`; everyone else uses the ranked wrappers.
//! - **Lock order** — a static simulation of guard lifetimes that
//!   mirrors the runtime rank checker: acquisitions must strictly
//!   increase in rank, and violations cite both acquisition sites.
//! - **Determinism** — no wall clocks, randomness or hash-ordered
//!   iteration in the modules whose outputs are pinned bit-identical.
//! - **Panic hygiene** — no `unwrap`/`expect`/`panic!` in non-test
//!   serving and solver code.
//! - **Consistency** — the bench-summary schema version agrees across
//!   code, document and data; error-enum variants are all alive.
//! - **Hygiene** — `#[allow]` attributes and stale comment markers are
//!   either justified in `lint-waivers.toml` or removed.
//!
//! See the "Static analysis & concurrency discipline" section of
//! `DESIGN.md` for the rule catalog and waiver policy, and
//! [`rules`] for the rule implementations.

use std::fs;
use std::path::{Path, PathBuf};

pub mod lexer;
pub mod rules;
pub mod waivers;

use rules::{AuxDocs, Finding, SourceFile};
use waivers::Waiver;

/// Outcome of a full lint run.
#[derive(Debug)]
pub struct Report {
    /// Findings not covered by any waiver — these fail `--check`.
    pub findings: Vec<Finding>,
    /// Findings covered by a waiver, paired with the waiver's reason.
    pub waived: Vec<(Finding, String)>,
    /// Waivers that matched nothing — stale entries also fail `--check`.
    pub stale_waivers: Vec<Waiver>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Whether the run is clean enough for CI: no unwaivered findings
    /// and no stale waivers.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.stale_waivers.is_empty()
    }
}

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", ".github", "node_modules"];

/// Collects every `.rs` file under `root` (sorted, repo-relative paths),
/// skipping build output and vendored stand-ins.
pub fn workspace_sources(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries = fs::read_dir(&dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("reading {}: {e}", dir.display()))?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

fn relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Runs the full lint over the workspace at `root`.
///
/// # Errors
///
/// I/O failures, lexer failures (a source file the lexer cannot
/// round-trip is itself a hard error), and malformed waiver files.
pub fn run(root: &Path) -> Result<Report, String> {
    let mut files = Vec::new();
    for path in workspace_sources(root)? {
        let source =
            fs::read_to_string(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
        files.push(SourceFile::parse(&relative(root, &path), &source)?);
    }

    let read_aux = |name: &str| -> Option<(String, String)> {
        let content = fs::read_to_string(root.join(name)).ok()?;
        Some((name.to_string(), content))
    };
    let aux = AuxDocs {
        design_md: read_aux("DESIGN.md"),
        bench_summary: read_aux("BENCH_SUMMARY.json"),
    };

    let waiver_list = match fs::read_to_string(root.join("lint-waivers.toml")) {
        Ok(text) => waivers::parse(&text)?,
        Err(_) => Vec::new(),
    };

    let all = rules::check_all(&files, &aux);
    let mut findings = Vec::new();
    let mut waived = Vec::new();
    let mut used = vec![false; waiver_list.len()];
    for finding in all {
        let hit = waiver_list
            .iter()
            .position(|w| w.matches(finding.rule, &finding.path, &finding.line_text));
        match hit {
            Some(i) => {
                used[i] = true;
                waived.push((finding, waiver_list[i].reason.clone()));
            }
            None => findings.push(finding),
        }
    }
    let stale_waivers = waiver_list
        .into_iter()
        .zip(used)
        .filter_map(|(w, u)| (!u).then_some(w))
        .collect();

    Ok(Report {
        findings,
        waived,
        stale_waivers,
        files_scanned: files.len(),
    })
}
