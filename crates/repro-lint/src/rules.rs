//! The lint rules.
//!
//! Every rule pattern-matches on the significant-token stream produced by
//! [`crate::lexer`] — no parsing, no type information. The rules are
//! tuned to this workspace: they know its lock ranks, its pinned
//! bit-identity modules, and its error enums. Findings they cannot prove
//! are not emitted (under-approximation); the runtime rank checker in
//! `crates/core/src/sync.rs` is the sound backstop for what the static
//! side cannot see.
//!
//! Rule catalog (ids as they appear in findings and `lint-waivers.toml`):
//!
//! | id                | what it enforces                                   |
//! |-------------------|----------------------------------------------------|
//! | `lock-discipline` | no raw locking primitives outside `sync.rs`        |
//! | `lock-order`      | static lock acquisitions follow the rank order     |
//! | `determinism`     | no wall-clock/RNG/map-iteration in pinned modules  |
//! | `panic-hygiene`   | no unwrap/expect/panic in non-test service+solver  |
//! | `allow-attr`      | every `#[allow(…)]` is waivered or deleted         |
//! | `stale-marker`    | no lingering task markers in comments              |
//! | `consistency`     | schema versions agree; error variants are alive    |

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use crate::lexer::{self, TokenKind};

/// One lint finding, pointing at a single source line.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id (see the module-level catalog).
    pub rule: &'static str,
    /// Repo-relative path of the offending file.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Exact text of the offending line (what waiver patterns match).
    pub line_text: String,
    /// Human-readable description of the violation.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// A significant token, owned, with its test-code classification.
#[derive(Debug, Clone)]
pub struct STok {
    pub text: String,
    pub line: u32,
    pub kind: TokenKind,
    /// Inside a `#[cfg(test)]` item (or a file under a `tests/` dir).
    pub test: bool,
}

/// One lexed source file ready for rule matching.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// The source, split into lines (for finding/waiver text).
    pub lines: Vec<String>,
    /// Significant tokens (trivia removed), test spans marked.
    pub toks: Vec<STok>,
    /// Comment tokens, for the marker rule.
    pub comments: Vec<(u32, String)>,
}

impl SourceFile {
    /// Lexes `source` into a rule-ready file.
    ///
    /// # Errors
    ///
    /// Propagates lexer errors (unterminated literals/comments).
    pub fn parse(path: &str, source: &str) -> Result<SourceFile, String> {
        let tokens = lexer::tokenize(source).map_err(|e| format!("{path}: {e}"))?;
        let mut toks = Vec::new();
        let mut comments = Vec::new();
        for t in &tokens {
            match t.kind {
                TokenKind::Whitespace => {}
                TokenKind::LineComment | TokenKind::BlockComment => {
                    comments.push((t.line, t.text.to_string()));
                }
                _ => toks.push(STok {
                    text: t.text.to_string(),
                    line: t.line,
                    kind: t.kind,
                    test: false,
                }),
            }
        }
        let mut file = SourceFile {
            path: path.to_string(),
            lines: source.lines().map(str::to_string).collect(),
            toks,
            comments,
        };
        mark_test_spans(&mut file);
        Ok(file)
    }

    fn text(&self, i: usize) -> &str {
        self.toks.get(i).map_or("", |t| t.text.as_str())
    }

    fn is_ident(&self, i: usize) -> bool {
        self.toks.get(i).is_some_and(|t| t.kind == TokenKind::Ident)
    }

    fn finding(&self, rule: &'static str, line: u32, message: String) -> Finding {
        Finding {
            rule,
            path: self.path.clone(),
            line,
            line_text: self
                .lines
                .get(line.saturating_sub(1) as usize)
                .cloned()
                .unwrap_or_default(),
            message,
        }
    }
}

/// Index of the token closing the brace opened at `open` (which must be
/// `{`); saturates at the end of the stream if unbalanced.
fn match_brace(file: &SourceFile, open: usize) -> usize {
    let mut depth = 0usize;
    for i in open..file.toks.len() {
        match file.text(i) {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    file.toks.len().saturating_sub(1)
}

/// Index of the token closing the paren opened at `open`.
fn match_paren(file: &SourceFile, open: usize) -> usize {
    let mut depth = 0usize;
    for i in open..file.toks.len() {
        match file.text(i) {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    file.toks.len().saturating_sub(1)
}

/// Index of the `]` closing the attribute bracket at `open`.
fn match_bracket(file: &SourceFile, open: usize) -> usize {
    let mut depth = 0usize;
    for i in open..file.toks.len() {
        match file.text(i) {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    file.toks.len().saturating_sub(1)
}

/// Marks tokens covered by `#[cfg(test)]` items (and whole files under a
/// `tests/` directory) as test code.
fn mark_test_spans(file: &mut SourceFile) {
    if file.path.contains("/tests/") || file.path.starts_with("tests/") {
        for t in &mut file.toks {
            t.test = true;
        }
        return;
    }
    let mut i = 0usize;
    while i < file.toks.len() {
        let is_cfg_test = file.text(i) == "#"
            && file.text(i + 1) == "["
            && file.text(i + 2) == "cfg"
            && file.text(i + 3) == "("
            && file.text(i + 4) == "test"
            && file.text(i + 5) == ")"
            && file.text(i + 6) == "]";
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Skip any further attributes stacked on the same item.
        let mut j = i + 7;
        while file.text(j) == "#" && file.text(j + 1) == "[" {
            j = match_bracket(file, j + 1) + 1;
        }
        // The item ends at its matching `}` (or at `;` for bodyless ones).
        let mut end = file.toks.len().saturating_sub(1);
        for k in j..file.toks.len() {
            match file.text(k) {
                ";" => {
                    end = k;
                    break;
                }
                "{" => {
                    end = match_brace(file, k);
                    break;
                }
                _ => {}
            }
        }
        for t in &mut file.toks[i..=end] {
            t.test = true;
        }
        i = end + 1;
    }
}

// ---------------------------------------------------------------------------
// lock-discipline
// ---------------------------------------------------------------------------

/// Raw locking primitives are only allowed inside `crates/core/src/sync.rs`
/// — everything else must go through the ranked wrappers, or the runtime
/// rank checker has blind spots.
pub fn lock_discipline(file: &SourceFile, out: &mut Vec<Finding>) {
    if file.path.ends_with("crates/core/src/sync.rs") {
        return;
    }
    const RAW_TYPES: &[&str] = &["Mutex", "MutexGuard", "Condvar", "RwLock", "PoisonError"];
    const RAW_METHODS: &[&str] = &["lock", "try_lock", "wait_timeout", "wait_while"];
    for i in 0..file.toks.len() {
        if !file.is_ident(i) {
            continue;
        }
        let t = file.text(i);
        if RAW_TYPES.contains(&t) {
            out.push(file.finding(
                "lock-discipline",
                file.toks[i].line,
                format!(
                    "raw `{t}` outside crates/core/src/sync.rs; use the ranked primitives \
                     (`sync::RankedMutex`, `sync::lock`, `sync::wait`)"
                ),
            ));
        } else if RAW_METHODS.contains(&t)
            && file.text(i + 1) == "("
            && file.text(i.wrapping_sub(1)) == "."
        {
            out.push(file.finding(
                "lock-discipline",
                file.toks[i].line,
                format!(
                    "raw `.{t}(…)` method call outside crates/core/src/sync.rs; acquire locks \
                     via the ranked free functions so the rank checker sees them"
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// determinism
// ---------------------------------------------------------------------------

/// Modules whose outputs are pinned bit-identical across runs and thread
/// schedules. Wall-clock reads, randomness and hash-map iteration order
/// are all nondeterminism that could leak into plan bits.
///
/// The `crates/core/src/solver/` entry is a directory match and covers
/// every kernel under it — in particular `solver/kernel.rs`, the
/// branch-free quantized DP kernels whose select/reconstruct loops are
/// exactly the code the bit-identity pins run through (see
/// `kernel_module_is_determinism_pinned`). New solver kernels are picked
/// up automatically; do not narrow this to a file list.
///
/// `artifact.rs` is pinned because the serving hot path caches its JSON
/// rendering verbatim: the cached bytes are only byte-identical to a
/// fresh `to_artifact().to_json()` if that rendering is deterministic.
///
/// `obs/` is pinned so the observability subsystem cannot quietly grow
/// clock reads: its receipts hash the served bytes and must stay a pure
/// function of them, with the single monotonic-clock site explicitly
/// waivered rather than exempted wholesale.
fn pinned(path: &str) -> bool {
    path.contains("crates/core/src/solver/")
        || path.contains("crates/core/src/service/")
        || path.contains("crates/core/src/server/")
        || path.contains("crates/core/src/registry/")
        || path.contains("crates/core/src/obs/")
        || path.ends_with("crates/core/src/schedule.rs")
        || path.ends_with("crates/core/src/mckp.rs")
        || path.ends_with("crates/core/src/seqdp.rs")
        || path.ends_with("crates/core/src/artifact.rs")
}

/// Flags nondeterminism sources in pinned modules (non-test code only).
pub fn determinism(file: &SourceFile, out: &mut Vec<Finding>) {
    if !pinned(&file.path) {
        return;
    }
    const MAP_ITERATORS: &[&str] = &[
        "iter",
        "iter_mut",
        "keys",
        "values",
        "values_mut",
        "drain",
        "retain",
        "into_iter",
        "into_keys",
        "into_values",
    ];
    // Names declared as HashMap/HashSet in this file (fields, params,
    // lets) — iterating them observes hash order.
    let mut hashed: HashSet<&str> = HashSet::new();
    for i in 0..file.toks.len() {
        if file.text(i) != "HashMap" && file.text(i) != "HashSet" {
            continue;
        }
        let field_decl = i >= 2 && file.text(i - 1) == ":" && file.is_ident(i - 2);
        let let_binding = i >= 3
            && file.text(i - 1) == "="
            && file.is_ident(i - 2)
            && (file.text(i - 3) == "let" || file.text(i - 3) == "mut");
        if field_decl || let_binding {
            hashed.insert(file.text(i - 2));
        }
    }
    let hashed: HashSet<String> = hashed.iter().map(|s| s.to_string()).collect();

    for i in 0..file.toks.len() {
        if file.toks[i].test || !file.is_ident(i) {
            continue;
        }
        let t = file.text(i);
        let line = file.toks[i].line;
        if t == "Instant" && file.text(i + 1) == "::" && file.text(i + 2) == "now" {
            out.push(file.finding(
                "determinism",
                line,
                "wall-clock read (`Instant::now`) in a bit-identity-pinned module".into(),
            ));
        } else if t == "SystemTime" {
            out.push(file.finding(
                "determinism",
                line,
                "wall-clock type (`SystemTime`) in a bit-identity-pinned module".into(),
            ));
        } else if matches!(t, "thread_rng" | "from_entropy" | "random")
            || (t == "rand" && file.text(i + 1) == "::")
        {
            out.push(file.finding(
                "determinism",
                line,
                format!("randomness source (`{t}`) in a bit-identity-pinned module"),
            ));
        } else if hashed.contains(t)
            && file.text(i + 1) == "."
            && MAP_ITERATORS.contains(&file.text(i + 2))
            && file.text(i + 3) == "("
        {
            out.push(file.finding(
                "determinism",
                line,
                format!(
                    "iteration over hash-ordered `{t}` (`.{}()`) in a pinned module; \
                     iterate a sorted view or an ordered container instead",
                    file.text(i + 2)
                ),
            ));
        } else if hashed.contains(t)
            && (file.text(i.wrapping_sub(1)) == "in"
                || (file.text(i.wrapping_sub(1)) == "&" && file.text(i.wrapping_sub(2)) == "in")
                || (file.text(i.wrapping_sub(1)) == "mut"
                    && file.text(i.wrapping_sub(2)) == "&"
                    && file.text(i.wrapping_sub(3)) == "in"))
        {
            out.push(file.finding(
                "determinism",
                line,
                format!("`for … in {t}` iterates a hash-ordered container in a pinned module"),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// panic-hygiene
// ---------------------------------------------------------------------------

/// Serving-stack and solver code must not panic: a worker panic tears
/// down the service and poisons nothing useful. Non-test code under
/// `service/`, `server/`, `registry/` and `solver/` must use the typed
/// error paths (`ServiceError`/`ServerError`/`RegistryError`/
/// `DaeDvfsError`) — on the HTTP and registry I/O paths a panic would
/// turn one bad connection or one corrupt file into a dead server.
pub fn panic_hygiene(file: &SourceFile, out: &mut Vec<Finding>) {
    if !(file.path.contains("crates/core/src/service/")
        || file.path.contains("crates/core/src/server/")
        || file.path.contains("crates/core/src/registry/")
        || file.path.contains("crates/core/src/solver/")
        || file.path.contains("crates/core/src/obs/"))
    {
        return;
    }
    const MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
    for i in 0..file.toks.len() {
        if file.toks[i].test || !file.is_ident(i) {
            continue;
        }
        let t = file.text(i);
        let line = file.toks[i].line;
        if (t == "unwrap" || t == "expect")
            && file.text(i.wrapping_sub(1)) == "."
            && file.text(i + 1) == "("
        {
            out.push(file.finding(
                "panic-hygiene",
                line,
                format!(
                    "`.{t}()` in non-test serving/solver code; return the typed error \
                     (`ServiceError`/`DaeDvfsError`) instead"
                ),
            ));
        } else if MACROS.contains(&t) && file.text(i + 1) == "!" {
            out.push(file.finding(
                "panic-hygiene",
                line,
                format!("`{t}!` in non-test serving/solver code; use the typed error paths"),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// allow-attr / stale-marker
// ---------------------------------------------------------------------------

/// Every `#[allow(…)]` is either justified (in `lint-waivers.toml`, with
/// a reason) or deleted. Silent lint exemptions rot.
pub fn allow_attr(file: &SourceFile, out: &mut Vec<Finding>) {
    for i in 0..file.toks.len() {
        if file.toks[i].test || file.text(i) != "#" {
            continue;
        }
        let open = if file.text(i + 1) == "[" {
            i + 1
        } else if file.text(i + 1) == "!" && file.text(i + 2) == "[" {
            i + 2
        } else {
            continue;
        };
        if file.text(open + 1) == "allow" {
            out.push(file.finding(
                "allow-attr",
                file.toks[i].line,
                format!(
                    "`#[allow({}…)]` — delete the exemption or waiver it with a reason",
                    file.text(open + 3)
                ),
            ));
        }
    }
}

/// Lingering task markers in comments: resolve them or turn them into
/// tracked roadmap items. (Marker words are spelled out of order here so
/// the rule does not flag its own implementation.)
pub fn stale_marker(file: &SourceFile, out: &mut Vec<Finding>) {
    let markers = [
        concat!("TO", "DO"),
        concat!("FIX", "ME"),
        concat!("XX", "X:"),
    ];
    for (line, text) in &file.comments {
        for m in markers {
            if text.contains(m) {
                out.push(file.finding(
                    "stale-marker",
                    *line,
                    format!("stale `{m}` marker in a comment; resolve it or move it to ROADMAP.md"),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// lock-order (static rank analysis)
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Default)]
struct FnInfo {
    /// Ranks acquired anywhere in the dynamic extent of a call.
    transient: BTreeSet<u16>,
    /// Rank of the guard this function returns, if its return type is a
    /// `RankedGuard`.
    returns_guard: Option<u16>,
    /// Calls to other known functions: `(impl_type, method)` keys.
    edges: Vec<(String, String)>,
}

#[derive(Debug)]
struct FnSite {
    file: usize,
    impl_type: String,
    name: String,
    body: (usize, usize),
}

/// The workspace's lock-rank model, extracted from `sync.rs` and the
/// `RankedMutex::new(rank::X, …)` construction sites.
#[derive(Debug, Default)]
pub struct RankModel {
    /// Rank-const name → (level, display name), e.g. `QUEUE → (10, "queue")`.
    pub levels: BTreeMap<String, (u16, String)>,
    /// Field name → level, e.g. `queue → 10`, `shards → 20`.
    pub fields: BTreeMap<String, u16>,
}

fn display_rank(model: &RankModel, level: u16) -> String {
    model
        .levels
        .values()
        .find(|(l, _)| *l == level)
        .map(|(_, n)| format!("`{n}` (rank {level})"))
        .unwrap_or_else(|| format!("rank {level}"))
}

/// Extracts the rank model: levels from the `LockRank` consts in
/// `sync.rs`, field ranks from every `RankedMutex::new(rank::X, …)`.
pub fn rank_model(files: &[SourceFile]) -> RankModel {
    let mut model = RankModel::default();
    for file in files {
        if !file.path.ends_with("crates/core/src/sync.rs") {
            continue;
        }
        for i in 0..file.toks.len() {
            if file.text(i) == "const"
                && file.is_ident(i + 1)
                && file.text(i + 2) == ":"
                && file.text(i + 3) == "LockRank"
            {
                let name = file.text(i + 1).to_string();
                let mut level = None;
                let mut display = None;
                for j in i + 4..(i + 24).min(file.toks.len()) {
                    if file.text(j) == "level" && file.text(j + 1) == ":" {
                        level = file.text(j + 2).parse::<u16>().ok();
                    }
                    if file.text(j) == "name" && file.text(j + 1) == ":" {
                        display = Some(file.text(j + 2).trim_matches('"').to_string());
                    }
                    if file.text(j) == ";" {
                        break;
                    }
                }
                if let (Some(level), Some(display)) = (level, display) {
                    model.levels.insert(name, (level, display));
                }
            }
        }
    }
    for file in files {
        for i in 0..file.toks.len() {
            if file.text(i) == "RankedMutex"
                && file.text(i + 1) == "::"
                && file.text(i + 2) == "new"
                && file.text(i + 3) == "("
                && file.text(i + 4) == "rank"
                && file.text(i + 5) == "::"
            {
                let Some(&(level, _)) = model.levels.get(file.text(i + 6)) else {
                    continue;
                };
                // The owning field is the nearest preceding `name:`.
                for j in (i.saturating_sub(40)..i).rev() {
                    if file.is_ident(j) && file.text(j + 1) == ":" {
                        model.fields.insert(file.text(j).to_string(), level);
                        break;
                    }
                }
            }
        }
    }
    model
}

/// Per-file map from binding/field names to the impl types they might
/// carry (only types that have lockful methods matter). A name can be
/// declared with different types in different structs of one file, so
/// this is a multi-map; call resolution unions the candidates.
fn local_types(file: &SourceFile, known: &HashSet<String>) -> HashMap<String, BTreeSet<String>> {
    let mut map: HashMap<String, BTreeSet<String>> = HashMap::new();
    for i in 0..file.toks.len() {
        // `name: …Type…` (fields and params).
        if file.is_ident(i) && file.text(i + 1) == ":" {
            for j in i + 2..(i + 14).min(file.toks.len()) {
                let t = file.text(j);
                if matches!(t, "," | ";" | ")" | "{" | "=") {
                    break;
                }
                if known.contains(t) {
                    map.entry(file.text(i).to_string())
                        .or_default()
                        .insert(t.to_string());
                    break;
                }
            }
        }
        // `let [mut] name = Type::…`.
        if file.text(i) == "let" {
            let (name_at, eq_at) = if file.text(i + 1) == "mut" {
                (i + 2, i + 3)
            } else {
                (i + 1, i + 2)
            };
            if file.is_ident(name_at) && file.text(eq_at) == "=" {
                let t = file.text(eq_at + 1);
                if known.contains(t) && file.text(eq_at + 2) == "::" {
                    map.entry(file.text(name_at).to_string())
                        .or_default()
                        .insert(t.to_string());
                }
            }
        }
    }
    map
}

/// Enumerates impl spans `(type name, body range)` in a file.
fn impl_spans(file: &SourceFile) -> Vec<(String, usize, usize, bool)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < file.toks.len() {
        if file.text(i) != "impl" {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        // Skip the generic parameter list.
        if file.text(j) == "<" {
            let mut depth = 0i32;
            while j < file.toks.len() {
                match file.text(j) {
                    "<" | "<<" => depth += if file.text(j) == "<<" { 2 } else { 1 },
                    ">" => depth -= 1,
                    ">>" => depth -= 2,
                    _ => {}
                }
                j += 1;
                if depth == 0 {
                    break;
                }
            }
        }
        // Collect the implemented type path; `for` restarts collection
        // (trait impls name the self type after `for`).
        let mut path: Vec<String> = Vec::new();
        let mut is_from_impl = false;
        let mut brace = None;
        let mut depth = 0i32;
        while j < file.toks.len() {
            match file.text(j) {
                "{" if depth == 0 => {
                    brace = Some(j);
                    break;
                }
                ";" if depth == 0 => break,
                "<" => depth += 1,
                ">" => depth -= 1,
                ">>" => depth -= 2,
                "for" if depth == 0 => path.clear(),
                t if depth == 0 && file.is_ident(j) => {
                    if t == "From" {
                        is_from_impl = true;
                    }
                    path.push(t.to_string());
                }
                _ => {}
            }
            j += 1;
        }
        let Some(open) = brace else {
            i = j + 1;
            continue;
        };
        let close = match_brace(file, open);
        if let Some(name) = path.last() {
            spans.push((name.clone(), open, close, is_from_impl));
        }
        i = open + 1;
    }
    spans
}

/// Enumerates function bodies with their enclosing impl type.
fn fn_sites(files: &[SourceFile]) -> Vec<FnSite> {
    let mut sites = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        let impls = impl_spans(file);
        let mut i = 0usize;
        while i < file.toks.len() {
            if file.text(i) != "fn" || !file.is_ident(i + 1) {
                i += 1;
                continue;
            }
            let name = file.text(i + 1).to_string();
            // Find the parameter list (skipping any generic params).
            let mut j = i + 2;
            let mut angle = 0i32;
            while j < file.toks.len() {
                match file.text(j) {
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    ">>" => angle -= 2,
                    "(" if angle <= 0 => break,
                    "{" | ";" => break,
                    _ => {}
                }
                j += 1;
            }
            if file.text(j) != "(" {
                i = j;
                continue;
            }
            let params_close = match_paren(file, j);
            let mut body = None;
            for k in params_close + 1..file.toks.len() {
                match file.text(k) {
                    "{" => {
                        body = Some((k, match_brace(file, k)));
                        break;
                    }
                    ";" => break,
                    _ => {}
                }
            }
            let Some(body) = body else {
                i = params_close + 1;
                continue;
            };
            let impl_type = impls
                .iter()
                .find(|(_, open, close, _)| body.0 > *open && body.1 <= *close)
                .map(|(n, _, _, _)| n.clone())
                .unwrap_or_default();
            sites.push(FnSite {
                file: fi,
                impl_type,
                name,
                body,
            });
            i = body.0 + 1;
        }
    }
    sites
}

/// Candidate impl types for a method call's receiver ident.
fn receiver_types(
    recv: &str,
    self_type: &str,
    types: &HashMap<String, BTreeSet<String>>,
) -> Vec<String> {
    if recv == "self" {
        vec![self_type.to_string()]
    } else {
        types
            .get(recv)
            .map(|set| set.iter().cloned().collect())
            .unwrap_or_default()
    }
}

/// Rank level acquired by a free `lock(…)` call at token `i` (the `lock`
/// ident), resolved from the argument's field name; `None` if the
/// argument is not a known ranked field.
fn direct_lock_level(file: &SourceFile, i: usize, model: &RankModel) -> Option<u16> {
    if file.text(i) != "lock" || file.text(i + 1) != "(" || file.text(i.wrapping_sub(1)) == "." {
        return None;
    }
    let close = match_paren(file, i + 1);
    let mut level = None;
    for j in i + 2..close {
        if file.is_ident(j) {
            if let Some(&l) = model.fields.get(file.text(j)) {
                level = Some(l);
            }
        }
    }
    level
}

/// If the expression ending just before token `start` is bound with
/// `[let [mut]] name =`, returns the bound name.
fn binding_before(file: &SourceFile, start: usize) -> Option<String> {
    let mut b = start.checked_sub(1)?;
    // Step back over a leading path prefix (`sync::lock`).
    while file.text(b) == "::" {
        b = b.checked_sub(2)?;
    }
    if file.text(b) != "=" {
        return None;
    }
    let name_at = b.checked_sub(1)?;
    if file.is_ident(name_at) {
        Some(file.text(name_at).to_string())
    } else {
        None
    }
}

/// The static half of the ranked-lock checker: simulates lock acquisition
/// order per function, resolving method calls through interprocedural
/// summaries (what ranks each function transitively acquires). Reports a
/// finding — citing **both** acquisition sites — whenever a lock is
/// acquired at a rank ≤ one already held.
pub fn lock_order(files: &[SourceFile], out: &mut Vec<Finding>) {
    let model = rank_model(files);
    if model.levels.is_empty() {
        return;
    }
    let core: Vec<usize> = (0..files.len())
        .filter(|&i| {
            files[i].path.contains("crates/core/src/")
                && !files[i].path.ends_with("crates/core/src/sync.rs")
        })
        .collect();
    let core_files: Vec<&SourceFile> = core.iter().map(|&i| &files[i]).collect();
    // Re-index sites against the filtered list.
    let owned: Vec<SourceFile> = core_files.iter().map(|f| (*f).clone()).collect();
    let sites = fn_sites(&owned);
    let known: HashSet<String> = sites
        .iter()
        .map(|s| s.impl_type.clone())
        .filter(|t| !t.is_empty())
        .collect();
    let locals: Vec<HashMap<String, BTreeSet<String>>> =
        owned.iter().map(|f| local_types(f, &known)).collect();

    // Direct info + call edges per function.
    let mut infos: BTreeMap<(String, String), FnInfo> = BTreeMap::new();
    for site in &sites {
        let file = &owned[site.file];
        let types = &locals[site.file];
        let key = (site.impl_type.clone(), site.name.clone());
        let info = infos.entry(key).or_default();
        let returns_ranked_guard =
            (site.body.0.saturating_sub(12)..site.body.0).any(|k| file.text(k) == "RankedGuard");
        for i in site.body.0..=site.body.1 {
            if let Some(level) = direct_lock_level(file, i, &model) {
                info.transient.insert(level);
                if returns_ranked_guard {
                    info.returns_guard = Some(info.returns_guard.map_or(level, |g| g.max(level)));
                }
            }
            if file.text(i + 1) == "(" && file.is_ident(i) && file.text(i.wrapping_sub(1)) == "." {
                let recv = file.text(i.wrapping_sub(2));
                for rtype in receiver_types(recv, &site.impl_type, types) {
                    info.edges.push((rtype, file.text(i).to_string()));
                }
            }
        }
    }
    // Fixpoint: propagate transitive acquisitions through call edges.
    loop {
        let snapshot = infos.clone();
        let mut changed = false;
        for info in infos.values_mut() {
            for edge in &info.edges {
                if let Some(callee) = snapshot.get(edge) {
                    let before = info.transient.len();
                    info.transient.extend(callee.transient.iter().copied());
                    info.transient.extend(callee.returns_guard);
                    changed |= info.transient.len() != before;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Per-function acquisition-order simulation.
    for site in &sites {
        let file = &owned[site.file];
        let types = &locals[site.file];
        let mut held: Vec<(String, u16, i32, u32)> = Vec::new();
        let mut depth = 0i32;
        for i in site.body.0..=site.body.1 {
            match file.text(i) {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    held.retain(|h| h.2 <= depth);
                }
                "drop" if file.text(i + 1) == "(" && file.text(i + 3) == ")" => {
                    let dropped = file.text(i + 2).to_string();
                    held.retain(|h| h.0 != dropped);
                }
                _ => {}
            }
            let line = file.toks.get(i).map_or(0, |t| t.line);
            if let Some(level) = direct_lock_level(file, i, &model) {
                for h in &held {
                    if h.1 >= level {
                        out.push(file.finding(
                            "lock-order",
                            line,
                            format!(
                                "acquires {} at {}:{} while `{}` ({}) acquired at {}:{} is \
                                 still held; ranks must strictly increase",
                                display_rank(&model, level),
                                file.path,
                                line,
                                h.0,
                                display_rank(&model, h.1),
                                file.path,
                                h.3,
                            ),
                        ));
                    }
                }
                if let Some(name) = binding_before(file, i) {
                    held.push((name, level, depth, line));
                }
            } else if file.text(i + 1) == "("
                && file.is_ident(i)
                && file.text(i.wrapping_sub(1)) == "."
            {
                let recv = file.text(i.wrapping_sub(2));
                for rtype in receiver_types(recv, &site.impl_type, types) {
                    let Some(callee) = infos.get(&(rtype.clone(), file.text(i).to_string())) else {
                        continue;
                    };
                    let mut acquired: BTreeSet<u16> = callee.transient.clone();
                    acquired.extend(callee.returns_guard);
                    for level in acquired {
                        for h in &held {
                            if h.1 >= level {
                                out.push(file.finding(
                                    "lock-order",
                                    line,
                                    format!(
                                        "calls `{}::{}` at {}:{} (which acquires {}) while `{}` \
                                         ({}) acquired at {}:{} is still held; ranks must \
                                         strictly increase",
                                        rtype,
                                        file.text(i),
                                        file.path,
                                        line,
                                        display_rank(&model, level),
                                        h.0,
                                        display_rank(&model, h.1),
                                        file.path,
                                        h.3,
                                    ),
                                ));
                            }
                        }
                    }
                    if let Some(guard_level) = callee.returns_guard {
                        if let Some(name) = binding_before(file, i.wrapping_sub(2)) {
                            held.push((name, guard_level, depth, line));
                        }
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// consistency
// ---------------------------------------------------------------------------

/// Non-`.rs` documents the consistency rule cross-checks.
#[derive(Debug, Default)]
pub struct AuxDocs {
    /// `(path, content)` of `DESIGN.md`, when present.
    pub design_md: Option<(String, String)>,
    /// `(path, content)` of `BENCH_SUMMARY.json`, when present.
    pub bench_summary: Option<(String, String)>,
}

fn aux_finding(path: &str, line: u32, text: &str, message: String) -> Finding {
    Finding {
        rule: "consistency",
        path: path.to_string(),
        line,
        line_text: text.to_string(),
        message,
    }
}

/// Cross-artifact consistency: the bench-summary schema version must
/// agree everywhere it is spelled, and every variant of the public error
/// enums must be constructed or matched somewhere real (not just in its
/// own `Display`/`Error` impls).
pub fn consistency(files: &[SourceFile], aux: &AuxDocs, out: &mut Vec<Finding>) {
    schema_versions(files, aux, out);
    dead_variants(files, out);
}

fn schema_versions(files: &[SourceFile], aux: &AuxDocs, out: &mut Vec<Finding>) {
    let mut expected = None;
    for file in files {
        if !file.path.ends_with("crates/bench/src/json.rs") {
            continue;
        }
        for i in 0..file.toks.len() {
            if file.text(i) == "BENCH_SUMMARY_SCHEMA_VERSION"
                && file.text(i + 1) == ":"
                && file.text(i + 3) == "="
            {
                if let Ok(v) = file.text(i + 4).parse::<u64>() {
                    expected = Some((v, file.toks[i].line));
                }
            }
        }
        if expected.is_none() {
            out.push(
                file.finding(
                    "consistency",
                    1,
                    "crates/bench/src/json.rs no longer defines BENCH_SUMMARY_SCHEMA_VERSION \
                 (the schema single source of truth)"
                        .into(),
                ),
            );
        }
    }
    let Some((expected, _)) = expected else {
        return;
    };
    if let Some((path, content)) = &aux.bench_summary {
        let mut seen = false;
        for (idx, line) in content.lines().enumerate() {
            if let Some(rest) = line.split("\"schema_version\"").nth(1) {
                seen = true;
                let digits: String = rest
                    .chars()
                    .skip_while(|c| !c.is_ascii_digit())
                    .take_while(char::is_ascii_digit)
                    .collect();
                if digits.parse::<u64>() != Ok(expected) {
                    out.push(aux_finding(
                        path,
                        (idx + 1) as u32,
                        line,
                        format!(
                            "schema_version {digits} disagrees with \
                             BENCH_SUMMARY_SCHEMA_VERSION = {expected} in crates/bench/src/json.rs"
                        ),
                    ));
                }
            }
        }
        if !seen {
            out.push(aux_finding(
                path,
                1,
                "",
                "BENCH_SUMMARY.json carries no schema_version field".into(),
            ));
        }
    }
    if let Some((path, content)) = &aux.design_md {
        for (idx, line) in content.lines().enumerate() {
            let mut rest = line;
            while let Some(at) = rest.find("schema v") {
                rest = &rest[at + "schema v".len()..];
                let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
                if digits.is_empty() {
                    continue;
                }
                if digits.parse::<u64>() != Ok(expected) {
                    out.push(aux_finding(
                        path,
                        (idx + 1) as u32,
                        line,
                        format!(
                            "mention of `schema v{digits}` disagrees with \
                             BENCH_SUMMARY_SCHEMA_VERSION = {expected} in crates/bench/src/json.rs"
                        ),
                    ));
                }
            }
        }
    }
}

/// The enums whose variants must all be alive.
const CHECKED_ENUMS: &[&str] = &[
    "DaeDvfsError",
    "ServiceError",
    "RegistryError",
    "ServerError",
];

fn dead_variants(files: &[SourceFile], out: &mut Vec<Finding>) {
    let Some(error_rs) = files
        .iter()
        .find(|f| f.path.ends_with("crates/core/src/error.rs"))
    else {
        return;
    };
    // Variant inventory + the error.rs regions that do not count as uses
    // (the enum definitions themselves and the Display/Error impls).
    let mut variants: Vec<(String, String, u32)> = Vec::new();
    let mut excluded: Vec<(usize, usize)> = Vec::new();
    for i in 0..error_rs.toks.len() {
        if error_rs.text(i) != "enum" || !CHECKED_ENUMS.contains(&error_rs.text(i + 1)) {
            continue;
        }
        let enum_name = error_rs.text(i + 1).to_string();
        let mut open = i + 2;
        while error_rs.text(open) != "{" && open < error_rs.toks.len() {
            open += 1;
        }
        let close = match_brace(error_rs, open);
        excluded.push((i, close));
        let mut j = open + 1;
        let mut expect_variant = true;
        while j < close {
            match error_rs.text(j) {
                "#" if error_rs.text(j + 1) == "[" => j = match_bracket(error_rs, j + 1) + 1,
                "{" => j = match_brace(error_rs, j) + 1,
                "(" => j = match_paren(error_rs, j) + 1,
                "," => {
                    expect_variant = true;
                    j += 1;
                }
                _ => {
                    if expect_variant && error_rs.is_ident(j) {
                        variants.push((
                            enum_name.clone(),
                            error_rs.text(j).to_string(),
                            error_rs.toks[j].line,
                        ));
                        expect_variant = false;
                    }
                    j += 1;
                }
            }
        }
    }
    for (name, open, close, is_from) in impl_spans(error_rs) {
        if CHECKED_ENUMS.contains(&name.as_str()) && !is_from {
            excluded.push((open, close));
        }
    }

    let mut alive: HashSet<(String, String)> = HashSet::new();
    for file in files {
        for i in 0..file.toks.len() {
            if file.toks[i].test
                || !CHECKED_ENUMS.contains(&file.text(i))
                || file.text(i + 1) != "::"
                || !file.is_ident(i + 2)
            {
                continue;
            }
            let in_excluded =
                std::ptr::eq(file, error_rs) && excluded.iter().any(|&(a, b)| i >= a && i <= b);
            if !in_excluded {
                alive.insert((file.text(i).to_string(), file.text(i + 2).to_string()));
            }
        }
    }
    for (enum_name, variant, line) in variants {
        if !alive.contains(&(enum_name.clone(), variant.clone())) {
            out.push(error_rs.finding(
                "consistency",
                line,
                format!(
                    "`{enum_name}::{variant}` is never constructed or matched outside its own \
                     Display/Error impls — dead variant; remove it or wire it up"
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// driver
// ---------------------------------------------------------------------------

/// Runs every rule over the lexed workspace. Findings come back in a
/// deterministic order (path, then line, then rule).
pub fn check_all(files: &[SourceFile], aux: &AuxDocs) -> Vec<Finding> {
    let mut out = Vec::new();
    for file in files {
        lock_discipline(file, &mut out);
        determinism(file, &mut out);
        panic_hygiene(file, &mut out);
        allow_attr(file, &mut out);
        stale_marker(file, &mut out);
    }
    lock_order(files, &mut out);
    consistency(files, aux, &mut out);
    out.sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(path: &str, src: &str) -> SourceFile {
        SourceFile::parse(path, src).expect("parse")
    }

    /// A miniature sync.rs defining two ranks, plus a consumer module —
    /// enough to exercise the full static lock-order pipeline.
    const MINI_SYNC: &str = r#"
pub(crate) struct LockRank { pub level: u16, pub name: &'static str }
pub(crate) mod rank {
    use super::LockRank;
    pub(crate) const QUEUE: LockRank = LockRank { level: 10, name: "queue" };
    pub(crate) const CACHE_SHARD: LockRank = LockRank { level: 20, name: "cache-shard" };
}
"#;

    fn mini_consumer(body: &str) -> String {
        format!(
            r#"
struct Service {{
    queue: RankedMutex<Vec<u32>>,
    shards: RankedMutex<Vec<u32>>,
    cache: Cache,
}}
struct Cache;
impl Cache {{
    fn complete(&self) {{ let _x = 1; }}
}}
impl Service {{
    fn build() -> Service {{
        Service {{
            queue: RankedMutex::new(rank::QUEUE, Vec::new()),
            shards: RankedMutex::new(rank::CACHE_SHARD, Vec::new()),
            cache: Cache,
        }}
    }}
    fn shard(&self) -> RankedGuard<'_, Vec<u32>> {{
        lock(&self.shards)
    }}
    {body}
}}
"#
        )
    }

    fn lock_order_findings(body: &str) -> Vec<Finding> {
        let files = vec![
            parse("crates/core/src/sync.rs", MINI_SYNC),
            parse("crates/core/src/service/front.rs", &mini_consumer(body)),
        ];
        let mut out = Vec::new();
        lock_order(&files, &mut out);
        out
    }

    #[test]
    fn ascending_order_is_clean() {
        let findings = lock_order_findings(
            "fn ok(&self) { let q = lock(&self.queue); let s = lock(&self.shards); drop(s); drop(q); }",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn inverted_direct_acquisition_reports_both_sites() {
        let findings = lock_order_findings(
            "fn bad(&self) { let s = lock(&self.shards); let q = lock(&self.queue); drop(q); drop(s); }",
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        let msg = &findings[0].message;
        assert!(msg.contains("`queue` (rank 10)"), "{msg}");
        assert!(msg.contains("`cache-shard` (rank 20)"), "{msg}");
        // Both acquisition sites are cited.
        assert_eq!(msg.matches("front.rs:").count(), 2, "{msg}");
    }

    #[test]
    fn dropping_the_guard_clears_the_hold() {
        let findings = lock_order_findings(
            "fn ok(&self) { let s = lock(&self.shards); drop(s); let q = lock(&self.queue); drop(q); }",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn scope_exit_clears_the_hold() {
        let findings = lock_order_findings(
            "fn ok(&self) { { let s = lock(&self.shards); s.len(); } let q = lock(&self.queue); drop(q); }",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn guard_returning_helper_counts_as_its_rank() {
        // `shard()` returns a RankedGuard at rank 20; acquiring queue (10)
        // while that guard is live is an inversion.
        let findings = lock_order_findings(
            "fn bad(&self) { let s = self.shard(); let q = lock(&self.queue); drop(q); drop(s); }",
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("`queue` (rank 10)"));
    }

    #[test]
    fn interprocedural_summary_catches_lockful_callees() {
        // `helper` locks the shards; calling it with the shard guard held
        // is a same-rank reacquisition.
        let findings = lock_order_findings(
            "fn helper(&self) { let s = lock(&self.shards); drop(s); } \
             fn bad(&self) { let s = self.shard(); self.helper(); drop(s); }",
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("helper"), "{findings:?}");
    }

    #[test]
    fn lock_discipline_flags_raw_primitives_and_methods() {
        let file = parse(
            "crates/core/src/service/front.rs",
            "use std::sync::Mutex;\nfn f(m: &Mutex<u32>) { let _g = m.lock().unwrap(); }",
        );
        let mut out = Vec::new();
        lock_discipline(&file, &mut out);
        assert_eq!(out.len(), 3, "{out:?}"); // Mutex ident twice + .lock(
        let sync = parse("crates/core/src/sync.rs", "use std::sync::Mutex;");
        let mut out = Vec::new();
        lock_discipline(&sync, &mut out);
        assert!(out.is_empty(), "sync.rs is the one allowed home");
    }

    #[test]
    fn ranked_wrappers_and_free_lock_are_allowed() {
        let file = parse(
            "crates/core/src/service/front.rs",
            "fn f(m: &RankedMutex<u32>) { let _g = lock(m); }",
        );
        let mut out = Vec::new();
        lock_discipline(&file, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn determinism_flags_clock_rng_and_map_iteration_in_pinned_code() {
        let src = "struct S { m: HashMap<u32, u32> }\n\
                   fn f(s: &S) -> u64 {\n\
                       let t = Instant::now();\n\
                       for (k, _v) in &s.m {}\n\
                       let _ = s.m.iter();\n\
                       0\n\
                   }";
        // Hash-name resolution is per-file and the for-loop matches on the
        // bare name, so alias the field into a local in the test source.
        let src = src.replace("&s.m", "&m").replace("s.m.", "m.");
        let src = format!(
            "{}\nfn g(m: HashMap<u32, u32>) {{ let _ = m.keys(); }}",
            src
        );
        let file = parse("crates/core/src/solver/mckp.rs", &src);
        let mut out = Vec::new();
        determinism(&file, &mut out);
        assert!(out.iter().any(|f| f.message.contains("Instant::now")));
        assert!(out.iter().any(|f| f.message.contains("for … in m")));
        assert!(out.iter().any(|f| f.message.contains(".keys()")));
        // The same source outside a pinned module is fine.
        let unpinned = parse("crates/core/src/report.rs", &src);
        let mut out = Vec::new();
        determinism(&unpinned, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn kernel_module_is_determinism_pinned() {
        // The quantized DP kernel module must stay inside the determinism
        // perimeter: a wall-clock read (or any nondeterminism) in the
        // branch-free select loops would leak straight into plan bits.
        let src = "pub(crate) fn relax(next: &mut [f64]) { let _t = Instant::now(); }";
        let file = parse("crates/core/src/solver/kernel.rs", src);
        let mut out = Vec::new();
        determinism(&file, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(
            out[0].message.contains("Instant::now"),
            "{}",
            out[0].message
        );
    }

    #[test]
    fn panic_hygiene_flags_only_nontest_service_and_solver_code() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
                   #[cfg(test)]\nmod tests { fn g(x: Option<u32>) -> u32 { x.expect(\"t\") } }";
        let service = parse("crates/core/src/service/cache.rs", src);
        let mut out = Vec::new();
        panic_hygiene(&service, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 1);
        let elsewhere = parse("crates/core/src/report.rs", src);
        let mut out = Vec::new();
        panic_hygiene(&elsewhere, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn server_and_registry_are_inside_both_perimeters() {
        // PR 8 put the HTTP front end and the on-disk registry inside the
        // panic-hygiene and determinism perimeters: an unwrap on a socket
        // or registry I/O path would turn one bad connection / corrupt
        // file into a dead server, and nondeterminism there would leak
        // into served artifact bytes.
        let panicky = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        for path in [
            "crates/core/src/server/http.rs",
            "crates/core/src/registry/mod.rs",
        ] {
            let file = parse(path, panicky);
            let mut out = Vec::new();
            panic_hygiene(&file, &mut out);
            assert_eq!(out.len(), 1, "{path}: {out:?}");
        }
        let clocky = "fn f() { let _t = Instant::now(); }";
        for path in [
            "crates/core/src/server/mod.rs",
            "crates/core/src/registry/mod.rs",
        ] {
            let file = parse(path, clocky);
            let mut out = Vec::new();
            determinism(&file, &mut out);
            assert_eq!(out.len(), 1, "{path}: {out:?}");
        }
    }

    #[test]
    fn obs_module_is_inside_both_perimeters() {
        // PR 10 put the observability subsystem inside both perimeters:
        // obs/ is precisely where clock reads are tempting, so every one
        // must go through the single waivered monotonic-clock site, and
        // an unwrap in receipt/histogram code would let a telemetry bug
        // take down the serving path it is meant to observe.
        let panicky = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        let file = parse("crates/core/src/obs/mod.rs", panicky);
        let mut out = Vec::new();
        panic_hygiene(&file, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        let clocky = "fn f() { let _t = Instant::now(); }";
        let file = parse("crates/core/src/obs/mod.rs", clocky);
        let mut out = Vec::new();
        determinism(&file, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
    }

    #[test]
    fn unwrap_or_variants_are_not_flagged() {
        let file = parse(
            "crates/core/src/solver/workspace.rs",
            "fn f(x: Option<u32>) -> u32 { x.unwrap_or_default() }",
        );
        let mut out = Vec::new();
        panic_hygiene(&file, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn allow_attrs_and_stale_markers_are_flagged() {
        let src = format!(
            "#[allow(dead_code)]\nfn f() {{}}\n// {}: fix this later\n",
            concat!("TO", "DO")
        );
        let file = parse("crates/core/src/report.rs", &src);
        let mut out = Vec::new();
        allow_attr(&file, &mut out);
        stale_marker(&file, &mut out);
        assert_eq!(out.len(), 2, "{out:?}");
    }

    #[test]
    fn schema_version_disagreements_are_findings() {
        let json_rs = parse(
            "crates/bench/src/json.rs",
            "pub const BENCH_SUMMARY_SCHEMA_VERSION: u64 = 4;",
        );
        let aux = AuxDocs {
            design_md: Some((
                "DESIGN.md".into(),
                "The summary (schema v4) and the old schema v3 note.".into(),
            )),
            bench_summary: Some((
                "BENCH_SUMMARY.json".into(),
                "{\n  \"schema_version\": 3\n}".into(),
            )),
        };
        let mut out = Vec::new();
        schema_versions(&[json_rs], &aux, &mut out);
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out.iter().any(|f| f.path == "DESIGN.md"));
        assert!(out.iter().any(|f| f.path == "BENCH_SUMMARY.json"));
    }

    #[test]
    fn dead_enum_variants_are_reported() {
        let error_rs = parse(
            "crates/core/src/error.rs",
            "pub enum ServiceError { QueueFull { capacity: usize }, NotServing }\n\
             impl fmt::Display for ServiceError { fn fmt(&self) { match self {\n\
                 ServiceError::QueueFull { .. } => {}, ServiceError::NotServing => {} } } }",
        );
        let user = parse(
            "crates/core/src/service/front.rs",
            "fn f() -> ServiceError { ServiceError::NotServing }",
        );
        let mut out = Vec::new();
        dead_variants(&[error_rs, user], &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("QueueFull"));
    }

    #[test]
    fn test_spans_cover_stacked_attributes() {
        let file = parse(
            "crates/core/src/report.rs",
            "fn live() {}\n#[cfg(test)]\n#[derive(Debug)]\nstruct T { x: u32 }\nfn also_live() {}",
        );
        let test_idents: Vec<&str> = file
            .toks
            .iter()
            .filter(|t| t.test && t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert!(test_idents.contains(&"T"));
        assert!(!test_idents.contains(&"live"));
        assert!(!test_idents.contains(&"also_live"));
    }
}
