//! Lossless-lexing guarantees, checked two ways: against every real
//! source file in this workspace, and against randomly composed Rust
//! fragments. The invariant under test is the one the rule engine relies
//! on: concatenating the token texts reproduces the input byte for byte.

use std::fs;
use std::path::Path;

use proptest::prelude::*;

use repro_lint::lexer::{self, TokenKind};

fn workspace_root() -> &'static Path {
    // crates/repro-lint -> crates -> repo root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("manifest dir has a workspace root two levels up")
}

/// Every `.rs` file the linter would scan must tokenize without error and
/// round-trip byte-identically. This is the strongest fixture available:
/// the workspace itself exercises raw strings, nested block comments,
/// lifetimes, char literals, and every numeric form the codebase uses.
#[test]
fn every_workspace_source_roundtrips() {
    let root = workspace_root();
    let sources = repro_lint::workspace_sources(root).expect("walk workspace sources");
    assert!(
        sources.len() > 50,
        "suspiciously few sources found ({}); wrong root?",
        sources.len()
    );
    for path in &sources {
        let text =
            fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        let tokens =
            lexer::tokenize(&text).unwrap_or_else(|e| panic!("tokenize {}: {e:?}", path.display()));
        let rebuilt: String = tokens.iter().map(|t| t.text).collect();
        assert_eq!(
            rebuilt,
            text,
            "lexer round-trip mismatch for {}",
            path.display()
        );
        // Trivia filtering must drop exactly the non-significant kinds.
        for t in lexer::significant(&tokens) {
            assert!(!matches!(
                t.kind,
                TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
            ));
        }
    }
}

/// Self-delimiting Rust fragments. Any concatenation of these lexes
/// cleanly (no fragment ends with a byte that could fuse with the next
/// fragment into an unterminated string or comment), while still
/// exercising the tricky token classes: nested block comments, raw and
/// byte strings, lifetimes vs. char literals, float/exponent/suffix
/// numbers, and maximal-munch punctuation.
const FRAGMENTS: &[&str] = &[
    "fn main() { let x = 1; }\n",
    "// line comment with 'quote' and \"quote\"\n",
    "/* block /* nested */ comment */",
    "let s = \"str with \\\" escape and \\n\";\n",
    "let c: char = '\\'';\n",
    "struct Foo<'a> { x: &'a str }\n",
    "let f = 1.5e-3_f64 + 2. + 0.5;\n",
    "let h = 0xFF_u32 ^ 0b1010 | 0o77;\n",
    "let raw = r#\"raw \" string\"#;\n",
    "let by = b\"bytes\\x7f\";\n",
    "let bc = b'q';\n",
    "x <<= 2; y >>= 1; z = 0..=3;\n",
    "a::b::<T>(c);\n",
    "#[cfg(test)]\n",
    "impl<'de, T: Clone> Tr for S<'de, T> where T: 'static {}\n",
    "let tup = (1, 'a', \"b\");\n",
];

proptest! {
    /// Random compositions of the fragment table must round-trip. Token
    /// boundaries may legitimately shift across fragment seams (e.g. a
    /// trailing digit fusing with a leading `.5`); the invariant is about
    /// bytes, not token counts.
    #[test]
    fn composed_fragments_roundtrip(ixs in prop::collection::vec(0usize..FRAGMENTS.len(), 1..40)) {
        let source: String = ixs.iter().map(|&i| FRAGMENTS[i]).collect();
        let tokens = lexer::tokenize(&source).expect("fragment composition must lex");
        let rebuilt: String = tokens.iter().map(|t| t.text).collect();
        prop_assert_eq!(rebuilt, source);
    }

    /// Arbitrary printable-ASCII soup either lexes and round-trips, or is
    /// rejected outright — the lexer must never silently drop bytes.
    #[test]
    fn ascii_soup_never_drops_bytes(bytes in prop::collection::vec(0x20u8..0x7f, 0..120)) {
        let source: String = bytes.iter().map(|&b| b as char).collect();
        if let Ok(tokens) = lexer::tokenize(&source) {
            let rebuilt: String = tokens.iter().map(|t| t.text).collect();
            prop_assert_eq!(rebuilt, source);
        }
    }
}
