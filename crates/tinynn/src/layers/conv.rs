//! Standard (full) 2-D convolution.

use crate::error::NnError;
use crate::quant::QuantParams;
use crate::tensor::{Shape, Tensor};

/// A quantized standard convolution: every output channel sees every input
/// channel. Used for the stem layers of the paper's models ("rest" layer
/// type in Fig. 6).
///
/// Weight layout: `[c_out][k_h][k_w][c_in]`, row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct Conv2d {
    /// Kernel height/width (square kernels only, as in the target models).
    pub kernel: usize,
    /// Spatial stride.
    pub stride: usize,
    /// Symmetric zero padding.
    pub padding: usize,
    /// Input channels.
    pub c_in: usize,
    /// Output channels.
    pub c_out: usize,
    weights: Vec<i8>,
    bias: Vec<i32>,
    quant: QuantParams,
}

impl Conv2d {
    /// Builds a convolution layer.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::WeightSizeMismatch`] if `weights` or `bias` do not
    /// match the geometry (`c_out·k²·c_in` weights, `c_out` biases).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        kernel: usize,
        stride: usize,
        padding: usize,
        c_in: usize,
        c_out: usize,
        weights: Vec<i8>,
        bias: Vec<i32>,
        quant: QuantParams,
    ) -> Result<Self, NnError> {
        let expected = c_out * kernel * kernel * c_in;
        if weights.len() != expected {
            return Err(NnError::WeightSizeMismatch {
                layer: "conv2d".into(),
                expected,
                actual: weights.len(),
            });
        }
        if bias.len() != c_out {
            return Err(NnError::WeightSizeMismatch {
                layer: "conv2d(bias)".into(),
                expected: c_out,
                actual: bias.len(),
            });
        }
        Ok(Conv2d {
            kernel,
            stride,
            padding,
            c_in,
            c_out,
            weights,
            bias,
            quant,
        })
    }

    /// Output shape for a given input shape.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::LayerInputMismatch`] if the channel count differs
    /// or the spatial extent is too small for the kernel.
    pub fn output_shape(&self, input: Shape) -> Result<Shape, NnError> {
        if input.c != self.c_in {
            return Err(NnError::LayerInputMismatch {
                layer: "conv2d".into(),
                expected: format!("c={}", self.c_in),
                actual: input,
            });
        }
        let padded_h = input.h + 2 * self.padding;
        let padded_w = input.w + 2 * self.padding;
        if padded_h < self.kernel || padded_w < self.kernel {
            return Err(NnError::LayerInputMismatch {
                layer: "conv2d".into(),
                expected: format!("h,w >= {}", self.kernel),
                actual: input,
            });
        }
        Ok(Shape::new(
            (padded_h - self.kernel) / self.stride + 1,
            (padded_w - self.kernel) / self.stride + 1,
            self.c_out,
        ))
    }

    /// Multiply-accumulates needed for `input`.
    pub fn macs(&self, input: Shape) -> u64 {
        match self.output_shape(input) {
            Ok(out) => (out.h * out.w * self.c_out * self.kernel * self.kernel * self.c_in) as u64,
            Err(_) => 0,
        }
    }

    /// Weight storage in bytes (flash-resident).
    pub fn weight_bytes(&self) -> usize {
        self.weights.len() + self.bias.len() * 4
    }

    /// The requantization parameters.
    pub fn quant(&self) -> &QuantParams {
        &self.quant
    }

    /// Runs the layer.
    ///
    /// # Errors
    ///
    /// Propagates [`Conv2d::output_shape`] errors.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor, NnError> {
        let out_shape = self.output_shape(input.shape())?;
        let mut out = Tensor::zeros(out_shape);
        let k = self.kernel as isize;
        let pad = self.padding as isize;
        for oy in 0..out_shape.h {
            for ox in 0..out_shape.w {
                let base_y = (oy * self.stride) as isize - pad;
                let base_x = (ox * self.stride) as isize - pad;
                for oc in 0..self.c_out {
                    let mut acc = self.bias[oc];
                    let w_base = oc * self.kernel * self.kernel * self.c_in;
                    for ky in 0..k {
                        for kx in 0..k {
                            let wy = w_base + (ky as usize * self.kernel + kx as usize) * self.c_in;
                            for ic in 0..self.c_in {
                                let xv = input.get_padded(base_y + ky, base_x + kx, ic);
                                let wv = self.weights[wy + ic];
                                acc += i32::from(xv) * i32::from(wv);
                            }
                        }
                    }
                    out.set(oy, ox, oc, self.quant.requantize(acc))?;
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn identity_1x1(c: usize) -> Conv2d {
        // 1x1 conv with identity-ish weights: w[oc][ic] = 127 if oc==ic.
        let mut w = vec![0i8; c * c];
        for i in 0..c {
            w[i * c + i] = 127;
        }
        // multiplier 1/127 would be ~0.00787; pick scales to get ~identity.
        let q = QuantParams::from_scales(1.0, 1.0, 127.0);
        Conv2d::new(1, 1, 0, c, c, w, vec![0; c], q).unwrap()
    }

    #[test]
    fn shape_propagation() {
        let conv = Conv2d::new(
            3,
            2,
            1,
            3,
            8,
            vec![0; 8 * 9 * 3],
            vec![0; 8],
            QuantParams::test_default(),
        )
        .unwrap();
        let out = conv.output_shape(Shape::new(32, 32, 3)).unwrap();
        assert_eq!(out, Shape::new(16, 16, 8));
    }

    #[test]
    fn identity_convolution() {
        let conv = identity_1x1(2);
        let input = Tensor::from_fn(Shape::new(2, 2, 2), |y, x, c| (y + x + c) as i8 + 1);
        let out = conv.forward(&input).unwrap();
        assert_eq!(out.shape(), input.shape());
        for y in 0..2 {
            for x in 0..2 {
                for c in 0..2 {
                    assert_eq!(out.get(y, x, c).unwrap(), input.get(y, x, c).unwrap());
                }
            }
        }
    }

    #[test]
    fn bias_applied() {
        let q = QuantParams::from_scales(1.0, 1.0, 127.0);
        let conv = Conv2d::new(1, 1, 0, 1, 1, vec![0], vec![127 * 5], q).unwrap();
        let input = Tensor::zeros(Shape::new(1, 1, 1));
        let out = conv.forward(&input).unwrap();
        assert_eq!(out.get(0, 0, 0).unwrap(), 5);
    }

    #[test]
    fn macs_accounting() {
        let conv = Conv2d::new(
            3,
            1,
            1,
            3,
            8,
            vec![0; 8 * 9 * 3],
            vec![0; 8],
            QuantParams::test_default(),
        )
        .unwrap();
        let input = Shape::new(8, 8, 3);
        assert_eq!(conv.macs(input), (8 * 8 * 8 * 9 * 3) as u64);
        assert_eq!(conv.weight_bytes(), 8 * 9 * 3 + 8 * 4);
    }

    #[test]
    fn wrong_channels_rejected() {
        let conv = identity_1x1(2);
        assert!(conv.output_shape(Shape::new(4, 4, 3)).is_err());
        let input = Tensor::zeros(Shape::new(4, 4, 3));
        assert!(conv.forward(&input).is_err());
    }

    #[test]
    fn weight_size_validated() {
        let err = Conv2d::new(
            3,
            1,
            1,
            3,
            8,
            vec![0; 10],
            vec![0; 8],
            QuantParams::test_default(),
        )
        .unwrap_err();
        assert!(matches!(err, NnError::WeightSizeMismatch { .. }));
    }

    #[test]
    fn padding_zero_extends() {
        // 3x3 kernel of all-127 over a single-pixel input with padding 1:
        // only the centre tap sees data.
        let q = QuantParams::from_scales(1.0, 1.0, 127.0);
        let conv = Conv2d::new(3, 1, 1, 1, 1, vec![127; 9], vec![0], q).unwrap();
        let mut input = Tensor::zeros(Shape::new(1, 1, 1));
        input.set(0, 0, 0, 3).unwrap();
        let out = conv.forward(&input).unwrap();
        assert_eq!(out.shape(), Shape::new(1, 1, 1));
        assert_eq!(out.get(0, 0, 0).unwrap(), 3);
    }
}
