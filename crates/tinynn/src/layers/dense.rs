//! Fully-connected (dense) layer for classifier heads.

use crate::error::NnError;
use crate::quant::QuantParams;
use crate::tensor::{Shape, Tensor};

/// A quantized fully-connected layer over the flattened input.
///
/// Weight layout: `[units][input_elements]`, row-major. The output is a
/// `1×1×units` tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct Dense {
    /// Flattened input element count.
    pub inputs: usize,
    /// Output units.
    pub units: usize,
    weights: Vec<i8>,
    bias: Vec<i32>,
    quant: QuantParams,
}

impl Dense {
    /// Builds a dense layer.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::WeightSizeMismatch`] if `weights`
    /// (`units·inputs`) or `bias` (`units`) do not match.
    pub fn new(
        inputs: usize,
        units: usize,
        weights: Vec<i8>,
        bias: Vec<i32>,
        quant: QuantParams,
    ) -> Result<Self, NnError> {
        if weights.len() != units * inputs {
            return Err(NnError::WeightSizeMismatch {
                layer: "dense".into(),
                expected: units * inputs,
                actual: weights.len(),
            });
        }
        if bias.len() != units {
            return Err(NnError::WeightSizeMismatch {
                layer: "dense(bias)".into(),
                expected: units,
                actual: bias.len(),
            });
        }
        Ok(Dense {
            inputs,
            units,
            weights,
            bias,
            quant,
        })
    }

    /// Output shape (`1×1×units`).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::LayerInputMismatch`] if the flattened input size
    /// differs.
    pub fn output_shape(&self, input: Shape) -> Result<Shape, NnError> {
        if input.elements() != self.inputs {
            return Err(NnError::LayerInputMismatch {
                layer: "dense".into(),
                expected: format!("{} elements", self.inputs),
                actual: input,
            });
        }
        Ok(Shape::new(1, 1, self.units))
    }

    /// Multiply-accumulates needed.
    pub fn macs(&self, _input: Shape) -> u64 {
        (self.units * self.inputs) as u64
    }

    /// Weight storage in bytes.
    pub fn weight_bytes(&self) -> usize {
        self.weights.len() + self.bias.len() * 4
    }

    /// Runs the layer.
    ///
    /// # Errors
    ///
    /// Propagates [`Dense::output_shape`] errors.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor, NnError> {
        let out_shape = self.output_shape(input.shape())?;
        let mut out = Tensor::zeros(out_shape);
        let data = input.data();
        for u in 0..self.units {
            let mut acc = self.bias[u];
            let base = u * self.inputs;
            for (i, &x) in data.iter().enumerate() {
                acc += i32::from(x) * i32::from(self.weights[base + i]);
            }
            out.set(0, 0, u, self.quant.requantize(acc))?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_unit_head() {
        let q = QuantParams::from_scales(1.0, 1.0, 127.0);
        // unit0 picks element 0, unit1 picks element 3.
        let w = vec![127, 0, 0, 0, 0, 0, 0, 127];
        let dense = Dense::new(4, 2, w, vec![0, 0], q).unwrap();
        let input = Tensor::from_data(Shape::new(1, 1, 4), vec![9, 2, 3, -4]).unwrap();
        let out = dense.forward(&input).unwrap();
        assert_eq!(out.shape(), Shape::new(1, 1, 2));
        assert_eq!(out.get(0, 0, 0).unwrap(), 9);
        assert_eq!(out.get(0, 0, 1).unwrap(), -4);
    }

    #[test]
    fn flattening_accepts_any_shape() {
        let q = QuantParams::test_default();
        let dense = Dense::new(12, 2, vec![0; 24], vec![0; 2], q).unwrap();
        assert!(dense.output_shape(Shape::new(2, 2, 3)).is_ok());
        assert!(dense.output_shape(Shape::new(2, 2, 4)).is_err());
    }

    #[test]
    fn accounting() {
        let q = QuantParams::test_default();
        let dense = Dense::new(64, 10, vec![0; 640], vec![0; 10], q).unwrap();
        assert_eq!(dense.macs(Shape::new(1, 1, 64)), 640);
        assert_eq!(dense.weight_bytes(), 640 + 40);
    }

    #[test]
    fn geometry_validated() {
        let q = QuantParams::test_default();
        assert!(Dense::new(64, 10, vec![0; 100], vec![0; 10], q).is_err());
        assert!(Dense::new(64, 10, vec![0; 640], vec![0; 2], q).is_err());
    }
}
