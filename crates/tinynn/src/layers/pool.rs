//! Pooling layers.

use crate::error::NnError;
use crate::tensor::{Shape, Tensor};

/// Global average pooling: reduces the spatial extent to 1×1 per channel
/// (the standard MobileNet classifier-head reduction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AvgPool;

impl AvgPool {
    /// Creates a global average pool.
    pub fn new() -> Self {
        AvgPool
    }

    /// Output shape (`1×1×c`).
    pub fn output_shape(&self, input: Shape) -> Shape {
        Shape::new(1, 1, input.c)
    }

    /// Runs the layer with round-to-nearest integer averaging.
    ///
    /// # Errors
    ///
    /// Never fails; the `Result` matches the other layers' interface.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor, NnError> {
        let shape = input.shape();
        let mut out = Tensor::zeros(self.output_shape(shape));
        let n = (shape.h * shape.w) as i32;
        for c in 0..shape.c {
            let mut acc: i32 = 0;
            for y in 0..shape.h {
                for x in 0..shape.w {
                    acc += i32::from(input.get(y, x, c)?);
                }
            }
            // Round half away from zero, like CMSIS-NN's average pool.
            let avg = if acc >= 0 {
                (acc + n / 2) / n
            } else {
                (acc - n / 2) / n
            };
            out.set(0, 0, c, avg.clamp(-128, 127) as i8)?;
        }
        Ok(out)
    }
}

/// Max pooling with a square window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaxPool2d {
    /// Window size.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
}

impl MaxPool2d {
    /// Creates a max pool.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `stride` is zero.
    pub fn new(kernel: usize, stride: usize) -> Self {
        assert!(
            kernel > 0 && stride > 0,
            "kernel and stride must be non-zero"
        );
        MaxPool2d { kernel, stride }
    }

    /// Output shape.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::LayerInputMismatch`] if the input is smaller than
    /// the window.
    pub fn output_shape(&self, input: Shape) -> Result<Shape, NnError> {
        if input.h < self.kernel || input.w < self.kernel {
            return Err(NnError::LayerInputMismatch {
                layer: "maxpool".into(),
                expected: format!("h,w >= {}", self.kernel),
                actual: input,
            });
        }
        Ok(Shape::new(
            (input.h - self.kernel) / self.stride + 1,
            (input.w - self.kernel) / self.stride + 1,
            input.c,
        ))
    }

    /// Runs the layer.
    ///
    /// # Errors
    ///
    /// Propagates [`MaxPool2d::output_shape`] errors.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor, NnError> {
        let out_shape = self.output_shape(input.shape())?;
        let mut out = Tensor::zeros(out_shape);
        for oy in 0..out_shape.h {
            for ox in 0..out_shape.w {
                for c in 0..out_shape.c {
                    let mut best = i8::MIN;
                    for ky in 0..self.kernel {
                        for kx in 0..self.kernel {
                            let v = input.get(oy * self.stride + ky, ox * self.stride + kx, c)?;
                            best = best.max(v);
                        }
                    }
                    out.set(oy, ox, c, best)?;
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_average() {
        let input = Tensor::from_fn(Shape::new(2, 2, 2), |y, x, c| {
            if c == 0 {
                (y * 2 + x) as i8 // 0,1,2,3 -> avg 1.5 -> 2
            } else {
                10
            }
        });
        let out = AvgPool::new().forward(&input).unwrap();
        assert_eq!(out.shape(), Shape::new(1, 1, 2));
        assert_eq!(out.get(0, 0, 0).unwrap(), 2);
        assert_eq!(out.get(0, 0, 1).unwrap(), 10);
    }

    #[test]
    fn average_of_negatives() {
        let input = Tensor::from_data(Shape::new(2, 2, 1), vec![-1, -2, -3, -4]).unwrap();
        let out = AvgPool::new().forward(&input).unwrap();
        // -10/4 = -2.5 -> -3 (round half away from zero).
        assert_eq!(out.get(0, 0, 0).unwrap(), -3);
    }

    #[test]
    fn maxpool_window() {
        let input = Tensor::from_fn(Shape::new(4, 4, 1), |y, x, _| (y * 4 + x) as i8);
        let mp = MaxPool2d::new(2, 2);
        let out = mp.forward(&input).unwrap();
        assert_eq!(out.shape(), Shape::new(2, 2, 1));
        assert_eq!(out.get(0, 0, 0).unwrap(), 5);
        assert_eq!(out.get(1, 1, 0).unwrap(), 15);
    }

    #[test]
    fn maxpool_too_small_rejected() {
        let mp = MaxPool2d::new(3, 1);
        assert!(mp.output_shape(Shape::new(2, 2, 1)).is_err());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_kernel_rejected() {
        let _ = MaxPool2d::new(0, 1);
    }
}
