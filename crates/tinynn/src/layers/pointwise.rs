//! Pointwise (1×1) convolution — the second DAE target layer type.

use crate::error::NnError;
use crate::quant::QuantParams;
use crate::tensor::{Shape, Tensor};

/// A quantized pointwise convolution: a 1×1 kernel mixing channels at every
/// spatial position. "Each column consists of one element per input
/// channel" (paper Sec. III-A) — the per-column kernel below is the unit
/// the DAE transform batches `g` at a time.
///
/// Weight layout: `[c_out][c_in]`, row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct PointwiseConv2d {
    /// Input channels.
    pub c_in: usize,
    /// Output channels.
    pub c_out: usize,
    weights: Vec<i8>,
    bias: Vec<i32>,
    quant: QuantParams,
}

impl PointwiseConv2d {
    /// Builds a pointwise convolution layer.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::WeightSizeMismatch`] if `weights` (`c_out·c_in`)
    /// or `bias` (`c_out`) do not match the geometry.
    pub fn new(
        c_in: usize,
        c_out: usize,
        weights: Vec<i8>,
        bias: Vec<i32>,
        quant: QuantParams,
    ) -> Result<Self, NnError> {
        if weights.len() != c_out * c_in {
            return Err(NnError::WeightSizeMismatch {
                layer: "pointwise".into(),
                expected: c_out * c_in,
                actual: weights.len(),
            });
        }
        if bias.len() != c_out {
            return Err(NnError::WeightSizeMismatch {
                layer: "pointwise(bias)".into(),
                expected: c_out,
                actual: bias.len(),
            });
        }
        Ok(PointwiseConv2d {
            c_in,
            c_out,
            weights,
            bias,
            quant,
        })
    }

    /// Output shape for a given input shape (spatial extent preserved).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::LayerInputMismatch`] on channel mismatch.
    pub fn output_shape(&self, input: Shape) -> Result<Shape, NnError> {
        if input.c != self.c_in {
            return Err(NnError::LayerInputMismatch {
                layer: "pointwise".into(),
                expected: format!("c={}", self.c_in),
                actual: input,
            });
        }
        Ok(Shape::new(input.h, input.w, self.c_out))
    }

    /// Multiply-accumulates needed for `input`.
    pub fn macs(&self, input: Shape) -> u64 {
        (input.h * input.w * self.c_in * self.c_out) as u64
    }

    /// Weight storage in bytes.
    pub fn weight_bytes(&self) -> usize {
        self.weights.len() + self.bias.len() * 4
    }

    /// The requantization parameters.
    pub fn quant(&self) -> &QuantParams {
        &self.quant
    }

    /// Computes one output *column* (all `c_out` values at spatial position
    /// `(y, x)`). This per-column kernel is what the baseline executes one
    /// at a time and the DAE transform batches `g` at a time.
    ///
    /// # Errors
    ///
    /// Propagates tensor indexing errors.
    pub fn compute_column(
        &self,
        input: &Tensor,
        out: &mut Tensor,
        y: usize,
        x: usize,
    ) -> Result<(), NnError> {
        for oc in 0..self.c_out {
            let mut acc = self.bias[oc];
            let w_base = oc * self.c_in;
            for ic in 0..self.c_in {
                acc += i32::from(input.get(y, x, ic)?) * i32::from(self.weights[w_base + ic]);
            }
            out.set(y, x, oc, self.quant.requantize(acc))?;
        }
        Ok(())
    }

    /// Runs the layer (all columns, the baseline per-column order).
    ///
    /// # Errors
    ///
    /// Propagates [`PointwiseConv2d::output_shape`] errors.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor, NnError> {
        let out_shape = self.output_shape(input.shape())?;
        let mut out = Tensor::zeros(out_shape);
        for y in 0..out_shape.h {
            for x in 0..out_shape.w {
                self.compute_column(input, &mut out, y, x)?;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_mixing() {
        // Two input channels summed into one output channel.
        let q = QuantParams::from_scales(1.0, 1.0, 127.0);
        let pw = PointwiseConv2d::new(2, 1, vec![127, 127], vec![0], q).unwrap();
        let input = Tensor::from_fn(Shape::new(1, 2, 2), |_, x, c| (10 * (x + 1) + c) as i8);
        let out = pw.forward(&input).unwrap();
        assert_eq!(out.get(0, 0, 0).unwrap(), 21); // 10 + 11
        assert_eq!(out.get(0, 1, 0).unwrap(), 41); // 20 + 21
    }

    #[test]
    fn spatial_extent_preserved() {
        let q = QuantParams::test_default();
        let pw = PointwiseConv2d::new(3, 8, vec![0; 24], vec![0; 8], q).unwrap();
        assert_eq!(
            pw.output_shape(Shape::new(16, 16, 3)).unwrap(),
            Shape::new(16, 16, 8)
        );
    }

    #[test]
    fn per_column_matches_forward() {
        let q = QuantParams::from_scales(0.7, 0.02, 1.3);
        let weights: Vec<i8> = (0..6 * 4).map(|i| (((i * 53) % 251) - 125) as i8).collect();
        let bias = vec![5, -5, 100, 0];
        let pw = PointwiseConv2d::new(6, 4, weights, bias, q).unwrap();
        let input = Tensor::from_fn(Shape::new(4, 5, 6), |y, x, c| {
            (((y * 41 + x * 13 + c * 3) % 200) as i32 - 100) as i8
        });
        let reference = pw.forward(&input).unwrap();
        let mut manual = Tensor::zeros(pw.output_shape(input.shape()).unwrap());
        // Columns in scrambled order: result must not depend on order.
        for y in (0..4).rev() {
            for x in 0..5 {
                pw.compute_column(&input, &mut manual, y, x).unwrap();
            }
        }
        assert_eq!(manual, reference);
    }

    #[test]
    fn macs_and_weights() {
        let q = QuantParams::test_default();
        let pw = PointwiseConv2d::new(16, 32, vec![0; 512], vec![0; 32], q).unwrap();
        assert_eq!(pw.macs(Shape::new(8, 8, 16)), (8 * 8 * 16 * 32) as u64);
        assert_eq!(pw.weight_bytes(), 512 + 128);
    }

    #[test]
    fn geometry_validated() {
        let q = QuantParams::test_default();
        assert!(PointwiseConv2d::new(16, 32, vec![0; 100], vec![0; 32], q).is_err());
        assert!(PointwiseConv2d::new(16, 32, vec![0; 512], vec![0; 3], q).is_err());
        let pw = PointwiseConv2d::new(16, 32, vec![0; 512], vec![0; 32], q).unwrap();
        assert!(pw.output_shape(Shape::new(8, 8, 15)).is_err());
    }
}
