//! Quantized layer implementations.

pub mod activation;
pub mod conv;
pub mod dense;
pub mod depthwise;
pub mod pointwise;
pub mod pool;

pub use activation::Relu;
pub use conv::Conv2d;
pub use dense::Dense;
pub use depthwise::DepthwiseConv2d;
pub use pointwise::PointwiseConv2d;
pub use pool::{AvgPool, MaxPool2d};
