//! Depthwise 2-D convolution — one of the two DAE target layer types.

use crate::error::NnError;
use crate::quant::QuantParams;
use crate::tensor::{Shape, Tensor};

/// A quantized depthwise convolution: "each input channel is convolved with
/// a separate learnable filter, capturing spatial features per channel"
/// (paper Sec. III-A). Channel multiplier is fixed at 1, as in MobileNet
/// and the MCUNet models.
///
/// Weight layout: `[c][k_h][k_w]`, row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct DepthwiseConv2d {
    /// Kernel height/width.
    pub kernel: usize,
    /// Spatial stride.
    pub stride: usize,
    /// Symmetric zero padding.
    pub padding: usize,
    /// Channel count (input = output).
    pub channels: usize,
    weights: Vec<i8>,
    bias: Vec<i32>,
    quant: QuantParams,
}

impl DepthwiseConv2d {
    /// Builds a depthwise convolution layer.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::WeightSizeMismatch`] if `weights` (`c·k²`) or
    /// `bias` (`c`) do not match the geometry.
    pub fn new(
        kernel: usize,
        stride: usize,
        padding: usize,
        channels: usize,
        weights: Vec<i8>,
        bias: Vec<i32>,
        quant: QuantParams,
    ) -> Result<Self, NnError> {
        let expected = channels * kernel * kernel;
        if weights.len() != expected {
            return Err(NnError::WeightSizeMismatch {
                layer: "depthwise".into(),
                expected,
                actual: weights.len(),
            });
        }
        if bias.len() != channels {
            return Err(NnError::WeightSizeMismatch {
                layer: "depthwise(bias)".into(),
                expected: channels,
                actual: bias.len(),
            });
        }
        Ok(DepthwiseConv2d {
            kernel,
            stride,
            padding,
            channels,
            weights,
            bias,
            quant,
        })
    }

    /// Output shape for a given input shape.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::LayerInputMismatch`] on channel mismatch or
    /// undersized spatial extent.
    pub fn output_shape(&self, input: Shape) -> Result<Shape, NnError> {
        if input.c != self.channels {
            return Err(NnError::LayerInputMismatch {
                layer: "depthwise".into(),
                expected: format!("c={}", self.channels),
                actual: input,
            });
        }
        let padded_h = input.h + 2 * self.padding;
        let padded_w = input.w + 2 * self.padding;
        if padded_h < self.kernel || padded_w < self.kernel {
            return Err(NnError::LayerInputMismatch {
                layer: "depthwise".into(),
                expected: format!("h,w >= {}", self.kernel),
                actual: input,
            });
        }
        Ok(Shape::new(
            (padded_h - self.kernel) / self.stride + 1,
            (padded_w - self.kernel) / self.stride + 1,
            self.channels,
        ))
    }

    /// Multiply-accumulates needed for `input`.
    pub fn macs(&self, input: Shape) -> u64 {
        match self.output_shape(input) {
            Ok(out) => (out.h * out.w * self.channels * self.kernel * self.kernel) as u64,
            Err(_) => 0,
        }
    }

    /// Weight storage in bytes.
    pub fn weight_bytes(&self) -> usize {
        self.weights.len() + self.bias.len() * 4
    }

    /// The requantization parameters.
    pub fn quant(&self) -> &QuantParams {
        &self.quant
    }

    /// Convolves a single channel, writing into `out`. This is the
    /// per-channel compute kernel that the DAE transform batches `g` at a
    /// time (`convolve_depthwise` in the paper's Listing 1).
    ///
    /// # Errors
    ///
    /// Propagates tensor indexing errors; shapes are assumed pre-validated
    /// by [`DepthwiseConv2d::forward`].
    pub fn convolve_channel(
        &self,
        input: &Tensor,
        out: &mut Tensor,
        channel: usize,
    ) -> Result<(), NnError> {
        let out_shape = out.shape();
        let k = self.kernel as isize;
        let pad = self.padding as isize;
        let w_base = channel * self.kernel * self.kernel;
        for oy in 0..out_shape.h {
            for ox in 0..out_shape.w {
                let base_y = (oy * self.stride) as isize - pad;
                let base_x = (ox * self.stride) as isize - pad;
                let mut acc = self.bias[channel];
                for ky in 0..k {
                    for kx in 0..k {
                        let xv = input.get_padded(base_y + ky, base_x + kx, channel);
                        let wv = self.weights[w_base + (ky as usize * self.kernel + kx as usize)];
                        acc += i32::from(xv) * i32::from(wv);
                    }
                }
                out.set(oy, ox, channel, self.quant.requantize(acc))?;
            }
        }
        Ok(())
    }

    /// Runs the layer (all channels, the baseline per-channel order).
    ///
    /// # Errors
    ///
    /// Propagates [`DepthwiseConv2d::output_shape`] errors.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor, NnError> {
        let out_shape = self.output_shape(input.shape())?;
        let mut out = Tensor::zeros(out_shape);
        for c in 0..self.channels {
            self.convolve_channel(input, &mut out, c)?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn identity_dw(c: usize) -> DepthwiseConv2d {
        // 1x1 depthwise with weight 127 and rescale 1/127 = identity.
        let q = QuantParams::from_scales(1.0, 1.0, 127.0);
        DepthwiseConv2d::new(1, 1, 0, c, vec![127; c], vec![0; c], q).unwrap()
    }

    #[test]
    fn identity_per_channel() {
        let dw = identity_dw(3);
        let input = Tensor::from_fn(Shape::new(3, 3, 3), |y, x, c| (y * 9 + x * 3 + c) as i8);
        let out = dw.forward(&input).unwrap();
        assert_eq!(out, input);
    }

    #[test]
    fn channels_are_independent() {
        // A 3x3 all-ones filter on channel 0 must not read channel 1.
        let q = QuantParams::from_scales(1.0, 1.0, 127.0);
        let dw = DepthwiseConv2d::new(3, 1, 1, 2, vec![127; 18], vec![0; 2], q).unwrap();
        let mut input = Tensor::zeros(Shape::new(3, 3, 2));
        input.set(1, 1, 1, 100).unwrap(); // only channel 1 has data
        let out = dw.forward(&input).unwrap();
        assert_eq!(out.get(1, 1, 0).unwrap(), 0, "channel 0 must stay zero");
        assert_eq!(out.get(1, 1, 1).unwrap(), 100);
    }

    #[test]
    fn stride_two_downsamples() {
        let q = QuantParams::from_scales(1.0, 1.0, 127.0);
        let dw = DepthwiseConv2d::new(3, 2, 1, 4, vec![0; 36], vec![0; 4], q).unwrap();
        assert_eq!(
            dw.output_shape(Shape::new(32, 32, 4)).unwrap(),
            Shape::new(16, 16, 4)
        );
    }

    #[test]
    fn per_channel_kernel_matches_forward() {
        // Running convolve_channel for every channel must equal forward —
        // the invariant the DAE transform relies on.
        let q = QuantParams::from_scales(0.5, 0.031, 1.7);
        let weights: Vec<i8> = (0..4 * 9).map(|i| ((i * 37) % 255) as i8).collect();
        let bias: Vec<i32> = vec![13, -7, 0, 99];
        let dw = DepthwiseConv2d::new(3, 1, 1, 4, weights, bias, q).unwrap();
        let input = Tensor::from_fn(Shape::new(6, 6, 4), |y, x, c| {
            ((y * 31 + x * 17 + c * 7) % 251) as i8
        });
        let reference = dw.forward(&input).unwrap();
        let mut manual = Tensor::zeros(dw.output_shape(input.shape()).unwrap());
        for c in [2, 0, 3, 1] {
            dw.convolve_channel(&input, &mut manual, c).unwrap();
        }
        assert_eq!(manual, reference);
    }

    #[test]
    fn macs_and_weights() {
        let q = QuantParams::test_default();
        let dw = DepthwiseConv2d::new(3, 1, 1, 16, vec![0; 144], vec![0; 16], q).unwrap();
        assert_eq!(dw.macs(Shape::new(8, 8, 16)), (8 * 8 * 16 * 9) as u64);
        assert_eq!(dw.weight_bytes(), 144 + 64);
    }

    #[test]
    fn geometry_validated() {
        let q = QuantParams::test_default();
        assert!(DepthwiseConv2d::new(3, 1, 1, 16, vec![0; 100], vec![0; 16], q).is_err());
        let dw = DepthwiseConv2d::new(3, 1, 1, 16, vec![0; 144], vec![0; 16], q).unwrap();
        assert!(dw.output_shape(Shape::new(8, 8, 3)).is_err());
    }
}
