//! Standalone activation layers.

use crate::error::NnError;
use crate::tensor::{Shape, Tensor};

/// Element-wise ReLU on int8 activations (zero point assumed 0, as the
/// symmetric quantization of the model zoo produces).
///
/// In deployed models the ReLU is usually fused into the preceding layer's
/// requantization clamp; the standalone layer exists for graphs that keep
/// it explicit (the paper's Fig. 3 draws `relu` nodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Relu;

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu
    }

    /// Output shape (identical to input).
    pub fn output_shape(&self, input: Shape) -> Shape {
        input
    }

    /// Runs the layer.
    ///
    /// # Errors
    ///
    /// Never fails; the `Result` matches the other layers' interface.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor, NnError> {
        let mut out = input.clone();
        for v in out.data_mut() {
            if *v < 0 {
                *v = 0;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamps_negatives_only() {
        let input = Tensor::from_data(Shape::new(1, 1, 4), vec![-5, 0, 3, -128]).unwrap();
        let out = Relu::new().forward(&input).unwrap();
        assert_eq!(out.data(), &[0, 0, 3, 0]);
    }

    #[test]
    fn shape_unchanged() {
        let s = Shape::new(7, 5, 3);
        assert_eq!(Relu::new().output_shape(s), s);
    }
}
