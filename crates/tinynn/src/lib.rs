//! int8 quantized CNN substrate for the DAE-DVFS reproduction.
//!
//! The paper evaluates on three MCUNet-derived models (Visual Wake Words,
//! Person Detection, MobileNetV2) with linear int8 quantization. This crate
//! provides everything those models need, built from scratch:
//!
//! * [`tensor`] — HWC int8 tensors;
//! * [`quant`] — TFLite-style fixed-point requantization;
//! * [`layers`] — standard/depthwise/pointwise convolutions, dense, pooling,
//!   ReLU, each with per-channel / per-column kernels that the DAE transform
//!   re-schedules;
//! * [`graph`] — residual-capable model graphs with shape-checked plans;
//! * [`models`] — the three evaluation networks with deterministic synthetic
//!   weights.
//!
//! # Examples
//!
//! ```
//! use tinynn::{models, Tensor};
//!
//! # fn main() -> Result<(), tinynn::NnError> {
//! let model = models::vww_sized(32);
//! let input = Tensor::zeros(model.input_shape);
//! let logits = model.infer(&input)?;
//! assert_eq!(logits.shape().c, 2);
//! # Ok(())
//! # }
//! ```

pub mod error;
pub mod graph;
pub mod layers;
pub mod models;
pub mod quant;
pub mod tensor;

pub use error::NnError;
pub use graph::{Block, Layer, LayerInfo, LayerKind, Model, NamedLayer};
pub use quant::{QuantParams, QuantizedMultiplier};
pub use tensor::{Shape, Tensor};
