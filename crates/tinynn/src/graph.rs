//! Model graphs: layers, residual blocks, and shape-checked inference.

use std::fmt;

use crate::error::NnError;
use crate::layers::{AvgPool, Conv2d, Dense, DepthwiseConv2d, MaxPool2d, PointwiseConv2d, Relu};
use crate::tensor::{Shape, Tensor};

/// Classification of a layer for the paper's reporting (Fig. 6 groups
/// layers into pointwise / depthwise / "rest").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// Depthwise convolution (DAE target).
    Depthwise,
    /// Pointwise convolution (DAE target).
    Pointwise,
    /// Everything else.
    Rest,
}

impl fmt::Display for LayerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayerKind::Depthwise => write!(f, "depthwise"),
            LayerKind::Pointwise => write!(f, "pointwise"),
            LayerKind::Rest => write!(f, "rest"),
        }
    }
}

/// A single layer of any supported type.
#[derive(Debug, Clone, PartialEq)]
pub enum Layer {
    /// Full convolution.
    Conv2d(Conv2d),
    /// Depthwise convolution.
    Depthwise(DepthwiseConv2d),
    /// Pointwise (1×1) convolution.
    Pointwise(PointwiseConv2d),
    /// Fully connected.
    Dense(Dense),
    /// Global average pool.
    AvgPool(AvgPool),
    /// Max pool.
    MaxPool(MaxPool2d),
    /// Standalone ReLU.
    Relu(Relu),
}

impl Layer {
    /// The reporting kind of this layer.
    pub fn kind(&self) -> LayerKind {
        match self {
            Layer::Depthwise(_) => LayerKind::Depthwise,
            Layer::Pointwise(_) => LayerKind::Pointwise,
            _ => LayerKind::Rest,
        }
    }

    /// Output shape for `input`.
    ///
    /// # Errors
    ///
    /// Propagates the wrapped layer's shape errors.
    pub fn output_shape(&self, input: Shape) -> Result<Shape, NnError> {
        match self {
            Layer::Conv2d(l) => l.output_shape(input),
            Layer::Depthwise(l) => l.output_shape(input),
            Layer::Pointwise(l) => l.output_shape(input),
            Layer::Dense(l) => l.output_shape(input),
            Layer::AvgPool(l) => Ok(l.output_shape(input)),
            Layer::MaxPool(l) => l.output_shape(input),
            Layer::Relu(l) => Ok(l.output_shape(input)),
        }
    }

    /// Runs the layer.
    ///
    /// # Errors
    ///
    /// Propagates the wrapped layer's errors.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor, NnError> {
        match self {
            Layer::Conv2d(l) => l.forward(input),
            Layer::Depthwise(l) => l.forward(input),
            Layer::Pointwise(l) => l.forward(input),
            Layer::Dense(l) => l.forward(input),
            Layer::AvgPool(l) => l.forward(input),
            Layer::MaxPool(l) => l.forward(input),
            Layer::Relu(l) => l.forward(input),
        }
    }

    /// Multiply-accumulates for `input`.
    pub fn macs(&self, input: Shape) -> u64 {
        match self {
            Layer::Conv2d(l) => l.macs(input),
            Layer::Depthwise(l) => l.macs(input),
            Layer::Pointwise(l) => l.macs(input),
            Layer::Dense(l) => l.macs(input),
            Layer::AvgPool(_) | Layer::MaxPool(_) | Layer::Relu(_) => 0,
        }
    }

    /// Flash-resident weight bytes.
    pub fn weight_bytes(&self) -> usize {
        match self {
            Layer::Conv2d(l) => l.weight_bytes(),
            Layer::Depthwise(l) => l.weight_bytes(),
            Layer::Pointwise(l) => l.weight_bytes(),
            Layer::Dense(l) => l.weight_bytes(),
            Layer::AvgPool(_) | Layer::MaxPool(_) | Layer::Relu(_) => 0,
        }
    }
}

/// A named layer within a model.
#[derive(Debug, Clone, PartialEq)]
pub struct NamedLayer {
    /// Unique-ish name (e.g. `"b3.dw"`).
    pub name: String,
    /// The layer.
    pub layer: Layer,
}

/// A sequential group of layers, optionally with a residual (skip) add from
/// the block input to its output — the MobileNetV2 inverted-residual shape.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Block name.
    pub name: String,
    /// Whether the block output is `input + branch(input)` (saturating).
    pub residual: bool,
    /// The branch layers.
    pub layers: Vec<NamedLayer>,
}

/// Static description of one layer in a shape-resolved execution plan.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerInfo {
    /// Index in the flattened layer order.
    pub index: usize,
    /// Layer name.
    pub name: String,
    /// Reporting kind.
    pub kind: LayerKind,
    /// Input shape.
    pub input: Shape,
    /// Output shape.
    pub output: Shape,
    /// Multiply-accumulates.
    pub macs: u64,
    /// Flash-resident weight bytes.
    pub weight_bytes: usize,
}

/// A complete CNN model: named blocks over a fixed input shape.
///
/// # Examples
///
/// ```
/// use tinynn::models::vww_sized;
///
/// # fn main() -> Result<(), tinynn::NnError> {
/// let model = vww_sized(32);
/// let plan = model.plan()?;
/// assert!(plan.len() > 10);
/// assert!(model.total_macs()? > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Model {
    /// Model name (e.g. `"vww"`).
    pub name: String,
    /// Expected input shape.
    pub input_shape: Shape,
    /// The blocks in execution order.
    pub blocks: Vec<Block>,
}

impl Model {
    /// Creates a model from blocks.
    pub fn new(name: impl Into<String>, input_shape: Shape, blocks: Vec<Block>) -> Self {
        Model {
            name: name.into(),
            input_shape,
            blocks,
        }
    }

    /// Iterates over all layers in execution order.
    pub fn layers(&self) -> impl Iterator<Item = &NamedLayer> {
        self.blocks.iter().flat_map(|b| b.layers.iter())
    }

    /// Number of layers (flattened).
    pub fn layer_count(&self) -> usize {
        self.blocks.iter().map(|b| b.layers.len()).sum()
    }

    /// Resolves shapes through the whole model, producing one
    /// [`LayerInfo`] per layer.
    ///
    /// # Errors
    ///
    /// Returns the first shape error encountered, or
    /// [`NnError::ResidualShapeMismatch`] if a residual block's branch
    /// changes the shape.
    pub fn plan(&self) -> Result<Vec<LayerInfo>, NnError> {
        let mut infos = Vec::with_capacity(self.layer_count());
        let mut shape = self.input_shape;
        let mut index = 0;
        for block in &self.blocks {
            let block_in = shape;
            for nl in &block.layers {
                let out = nl.layer.output_shape(shape)?;
                infos.push(LayerInfo {
                    index,
                    name: nl.name.clone(),
                    kind: nl.layer.kind(),
                    input: shape,
                    output: out,
                    macs: nl.layer.macs(shape),
                    weight_bytes: nl.layer.weight_bytes(),
                });
                shape = out;
                index += 1;
            }
            if block.residual && shape != block_in {
                return Err(NnError::ResidualShapeMismatch {
                    block: block.name.clone(),
                    input: block_in,
                    output: shape,
                });
            }
        }
        Ok(infos)
    }

    /// The model output shape.
    ///
    /// # Errors
    ///
    /// Propagates [`Model::plan`] errors.
    pub fn output_shape(&self) -> Result<Shape, NnError> {
        Ok(self
            .plan()?
            .last()
            .map(|l| l.output)
            .unwrap_or(self.input_shape))
    }

    /// Total multiply-accumulates of one inference.
    ///
    /// # Errors
    ///
    /// Propagates [`Model::plan`] errors.
    pub fn total_macs(&self) -> Result<u64, NnError> {
        Ok(self.plan()?.iter().map(|l| l.macs).sum())
    }

    /// Total flash-resident weight bytes.
    pub fn weight_bytes(&self) -> usize {
        self.layers().map(|l| l.layer.weight_bytes()).sum()
    }

    /// Renders a human-readable per-layer summary table.
    ///
    /// # Errors
    ///
    /// Propagates [`Model::plan`] errors.
    ///
    /// ```
    /// use tinynn::models::vww_sized;
    ///
    /// # fn main() -> Result<(), tinynn::NnError> {
    /// let table = vww_sized(32).summary()?;
    /// assert!(table.contains("stem.conv"));
    /// assert!(table.contains("total"));
    /// # Ok(())
    /// # }
    /// ```
    pub fn summary(&self) -> Result<String, NnError> {
        use std::fmt::Write as _;
        let plan = self.plan()?;
        let mut out = String::new();
        let _ = writeln!(out, "{} ({} -> {})", self.name, self.input_shape, {
            plan.last().map(|l| l.output).unwrap_or(self.input_shape)
        });
        let _ = writeln!(
            out,
            "{:>18} | {:>10} | {:>11} | {:>11} | {:>10} | {:>9}",
            "layer", "kind", "input", "output", "MACs", "weights"
        );
        for info in &plan {
            let _ = writeln!(
                out,
                "{:>18} | {:>10} | {:>11} | {:>11} | {:>10} | {:>7} B",
                info.name,
                info.kind.to_string(),
                info.input.to_string(),
                info.output.to_string(),
                info.macs,
                info.weight_bytes
            );
        }
        let total_macs: u64 = plan.iter().map(|l| l.macs).sum();
        let total_weights: usize = plan.iter().map(|l| l.weight_bytes).sum();
        let _ = writeln!(
            out,
            "{:>18} | {:>10} | {:>11} | {:>11} | {:>10} | {:>7} B",
            "total", "", "", "", total_macs, total_weights
        );
        Ok(out)
    }

    /// Runs a full inference.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::LayerInputMismatch`] if `input` does not match
    /// [`Model::input_shape`], and propagates layer errors.
    pub fn infer(&self, input: &Tensor) -> Result<Tensor, NnError> {
        if input.shape() != self.input_shape {
            return Err(NnError::LayerInputMismatch {
                layer: self.name.clone(),
                expected: self.input_shape.to_string(),
                actual: input.shape(),
            });
        }
        let mut x = input.clone();
        for block in &self.blocks {
            let block_in = if block.residual {
                Some(x.clone())
            } else {
                None
            };
            for nl in &block.layers {
                x = nl.layer.forward(&x)?;
            }
            if let Some(skip) = block_in {
                if skip.shape() != x.shape() {
                    return Err(NnError::ResidualShapeMismatch {
                        block: block.name.clone(),
                        input: skip.shape(),
                        output: x.shape(),
                    });
                }
                let data = x.data_mut();
                for (o, s) in data.iter_mut().zip(skip.data()) {
                    *o = o.saturating_add(*s);
                }
            }
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quant::QuantParams;

    fn tiny_model(residual: bool) -> Model {
        let q = QuantParams::from_scales(1.0, 1.0, 127.0);
        let mut wid = vec![0i8; 4 * 4];
        for i in 0..4 {
            wid[i * 4 + i] = 127; // identity pointwise
        }
        Model::new(
            "tiny",
            Shape::new(4, 4, 4),
            vec![Block {
                name: "b0".into(),
                residual,
                layers: vec![NamedLayer {
                    name: "b0.pw".into(),
                    layer: Layer::Pointwise(
                        PointwiseConv2d::new(4, 4, wid, vec![0; 4], q).unwrap(),
                    ),
                }],
            }],
        )
    }

    #[test]
    fn plan_resolves_shapes() {
        let m = tiny_model(false);
        let plan = m.plan().unwrap();
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].input, Shape::new(4, 4, 4));
        assert_eq!(plan[0].output, Shape::new(4, 4, 4));
        assert_eq!(plan[0].kind, LayerKind::Pointwise);
        assert_eq!(plan[0].macs, (4 * 4 * 4 * 4) as u64);
    }

    #[test]
    fn residual_adds_input() {
        let m = tiny_model(true);
        let input = Tensor::from_fn(Shape::new(4, 4, 4), |_, _, c| (c as i8) + 1);
        let out = m.infer(&input).unwrap();
        // identity branch + skip = 2x input.
        for c in 0..4 {
            assert_eq!(out.get(0, 0, c).unwrap(), 2 * (c as i8 + 1));
        }
    }

    #[test]
    fn residual_saturates() {
        let m = tiny_model(true);
        let input = Tensor::from_fn(Shape::new(4, 4, 4), |_, _, _| 120);
        let out = m.infer(&input).unwrap();
        assert_eq!(out.get(0, 0, 0).unwrap(), 127, "must saturate, not wrap");
    }

    #[test]
    fn wrong_input_shape_rejected() {
        let m = tiny_model(false);
        let input = Tensor::zeros(Shape::new(4, 4, 3));
        assert!(matches!(
            m.infer(&input),
            Err(NnError::LayerInputMismatch { .. })
        ));
    }

    #[test]
    fn kind_display() {
        assert_eq!(LayerKind::Depthwise.to_string(), "depthwise");
        assert_eq!(LayerKind::Pointwise.to_string(), "pointwise");
        assert_eq!(LayerKind::Rest.to_string(), "rest");
    }

    #[test]
    fn layer_count_flattens_blocks() {
        let m = tiny_model(false);
        assert_eq!(m.layer_count(), 1);
        assert_eq!(m.layers().count(), 1);
    }
}
