//! Linear int8 quantization arithmetic (TFLite-style).
//!
//! The paper's models come from MCUNet with "linear int8 quantization".
//! Accumulation happens in `i32`; the accumulator is rescaled back to int8
//! with a fixed-point multiplier `M = mantissa · 2^(-shift)` exactly as
//! TFLite Micro / CMSIS-NN do, so kernel outputs are bit-reproducible
//! integers rather than floats.

/// A positive real multiplier `< 1` encoded as `mantissa × 2^exponent` with
/// a Q31 mantissa, the representation used by quantized inference kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QuantizedMultiplier {
    /// Q31 mantissa in `[2^30, 2^31)` (or 0 for a zero multiplier).
    pub mantissa: i32,
    /// Power-of-two exponent applied after the mantissa multiply.
    pub exponent: i32,
}

impl QuantizedMultiplier {
    /// Encodes a real multiplier.
    ///
    /// # Panics
    ///
    /// Panics if `value` is negative, non-finite, or ≥ 1 (layer rescale
    /// factors are always in `[0, 1)` for sane quantization parameters).
    pub fn from_f64(value: f64) -> Self {
        assert!(
            value.is_finite() && (0.0..1.0).contains(&value),
            "multiplier must be in [0,1), got {value}"
        );
        if value == 0.0 {
            return QuantizedMultiplier {
                mantissa: 0,
                exponent: 0,
            };
        }
        let (mut frac, mut exp) = frexp(value);
        // frac in [0.5, 1): scale to Q31.
        let mut mantissa = (frac * (1i64 << 31) as f64).round() as i64;
        if mantissa == (1i64 << 31) {
            mantissa /= 2;
            exp += 1;
            frac /= 2.0;
        }
        let _ = frac;
        QuantizedMultiplier {
            mantissa: mantissa as i32,
            exponent: exp,
        }
    }

    /// Applies the multiplier to an `i32` accumulator with round-to-nearest
    /// (the `MultiplyByQuantizedMultiplier` primitive).
    pub fn apply(&self, acc: i32) -> i32 {
        if self.mantissa == 0 {
            return 0;
        }
        // 64-bit product with rounding at bit 31.
        let prod = i64::from(acc) * i64::from(self.mantissa);
        let rounded = (prod + (1i64 << 30)) >> 31;
        // Apply the exponent (negative = right shift with rounding).
        let e = self.exponent;
        if e >= 0 {
            (rounded << e) as i32
        } else {
            let shift = -e;
            let add = 1i64 << (shift - 1);
            ((rounded + add) >> shift) as i32
        }
    }

    /// The real value this encodes.
    pub fn as_f64(&self) -> f64 {
        self.mantissa as f64 / (1i64 << 31) as f64 * 2f64.powi(self.exponent)
    }
}

/// Splits `value` into `(fraction, exponent)` with fraction in `[0.5, 1)`.
fn frexp(value: f64) -> (f64, i32) {
    let mut exp = 0i32;
    let mut v = value;
    while v < 0.5 {
        v *= 2.0;
        exp -= 1;
    }
    while v >= 1.0 {
        v /= 2.0;
        exp += 1;
    }
    (v, exp)
}

/// Per-layer requantization parameters: accumulator → int8 activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QuantParams {
    /// The combined rescale multiplier `s_in · s_w / s_out`.
    pub multiplier: QuantizedMultiplier,
    /// Output zero point.
    pub zero_point: i32,
    /// Activation clamp low (e.g. -128, or `zero_point` for fused ReLU).
    pub clamp_min: i32,
    /// Activation clamp high.
    pub clamp_max: i32,
}

impl QuantParams {
    /// Parameters from the three scales, symmetric output, full int8 range.
    ///
    /// # Panics
    ///
    /// Panics if any scale is non-positive or the combined multiplier
    /// leaves `[0, 1)`.
    pub fn from_scales(input_scale: f64, weight_scale: f64, output_scale: f64) -> Self {
        assert!(
            input_scale > 0.0 && weight_scale > 0.0 && output_scale > 0.0,
            "scales must be positive"
        );
        let m = input_scale * weight_scale / output_scale;
        QuantParams {
            multiplier: QuantizedMultiplier::from_f64(m),
            zero_point: 0,
            clamp_min: i32::from(i8::MIN),
            clamp_max: i32::from(i8::MAX),
        }
    }

    /// A neutral set of parameters useful in tests: multiplier ≈ 2⁻⁷,
    /// no zero point, full range.
    pub fn test_default() -> Self {
        QuantParams::from_scales(1.0, 1.0, 128.0)
    }

    /// Fuses a ReLU into the clamp window (clamp at the zero point).
    pub fn with_relu(mut self) -> Self {
        self.clamp_min = self.clamp_min.max(self.zero_point);
        self
    }

    /// Requantizes an `i32` accumulator down to int8.
    ///
    /// ```
    /// use tinynn::quant::QuantParams;
    ///
    /// let q = QuantParams::test_default();
    /// assert_eq!(q.requantize(1280), 10);
    /// assert_eq!(q.requantize(i32::MAX / 2), 127); // saturates
    /// ```
    pub fn requantize(&self, acc: i32) -> i8 {
        let scaled = self.multiplier.apply(acc) + self.zero_point;
        scaled.clamp(self.clamp_min, self.clamp_max) as i8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplier_round_trip() {
        for v in [0.5, 0.25, 0.1, 0.0078125, 0.9, 1.0 / 3.0] {
            let q = QuantizedMultiplier::from_f64(v);
            assert!(
                (q.as_f64() - v).abs() < 1e-9,
                "round trip failed for {v}: {}",
                q.as_f64()
            );
        }
    }

    #[test]
    fn zero_multiplier() {
        let q = QuantizedMultiplier::from_f64(0.0);
        assert_eq!(q.apply(123456), 0);
    }

    #[test]
    fn apply_matches_float_math() {
        let q = QuantizedMultiplier::from_f64(0.0123);
        for acc in [-100_000, -1, 0, 1, 777, 100_000] {
            let exact = (f64::from(acc) * 0.0123).round() as i32;
            let got = q.apply(acc);
            assert!(
                (got - exact).abs() <= 1,
                "acc={acc}: fixed {got} vs float {exact}"
            );
        }
    }

    #[test]
    fn requantize_clamps() {
        let q = QuantParams::test_default();
        assert_eq!(q.requantize(i32::MAX / 2), 127);
        assert_eq!(q.requantize(i32::MIN / 2), -128);
        assert_eq!(q.requantize(0), 0);
    }

    #[test]
    fn relu_fusion_clamps_at_zero_point() {
        let q = QuantParams::test_default().with_relu();
        assert_eq!(q.requantize(-12800), 0);
        assert_eq!(q.requantize(1280), 10);
    }

    #[test]
    #[should_panic(expected = "[0,1)")]
    fn multiplier_ge_one_rejected() {
        let _ = QuantizedMultiplier::from_f64(1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn nonpositive_scale_rejected() {
        let _ = QuantParams::from_scales(0.0, 1.0, 1.0);
    }

    #[test]
    fn rounding_is_to_nearest() {
        // multiplier 0.5: acc 3 -> 1.5 -> rounds away from zero-ish (2 or 1
        // both acceptable as ties, but 5*0.5=2.5 must not round to 3's
        // neighbour error > 1).
        let q = QuantizedMultiplier::from_f64(0.5);
        assert_eq!(q.apply(4), 2);
        assert_eq!(q.apply(6), 3);
        let r3 = q.apply(3);
        assert!(r3 == 1 || r3 == 2);
    }
}
