//! int8 tensors in HWC layout (the layout TinyEngine and CMSIS-NN use).

use std::fmt;

use crate::error::NnError;

/// Shape of an activation tensor: height × width × channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape {
    /// Rows.
    pub h: usize,
    /// Columns.
    pub w: usize,
    /// Channels.
    pub c: usize,
}

impl Shape {
    /// Creates a shape.
    pub const fn new(h: usize, w: usize, c: usize) -> Self {
        Shape { h, w, c }
    }

    /// Total element count.
    pub const fn elements(&self) -> usize {
        self.h * self.w * self.c
    }

    /// Size in bytes for int8 data.
    pub const fn bytes(&self) -> usize {
        self.elements()
    }

    /// Bytes of a single channel plane.
    pub const fn channel_bytes(&self) -> usize {
        self.h * self.w
    }

    /// Bytes of one spatial column across all channels (one "image column"
    /// in the paper's pointwise terminology: one element per channel).
    pub const fn column_bytes(&self) -> usize {
        self.c
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.h, self.w, self.c)
    }
}

/// An int8 activation tensor in HWC (row-major, channels innermost) layout.
///
/// # Examples
///
/// ```
/// use tinynn::{Shape, Tensor};
///
/// # fn main() -> Result<(), tinynn::NnError> {
/// let mut t = Tensor::zeros(Shape::new(2, 2, 3));
/// t.set(1, 1, 2, 42)?;
/// assert_eq!(t.get(1, 1, 2)?, 42);
/// assert_eq!(t.get(0, 0, 0)?, 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<i8>,
}

impl Tensor {
    /// A zero-filled tensor.
    pub fn zeros(shape: Shape) -> Self {
        Tensor {
            shape,
            data: vec![0; shape.elements()],
        }
    }

    /// Wraps existing data.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `data.len()` does not equal
    /// `shape.elements()`.
    pub fn from_data(shape: Shape, data: Vec<i8>) -> Result<Self, NnError> {
        if data.len() != shape.elements() {
            return Err(NnError::ShapeMismatch {
                expected: shape.elements(),
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// The tensor shape.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Immutable view of the raw HWC data.
    pub fn data(&self) -> &[i8] {
        &self.data
    }

    /// Mutable view of the raw HWC data.
    pub fn data_mut(&mut self) -> &mut [i8] {
        &mut self.data
    }

    /// Flat index of `(y, x, c)`.
    fn index(&self, y: usize, x: usize, c: usize) -> Result<usize, NnError> {
        if y >= self.shape.h || x >= self.shape.w || c >= self.shape.c {
            return Err(NnError::IndexOutOfBounds {
                y,
                x,
                c,
                shape: self.shape,
            });
        }
        Ok((y * self.shape.w + x) * self.shape.c + c)
    }

    /// Element at `(y, x, c)`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::IndexOutOfBounds`] when outside the shape.
    pub fn get(&self, y: usize, x: usize, c: usize) -> Result<i8, NnError> {
        Ok(self.data[self.index(y, x, c)?])
    }

    /// Element at `(y, x, c)` with zero padding outside the spatial extent.
    /// Signed coordinates make convolution edge handling direct.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range — padding is spatial only.
    pub fn get_padded(&self, y: isize, x: isize, c: usize) -> i8 {
        assert!(c < self.shape.c, "channel {c} out of range");
        if y < 0 || x < 0 || y as usize >= self.shape.h || x as usize >= self.shape.w {
            0
        } else {
            self.data[(y as usize * self.shape.w + x as usize) * self.shape.c + c]
        }
    }

    /// Sets the element at `(y, x, c)`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::IndexOutOfBounds`] when outside the shape.
    pub fn set(&mut self, y: usize, x: usize, c: usize, value: i8) -> Result<(), NnError> {
        let i = self.index(y, x, c)?;
        self.data[i] = value;
        Ok(())
    }

    /// Builds a tensor by evaluating `f(y, x, c)` everywhere.
    pub fn from_fn(shape: Shape, mut f: impl FnMut(usize, usize, usize) -> i8) -> Self {
        let mut data = Vec::with_capacity(shape.elements());
        for y in 0..shape.h {
            for x in 0..shape.w {
                for c in 0..shape.c {
                    data.push(f(y, x, c));
                }
            }
        }
        Tensor { shape, data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hwc_layout() {
        let t = Tensor::from_fn(Shape::new(2, 2, 2), |y, x, c| (y * 4 + x * 2 + c) as i8);
        assert_eq!(t.data(), &[0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(t.get(1, 0, 1).unwrap(), 5);
    }

    #[test]
    fn shape_arithmetic() {
        let s = Shape::new(8, 8, 3);
        assert_eq!(s.elements(), 192);
        assert_eq!(s.bytes(), 192);
        assert_eq!(s.channel_bytes(), 64);
        assert_eq!(s.column_bytes(), 3);
        assert_eq!(s.to_string(), "8x8x3");
    }

    #[test]
    fn out_of_bounds_reported() {
        let t = Tensor::zeros(Shape::new(2, 2, 2));
        assert!(matches!(
            t.get(2, 0, 0),
            Err(NnError::IndexOutOfBounds { .. })
        ));
        assert!(matches!(
            t.get(0, 0, 2),
            Err(NnError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn from_data_validates_length() {
        assert!(Tensor::from_data(Shape::new(2, 2, 1), vec![1, 2, 3]).is_err());
        let t = Tensor::from_data(Shape::new(2, 2, 1), vec![1, 2, 3, 4]).unwrap();
        assert_eq!(t.get(1, 1, 0).unwrap(), 4);
    }

    #[test]
    fn padded_access() {
        let t = Tensor::from_fn(Shape::new(2, 2, 1), |_, _, _| 7);
        assert_eq!(t.get_padded(-1, 0, 0), 0);
        assert_eq!(t.get_padded(0, -1, 0), 0);
        assert_eq!(t.get_padded(2, 0, 0), 0);
        assert_eq!(t.get_padded(1, 1, 0), 7);
    }

    #[test]
    #[should_panic(expected = "channel")]
    fn padded_channel_oob_panics() {
        let t = Tensor::zeros(Shape::new(2, 2, 1));
        let _ = t.get_padded(0, 0, 1);
    }

    #[test]
    fn set_then_get() {
        let mut t = Tensor::zeros(Shape::new(3, 3, 3));
        t.set(2, 2, 2, -128).unwrap();
        assert_eq!(t.get(2, 2, 2).unwrap(), -128);
        assert!(t.set(3, 0, 0, 1).is_err());
    }
}
