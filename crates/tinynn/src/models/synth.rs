//! Deterministic synthetic weight generation.
//!
//! The paper's models come pre-trained from MCUNet. Learned weight values do
//! not influence latency or energy (int8 MACs cost the same regardless of
//! operand values), so the reproduction synthesizes weights deterministically
//! from the layer name: every build of the repo produces bit-identical
//! models, which keeps DAE-equivalence tests and benchmarks reproducible.

/// SplitMix64 PRNG — tiny, seedable, and stable across platforms.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Creates a generator seeded from a string (FNV-1a hash).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        SplitMix64::new(h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next int8 weight in `[-100, 100]`.
    pub fn next_weight(&mut self) -> i8 {
        ((self.next_u64() % 201) as i64 - 100) as i8
    }

    /// Next bias in `[-500, 500]`.
    pub fn next_bias(&mut self) -> i32 {
        ((self.next_u64() % 1001) as i64 - 500) as i32
    }
}

/// Deterministic weight vector for a named layer.
pub fn weights(name: &str, len: usize) -> Vec<i8> {
    let mut rng = SplitMix64::from_name(name);
    (0..len).map(|_| rng.next_weight()).collect()
}

/// Deterministic bias vector for a named layer.
pub fn biases(name: &str, len: usize) -> Vec<i32> {
    let mut rng = SplitMix64::from_name(&format!("{name}/bias"));
    (0..len).map(|_| rng.next_bias()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_calls() {
        assert_eq!(weights("layer1", 64), weights("layer1", 64));
        assert_eq!(biases("layer1", 8), biases("layer1", 8));
    }

    #[test]
    fn different_names_differ() {
        assert_ne!(weights("layer1", 64), weights("layer2", 64));
    }

    #[test]
    fn weights_in_range() {
        for w in weights("range-check", 10_000) {
            assert!((-100..=100).contains(&i32::from(w)));
        }
        for b in biases("range-check", 1_000) {
            assert!((-500..=500).contains(&b));
        }
    }

    #[test]
    fn weights_not_degenerate() {
        let w = weights("spread", 10_000);
        let mean: f64 = w.iter().map(|&v| f64::from(v)).sum::<f64>() / w.len() as f64;
        assert!(mean.abs() < 5.0, "mean {mean} too far from zero");
        let distinct: std::collections::HashSet<i8> = w.into_iter().collect();
        assert!(distinct.len() > 150, "poor value coverage");
    }
}
