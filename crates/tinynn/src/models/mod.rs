//! The model zoo: the three CNNs of the paper's evaluation.
//!
//! * [`vww`] — Visual Wake Words, MobileNetV1-style depthwise-separable
//!   stack;
//! * [`person_detection`] — grayscale person detector, narrower
//!   depthwise-separable stack;
//! * [`mobilenet_v2`] — MobileNetV2-style inverted-residual network.
//!
//! All three are built from deterministic synthetic weights (see [`synth`])
//! at MCUNet-like scales. Each has a `*_sized` variant for tests that need
//! a smaller spatial extent.

pub mod synth;

use crate::graph::{Block, Layer, Model, NamedLayer};
use crate::layers::{AvgPool, Conv2d, Dense, DepthwiseConv2d, PointwiseConv2d};
use crate::quant::QuantParams;
use crate::tensor::Shape;

/// Requantization parameters for a layer with `fan_in` accumulated products.
///
/// The output scale grows with `√fan_in` so synthetic activations keep a
/// healthy dynamic range instead of saturating.
fn quant_for(fan_in: usize, relu: bool) -> QuantParams {
    let q = QuantParams::from_scales(1.0, 1.0, (fan_in as f64).sqrt() * 64.0);
    if relu {
        q.with_relu()
    } else {
        q
    }
}

/// A named standard convolution with fused ReLU.
fn conv(name: &str, k: usize, stride: usize, c_in: usize, c_out: usize) -> NamedLayer {
    let pad = k / 2;
    let fan_in = k * k * c_in;
    NamedLayer {
        name: name.to_owned(),
        layer: Layer::Conv2d(
            Conv2d::new(
                k,
                stride,
                pad,
                c_in,
                c_out,
                synth::weights(name, c_out * fan_in),
                synth::biases(name, c_out),
                quant_for(fan_in, true),
            )
            .expect("builder geometry is consistent"),
        ),
    }
}

/// A named 3×3 depthwise convolution with fused ReLU.
fn dw(name: &str, stride: usize, channels: usize) -> NamedLayer {
    NamedLayer {
        name: name.to_owned(),
        layer: Layer::Depthwise(
            DepthwiseConv2d::new(
                3,
                stride,
                1,
                channels,
                synth::weights(name, channels * 9),
                synth::biases(name, channels),
                quant_for(9, true),
            )
            .expect("builder geometry is consistent"),
        ),
    }
}

/// A named pointwise convolution, optionally with fused ReLU.
fn pw(name: &str, c_in: usize, c_out: usize, relu: bool) -> NamedLayer {
    NamedLayer {
        name: name.to_owned(),
        layer: Layer::Pointwise(
            PointwiseConv2d::new(
                c_in,
                c_out,
                synth::weights(name, c_out * c_in),
                synth::biases(name, c_out),
                quant_for(c_in, relu),
            )
            .expect("builder geometry is consistent"),
        ),
    }
}

/// A depthwise-separable block (MobileNetV1 style): dw3x3 + pw1x1.
fn ds_block(name: &str, c_in: usize, c_out: usize, stride: usize) -> Block {
    Block {
        name: name.to_owned(),
        residual: false,
        layers: vec![
            dw(&format!("{name}.dw"), stride, c_in),
            pw(&format!("{name}.pw"), c_in, c_out, true),
        ],
    }
}

/// An inverted-residual block (MobileNetV2 style): expand-pw + dw + project-pw.
fn ir_block(name: &str, c_in: usize, expansion: usize, c_out: usize, stride: usize) -> Block {
    let hidden = c_in * expansion;
    let mut layers = Vec::new();
    if expansion != 1 {
        layers.push(pw(&format!("{name}.expand"), c_in, hidden, true));
    }
    layers.push(dw(&format!("{name}.dw"), stride, hidden));
    layers.push(pw(&format!("{name}.project"), hidden, c_out, false));
    Block {
        name: name.to_owned(),
        residual: stride == 1 && c_in == c_out,
        layers,
    }
}

/// The classifier tail: global average pool + dense head.
fn classifier(name: &str, channels: usize, classes: usize) -> Vec<Block> {
    vec![
        Block {
            name: format!("{name}.pool"),
            residual: false,
            layers: vec![NamedLayer {
                name: format!("{name}.avgpool"),
                layer: Layer::AvgPool(AvgPool::new()),
            }],
        },
        Block {
            name: format!("{name}.head"),
            residual: false,
            layers: vec![NamedLayer {
                name: format!("{name}.fc"),
                layer: Layer::Dense(
                    Dense::new(
                        channels,
                        classes,
                        synth::weights(&format!("{name}.fc"), classes * channels),
                        synth::biases(&format!("{name}.fc"), classes),
                        quant_for(channels, false),
                    )
                    .expect("builder geometry is consistent"),
                ),
            }],
        },
    ]
}

/// Visual Wake Words at an arbitrary square input size (RGB).
///
/// # Panics
///
/// Panics if `input < 32` (the 4 stride-2 stages need the extent).
pub fn vww_sized(input: usize) -> Model {
    assert!(input >= 32, "vww needs input >= 32, got {input}");
    let mut blocks = vec![Block {
        name: "stem".into(),
        residual: false,
        layers: vec![conv("stem.conv", 3, 2, 3, 8)],
    }];
    let spec: &[(usize, usize, usize)] = &[
        (8, 16, 1),
        (16, 32, 2),
        (32, 32, 1),
        (32, 64, 2),
        (64, 64, 1),
        (64, 128, 2),
        (128, 128, 1),
        (128, 128, 1),
    ];
    for (i, &(cin, cout, s)) in spec.iter().enumerate() {
        blocks.push(ds_block(&format!("b{i}"), cin, cout, s));
    }
    blocks.extend(classifier("vww", 128, 2));
    Model::new("vww", Shape::new(input, input, 3), blocks)
}

/// Visual Wake Words at the paper-like 64×64×3 input.
pub fn vww() -> Model {
    vww_sized(64)
}

/// Person Detection at an arbitrary square input size (grayscale).
///
/// # Panics
///
/// Panics if `input < 32`.
pub fn person_detection_sized(input: usize) -> Model {
    assert!(
        input >= 32,
        "person_detection needs input >= 32, got {input}"
    );
    let mut blocks = vec![Block {
        name: "stem".into(),
        residual: false,
        layers: vec![conv("pd.stem.conv", 3, 2, 1, 8)],
    }];
    let spec: &[(usize, usize, usize)] = &[
        (8, 16, 2),
        (16, 16, 1),
        (16, 32, 2),
        (32, 32, 1),
        (32, 64, 2),
        (64, 64, 1),
        (64, 64, 1),
        (64, 96, 1),
        (96, 96, 1),
    ];
    for (i, &(cin, cout, s)) in spec.iter().enumerate() {
        blocks.push(ds_block(&format!("pd.b{i}"), cin, cout, s));
    }
    blocks.extend(classifier("pd", 96, 2));
    Model::new("person-detection", Shape::new(input, input, 1), blocks)
}

/// Person Detection at the paper-like 96×96×1 input.
pub fn person_detection() -> Model {
    person_detection_sized(96)
}

/// MobileNetV2 at an arbitrary square input size (RGB).
///
/// # Panics
///
/// Panics if `input < 32`.
pub fn mobilenet_v2_sized(input: usize) -> Model {
    assert!(input >= 32, "mobilenet_v2 needs input >= 32, got {input}");
    let mut blocks = vec![Block {
        name: "stem".into(),
        residual: false,
        layers: vec![conv("mbv2.stem.conv", 3, 2, 3, 16)],
    }];
    let spec: &[(usize, usize, usize, usize)] = &[
        // (c_in, expansion, c_out, stride)
        (16, 1, 16, 1),
        (16, 6, 24, 2),
        (24, 6, 24, 1),
        (24, 6, 32, 2),
        (32, 6, 32, 1),
        (32, 6, 32, 1),
        (32, 6, 64, 2),
        (64, 6, 64, 1),
        (64, 6, 64, 1),
        (64, 6, 96, 1),
        (96, 6, 96, 1),
    ];
    for (i, &(cin, t, cout, s)) in spec.iter().enumerate() {
        blocks.push(ir_block(&format!("mbv2.b{i}"), cin, t, cout, s));
    }
    blocks.push(Block {
        name: "mbv2.headconv".into(),
        residual: false,
        layers: vec![pw("mbv2.head.pw", 96, 160, true)],
    });
    blocks.extend(classifier("mbv2", 160, 2));
    Model::new("mobilenet-v2", Shape::new(input, input, 3), blocks)
}

/// MobileNetV2 at the paper-like 64×64×3 input.
pub fn mobilenet_v2() -> Model {
    mobilenet_v2_sized(64)
}

/// All three evaluation models at paper-like sizes, in the paper's order
/// (VWW, PD, MBV2).
pub fn paper_models() -> Vec<Model> {
    vec![vww(), person_detection(), mobilenet_v2()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::LayerKind;
    use crate::tensor::Tensor;

    #[test]
    fn all_models_plan_cleanly() {
        for m in paper_models() {
            let plan = m.plan().expect("plan must resolve");
            assert!(plan.len() >= 15, "{} too shallow: {}", m.name, plan.len());
            assert!(m.total_macs().unwrap() > 1_000_000, "{} too small", m.name);
        }
    }

    #[test]
    fn dae_targets_dominate_layer_mix() {
        // Paper: depthwise + pointwise make up over 80% of deep lightweight
        // CNN layers.
        for m in paper_models() {
            let plan = m.plan().unwrap();
            let targets = plan
                .iter()
                .filter(|l| matches!(l.kind, LayerKind::Depthwise | LayerKind::Pointwise))
                .count();
            let frac = targets as f64 / plan.len() as f64;
            assert!(frac > 0.7, "{}: dw+pw fraction {frac:.2} too low", m.name);
        }
    }

    #[test]
    fn output_is_two_class_logits() {
        for m in paper_models() {
            assert_eq!(m.output_shape().unwrap(), Shape::new(1, 1, 2), "{}", m.name);
        }
    }

    #[test]
    fn residual_blocks_present_in_mbv2_only() {
        assert!(mobilenet_v2().blocks.iter().any(|b| b.residual));
        assert!(!vww().blocks.iter().any(|b| b.residual));
        assert!(!person_detection().blocks.iter().any(|b| b.residual));
    }

    #[test]
    fn small_models_run_inference() {
        for m in [
            vww_sized(32),
            person_detection_sized(32),
            mobilenet_v2_sized(32),
        ] {
            let input = Tensor::from_fn(m.input_shape, |y, x, c| {
                (((y * 7 + x * 3 + c) % 200) as i32 - 100) as i8
            });
            let out = m.infer(&input).expect("inference must succeed");
            assert_eq!(out.shape(), Shape::new(1, 1, 2));
        }
    }

    #[test]
    fn inference_is_deterministic() {
        let m = vww_sized(32);
        let input = Tensor::from_fn(m.input_shape, |y, x, c| ((y + x + c) % 128) as i8);
        assert_eq!(m.infer(&input).unwrap(), m.infer(&input).unwrap());
    }

    #[test]
    fn activations_not_degenerate() {
        // Guard against bad quant calibration that saturates everything.
        let m = vww_sized(32);
        let input = Tensor::from_fn(m.input_shape, |y, x, c| {
            (((y * 13 + x * 7 + c * 3) % 200) as i32 - 100) as i8
        });
        let out = m.infer(&input).unwrap();
        let all_same = out.data().windows(2).all(|w| w[0] == w[1]);
        assert!(!all_same, "logits are degenerate: {:?}", out.data());
    }

    #[test]
    fn weight_bytes_fit_mcu_flash() {
        for m in paper_models() {
            let kb = m.weight_bytes() / 1024;
            assert!(kb < 2048, "{} weights {kb} KB exceed 2 MB flash", m.name);
        }
    }

    #[test]
    #[should_panic(expected = "input >= 32")]
    fn tiny_input_rejected() {
        let _ = vww_sized(16);
    }
}
