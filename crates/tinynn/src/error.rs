//! Error type for the CNN substrate.

use std::error::Error;
use std::fmt;

use crate::tensor::Shape;

/// Errors produced by tensor and layer operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NnError {
    /// Data length does not match the declared shape.
    ShapeMismatch {
        /// Elements the shape requires.
        expected: usize,
        /// Elements actually provided.
        actual: usize,
    },
    /// An `(y, x, c)` access left the tensor bounds.
    IndexOutOfBounds {
        /// Requested row.
        y: usize,
        /// Requested column.
        x: usize,
        /// Requested channel.
        c: usize,
        /// The tensor shape.
        shape: Shape,
    },
    /// A layer received an input whose shape it cannot consume.
    LayerInputMismatch {
        /// The layer's name.
        layer: String,
        /// What the layer expected (free text, e.g. "c=16").
        expected: String,
        /// The shape it received.
        actual: Shape,
    },
    /// Weight vector length inconsistent with the layer geometry.
    WeightSizeMismatch {
        /// The layer's name.
        layer: String,
        /// Expected weight element count.
        expected: usize,
        /// Actual weight element count.
        actual: usize,
    },
    /// A residual block's branch output shape differs from its input.
    ResidualShapeMismatch {
        /// Block name.
        block: String,
        /// Shape entering the block.
        input: Shape,
        /// Shape produced by the branch.
        output: Shape,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::ShapeMismatch { expected, actual } => {
                write!(
                    f,
                    "data length {actual} does not match shape ({expected} elements)"
                )
            }
            NnError::IndexOutOfBounds { y, x, c, shape } => {
                write!(f, "index ({y},{x},{c}) outside tensor {shape}")
            }
            NnError::LayerInputMismatch {
                layer,
                expected,
                actual,
            } => write!(f, "layer '{layer}' expected input {expected}, got {actual}"),
            NnError::WeightSizeMismatch {
                layer,
                expected,
                actual,
            } => write!(
                f,
                "layer '{layer}' weight size {actual} does not match geometry ({expected})"
            ),
            NnError::ResidualShapeMismatch {
                block,
                input,
                output,
            } => write!(
                f,
                "residual block '{block}' branch output {output} differs from input {input}"
            ),
        }
    }
}

impl Error for NnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn implements_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<NnError>();
    }

    #[test]
    fn messages_mention_details() {
        let e = NnError::LayerInputMismatch {
            layer: "pw3".into(),
            expected: "c=16".into(),
            actual: Shape::new(8, 8, 24),
        };
        let msg = e.to_string();
        assert!(msg.contains("pw3") && msg.contains("8x8x24") && msg.contains("c=16"));
    }
}
