//! Model-zoo integration tests at paper sizes.

use tinynn::models::{mobilenet_v2, paper_models, person_detection, vww};
use tinynn::{LayerKind, Shape, Tensor};

#[test]
fn model_shapes_telescope_correctly() {
    for m in paper_models() {
        let plan = m.plan().expect("plan resolves");
        // Consecutive layers connect.
        for w in plan.windows(2) {
            assert_eq!(
                w[0].output, w[1].input,
                "{}: {} -> {}",
                m.name, w[0].name, w[1].name
            );
        }
        assert_eq!(plan[0].input, m.input_shape);
        assert_eq!(plan.last().expect("non-empty").output, Shape::new(1, 1, 2));
    }
}

#[test]
fn spatial_extent_strictly_decreases_through_stride_stages() {
    let m = vww();
    let plan = m.plan().expect("plan resolves");
    let first = plan.first().expect("non-empty");
    let last = plan.last().expect("non-empty");
    assert!(first.input.h > last.input.h || last.input.h == 1);
}

#[test]
fn weights_are_deterministic_across_construction() {
    let a = mobilenet_v2();
    let b = mobilenet_v2();
    assert_eq!(a, b, "model construction must be bit-deterministic");
}

#[test]
fn full_size_vww_inference_completes() {
    let m = vww();
    let input = Tensor::from_fn(m.input_shape, |y, x, c| ((y + 2 * x + 3 * c) % 128) as i8);
    let out = m.infer(&input).expect("full-size inference");
    assert_eq!(out.shape(), Shape::new(1, 1, 2));
}

#[test]
fn person_detection_is_grayscale() {
    assert_eq!(person_detection().input_shape.c, 1);
}

#[test]
fn mac_distribution_matches_mobilenet_expectations() {
    // Pointwise convolutions should carry the bulk of the MACs in
    // depthwise-separable architectures.
    for m in paper_models() {
        let plan = m.plan().expect("plan resolves");
        let total: u64 = plan.iter().map(|l| l.macs).sum();
        let pw: u64 = plan
            .iter()
            .filter(|l| l.kind == LayerKind::Pointwise)
            .map(|l| l.macs)
            .sum();
        let frac = pw as f64 / total as f64;
        assert!(
            frac > 0.4,
            "{}: pointwise MAC share {frac:.2} implausibly low",
            m.name
        );
    }
}

#[test]
fn layer_names_are_unique() {
    for m in paper_models() {
        let mut names: Vec<&str> = m.layers().map(|nl| nl.name.as_str()).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(before, names.len(), "{}: duplicate layer names", m.name);
    }
}
