//! The content-addressed on-disk plan registry: a persistent cold tier
//! below the [`crate::service::PlanService`] LRU.
//!
//! The in-memory plan cache is volatile — a process restart cold-solves
//! the world. This module gives artifacts a durable home: every
//! completed solve is written through to disk, and a cache miss consults
//! the registry before paying for a solve, so a restarted service warms
//! itself from the artifacts the previous process left behind.
//!
//! # Content addressing
//!
//! An entry's filename is the FNV-1a mix of its full
//! [`crate::service::PlanKey`] — `(model_fingerprint,
//! config_fingerprint, solver, window_bits, dp_resolution)` — rendered
//! as 16 hex digits plus `.json`. The key's window is the *canonical*
//! window (slack resolved against the baseline and snapped onto the
//! service's `qos_quantum_secs` grid, exactly like the in-memory path),
//! so a disk-warmed hit answers the same canonicalized requests the LRU
//! entry did, bit-identically.
//!
//! # Entry format
//!
//! Each file is a JSON envelope around the ordinary
//! [`crate::PlanArtifact`] schema: a discriminator, the envelope schema
//! version, the key fields the artifact itself does not carry (solver,
//! window bits, DP resolution), and the artifact object verbatim. The
//! fingerprints are *not* duplicated in the envelope — they are read
//! from the artifact, which [`crate::DeploymentPlan::from_artifact`]
//! re-validates against the serving planner on every load.
//!
//! # Atomicity & quarantine
//!
//! Writes go to a process-unique temp file in the registry directory and
//! are published with `rename`, so readers never observe a torn entry.
//! Corruption is still possible (truncation by a dying writer on another
//! filesystem, bit rot, manual tampering); any entry that fails to
//! decode, disagrees with its own content address, or mismatches the
//! serving planner is **quarantined** — moved into the `quarantine/`
//! subdirectory and counted — never served and never trusted again.
//! [`PlanRegistry::open`] performs no scan by itself;
//! [`crate::service::PlanService::attach_registry`] replays every stored
//! entry through [`crate::DeploymentPlan::from_artifact`] before the
//! registry serves its first hit (startup re-validation).

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::artifact::{json, PlanArtifact};
use crate::error::RegistryError;
use crate::pipeline::DeploymentPlan;
use crate::planner::Planner;
use crate::request::Solver;
use crate::service::{PlanKey, ServedPlan};

/// Version of the registry envelope schema this build writes and accepts.
pub const REGISTRY_SCHEMA_VERSION: u32 = 1;

/// The envelope's `"registry"` discriminator value.
const REGISTRY_KIND: &str = "dae-dvfs-plan-registry-entry";

/// Name of the quarantine subdirectory.
const QUARANTINE_DIR: &str = "quarantine";

/// Serializes a solver to its envelope tag. Shared with the receipt
/// surface (`crate::obs`), whose `solver` field uses the same tags.
pub(crate) fn solver_tag(solver: Solver) -> &'static str {
    match solver {
        Solver::ReserveGrid => "reserve-grid",
        Solver::SequenceDp => "sequence-dp",
    }
}

/// Parses an envelope solver tag back; `None` for unknown tags (which
/// quarantine the entry rather than erroring). Shared with the HTTP
/// handler, whose `"solver"` request field uses the same tags.
pub(crate) fn parse_solver(tag: &str) -> Option<Solver> {
    match tag {
        "reserve-grid" => Some(Solver::ReserveGrid),
        "sequence-dp" => Some(Solver::SequenceDp),
        _ => None,
    }
}

/// Point-in-time registry counters ([`PlanRegistry::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct RegistryStats {
    /// Cache misses answered from a stored artifact (no solve ran).
    pub hits: u64,
    /// Artifacts written through to disk after a solve.
    pub writes: u64,
    /// Entries moved to `quarantine/` (undecodable, address mismatch, or
    /// planner mismatch) — at startup re-validation or on a load.
    pub quarantined: u64,
}

/// The persistent cold tier: a directory of content-addressed
/// [`PlanArtifact`] files (see the [module docs](self)).
///
/// Attach one to a service with
/// [`crate::service::PlanService::attach_registry`]; the service then
/// consults it on every cache miss before solving and writes every fresh
/// solve through. All methods take `&self` — the registry is shared
/// across worker threads without extra locking (the filesystem's atomic
/// rename is the only synchronization the entries need).
#[derive(Debug)]
pub struct PlanRegistry {
    dir: PathBuf,
    hits: AtomicU64,
    writes: AtomicU64,
    quarantined: AtomicU64,
    /// Per-process temp-name discriminator; combined with the process id
    /// so concurrent writers (threads or processes) never collide.
    temp_seq: AtomicU64,
}

impl PlanRegistry {
    /// Opens (creating if absent) a registry rooted at `dir`, including
    /// its `quarantine/` subdirectory.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Io`] when either directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, RegistryError> {
        let dir = dir.into();
        let io = |op: &'static str, path: &Path| {
            let path = path.display().to_string();
            move |e: std::io::Error| RegistryError::Io {
                op,
                path,
                reason: e.to_string(),
            }
        };
        fs::create_dir_all(&dir).map_err(io("create-dir", &dir))?;
        let quarantine = dir.join(QUARANTINE_DIR);
        fs::create_dir_all(&quarantine).map_err(io("create-dir", &quarantine))?;
        Ok(PlanRegistry {
            dir,
            hits: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            temp_seq: AtomicU64::new(0),
        })
    }

    /// The registry's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// A point-in-time counters snapshot.
    pub fn stats(&self) -> RegistryStats {
        RegistryStats {
            hits: self.hits.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
        }
    }

    /// Number of live (non-quarantined) entries currently on disk.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Io`] when the registry directory cannot be read.
    pub fn entries(&self) -> Result<usize, RegistryError> {
        Ok(self.entry_paths()?.len())
    }

    /// The content-addressed path of `key`'s entry.
    fn entry_path(&self, key: PlanKey) -> PathBuf {
        self.dir.join(format!("{:016x}.json", key.fnv()))
    }

    /// Renders the envelope for `key` around pre-rendered artifact JSON.
    /// The artifact JSON is embedded verbatim — the envelope parser
    /// hands the nested object straight to [`PlanArtifact::from_value`],
    /// so the artifact bytes a load reproduces are exactly the bytes a
    /// store was given (and exactly the response bytes the service's
    /// byte cache serves).
    fn render_envelope(key: PlanKey, artifact_json: &str) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\n");
        out.push_str(&format!("  \"registry\": \"{REGISTRY_KIND}\",\n"));
        out.push_str(&format!(
            "  \"registry_schema_version\": {REGISTRY_SCHEMA_VERSION},\n"
        ));
        out.push_str(&format!("  \"solver\": \"{}\",\n", solver_tag(key.solver)));
        out.push_str(&format!(
            "  \"window_bits\": \"{:016x}\",\n",
            key.window_bits
        ));
        out.push_str(&format!("  \"dp_resolution\": {},\n", key.dp_resolution));
        out.push_str("  \"artifact\": ");
        out.push_str(artifact_json.trim_end());
        out.push_str("\n}\n");
        out
    }

    /// Writes `artifact` under `key`'s content address: temp file in the
    /// same directory, then an atomic rename, so a concurrent reader (or
    /// a crash) never observes a torn entry.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Io`] when the temp file cannot be written or the
    /// rename fails. The caller may treat a failed store as advisory —
    /// the in-memory tier still holds the plan.
    pub fn store(&self, key: PlanKey, artifact: &PlanArtifact) -> Result<(), RegistryError> {
        self.store_json(key, &artifact.to_json())
    }

    /// [`PlanRegistry::store`] over artifact JSON the caller already
    /// rendered: the write-through path hands in the service's cached
    /// response bytes, so a solve is serialized exactly once — the same
    /// bytes land on disk, in the LRU, and on the wire.
    pub(crate) fn store_json(
        &self,
        key: PlanKey,
        artifact_json: &str,
    ) -> Result<(), RegistryError> {
        let final_path = self.entry_path(key);
        let temp_path = self.dir.join(format!(
            "tmp-{}-{}.part",
            std::process::id(),
            self.temp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        let io = |op: &'static str, path: &Path| {
            let path = path.display().to_string();
            move |e: std::io::Error| RegistryError::Io {
                op,
                path,
                reason: e.to_string(),
            }
        };
        let text = Self::render_envelope(key, artifact_json);
        let write_all = |path: &Path| -> std::io::Result<()> {
            let mut f = fs::File::create(path)?;
            f.write_all(text.as_bytes())?;
            f.sync_all()
        };
        if let Err(e) = write_all(&temp_path).map_err(io("write", &temp_path)) {
            let _ = fs::remove_file(&temp_path);
            return Err(e);
        }
        if let Err(e) = fs::rename(&temp_path, &final_path).map_err(io("rename", &final_path)) {
            let _ = fs::remove_file(&temp_path);
            return Err(e);
        }
        self.writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Looks `key` up against the planner that will serve the plan:
    /// reads, decodes and fully validates the stored entry (envelope
    /// fields against the key, the content address, the canonical-window
    /// bits, and [`DeploymentPlan::from_artifact`] against `planner`).
    /// Any validation failure quarantines the file and reports a miss —
    /// a corrupt entry costs one extra solve, never a bad plan.
    ///
    /// The returned [`ServedPlan`] carries the canonical artifact bytes
    /// alongside the plan, rendered once here (a disk hit is a cold-tier
    /// event: it happens at most once per key per process; the LRU then
    /// serves the pair by `Arc` clone). Because the stored envelope
    /// embeds `to_json` output verbatim and the parser round-trips it
    /// bit-identically (pinned by the registry tests), these bytes equal
    /// the bytes the original store was given.
    pub(crate) fn load(&self, key: PlanKey, planner: &Planner) -> Option<ServedPlan> {
        let path = self.entry_path(key);
        let text = fs::read_to_string(&path).ok()?;
        match Self::decode_entry(&text, Some(key), planner) {
            Ok((plan, artifact)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                let bytes: Arc<[u8]> = artifact.to_json().into_bytes().into();
                Some(ServedPlan::new(Arc::new(plan), bytes))
            }
            Err(_) => {
                self.quarantine(&path);
                None
            }
        }
    }

    /// Decodes and validates one envelope. With `expected` the entry must
    /// match that key exactly; without it the key is reconstructed from
    /// the envelope (startup re-validation, where the filename supplies
    /// the expected address). Returns the validated plan together with
    /// the decoded artifact (so a load can render the canonical bytes
    /// without re-reading the file) and never panics — every failure is
    /// a typed reason used only to decide quarantine.
    fn decode_entry(
        text: &str,
        expected: Option<PlanKey>,
        planner: &Planner,
    ) -> Result<(DeploymentPlan, PlanArtifact), String> {
        let (key, artifact) = Self::decode_envelope(text)?;
        if let Some(expected) = expected {
            if key != expected {
                return Err("envelope key does not match the lookup key".into());
            }
        }
        if artifact.qos_secs.to_bits() != key.window_bits {
            // The stored plan must carry the *canonical* window — the
            // same slack-resolution + quantum snapping the in-memory hit
            // path serves — or a disk-warmed hit would not be
            // bit-identical to the originally served artifact.
            return Err("artifact qos_secs does not match the canonical window bits".into());
        }
        DeploymentPlan::from_artifact(&artifact, planner)
            .map(|plan| (plan, artifact))
            .map_err(|e| e.to_string())
    }

    /// Parses the envelope into its reconstructed key and artifact.
    fn decode_envelope(text: &str) -> Result<(PlanKey, PlanArtifact), String> {
        let value = json::parse(text).map_err(|e| e.to_string())?;
        let obj = value
            .as_object("registry entry")
            .map_err(|e| e.to_string())?;
        let kind = obj.get_str("registry").map_err(|e| e.to_string())?;
        if kind != REGISTRY_KIND {
            return Err(format!("not a registry entry: {kind:?}"));
        }
        let version = obj
            .get_u64("registry_schema_version")
            .map_err(|e| e.to_string())?;
        if version != u64::from(REGISTRY_SCHEMA_VERSION) {
            return Err(format!("unsupported registry schema version {version}"));
        }
        let solver = parse_solver(obj.get_str("solver").map_err(|e| e.to_string())?)
            .ok_or_else(|| "unknown solver tag".to_string())?;
        let window_bits = obj.get_hex64("window_bits").map_err(|e| e.to_string())?;
        let dp_resolution =
            usize::try_from(obj.get_u64("dp_resolution").map_err(|e| e.to_string())?)
                .map_err(|_| "dp_resolution out of range".to_string())?;
        let artifact = PlanArtifact::from_value(obj.get("artifact").map_err(|e| e.to_string())?)
            .map_err(|e| e.to_string())?;
        let key = PlanKey {
            model_fingerprint: artifact.model_fingerprint,
            config_fingerprint: artifact.config_fingerprint,
            solver,
            window_bits,
            dp_resolution,
        };
        Ok((key, artifact))
    }

    /// Moves a failed entry into `quarantine/` (overwriting any previous
    /// occupant of the name) and counts it. If even the move fails the
    /// file is deleted; either way it is never served again.
    fn quarantine(&self, path: &Path) {
        let dest = match path.file_name() {
            Some(name) => self.dir.join(QUARANTINE_DIR).join(name),
            None => return,
        };
        if fs::rename(path, &dest).is_err() {
            let _ = fs::remove_file(path);
        }
        self.quarantined.fetch_add(1, Ordering::Relaxed);
    }

    /// The live entry files, sorted by name so every scan order is
    /// deterministic.
    fn entry_paths(&self) -> Result<Vec<PathBuf>, RegistryError> {
        let read = fs::read_dir(&self.dir).map_err(|e| RegistryError::Io {
            op: "read-dir",
            path: self.dir.display().to_string(),
            reason: e.to_string(),
        })?;
        let mut paths: Vec<PathBuf> = read
            .filter_map(|entry| entry.ok())
            .map(|entry| entry.path())
            .filter(|p| p.is_file() && p.extension().and_then(|e| e.to_str()) == Some("json"))
            .collect();
        paths.sort();
        Ok(paths)
    }

    /// Startup re-validation: replays every stored entry through
    /// [`DeploymentPlan::from_artifact`] against the registered planners
    /// (given as `(model_fingerprint, config_fingerprint, planner)`).
    ///
    /// Entries that fail to decode, whose filename disagrees with their
    /// recomputed content address, whose artifact window disagrees with
    /// the envelope's canonical bits, or that mismatch their fingerprint-
    /// matched planner are quarantined. Entries whose fingerprints match
    /// *no* registered planner are left in place untouched — they may
    /// belong to a planner a later process registers — but are never
    /// served to this one (loads are keyed, so a foreign key is never
    /// looked up).
    ///
    /// # Errors
    ///
    /// [`RegistryError::Io`] when the registry directory cannot be read;
    /// individual bad entries quarantine instead of erroring.
    pub(crate) fn revalidate(
        &self,
        planners: &[(u64, u64, &Planner)],
    ) -> Result<(), RegistryError> {
        for path in self.entry_paths()? {
            let Ok(text) = fs::read_to_string(&path) else {
                self.quarantine(&path);
                continue;
            };
            let (key, _artifact) = match Self::decode_envelope(&text) {
                Ok(decoded) => decoded,
                Err(_) => {
                    self.quarantine(&path);
                    continue;
                }
            };
            let expected_name = format!("{:016x}.json", key.fnv());
            if path.file_name().and_then(|n| n.to_str()) != Some(expected_name.as_str()) {
                self.quarantine(&path);
                continue;
            }
            let served_by = planners.iter().find(|(model, config, _)| {
                *model == key.model_fingerprint && *config == key.config_fingerprint
            });
            if let Some((_, _, planner)) = served_by {
                if Self::decode_entry(&text, Some(key), planner).is_err() {
                    self.quarantine(&path);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::{config_fingerprint, model_fingerprint};
    use crate::dse::DseConfig;
    use crate::request::PlanRequest;
    use tinynn::models::vww_sized;

    fn unique_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("dae-dvfs-registry-{}-{tag}", std::process::id()))
    }

    fn planner() -> Planner {
        Planner::new(&vww_sized(32), &DseConfig::paper()).expect("planner builds")
    }

    fn key_for(planner: &Planner, plan: &DeploymentPlan) -> PlanKey {
        PlanKey {
            model_fingerprint: model_fingerprint(&planner.model().name, planner.layers()),
            config_fingerprint: config_fingerprint(planner.config()),
            solver: Solver::ReserveGrid,
            window_bits: plan.qos_secs.to_bits(),
            dp_resolution: planner.config().dp_resolution,
        }
    }

    #[test]
    fn store_load_roundtrip_is_bit_identical() {
        let dir = unique_dir("roundtrip");
        let _ = fs::remove_dir_all(&dir);
        let registry = PlanRegistry::open(&dir).expect("opens");
        let planner = planner();
        let plan = planner.plan(&PlanRequest::slack(0.3)).expect("plans");
        let key = key_for(&planner, &plan);
        let artifact = plan.to_artifact(&planner);
        registry.store(key, &artifact).expect("stores");
        assert_eq!(registry.entries().expect("counts"), 1);

        let loaded = registry.load(key, &planner).expect("loads");
        assert_eq!(
            loaded.plan().to_artifact(&planner).to_json(),
            artifact.to_json(),
            "disk-warmed artifact must be byte-identical"
        );
        assert_eq!(
            &**loaded.bytes(),
            artifact.to_json().as_bytes(),
            "cached response bytes must equal the stored artifact JSON"
        );
        let stats = registry.stats();
        assert_eq!((stats.hits, stats.writes, stats.quarantined), (1, 1, 0));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopened_registry_serves_the_same_bytes() {
        let dir = unique_dir("reopen");
        let _ = fs::remove_dir_all(&dir);
        let planner = planner();
        let plan = planner.plan(&PlanRequest::slack(0.3)).expect("plans");
        let key = key_for(&planner, &plan);
        let artifact = plan.to_artifact(&planner);
        {
            let registry = PlanRegistry::open(&dir).expect("opens");
            registry.store(key, &artifact).expect("stores");
        }
        let reopened = PlanRegistry::open(&dir).expect("reopens");
        let fingerprints = (key.model_fingerprint, key.config_fingerprint);
        reopened
            .revalidate(&[(fingerprints.0, fingerprints.1, &planner)])
            .expect("revalidates");
        assert_eq!(reopened.stats().quarantined, 0);
        let loaded = reopened.load(key, &planner).expect("loads");
        assert_eq!(
            loaded.plan().to_artifact(&planner).to_json(),
            artifact.to_json()
        );
        assert_eq!(&**loaded.bytes(), artifact.to_json().as_bytes());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_window_bits_are_quarantined_not_served() {
        let dir = unique_dir("window-bits");
        let _ = fs::remove_dir_all(&dir);
        let registry = PlanRegistry::open(&dir).expect("opens");
        let planner = planner();
        let plan = planner.plan(&PlanRequest::slack(0.3)).expect("plans");
        let mut key = key_for(&planner, &plan);
        // Store under a key whose canonical window disagrees with the
        // artifact's qos — the bugfix pin: such an entry must never be
        // served as a warm hit.
        key.window_bits = (plan.qos_secs * 2.0).to_bits();
        registry
            .store(key, &plan.to_artifact(&planner))
            .expect("stores");
        assert!(registry.load(key, &planner).is_none());
        let stats = registry.stats();
        assert_eq!((stats.hits, stats.quarantined), (0, 1));
        assert_eq!(registry.entries().expect("counts"), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn revalidate_quarantines_address_mismatches() {
        let dir = unique_dir("address");
        let _ = fs::remove_dir_all(&dir);
        let registry = PlanRegistry::open(&dir).expect("opens");
        let planner = planner();
        let plan = planner.plan(&PlanRequest::slack(0.3)).expect("plans");
        let key = key_for(&planner, &plan);
        registry
            .store(key, &plan.to_artifact(&planner))
            .expect("stores");
        // Rename the entry to a wrong address: the content no longer
        // matches the filename hash.
        let paths = registry.entry_paths().expect("lists");
        let wrong = dir.join("0000000000000000.json");
        fs::rename(&paths[0], &wrong).expect("renames");
        registry
            .revalidate(&[(key.model_fingerprint, key.config_fingerprint, &planner)])
            .expect("revalidates");
        assert_eq!(registry.stats().quarantined, 1);
        assert_eq!(registry.entries().expect("counts"), 0);
        assert!(dir
            .join(QUARANTINE_DIR)
            .join("0000000000000000.json")
            .exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_entries_survive_revalidation_unserved() {
        let dir = unique_dir("foreign");
        let _ = fs::remove_dir_all(&dir);
        let registry = PlanRegistry::open(&dir).expect("opens");
        let planner = planner();
        let plan = planner.plan(&PlanRequest::slack(0.3)).expect("plans");
        let key = key_for(&planner, &plan);
        registry
            .store(key, &plan.to_artifact(&planner))
            .expect("stores");
        // Revalidate against a planner set that does not include this
        // entry's fingerprints: the entry is kept, not quarantined.
        registry.revalidate(&[]).expect("revalidates");
        assert_eq!(registry.stats().quarantined, 0);
        assert_eq!(registry.entries().expect("counts"), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_solver_tag_is_quarantined() {
        let dir = unique_dir("solver-tag");
        let _ = fs::remove_dir_all(&dir);
        let registry = PlanRegistry::open(&dir).expect("opens");
        let planner = planner();
        let plan = planner.plan(&PlanRequest::slack(0.3)).expect("plans");
        let key = key_for(&planner, &plan);
        registry
            .store(key, &plan.to_artifact(&planner))
            .expect("stores");
        let path = registry.entry_paths().expect("lists").remove(0);
        let text = fs::read_to_string(&path)
            .expect("reads")
            .replace("\"reserve-grid\"", "\"warp-drive\"");
        fs::write(&path, text).expect("writes");
        assert!(registry.load(key, &planner).is_none());
        assert_eq!(registry.stats().quarantined, 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
