//! Multiple-Choice Knapsack optimization (paper Sec. III-C, step 3).
//!
//! Each layer contributes a *class* of items (its Pareto-optimal
//! `(latency, energy)` points); exactly one item per class must be chosen
//! so that total latency stays within the QoS budget and total energy is
//! minimal. Following the paper, the minimization is solved with a
//! pseudo-polynomial dynamic program over a discretized time axis (the
//! standard min↔max transformation of Kellerer et al. applies; we keep the
//! minimization form directly).
//!
//! A greedy heuristic and an exhaustive solver are provided for ablation
//! and testing.

use std::error::Error;
use std::fmt;

/// One selectable item: a latency "weight" and an energy "cost".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MckpItem {
    /// Latency contribution, seconds.
    pub time_secs: f64,
    /// Energy contribution, joules.
    pub energy: f64,
}

/// Errors from the solver.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MckpError {
    /// Even the fastest choice per class exceeds the budget.
    Infeasible {
        /// Sum of per-class minimum times.
        min_time_secs: f64,
        /// The budget that was requested.
        budget_secs: f64,
    },
    /// A class has no items.
    EmptyClass {
        /// Index of the offending class.
        class: usize,
    },
    /// A solver argument is degenerate — a NaN / infinite / non-positive
    /// budget, a zero resolution, or an empty budget batch. The solver
    /// API boundary rejects these instead of panicking.
    InvalidInput {
        /// The offending argument (e.g. `"budget_secs"`, `"resolution"`).
        field: &'static str,
        /// Why the value was rejected, including the value itself.
        reason: String,
    },
    /// Backtracking found no item reproducing a stored DP value: the
    /// table and the item lanes it was filled from are out of sync
    /// (a corrupted or externally mutated workspace). Unreachable through
    /// the public entry points — they always fill and extract against the
    /// same lanes — but reported as a typed error rather than a panic so
    /// a corrupted workspace cannot take a serving worker down.
    CorruptTable {
        /// The class (MCKP) or layer (sequence DP) whose backtrack failed.
        class: usize,
        /// The bucket whose stored value no item reproduces.
        bucket: usize,
    },
}

impl fmt::Display for MckpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MckpError::Infeasible {
                min_time_secs,
                budget_secs,
            } => write!(
                f,
                "QoS budget {budget_secs:.6}s infeasible: fastest schedule needs {min_time_secs:.6}s"
            ),
            MckpError::EmptyClass { class } => {
                write!(f, "class {class} has no items")
            }
            MckpError::InvalidInput { field, reason } => {
                write!(f, "invalid solver input: {field} {reason}")
            }
            MckpError::CorruptTable { class, bucket } => write!(
                f,
                "DP backtrack found no item producing the stored value for class {class} at \
                 bucket {bucket}: the table and its item lanes are out of sync"
            ),
        }
    }
}

impl Error for MckpError {}

/// A solved selection: one item index per class.
#[derive(Debug, Clone, PartialEq)]
pub struct MckpSolution {
    /// Chosen item index per class.
    pub choices: Vec<usize>,
    /// Total time of the selection, seconds.
    pub total_time_secs: f64,
    /// Total energy of the selection, joules.
    pub total_energy: f64,
}

pub(crate) fn validate(classes: &[Vec<MckpItem>], budget_secs: f64) -> Result<(), MckpError> {
    for (i, class) in classes.iter().enumerate() {
        if class.is_empty() {
            return Err(MckpError::EmptyClass { class: i });
        }
    }
    let min_time: f64 = classes
        .iter()
        .map(|c| c.iter().map(|i| i.time_secs).fold(f64::INFINITY, f64::min))
        .sum();
    if min_time > budget_secs {
        return Err(MckpError::Infeasible {
            min_time_secs: min_time,
            budget_secs,
        });
    }
    Ok(())
}

pub(crate) fn tally(classes: &[Vec<MckpItem>], choices: &[usize]) -> (f64, f64) {
    let mut t = 0.0;
    let mut e = 0.0;
    for (class, &c) in classes.iter().zip(choices) {
        t += class[c].time_secs;
        e += class[c].energy;
    }
    (t, e)
}

/// Solves the MCKP with dynamic programming over a discretized time axis.
///
/// `resolution` is the number of time buckets (default use: 2000). Item
/// times are rounded *up* to buckets, so any returned solution is feasible
/// in real time; optimality is within the discretization error.
///
/// Thin single-budget wrapper over the shared solver core
/// ([`crate::solver`]): the DP runs on the historical budget-relative grid
/// (`scale = budget / resolution`), so results are bit-identical to the
/// pre-sweep implementation. To answer many budgets on one model, use
/// [`crate::solver::solve_dp_sweep`], which fills one table on a shared
/// absolute grid and extracts every budget from it.
///
/// # Errors
///
/// [`MckpError::InvalidInput`] if `budget_secs` is not positive/finite or
/// `resolution` is zero; [`MckpError::EmptyClass`] if a class has no
/// items; [`MckpError::Infeasible`] if even the fastest selection
/// overruns.
pub fn solve_dp(
    classes: &[Vec<MckpItem>],
    budget_secs: f64,
    resolution: usize,
) -> Result<MckpSolution, MckpError> {
    crate::solver::solve_dp_with(
        classes,
        budget_secs,
        resolution,
        &mut crate::solver::SolverWorkspace::new(),
    )
}

/// Exhaustive solver (for tests and tiny instances).
///
/// # Errors
///
/// Same conditions as [`solve_dp`].
pub fn solve_exhaustive(
    classes: &[Vec<MckpItem>],
    budget_secs: f64,
) -> Result<MckpSolution, MckpError> {
    validate(classes, budget_secs)?;
    let mut best: Option<MckpSolution> = None;
    let mut choices = vec![0usize; classes.len()];
    loop {
        let (t, e) = tally(classes, &choices);
        if t <= budget_secs && best.as_ref().is_none_or(|b| e < b.total_energy) {
            best = Some(MckpSolution {
                choices: choices.clone(),
                total_time_secs: t,
                total_energy: e,
            });
        }
        // Odometer increment.
        let mut k = 0;
        loop {
            if k == classes.len() {
                return best.ok_or(MckpError::Infeasible {
                    min_time_secs: f64::INFINITY,
                    budget_secs,
                });
            }
            choices[k] += 1;
            if choices[k] < classes[k].len() {
                break;
            }
            choices[k] = 0;
            k += 1;
        }
    }
}

/// Greedy heuristic for the ablation study: start from the per-class
/// energy minimum, then while the budget is violated repeatedly switch the
/// class/item with the best energy-penalty-per-time-saved ratio.
///
/// # Errors
///
/// Same conditions as [`solve_dp`].
pub fn solve_greedy(
    classes: &[Vec<MckpItem>],
    budget_secs: f64,
) -> Result<MckpSolution, MckpError> {
    validate(classes, budget_secs)?;
    let mut choices: Vec<usize> = classes
        .iter()
        .map(|c| {
            c.iter()
                .enumerate()
                .min_by(|a, b| a.1.energy.partial_cmp(&b.1.energy).expect("finite"))
                .map(|(i, _)| i)
                .expect("non-empty class")
        })
        .collect();
    loop {
        let (t, _) = tally(classes, &choices);
        if t <= budget_secs {
            break;
        }
        // Best swap: maximize time saved per energy added.
        let mut best: Option<(usize, usize, f64)> = None;
        for (k, class) in classes.iter().enumerate() {
            let cur = class[choices[k]];
            for (i, item) in class.iter().enumerate() {
                let saved = cur.time_secs - item.time_secs;
                if saved <= 0.0 {
                    continue;
                }
                let penalty = (item.energy - cur.energy).max(0.0);
                let ratio = saved / (penalty + 1e-12);
                if best.is_none_or(|(_, _, r)| ratio > r) {
                    best = Some((k, i, ratio));
                }
            }
        }
        let (k, i, _) = best.expect("validated feasible, a faster item must exist");
        choices[k] = i;
    }
    let (total_time_secs, total_energy) = tally(classes, &choices);
    Ok(MckpSolution {
        choices,
        total_time_secs,
        total_energy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(t: f64, e: f64) -> MckpItem {
        MckpItem {
            time_secs: t,
            energy: e,
        }
    }

    #[test]
    fn dp_matches_exhaustive_on_small_instances() {
        let classes = vec![
            vec![item(1.0, 10.0), item(2.0, 6.0), item(4.0, 3.0)],
            vec![item(1.0, 8.0), item(3.0, 2.0)],
            vec![item(0.5, 5.0), item(1.5, 4.0), item(2.5, 1.0)],
        ];
        for budget in [3.0, 4.5, 6.0, 9.0] {
            let resolution = 4000;
            let dp = solve_dp(&classes, budget, resolution).unwrap();
            // Ceil-rounding guarantees real-time feasibility but can lose
            // selections sitting exactly on the budget; the standard bound
            // is: dp(budget) ≤ optimum(budget − n·scale).
            let slack = classes.len() as f64 * budget / resolution as f64;
            let ex_tight = solve_exhaustive(&classes, budget - slack).unwrap();
            let ex_full = solve_exhaustive(&classes, budget).unwrap();
            assert!(
                dp.total_energy <= ex_tight.total_energy + 1e-9,
                "budget {budget}: dp {} worse than shrunken-budget optimum {}",
                dp.total_energy,
                ex_tight.total_energy
            );
            assert!(
                dp.total_energy >= ex_full.total_energy - 1e-9,
                "dp beat the true optimum?!"
            );
            assert!(dp.total_time_secs <= budget + 1e-9);
        }
    }

    #[test]
    fn relaxed_budget_never_costs_more() {
        let classes = vec![
            vec![item(1.0, 10.0), item(2.0, 6.0), item(4.0, 3.0)],
            vec![item(1.0, 8.0), item(3.0, 2.0)],
        ];
        let tight = solve_dp(&classes, 2.5, 2000).unwrap();
        let relaxed = solve_dp(&classes, 7.0, 2000).unwrap();
        assert!(relaxed.total_energy <= tight.total_energy);
    }

    #[test]
    fn infeasible_budget_detected() {
        let classes = vec![vec![item(2.0, 1.0)], vec![item(3.0, 1.0)]];
        match solve_dp(&classes, 4.0, 1000) {
            Err(MckpError::Infeasible { min_time_secs, .. }) => {
                assert!((min_time_secs - 5.0).abs() < 1e-12);
            }
            other => panic!("expected infeasible, got {other:?}"),
        }
    }

    #[test]
    fn empty_class_detected() {
        let classes = vec![vec![item(1.0, 1.0)], vec![]];
        assert_eq!(
            solve_dp(&classes, 10.0, 100),
            Err(MckpError::EmptyClass { class: 1 })
        );
    }

    #[test]
    fn solution_is_feasible_in_real_time() {
        // Rounding up item weights guarantees real-time feasibility.
        let classes: Vec<Vec<MckpItem>> = (0..10)
            .map(|k| {
                (1..=5)
                    .map(|i| item(0.013 * i as f64 + 0.001 * k as f64, 10.0 / i as f64))
                    .collect()
            })
            .collect();
        let budget = 0.4;
        let sol = solve_dp(&classes, budget, 500).unwrap();
        assert!(sol.total_time_secs <= budget + 1e-12);
    }

    #[test]
    fn greedy_is_feasible_and_close() {
        let classes = vec![
            vec![item(1.0, 10.0), item(2.0, 6.0), item(4.0, 3.0)],
            vec![item(1.0, 8.0), item(3.0, 2.0)],
            vec![item(0.5, 5.0), item(2.5, 1.0)],
        ];
        let budget = 6.0;
        let greedy = solve_greedy(&classes, budget).unwrap();
        let exact = solve_exhaustive(&classes, budget).unwrap();
        assert!(greedy.total_time_secs <= budget);
        assert!(greedy.total_energy >= exact.total_energy - 1e-12);
    }

    #[test]
    fn single_item_classes_trivial() {
        let classes = vec![vec![item(1.0, 2.0)], vec![item(2.0, 3.0)]];
        let sol = solve_dp(&classes, 5.0, 100).unwrap();
        assert_eq!(sol.choices, vec![0, 0]);
        assert!((sol.total_energy - 5.0).abs() < 1e-12);
    }

    #[test]
    fn choices_indices_valid() {
        let classes = vec![
            vec![item(1.0, 5.0), item(2.0, 1.0)],
            vec![item(1.0, 5.0), item(2.0, 1.0)],
            vec![item(1.0, 5.0), item(2.0, 1.0)],
        ];
        // Budget slightly above the all-slow sum so ceil-rounding cannot
        // push the boundary selection out.
        let sol = solve_dp(&classes, 6.1, 1000).unwrap();
        for (k, &c) in sol.choices.iter().enumerate() {
            assert!(c < classes[k].len());
        }
        // Budget 6.1 admits all-slow: total energy 3.
        assert!((sol.total_energy - 3.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_inputs_are_typed_errors_not_panics() {
        let classes = vec![vec![item(1.0, 1.0)]];
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(
                matches!(
                    solve_dp(&classes, bad, 10),
                    Err(MckpError::InvalidInput {
                        field: "budget_secs",
                        ..
                    })
                ),
                "budget {bad} must be rejected"
            );
        }
        assert!(matches!(
            solve_dp(&classes, 1.0, 0),
            Err(MckpError::InvalidInput {
                field: "resolution",
                ..
            })
        ));
    }
}
