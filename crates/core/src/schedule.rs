//! Compiled segment schedules: lower once, replay many times.
//!
//! The DAE lowering of a layer ([`dae_segments`]) depends only on the
//! triple `(layer profile, granularity, cache geometry)` — *not* on the
//! HFO frequency being priced. The straight-line pipeline nevertheless
//! re-lowered every layer for every DSE point and for every replay of a
//! candidate schedule, rebuilding the same `Vec<Segment>` (labels
//! included) thousands of times per `optimize` call.
//!
//! This module is the cache layer that removes that waste:
//!
//! * [`CompiledLayer`] lowers one layer once per explorable granularity
//!   and stores the schedules as shared `Arc<[Segment]>` slices;
//! * [`evaluate_schedule`] prices one `(g, f)` point against a borrowed
//!   schedule — the exact machine replay of `dse::evaluate_point`, minus
//!   the lowering;
//! * [`explore_compiled`] / [`explore_model`] run the full DSE sweep
//!   against the cache, fanning layers out across OS threads with
//!   `std::thread::scope` when more than one core is available;
//! * [`replay_decisions`] replays a deployment decision sequence (with
//!   full inter-layer switching costs) against the cache.
//!
//! ## Invalidation rules
//!
//! A compiled schedule is immutable. It is valid for exactly the
//! `(profile, cache)` pair it was compiled from; changing the model, the
//! cache geometry, or the granularity universe requires recompiling (the
//! [`crate::Planner`] therefore owns its `DseConfig` and never mutates
//! it). Frequencies, switch costs and power models are *not* baked into
//! schedules — they are priced at replay time, so one compiled schedule
//! serves every HFO candidate.
//!
//! All replays here are bit-identical to the uncached path: the segments
//! are the same values `dae_segments` produces, and the machine arithmetic
//! does not depend on how the segment list was obtained.

use std::sync::Arc;

use mcu_sim::cache::CacheConfig;
use mcu_sim::{Machine, Segment, SegmentClass};
use stm32_power::{Joules, PowerModel};
use stm32_rcc::{PllConfig, SysclkConfig};
use tinyengine::KernelProfile;
use tinynn::LayerKind;

use crate::dae::{dae_segments, Granularity};
use crate::dse::{DseConfig, DsePoint};
use crate::pipeline::LayerDecision;

/// One layer's segment schedules, compiled once per explorable
/// granularity.
///
/// DAE-capable layers (depthwise / pointwise) carry one schedule per
/// granularity in the configured set; rest layers carry only the `g = 0`
/// baseline schedule (they get frequency scaling but no decoupling).
#[derive(Debug, Clone)]
pub struct CompiledLayer {
    profile: KernelProfile,
    /// `(g, schedule)` pairs in the configuration's exploration order.
    schedules: Vec<(Granularity, Arc<[Segment]>)>,
}

impl CompiledLayer {
    /// Lowers `profile` into its schedule cache under `config`'s
    /// granularity set and cache geometry.
    pub fn compile(profile: KernelProfile, config: &DseConfig) -> Self {
        let dae_capable = matches!(profile.kind, LayerKind::Depthwise | LayerKind::Pointwise);
        let gs: &[Granularity] = if dae_capable {
            &config.granularities
        } else {
            &[Granularity(0)]
        };
        let schedules = gs
            .iter()
            .map(|&g| (g, dae_segments(&profile, g, &config.cache).into()))
            .collect();
        CompiledLayer { profile, schedules }
    }

    /// The layer profile the schedules were compiled from.
    pub fn profile(&self) -> &KernelProfile {
        &self.profile
    }

    /// The cached schedule for granularity `g`, if compiled.
    pub fn schedule(&self, g: Granularity) -> Option<&Arc<[Segment]>> {
        self.schedules
            .iter()
            .find(|(sg, _)| *sg == g)
            .map(|(_, s)| s)
    }

    /// The schedule for `g`, falling back to a fresh lowering when `g` is
    /// outside the compiled set (e.g. replaying a plan produced under a
    /// different granularity universe).
    pub fn schedule_for(&self, g: Granularity, cache: &CacheConfig) -> Arc<[Segment]> {
        match self.schedule(g) {
            Some(s) => Arc::clone(s),
            None => dae_segments(&self.profile, g, cache).into(),
        }
    }

    /// The granularities this layer explores, in exploration order.
    pub fn granularities(&self) -> impl Iterator<Item = Granularity> + '_ {
        self.schedules.iter().map(|(g, _)| *g)
    }

    /// Prices one `(g, f)` point of this layer (cached lowering, fresh
    /// machine replay). Equivalent to [`crate::dse::evaluate_point`].
    pub fn evaluate(
        &self,
        g: Granularity,
        hfo: &PllConfig,
        config: &DseConfig,
        power: &Arc<PowerModel>,
    ) -> DsePoint {
        evaluate_schedule(&self.schedule_for(g, &config.cache), g, hfo, config, power)
    }
}

/// Prices one `(g, f)` configuration by replaying a compiled schedule on a
/// fresh machine: memory segments at LFO (with the point's PLL re-locking
/// in the background), compute segments at the point's HFO.
///
/// This is the single pricing kernel behind the DSE; it is bit-identical
/// to lowering freshly and replaying, because segments carry all the
/// information the machine prices.
pub fn evaluate_schedule(
    segments: &[Segment],
    g: Granularity,
    hfo: &PllConfig,
    config: &DseConfig,
    power: &Arc<PowerModel>,
) -> DsePoint {
    let hfo_cfg = SysclkConfig::Pll(*hfo);
    let mut machine = Machine::new(hfo_cfg)
        .with_cpu(config.cpu)
        .with_memory(config.memory)
        .with_switch_model(config.switch_model)
        .with_power(Arc::clone(power));
    let mut first_stage_secs = 0.0;
    let mut first_seen = false;
    for seg in segments {
        match seg.class {
            SegmentClass::Memory => {
                machine.switch_clock(config.modes.lfo);
                // Re-program the PLL (if needed) under the memory segment.
                machine.prepare_pll(*hfo);
            }
            SegmentClass::Compute | SegmentClass::Other => {
                machine.switch_clock(hfo_cfg);
            }
        }
        let dt = machine.run_segment(seg);
        if !first_seen && seg.class == SegmentClass::Memory {
            first_stage_secs = dt;
        }
        first_seen = true;
    }
    DsePoint {
        granularity: g,
        hfo: *hfo,
        latency_secs: machine.elapsed_secs(),
        energy: machine.energy(),
        switches: machine.switch_count(),
        first_stage_secs,
    }
}

/// Explores the full `(g, f)` grid of one compiled layer.
///
/// Point order matches `dse::explore_layer` exactly (HFO outer,
/// granularity inner), so downstream Pareto fronts are identical.
pub fn explore_compiled(
    layer: &CompiledLayer,
    config: &DseConfig,
    power: &Arc<PowerModel>,
) -> Vec<DsePoint> {
    let mut points = Vec::with_capacity(config.modes.hfo.len() * layer.schedules.len());
    for hfo in &config.modes.hfo {
        for (g, segments) in &layer.schedules {
            points.push(evaluate_schedule(segments, *g, hfo, config, power));
        }
    }
    points
}

/// Runs the per-layer DSE sweep for a whole model against the schedule
/// cache, spreading layers across OS threads.
///
/// The sweep is embarrassingly parallel (every point is an independent
/// machine replay of immutable segments), so layers are striped over
/// `available_parallelism` scoped threads — no extra dependencies, no
/// shared mutable state. Results are returned in layer order and are
/// identical to the sequential sweep.
pub fn explore_model(
    layers: &[CompiledLayer],
    config: &DseConfig,
    power: &Arc<PowerModel>,
) -> Vec<Vec<DsePoint>> {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(layers.len());
    if threads <= 1 {
        return layers
            .iter()
            .map(|l| explore_compiled(l, config, power))
            .collect();
    }
    let mut results: Vec<Vec<DsePoint>> = vec![Vec::new(); layers.len()];
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                s.spawn(move || {
                    layers
                        .iter()
                        .enumerate()
                        .skip(t)
                        .step_by(threads)
                        .map(|(i, l)| (i, explore_compiled(l, config, power)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            for (i, points) in handle.join().expect("DSE worker thread panicked") {
                results[i] = points;
            }
        }
    });
    results
}

/// Replays a decision sequence on a fresh machine using the compiled
/// schedules, returning the measured `(latency, energy)` including all
/// inter-layer switching costs.
///
/// # Panics
///
/// Panics if `decisions` is empty or its length differs from `layers` —
/// the callers ([`crate::Planner`] and the pipeline wrappers) validate
/// model shape before replaying.
pub fn replay_decisions(
    layers: &[CompiledLayer],
    decisions: &[LayerDecision],
    config: &DseConfig,
    power: &Arc<PowerModel>,
) -> (f64, Joules) {
    assert_eq!(
        layers.len(),
        decisions.len(),
        "decision sequence does not match the compiled model"
    );
    let first_hfo = SysclkConfig::Pll(decisions[0].point.hfo);
    let mut machine = Machine::new(first_hfo)
        .with_cpu(config.cpu)
        .with_memory(config.memory)
        .with_switch_model(config.switch_model)
        .with_power(Arc::clone(power));
    for (layer, decision) in layers.iter().zip(decisions) {
        let hfo_cfg = SysclkConfig::Pll(decision.point.hfo);
        for seg in layer
            .schedule_for(decision.point.granularity, &config.cache)
            .iter()
        {
            match seg.class {
                SegmentClass::Memory => {
                    machine.switch_clock(config.modes.lfo);
                    // Layer boundaries with an HFO change re-program the
                    // PLL under the staging segment (see
                    // `mcu_sim::Machine::prepare_pll`).
                    machine.prepare_pll(decision.point.hfo);
                }
                SegmentClass::Compute | SegmentClass::Other => {
                    machine.switch_clock(hfo_cfg);
                }
            }
            machine.run_segment(seg);
        }
    }
    (machine.elapsed_secs(), machine.energy())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dse::evaluate_point;
    use stm32_rcc::Hertz;
    use tinynn::models::vww_sized;

    fn profiles() -> Vec<KernelProfile> {
        let model = vww_sized(32);
        let plan = model.plan().unwrap();
        model
            .layers()
            .zip(plan.iter())
            .map(|(nl, info)| tinyengine::layer_profile(&nl.layer, info))
            .collect()
    }

    #[test]
    fn compiled_schedules_match_fresh_lowering() {
        let cfg = DseConfig::paper();
        for p in profiles() {
            let compiled = CompiledLayer::compile(p.clone(), &cfg);
            for g in compiled.granularities().collect::<Vec<_>>() {
                let fresh = dae_segments(&p, g, &cfg.cache);
                assert_eq!(
                    compiled.schedule(g).unwrap().as_ref(),
                    fresh.as_slice(),
                    "{}: schedule mismatch at {g}",
                    p.name
                );
            }
        }
    }

    #[test]
    fn rest_layers_compile_only_baseline() {
        let cfg = DseConfig::paper();
        for p in profiles() {
            let dae_capable = p.dae_capable();
            let compiled = CompiledLayer::compile(p, &cfg);
            let gs: Vec<_> = compiled.granularities().collect();
            if dae_capable {
                assert_eq!(gs, cfg.granularities);
            } else {
                assert_eq!(gs, vec![Granularity(0)]);
            }
        }
    }

    #[test]
    fn schedule_for_falls_back_outside_compiled_set() {
        let cfg = DseConfig::paper();
        let p = profiles()
            .into_iter()
            .find(|p| p.dae_capable())
            .expect("vww has DAE layers");
        let compiled = CompiledLayer::compile(p.clone(), &cfg);
        let odd = Granularity(7); // not in the paper set
        assert!(compiled.schedule(odd).is_none());
        let via_fallback = compiled.schedule_for(odd, &cfg.cache);
        assert_eq!(via_fallback.as_ref(), dae_segments(&p, odd, &cfg.cache));
    }

    #[test]
    fn compiled_evaluation_is_bit_identical_to_fresh() {
        let cfg = DseConfig::paper();
        let power = Arc::new(cfg.power.clone());
        let f150 = cfg.modes.hfo_at(Hertz::mhz(150)).copied().unwrap();
        for p in profiles() {
            let compiled = CompiledLayer::compile(p.clone(), &cfg);
            for g in [Granularity(0), Granularity(8)] {
                let fresh = evaluate_point(&p, g, &f150, &cfg);
                let cached = compiled.evaluate(g, &f150, &cfg, &power);
                assert_eq!(fresh, cached, "{} diverged at {g}", p.name);
            }
        }
    }

    #[test]
    fn parallel_sweep_matches_sequential() {
        let cfg = DseConfig::paper();
        let power = Arc::new(cfg.power.clone());
        let layers: Vec<CompiledLayer> = profiles()
            .into_iter()
            .map(|p| CompiledLayer::compile(p, &cfg))
            .collect();
        let parallel = explore_model(&layers, &cfg, &power);
        let sequential: Vec<Vec<DsePoint>> = layers
            .iter()
            .map(|l| explore_compiled(l, &cfg, &power))
            .collect();
        assert_eq!(parallel, sequential);
    }
}
