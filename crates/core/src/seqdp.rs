//! Sequence-aware QoS optimization: a layered-graph dynamic program that
//! prices inter-layer PLL re-locks *exactly*.
//!
//! The paper's MCKP formulation (Eq. 2–5) treats layers as independent
//! classes, which silently assumes clock transitions between layers are
//! free. They are not: entering a layer whose HFO differs from the previous
//! layer's requires a PLL re-lock (≈200 µs), partially hidden under the
//! layer's first LFO staging segment when it has one.
//!
//! This module extends the DP state with the *incoming HFO frequency*:
//! `dp[frequency][time-bucket]` per layer, with transitions that add the
//! exact entry overhead when the frequency changes. Complexity grows only
//! by the factor `|F|` (≤ 8 frequencies), staying pseudo-polynomial, and
//! the result needs no replay-and-reserve heuristic: the predicted schedule
//! is feasible by construction (up to the usual ceil-rounding, which is
//! conservative).

use stm32_power::{PowerState, Watts};
use stm32_rcc::Hertz;

use crate::dse::{DseConfig, DsePoint};
use crate::mckp::MckpError;

/// Entry overhead of a point when the previous layer left a *different*
/// PLL configuration locked: the re-lock hides under the first staging
/// segment; whatever does not fit stalls.
fn entry_overhead_secs(point: &DsePoint, config: &DseConfig) -> f64 {
    (config.switch_model.pll_relock_secs() - point.first_stage_secs).max(0.0)
}

/// Power drawn while stalling for a re-lock: SYSCLK runs from the HSE with
/// the target PLL locking in the background.
fn entry_power(point: &DsePoint, config: &DseConfig) -> Watts {
    config.power.power(&PowerState::RunWarmPll {
        sysclk: config.modes.lfo,
        warm_pll: point.hfo,
    })
}

/// A solved sequence-aware selection.
#[derive(Debug, Clone, PartialEq)]
pub struct SequenceSolution {
    /// Chosen item index per layer (into the per-layer fronts).
    pub choices: Vec<usize>,
    /// Predicted total latency including all entry overheads, seconds.
    pub total_time_secs: f64,
    /// Predicted total energy including entry-stall energy, joules.
    pub total_energy: f64,
    /// Number of layer boundaries that change the HFO (and hence re-lock).
    pub frequency_changes: usize,
}

/// Solves the sequence-aware selection problem over per-layer Pareto
/// fronts.
///
/// `fronts[k]` are the candidate points of layer `k`; `idle_power_w` is the
/// gated idle power used for the window-energy objective (items are valued
/// `E − P_idle·t`, as in [`crate::pipeline::optimize`]).
///
/// # Errors
///
/// [`MckpError::EmptyClass`] if a layer has no candidates;
/// [`MckpError::Infeasible`] if even the best schedule misses the budget.
///
/// # Panics
///
/// Panics if `budget_secs` is not positive/finite or `resolution` is zero.
pub fn solve_sequence(
    fronts: &[Vec<DsePoint>],
    budget_secs: f64,
    resolution: usize,
    config: &DseConfig,
    idle_power_w: f64,
) -> Result<SequenceSolution, MckpError> {
    assert!(
        budget_secs.is_finite() && budget_secs > 0.0,
        "budget must be a positive finite time"
    );
    assert!(resolution > 0, "resolution must be non-zero");
    for (k, f) in fronts.iter().enumerate() {
        if f.is_empty() {
            return Err(MckpError::EmptyClass { class: k });
        }
    }

    // Frequency universe.
    let mut freqs: Vec<Hertz> = fronts
        .iter()
        .flat_map(|f| f.iter().map(|p| p.hfo.sysclk()))
        .collect();
    freqs.sort();
    freqs.dedup();
    let freq_id = |f: Hertz| freqs.iter().position(|&x| x == f).expect("in universe");
    let nf = freqs.len();

    let scale = budget_secs / resolution as f64;
    let buckets = resolution + 1;
    let weight = |t: f64| -> usize { (t / scale).ceil() as usize };

    const INF: f64 = f64::INFINITY;
    // dp[f][b]: min adjusted energy after the current layer, having left
    // frequency `f` locked, with total bucket-weight exactly `b`.
    let mut dp = vec![vec![INF; buckets]; nf];
    // Backtracking: per layer, per (f, b): (item, prev_f, prev_b).
    let mut back: Vec<Vec<(u32, u16, u32)>> = Vec::with_capacity(fronts.len());

    // Layer 0: the machine boots with the first layer's PLL locked (as the
    // paper's setup does), so no entry cost.
    let mut first = vec![(u32::MAX, 0u16, 0u32); nf * buckets];
    for (i, p) in fronts[0].iter().enumerate() {
        let w = weight(p.latency_secs);
        if w >= buckets {
            continue;
        }
        let e = p.energy.as_f64() - idle_power_w * p.latency_secs;
        let f = freq_id(p.hfo.sysclk());
        if e < dp[f][w] {
            dp[f][w] = e;
            first[f * buckets + w] = (i as u32, 0, 0);
        }
    }
    back.push(first);

    for front in &fronts[1..] {
        let mut next = vec![vec![INF; buckets]; nf];
        let mut trace = vec![(u32::MAX, 0u16, 0u32); nf * buckets];
        for (i, p) in front.iter().enumerate() {
            let f_new = freq_id(p.hfo.sysclk());
            let base_e = p.energy.as_f64() - idle_power_w * p.latency_secs;
            let overhead = entry_overhead_secs(p, config);
            let overhead_e = entry_power(p, config).as_f64() * overhead - idle_power_w * overhead;
            for (f_prev, dp_row) in dp.iter().enumerate() {
                let (dt, de) = if f_prev == f_new {
                    (p.latency_secs, base_e)
                } else {
                    (p.latency_secs + overhead, base_e + overhead_e)
                };
                let w = weight(dt);
                if w >= buckets {
                    continue;
                }
                for (b, &cur) in dp_row.iter().enumerate().take(buckets - w) {
                    if cur.is_finite() {
                        let cand = cur + de;
                        let nb = b + w;
                        if cand < next[f_new][nb] {
                            next[f_new][nb] = cand;
                            trace[f_new * buckets + nb] = (i as u32, f_prev as u16, b as u32);
                        }
                    }
                }
            }
        }
        dp = next;
        back.push(trace);
    }

    // Best terminal state.
    let mut best: Option<(usize, usize, f64)> = None;
    for (f, row) in dp.iter().enumerate() {
        for (b, &e) in row.iter().enumerate() {
            if e.is_finite() && best.is_none_or(|(.., be)| e < be) {
                best = Some((f, b, e));
            }
        }
    }
    let (mut f, mut b, _) = best.ok_or(MckpError::Infeasible {
        min_time_secs: budget_secs,
        budget_secs,
    })?;

    // Backtrack.
    let mut choices = vec![0usize; fronts.len()];
    for k in (0..fronts.len()).rev() {
        let (item, pf, pb) = back[k][f * buckets + b];
        assert!(item != u32::MAX, "backtracking hit an unreachable state");
        choices[k] = item as usize;
        f = pf as usize;
        b = pb as usize;
    }

    // Exact tally of the chosen sequence.
    let mut total_time = 0.0;
    let mut total_energy = 0.0;
    let mut changes = 0usize;
    let mut prev: Option<Hertz> = None;
    for (front, &c) in fronts.iter().zip(&choices) {
        let p = &front[c];
        total_time += p.latency_secs;
        total_energy += p.energy.as_f64();
        if let Some(prev_f) = prev {
            if prev_f != p.hfo.sysclk() {
                let o = entry_overhead_secs(p, config);
                total_time += o;
                total_energy += entry_power(p, config).as_f64() * o;
                changes += 1;
            }
        }
        prev = Some(p.hfo.sysclk());
    }
    Ok(SequenceSolution {
        choices,
        total_time_secs: total_time,
        total_energy,
        frequency_changes: changes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dae::Granularity;
    use stm32_power::Joules;
    use stm32_rcc::{ClockSource, PllConfig};

    fn cfg() -> DseConfig {
        DseConfig::paper()
    }

    fn point(t_ms: f64, e_mj: f64, mhz: u64, stage_ms: f64) -> DsePoint {
        let modes = crate::modes::OperatingModes::paper();
        DsePoint {
            granularity: Granularity(if stage_ms > 0.0 { 8 } else { 0 }),
            hfo: *modes.hfo_at(Hertz::mhz(mhz)).expect("in ladder"),
            latency_secs: t_ms * 1e-3,
            energy: Joules::new(e_mj * 1e-3),
            switches: 0,
            first_stage_secs: stage_ms * 1e-3,
        }
    }

    #[test]
    fn single_frequency_matches_plain_sum() {
        let fronts = vec![
            vec![point(1.0, 0.3, 216, 0.0)],
            vec![point(2.0, 0.5, 216, 0.0)],
        ];
        let sol = solve_sequence(&fronts, 10e-3, 1000, &cfg(), 0.0).expect("solves");
        assert_eq!(sol.frequency_changes, 0);
        assert!((sol.total_time_secs - 3e-3).abs() < 1e-12);
        assert!((sol.total_energy - 0.8e-3).abs() < 1e-12);
    }

    #[test]
    fn frequency_change_pays_entry_overhead() {
        // Two layers, each with a single option at different frequencies
        // and no staging: a full re-lock separates them.
        let fronts = vec![
            vec![point(1.0, 0.3, 216, 0.0)],
            vec![point(2.0, 0.2, 150, 0.0)],
        ];
        let sol = solve_sequence(&fronts, 10e-3, 1000, &cfg(), 0.0).expect("solves");
        assert_eq!(sol.frequency_changes, 1);
        assert!(
            (sol.total_time_secs - (3e-3 + 200e-6)).abs() < 1e-9,
            "got {}",
            sol.total_time_secs
        );
    }

    #[test]
    fn staging_hides_the_relock() {
        // The second layer's first staging segment is 300 µs > 200 µs
        // re-lock: the change is free in time.
        let fronts = vec![
            vec![point(1.0, 0.3, 216, 0.0)],
            vec![point(2.0, 0.2, 150, 0.3)],
        ];
        let sol = solve_sequence(&fronts, 10e-3, 1000, &cfg(), 0.0).expect("solves");
        assert_eq!(sol.frequency_changes, 1);
        assert!((sol.total_time_secs - 3e-3).abs() < 1e-9);
    }

    #[test]
    fn dp_avoids_relocks_when_budget_is_tight() {
        // Layer 2 has a cheap-but-different-frequency option and a slightly
        // costlier same-frequency option. With relock time pushing past the
        // budget, the DP must pick the same-frequency option.
        let fronts = vec![
            vec![point(1.0, 0.30, 216, 0.0)],
            vec![point(1.0, 0.20, 150, 0.0), point(1.05, 0.28, 216, 0.0)],
        ];
        let tight = solve_sequence(&fronts, 2.1e-3, 2000, &cfg(), 0.0).expect("solves");
        assert_eq!(
            tight.frequency_changes, 0,
            "tight budget must avoid the re-lock"
        );
        // With a generous budget the cheaper 150 MHz option wins.
        let loose = solve_sequence(&fronts, 5e-3, 2000, &cfg(), 0.0).expect("solves");
        assert_eq!(loose.frequency_changes, 1);
        assert!(loose.total_energy < tight.total_energy);
    }

    #[test]
    fn infeasible_budget_detected() {
        let fronts = vec![vec![point(5.0, 0.1, 216, 0.0)]];
        assert!(matches!(
            solve_sequence(&fronts, 1e-3, 100, &cfg(), 0.0),
            Err(MckpError::Infeasible { .. })
        ));
    }

    #[test]
    fn empty_front_detected() {
        let fronts = vec![vec![point(1.0, 0.1, 216, 0.0)], vec![]];
        assert_eq!(
            solve_sequence(&fronts, 1.0, 100, &cfg(), 0.0),
            Err(MckpError::EmptyClass { class: 1 })
        );
    }

    #[test]
    fn respects_budget_with_many_layers() {
        let modes = crate::modes::OperatingModes::paper();
        let _ = modes;
        let fronts: Vec<Vec<DsePoint>> = (0..20)
            .map(|k| {
                vec![
                    point(1.0, 0.40, 216, 0.0),
                    point(1.5 + 0.01 * k as f64, 0.25, 150, 0.1),
                    point(2.2, 0.18, 108, 0.1),
                ]
            })
            .collect();
        for budget_ms in [21.0, 30.0, 45.0] {
            let sol =
                solve_sequence(&fronts, budget_ms * 1e-3, 2000, &cfg(), 0.012).expect("solves");
            assert!(
                sol.total_time_secs <= budget_ms * 1e-3 + 1e-9,
                "budget {budget_ms} ms violated: {}",
                sol.total_time_secs
            );
        }
    }

    #[test]
    fn pll_config_equality_vs_frequency() {
        // Two points at the same *frequency* never pay entry costs even if
        // granularities differ.
        let a = point(1.0, 0.3, 168, 0.0);
        let mut b = point(1.0, 0.3, 168, 0.2);
        b.granularity = Granularity(4);
        let fronts = vec![vec![a], vec![b]];
        let sol = solve_sequence(&fronts, 10e-3, 1000, &cfg(), 0.0).expect("solves");
        assert_eq!(sol.frequency_changes, 0);
        let _ = PllConfig::new(ClockSource::hse(Hertz::mhz(50)), 25, 168, 2);
    }
}
