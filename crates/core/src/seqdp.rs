//! Sequence-aware QoS optimization: a layered-graph dynamic program that
//! prices inter-layer PLL re-locks *exactly*.
//!
//! The paper's MCKP formulation (Eq. 2–5) treats layers as independent
//! classes, which silently assumes clock transitions between layers are
//! free. They are not: entering a layer whose HFO differs from the previous
//! layer's requires a PLL re-lock (≈200 µs), partially hidden under the
//! layer's first LFO staging segment when it has one.
//!
//! This module extends the DP state with the *incoming HFO frequency*:
//! `dp[frequency][time-bucket]` per layer, with transitions that add the
//! exact entry overhead when the frequency changes. Complexity grows only
//! by the factor `|F|` (≤ 8 frequencies), staying pseudo-polynomial, and
//! the result needs no replay-and-reserve heuristic: the predicted schedule
//! is feasible by construction (up to the usual ceil-rounding, which is
//! conservative).

use stm32_power::{PowerState, Watts};
use stm32_rcc::Hertz;

use crate::dse::{DseConfig, DsePoint};
use crate::mckp::MckpError;

/// Entry overhead of a point when the previous layer left a *different*
/// PLL configuration locked: the re-lock hides under the first staging
/// segment; whatever does not fit stalls.
pub(crate) fn entry_overhead_secs(point: &DsePoint, config: &DseConfig) -> f64 {
    (config.switch_model.pll_relock_secs() - point.first_stage_secs).max(0.0)
}

/// Power drawn while stalling for a re-lock: SYSCLK runs from the HSE with
/// the target PLL locking in the background.
pub(crate) fn entry_power(point: &DsePoint, config: &DseConfig) -> Watts {
    config.power.power(&PowerState::RunWarmPll {
        sysclk: config.modes.lfo,
        warm_pll: point.hfo,
    })
}

/// Exact re-tally of a backtracked choice sequence: latency and energy
/// with every inter-layer entry overhead priced, independent of the DP's
/// bucketing (shared by the per-call and sweep extraction paths).
pub(crate) fn tally_sequence(
    fronts: &[Vec<DsePoint>],
    choices: Vec<usize>,
    config: &DseConfig,
) -> SequenceSolution {
    let mut total_time = 0.0;
    let mut total_energy = 0.0;
    let mut changes = 0usize;
    let mut prev: Option<Hertz> = None;
    for (front, &c) in fronts.iter().zip(&choices) {
        let p = &front[c];
        total_time += p.latency_secs;
        total_energy += p.energy.as_f64();
        if let Some(prev_f) = prev {
            if prev_f != p.hfo.sysclk() {
                let o = entry_overhead_secs(p, config);
                total_time += o;
                total_energy += entry_power(p, config).as_f64() * o;
                changes += 1;
            }
        }
        prev = Some(p.hfo.sysclk());
    }
    SequenceSolution {
        choices,
        total_time_secs: total_time,
        total_energy,
        frequency_changes: changes,
    }
}

/// A solved sequence-aware selection.
#[derive(Debug, Clone, PartialEq)]
pub struct SequenceSolution {
    /// Chosen item index per layer (into the per-layer fronts).
    pub choices: Vec<usize>,
    /// Predicted total latency including all entry overheads, seconds.
    pub total_time_secs: f64,
    /// Predicted total energy including entry-stall energy, joules.
    pub total_energy: f64,
    /// Number of layer boundaries that change the HFO (and hence re-lock).
    pub frequency_changes: usize,
}

/// Solves the sequence-aware selection problem over per-layer Pareto
/// fronts.
///
/// `fronts[k]` are the candidate points of layer `k`; `idle_power_w` is the
/// gated idle power used for the window-energy objective (items are valued
/// `E − P_idle·t`, as in [`crate::pipeline::optimize`]).
///
/// Thin single-budget wrapper over the shared solver core
/// ([`crate::solver`]): the DP runs on the historical budget-relative
/// grid (`scale = budget / resolution`), so results are bit-identical to
/// the pre-sweep implementation. To answer many budgets on one model, use
/// [`crate::solver::solve_sequence_sweep`].
///
/// # Errors
///
/// [`MckpError::InvalidInput`] if `budget_secs` is not positive/finite,
/// `resolution` is zero, or `fronts` is empty;
/// [`MckpError::EmptyClass`] if a layer has no candidates;
/// [`MckpError::Infeasible`] if even the best schedule misses the budget.
pub fn solve_sequence(
    fronts: &[Vec<DsePoint>],
    budget_secs: f64,
    resolution: usize,
    config: &DseConfig,
    idle_power_w: f64,
) -> Result<SequenceSolution, MckpError> {
    crate::solver::solve_sequence_with(
        fronts,
        budget_secs,
        resolution,
        config,
        idle_power_w,
        &mut crate::solver::SolverWorkspace::new(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dae::Granularity;
    use stm32_power::Joules;
    use stm32_rcc::{ClockSource, PllConfig};

    fn cfg() -> DseConfig {
        DseConfig::paper()
    }

    fn point(t_ms: f64, e_mj: f64, mhz: u64, stage_ms: f64) -> DsePoint {
        let modes = crate::modes::OperatingModes::paper();
        DsePoint {
            granularity: Granularity(if stage_ms > 0.0 { 8 } else { 0 }),
            hfo: *modes.hfo_at(Hertz::mhz(mhz)).expect("in ladder"),
            latency_secs: t_ms * 1e-3,
            energy: Joules::new(e_mj * 1e-3),
            switches: 0,
            first_stage_secs: stage_ms * 1e-3,
        }
    }

    #[test]
    fn single_frequency_matches_plain_sum() {
        let fronts = vec![
            vec![point(1.0, 0.3, 216, 0.0)],
            vec![point(2.0, 0.5, 216, 0.0)],
        ];
        let sol = solve_sequence(&fronts, 10e-3, 1000, &cfg(), 0.0).expect("solves");
        assert_eq!(sol.frequency_changes, 0);
        assert!((sol.total_time_secs - 3e-3).abs() < 1e-12);
        assert!((sol.total_energy - 0.8e-3).abs() < 1e-12);
    }

    #[test]
    fn frequency_change_pays_entry_overhead() {
        // Two layers, each with a single option at different frequencies
        // and no staging: a full re-lock separates them.
        let fronts = vec![
            vec![point(1.0, 0.3, 216, 0.0)],
            vec![point(2.0, 0.2, 150, 0.0)],
        ];
        let sol = solve_sequence(&fronts, 10e-3, 1000, &cfg(), 0.0).expect("solves");
        assert_eq!(sol.frequency_changes, 1);
        assert!(
            (sol.total_time_secs - (3e-3 + 200e-6)).abs() < 1e-9,
            "got {}",
            sol.total_time_secs
        );
    }

    #[test]
    fn staging_hides_the_relock() {
        // The second layer's first staging segment is 300 µs > 200 µs
        // re-lock: the change is free in time.
        let fronts = vec![
            vec![point(1.0, 0.3, 216, 0.0)],
            vec![point(2.0, 0.2, 150, 0.3)],
        ];
        let sol = solve_sequence(&fronts, 10e-3, 1000, &cfg(), 0.0).expect("solves");
        assert_eq!(sol.frequency_changes, 1);
        assert!((sol.total_time_secs - 3e-3).abs() < 1e-9);
    }

    #[test]
    fn dp_avoids_relocks_when_budget_is_tight() {
        // Layer 2 has a cheap-but-different-frequency option and a slightly
        // costlier same-frequency option. With relock time pushing past the
        // budget, the DP must pick the same-frequency option.
        let fronts = vec![
            vec![point(1.0, 0.30, 216, 0.0)],
            vec![point(1.0, 0.20, 150, 0.0), point(1.05, 0.28, 216, 0.0)],
        ];
        let tight = solve_sequence(&fronts, 2.1e-3, 2000, &cfg(), 0.0).expect("solves");
        assert_eq!(
            tight.frequency_changes, 0,
            "tight budget must avoid the re-lock"
        );
        // With a generous budget the cheaper 150 MHz option wins.
        let loose = solve_sequence(&fronts, 5e-3, 2000, &cfg(), 0.0).expect("solves");
        assert_eq!(loose.frequency_changes, 1);
        assert!(loose.total_energy < tight.total_energy);
    }

    #[test]
    fn infeasible_budget_detected() {
        let fronts = vec![vec![point(5.0, 0.1, 216, 0.0)]];
        assert!(matches!(
            solve_sequence(&fronts, 1e-3, 100, &cfg(), 0.0),
            Err(MckpError::Infeasible { .. })
        ));
    }

    #[test]
    fn empty_front_detected() {
        let fronts = vec![vec![point(1.0, 0.1, 216, 0.0)], vec![]];
        assert_eq!(
            solve_sequence(&fronts, 1.0, 100, &cfg(), 0.0),
            Err(MckpError::EmptyClass { class: 1 })
        );
    }

    #[test]
    fn respects_budget_with_many_layers() {
        let modes = crate::modes::OperatingModes::paper();
        let _ = modes;
        let fronts: Vec<Vec<DsePoint>> = (0..20)
            .map(|k| {
                vec![
                    point(1.0, 0.40, 216, 0.0),
                    point(1.5 + 0.01 * k as f64, 0.25, 150, 0.1),
                    point(2.2, 0.18, 108, 0.1),
                ]
            })
            .collect();
        for budget_ms in [21.0, 30.0, 45.0] {
            let sol =
                solve_sequence(&fronts, budget_ms * 1e-3, 2000, &cfg(), 0.012).expect("solves");
            assert!(
                sol.total_time_secs <= budget_ms * 1e-3 + 1e-9,
                "budget {budget_ms} ms violated: {}",
                sol.total_time_secs
            );
        }
    }

    #[test]
    fn pll_config_equality_vs_frequency() {
        // Two points at the same *frequency* never pay entry costs even if
        // granularities differ.
        let a = point(1.0, 0.3, 168, 0.0);
        let mut b = point(1.0, 0.3, 168, 0.2);
        b.granularity = Granularity(4);
        let fronts = vec![vec![a], vec![b]];
        let sol = solve_sequence(&fronts, 10e-3, 1000, &cfg(), 0.0).expect("solves");
        assert_eq!(sol.frequency_changes, 0);
        let _ = PllConfig::new(ClockSource::hse(Hertz::mhz(50)), 25, 168, 2);
    }
}
