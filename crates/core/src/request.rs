//! The typed planning request: what to optimize, validated up front.
//!
//! [`PlanRequest`] replaces the positional `(model, slack, &DseConfig)`
//! argument soup of the historical free functions with a builder that
//! names every knob — the QoS budget (absolute window or slack over the
//! baseline), the solver, and an optional DP-resolution override — and
//! rejects degenerate values (`NaN`, non-positive times, zero resolution)
//! with [`DaeDvfsError::InvalidRequest`] *before* any DSE or solver work
//! runs, instead of silently producing a degenerate plan.
//!
//! ```
//! use dae_dvfs::{PlanRequest, Planner, Solver};
//! use tinynn::models::vww_sized;
//!
//! # fn main() -> Result<(), dae_dvfs::DaeDvfsError> {
//! let planner = Planner::new(&vww_sized(32), &Default::default())?;
//! let plan = planner.plan(&PlanRequest::slack(0.3).with_solver(Solver::SequenceDp))?;
//! assert!(plan.predicted_latency_secs <= plan.qos_secs);
//! # Ok(())
//! # }
//! ```

use crate::error::DaeDvfsError;

/// Which QoS optimizer a request runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum Solver {
    /// The paper's MCKP DP with the replay-validated switching-reserve
    /// grid ([`crate::Planner::optimize`]); the default.
    #[default]
    ReserveGrid,
    /// The layered-graph sequence DP that prices inter-layer PLL re-locks
    /// exactly ([`crate::Planner::optimize_sequence`]).
    SequenceDp,
}

/// How the request expresses its latency budget.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum QosBudget {
    /// An absolute window in seconds.
    Window(f64),
    /// A slack fraction over the target's baseline latency: the window is
    /// `baseline × (1 + slack)` (the paper's 0.10 / 0.30 / 0.50 levels).
    Slack(f64),
}

/// A validated, typed planning request.
///
/// Construct with [`PlanRequest::qos`] or [`PlanRequest::slack`], refine
/// with the `with_*` builders, and hand to [`crate::Planner::plan`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct PlanRequest {
    budget: QosBudget,
    solver: Solver,
    dp_resolution: Option<usize>,
}

impl PlanRequest {
    /// A request for an absolute QoS window of `qos_secs` seconds.
    pub fn qos(qos_secs: f64) -> Self {
        PlanRequest {
            budget: QosBudget::Window(qos_secs),
            solver: Solver::default(),
            dp_resolution: None,
        }
    }

    /// A request for a window of `slack` fractional slack over the
    /// baseline latency.
    pub fn slack(slack: f64) -> Self {
        PlanRequest {
            budget: QosBudget::Slack(slack),
            solver: Solver::default(),
            dp_resolution: None,
        }
    }

    /// Selects the solver (builder style).
    pub fn with_solver(mut self, solver: Solver) -> Self {
        self.solver = solver;
        self
    }

    /// Overrides the DP time-axis resolution for this request only
    /// (builder style); the planner's configured resolution applies
    /// otherwise.
    pub fn with_dp_resolution(mut self, resolution: usize) -> Self {
        self.dp_resolution = Some(resolution);
        self
    }

    /// The requested budget.
    pub fn budget(&self) -> QosBudget {
        self.budget
    }

    /// The requested solver.
    pub fn solver(&self) -> Solver {
        self.solver
    }

    /// The per-request DP-resolution override, if any.
    pub fn dp_resolution(&self) -> Option<usize> {
        self.dp_resolution
    }

    /// Checks every knob for degenerate values.
    ///
    /// # Errors
    ///
    /// [`DaeDvfsError::InvalidRequest`] naming the offending field when
    /// the budget is NaN, infinite, zero or negative, or the resolution
    /// override is zero.
    pub fn validate(&self) -> Result<(), DaeDvfsError> {
        match self.budget {
            QosBudget::Window(qos) => validate_positive_time("qos_secs", qos)?,
            QosBudget::Slack(slack) => validate_positive_time("slack", slack)?,
        }
        if self.dp_resolution == Some(0) {
            return Err(DaeDvfsError::InvalidRequest {
                field: "dp_resolution",
                reason: "must be non-zero".into(),
            });
        }
        Ok(())
    }
}

/// Rejects NaN, infinite, zero and negative values for a field that must
/// be a positive finite quantity.
pub(crate) fn validate_positive_time(field: &'static str, value: f64) -> Result<(), DaeDvfsError> {
    if !value.is_finite() {
        return Err(DaeDvfsError::InvalidRequest {
            field,
            reason: format!("must be finite, got {value}"),
        });
    }
    if value <= 0.0 {
        return Err(DaeDvfsError::InvalidRequest {
            field,
            reason: format!("must be positive, got {value}"),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rejected_field(request: &PlanRequest) -> &'static str {
        match request.validate().unwrap_err() {
            DaeDvfsError::InvalidRequest { field, .. } => field,
            other => panic!("expected InvalidRequest, got {other:?}"),
        }
    }

    #[test]
    fn default_request_is_reserve_grid_without_override() {
        let r = PlanRequest::qos(0.5);
        assert_eq!(r.solver(), Solver::ReserveGrid);
        assert_eq!(r.dp_resolution(), None);
        assert_eq!(r.budget(), QosBudget::Window(0.5));
        assert!(r.validate().is_ok());
    }

    #[test]
    fn nan_qos_rejected() {
        assert_eq!(rejected_field(&PlanRequest::qos(f64::NAN)), "qos_secs");
    }

    #[test]
    fn infinite_qos_rejected() {
        assert_eq!(rejected_field(&PlanRequest::qos(f64::INFINITY)), "qos_secs");
    }

    #[test]
    fn negative_qos_rejected() {
        assert_eq!(rejected_field(&PlanRequest::qos(-0.1)), "qos_secs");
    }

    #[test]
    fn zero_qos_rejected() {
        assert_eq!(rejected_field(&PlanRequest::qos(0.0)), "qos_secs");
    }

    #[test]
    fn nan_slack_rejected() {
        assert_eq!(rejected_field(&PlanRequest::slack(f64::NAN)), "slack");
    }

    #[test]
    fn negative_slack_rejected() {
        assert_eq!(rejected_field(&PlanRequest::slack(-0.3)), "slack");
    }

    #[test]
    fn zero_slack_rejected() {
        assert_eq!(rejected_field(&PlanRequest::slack(0.0)), "slack");
    }

    #[test]
    fn zero_resolution_override_rejected() {
        let r = PlanRequest::qos(0.5).with_dp_resolution(0);
        assert_eq!(rejected_field(&r), "dp_resolution");
    }

    #[test]
    fn valid_overrides_accepted() {
        let r = PlanRequest::slack(0.3)
            .with_solver(Solver::SequenceDp)
            .with_dp_resolution(800);
        assert!(r.validate().is_ok());
        assert_eq!(r.solver(), Solver::SequenceDp);
        assert_eq!(r.dp_resolution(), Some(800));
    }
}
