//! QoS-class ladders (paper Fig. 3, step 3A: "Class k, Class k+1").
//!
//! A deployment rarely serves a single latency budget: the paper's Fig. 3
//! shows the MCKP solutions organized into QoS *classes*. A
//! [`QosClassLadder`] precomputes one deployment plan per class so the
//! runtime can pick the most energy-efficient plan that still meets the
//! budget in O(log n), without re-running the optimizer online.

use tinyengine::TinyEngine;
use tinynn::Model;

use crate::dse::DseConfig;
use crate::error::DaeDvfsError;
use crate::pipeline::{optimize, DeploymentPlan};

/// One precomputed QoS class.
#[derive(Debug, Clone, PartialEq)]
pub struct QosClass {
    /// The slack level the class was built for (e.g. 0.30).
    pub slack: f64,
    /// The absolute QoS window of the class, seconds.
    pub qos_secs: f64,
    /// The optimized plan for this window.
    pub plan: DeploymentPlan,
}

/// A ladder of QoS classes, ascending in window length.
///
/// # Examples
///
/// ```no_run
/// use dae_dvfs::{DseConfig, QosClassLadder};
/// use tinynn::models::vww;
///
/// # fn main() -> Result<(), dae_dvfs::DaeDvfsError> {
/// let ladder = QosClassLadder::build(&vww(), &[0.1, 0.3, 0.5], &DseConfig::paper())?;
/// // A 25 ms budget gets the most relaxed plan that still fits.
/// if let Some(class) = ladder.class_for_budget(25e-3) {
///     println!("using the {:.0}% class", class.slack * 100.0);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QosClassLadder {
    /// The model name the ladder belongs to.
    pub model: String,
    /// Baseline (TinyEngine @ 216 MHz) latency the slacks are relative to.
    pub baseline_latency_secs: f64,
    classes: Vec<QosClass>,
}

impl QosClassLadder {
    /// Precomputes one class per slack level.
    ///
    /// # Errors
    ///
    /// Propagates optimization errors; fails if `slacks` is empty or
    /// contains a negative value.
    pub fn build(model: &Model, slacks: &[f64], config: &DseConfig) -> Result<Self, DaeDvfsError> {
        assert!(!slacks.is_empty(), "at least one QoS class is required");
        assert!(
            slacks.iter().all(|s| *s >= 0.0 && s.is_finite()),
            "slack levels must be non-negative finite fractions"
        );
        let baseline = TinyEngine::new().run(model)?.total_time_secs;
        let mut classes = Vec::with_capacity(slacks.len());
        for &slack in slacks {
            let qos = tinyengine::qos_window(baseline, slack);
            let plan = optimize(model, qos, config)?;
            classes.push(QosClass {
                slack,
                qos_secs: qos,
                plan,
            });
        }
        classes.sort_by(|a, b| {
            a.qos_secs
                .partial_cmp(&b.qos_secs)
                .expect("windows are finite")
        });
        Ok(QosClassLadder {
            model: model.name.clone(),
            baseline_latency_secs: baseline,
            classes,
        })
    }

    /// The classes, ascending in window length.
    pub fn classes(&self) -> &[QosClass] {
        &self.classes
    }

    /// The most relaxed (most energy-efficient) class whose window fits
    /// within `budget_secs`, or `None` if even the tightest class misses.
    pub fn class_for_budget(&self, budget_secs: f64) -> Option<&QosClass> {
        self.classes
            .iter()
            .rev()
            .find(|c| c.qos_secs <= budget_secs)
    }

    /// The tightest class (shortest window).
    ///
    /// # Panics
    ///
    /// Never panics: construction guarantees at least one class.
    pub fn tightest(&self) -> &QosClass {
        &self.classes[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinynn::models::vww;

    fn ladder() -> QosClassLadder {
        QosClassLadder::build(&vww(), &[0.5, 0.1, 0.3], &DseConfig::paper()).expect("ladder builds")
    }

    #[test]
    fn classes_sorted_ascending() {
        let l = ladder();
        assert_eq!(l.classes().len(), 3);
        for w in l.classes().windows(2) {
            assert!(w[0].qos_secs < w[1].qos_secs);
        }
        assert!((l.tightest().slack - 0.1).abs() < 1e-12);
    }

    #[test]
    fn budget_lookup_picks_most_relaxed_fitting_class() {
        let l = ladder();
        let mid = l.classes()[1].qos_secs;
        // A budget between class 1 and class 2 gets class 1.
        let got = l.class_for_budget(mid + 1e-6).expect("fits");
        assert!((got.slack - 0.3).abs() < 1e-12);
        // A huge budget gets the most relaxed class.
        let got = l.class_for_budget(10.0).expect("fits");
        assert!((got.slack - 0.5).abs() < 1e-12);
    }

    #[test]
    fn infeasible_budget_returns_none() {
        let l = ladder();
        assert!(l.class_for_budget(1e-6).is_none());
    }

    #[test]
    fn relaxed_classes_do_not_cost_more_window_energy() {
        // The optimizer minimizes *window* energy (inference + gated idle).
        // A relaxed window can always reuse the tighter class's schedule
        // and idle through the extra slack, so its window energy is at most
        // the tight window energy plus gated idling over the growth.
        let l = ladder();
        let gated = DseConfig::paper().power.clock_gated_power.as_f64();
        let window = |c: &QosClass| {
            c.plan.predicted_energy.as_f64() + gated * (c.qos_secs - c.plan.predicted_latency_secs)
        };
        for w in l.classes().windows(2) {
            let bound = window(&w[0]) + gated * (w[1].qos_secs - w[0].qos_secs);
            // The bound is exact for the MCKP itself; the sequence-aware
            // reserve search above it is a heuristic (inter-layer re-locks
            // are not part of the paper's Eq. 2-5 either), so allow a 2%
            // slop.
            assert!(
                window(&w[1]) <= bound * 1.02,
                "relaxed window energy {} exceeds bound {}",
                window(&w[1]),
                bound
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one QoS class")]
    fn empty_slacks_rejected() {
        let _ = QosClassLadder::build(&vww(), &[], &DseConfig::paper());
    }
}
