//! The end-to-end methodology (paper Fig. 3): DAE lowering → per-layer DSE
//! → Pareto extraction → MCKP → deployable plan → iso-latency execution.
//!
//! The functions here are single-shot conveniences: each builds a
//! throw-away [`Planner`] (which owns the compiled schedules and Pareto
//! fronts) and runs one step. Callers that revisit the same model —
//! several QoS points, repeated deployments, baseline comparisons —
//! should construct the [`Planner`] once and amortize the DSE.

use std::sync::Arc;

use stm32_power::Joules;
use tinynn::{LayerKind, Model};

use crate::dse::{DseConfig, DsePoint};
use crate::error::DaeDvfsError;
use crate::planner::Planner;
use crate::schedule::{replay_decisions, CompiledLayer};

/// The per-layer decision of a deployment: which granularity and which HFO
/// frequency the layer runs with.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerDecision {
    /// Layer name.
    pub name: String,
    /// Reporting kind.
    pub kind: LayerKind,
    /// The chosen DSE point.
    pub point: DsePoint,
}

/// A complete DAE+DVFS deployment plan for one model under one QoS budget.
///
/// `Display` renders the per-layer decision table (the firmware-facing
/// artifact: which granularity and PLL setting each layer uses).
#[derive(Debug, Clone, PartialEq)]
pub struct DeploymentPlan {
    /// Model name.
    pub model: String,
    /// The QoS window (absolute seconds).
    pub qos_secs: f64,
    /// Per-layer decisions in execution order.
    pub decisions: Vec<LayerDecision>,
    /// Predicted inference latency (sum of chosen points).
    pub predicted_latency_secs: f64,
    /// Predicted inference energy (sum of chosen points).
    pub predicted_energy: Joules,
}

impl std::fmt::Display for DeploymentPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "deployment plan for {} (QoS {:.3} ms, predicted {:.3} ms / {:.3} mJ)",
            self.model,
            self.qos_secs * 1e3,
            self.predicted_latency_secs * 1e3,
            self.predicted_energy.as_mj()
        )?;
        writeln!(
            f,
            "{:>18} | {:>10} | {:>3} | {:>8} | {:>22}",
            "layer", "kind", "g", "HFO", "PLL {HSE,M,N}/P"
        )?;
        for d in &self.decisions {
            let (hse, m, n) = d.point.hfo.label_tuple();
            writeln!(
                f,
                "{:>18} | {:>10} | {:>3} | {:>4} MHz | {:>18}",
                d.name,
                d.kind.to_string(),
                d.point.granularity.0,
                d.point.hfo.sysclk().as_u64() / 1_000_000,
                format!("{{{hse},{m},{n}}}/{}", d.point.hfo.pllp()),
            )?;
        }
        Ok(())
    }
}

/// Result of executing a deployment plan over its iso-latency window.
#[derive(Debug, Clone, PartialEq)]
pub struct DeploymentReport {
    /// The executed plan.
    pub plan: DeploymentPlan,
    /// Measured inference latency.
    pub inference_secs: f64,
    /// Measured inference energy.
    pub inference_energy: Joules,
    /// Energy spent idling (clock gated) until the QoS deadline.
    pub idle_energy: Joules,
    /// Total window energy.
    pub total_energy: Joules,
}

/// Lowers a model into layer profiles (shared with the baseline engine).
///
/// # Errors
///
/// Propagates shape errors from the model plan.
pub fn lower_model(model: &Model) -> Result<Vec<tinyengine::KernelProfile>, DaeDvfsError> {
    let plan = model.plan().map_err(tinyengine::EngineError::from)?;
    Ok(model
        .layers()
        .zip(plan.iter())
        .map(|(nl, info)| tinyengine::layer_profile(&nl.layer, info))
        .collect())
}

/// Runs steps 1–3 of the methodology: DSE every layer, keep the Pareto
/// fronts, and solve the MCKP for the given QoS window.
///
/// Two refinements over the plain MCKP formulation (Eq. 2–5 of the paper):
///
/// * the objective includes the clock-gated idle power of the
///   post-inference tail: minimizing `Σ Eₖ + P_idle · (QoS − Σ tₖ)` is
///   equivalent to using item values `Eₖ − P_idle · tₖ` (plus a constant),
///   so slower-but-leaner points are only preferred when they genuinely
///   beat "finish fast, then gate the clocks";
/// * DSE items are relock-free, so each MCKP solution is *replayed* with
///   full inter-layer switching costs; a deterministic grid of switching
///   reserves is evaluated and the feasible schedule with the lowest
///   window energy wins (the relock-free all-fastest schedule is always a
///   candidate, so feasibility is guaranteed whenever it exists).
///
/// # Errors
///
/// [`DaeDvfsError::Qos`] if even the fastest schedule misses the window;
/// propagates lowering errors.
pub fn optimize(
    model: &Model,
    qos_secs: f64,
    config: &DseConfig,
) -> Result<DeploymentPlan, DaeDvfsError> {
    Planner::new(model, config)?.optimize(qos_secs)
}

/// Executes a deployment plan on a fresh machine and idles (clock gated)
/// until the QoS deadline.
///
/// Unlike [`optimize`], this only compiles the schedules the plan needs —
/// no DSE sweep is paid.
///
/// # Errors
///
/// Propagates lowering errors; [`DaeDvfsError::EmptyModel`] for zero-layer
/// models. The plan is assumed to come from [`optimize`] against the same
/// model.
///
/// # Panics
///
/// Panics if the replayed schedule overruns the plan's QoS window, which
/// cannot happen for plans produced by [`optimize`] on the same model and
/// configuration.
pub fn deploy(
    model: &Model,
    plan: &DeploymentPlan,
    config: &DseConfig,
) -> Result<DeploymentReport, DaeDvfsError> {
    let profiles = lower_model(model)?;
    if profiles.is_empty() {
        return Err(DaeDvfsError::EmptyModel {
            model: model.name.clone(),
        });
    }
    assert_eq!(
        profiles.len(),
        plan.decisions.len(),
        "plan does not match the model layer count"
    );
    let layers: Vec<CompiledLayer> = profiles
        .into_iter()
        .map(|p| CompiledLayer::compile(p, config))
        .collect();
    let power = Arc::new(config.power.clone());
    let (inference_secs, inference_energy) =
        replay_decisions(&layers, &plan.decisions, config, &power);
    let remaining = plan.qos_secs - inference_secs;
    assert!(
        remaining >= -1e-9,
        "deployment overran its QoS window: {inference_secs}s > {}s",
        plan.qos_secs
    );
    let idle_energy = config.power.clock_gated_power * remaining.max(0.0);
    Ok(DeploymentReport {
        plan: plan.clone(),
        inference_secs,
        inference_energy,
        idle_energy,
        total_energy: inference_energy + idle_energy,
    })
}

/// Sequence-aware variant of [`optimize`]: selects one Pareto point per
/// layer with the layered-graph DP of [`crate::seqdp`], which prices
/// inter-layer PLL re-locks exactly instead of searching reserve budgets.
///
/// The returned plan is validated by machine replay; the replay result is
/// what the plan reports (and it can only be *faster* than the DP's
/// conservative prediction, never slower).
///
/// # Errors
///
/// Same conditions as [`optimize`].
pub fn optimize_sequence(
    model: &Model,
    qos_secs: f64,
    config: &DseConfig,
) -> Result<DeploymentPlan, DaeDvfsError> {
    Planner::new(model, config)?.optimize_sequence(qos_secs)
}

/// Convenience wrapper: baseline latency → QoS window → optimize → deploy.
///
/// `slack` is the paper's QoS constraint level (0.10 / 0.30 / 0.50).
///
/// # Errors
///
/// [`DaeDvfsError::InvalidRequest`] for NaN, zero or negative slacks
/// (degenerate inputs are rejected at the API boundary instead of
/// producing degenerate plans; a zero-slack *window* remains expressible
/// via [`optimize`] with `qos_secs` equal to the baseline latency);
/// otherwise propagates [`optimize`] and [`deploy`] errors.
pub fn run_dae_dvfs(
    model: &Model,
    slack: f64,
    config: &DseConfig,
) -> Result<DeploymentReport, DaeDvfsError> {
    Planner::new(model, config)?.run(slack)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinyengine::TinyEngine;
    use tinynn::models::vww;

    fn cfg() -> DseConfig {
        DseConfig::paper()
    }

    #[test]
    fn optimize_respects_qos() {
        let model = vww();
        let baseline = TinyEngine::new().run(&model).unwrap().total_time_secs;
        for slack in [0.1, 0.3, 0.5] {
            let qos = tinyengine::qos_window(baseline, slack);
            let plan = optimize(&model, qos, &cfg()).unwrap();
            assert!(
                plan.predicted_latency_secs <= qos + 1e-9,
                "slack {slack}: predicted {} > qos {qos}",
                plan.predicted_latency_secs
            );
            assert_eq!(plan.decisions.len(), model.layer_count());
        }
    }

    #[test]
    fn deploy_reproduces_prediction_exactly() {
        // optimize() predicts by replaying the schedule with full
        // switching costs; deploy() is the same replay, so the numbers
        // must agree to floating-point accuracy.
        let model = vww();
        let baseline = TinyEngine::new().run(&model).unwrap().total_time_secs;
        let qos = tinyengine::qos_window(baseline, 0.3);
        let plan = optimize(&model, qos, &cfg()).unwrap();
        let report = deploy(&model, &plan, &cfg()).unwrap();
        assert!(
            (report.inference_secs - plan.predicted_latency_secs).abs() < 1e-12,
            "deployment {} vs prediction {}",
            report.inference_secs,
            plan.predicted_latency_secs
        );
        assert!((report.inference_energy.as_f64() - plan.predicted_energy.as_f64()).abs() < 1e-12);
        assert!(report.inference_secs <= qos + 1e-12);
    }

    #[test]
    fn relaxed_qos_saves_energy() {
        let model = vww();
        let tight = run_dae_dvfs(&model, 0.1, &cfg()).unwrap();
        let relaxed = run_dae_dvfs(&model, 0.5, &cfg()).unwrap();
        assert!(
            relaxed.inference_energy < tight.inference_energy,
            "relaxed {} vs tight {}",
            relaxed.inference_energy,
            tight.inference_energy
        );
    }

    #[test]
    fn sequence_dp_meets_qos_and_matches_or_beats_grid_search() {
        let model = vww();
        let baseline = TinyEngine::new().run(&model).unwrap().total_time_secs;
        let config = cfg();
        let gated = config.power.clock_gated_power.as_f64();
        for slack in [0.1, 0.3, 0.5] {
            let qos = tinyengine::qos_window(baseline, slack);
            let seq = optimize_sequence(&model, qos, &config).unwrap();
            assert!(seq.predicted_latency_secs <= qos + 1e-12);
            let grid = optimize(&model, qos, &config).unwrap();
            let window = |p: &DeploymentPlan| {
                p.predicted_energy.as_f64() + gated * (qos - p.predicted_latency_secs)
            };
            // The sequence DP prices re-locks exactly; allow only the DP
            // discretization wobble in the other direction.
            assert!(
                window(&seq) <= window(&grid) * 1.01,
                "slack {slack}: seq {} vs grid {}",
                window(&seq),
                window(&grid)
            );
        }
    }

    #[test]
    fn plan_display_lists_every_layer() {
        let model = vww();
        let baseline = TinyEngine::new().run(&model).unwrap().total_time_secs;
        let plan = optimize(&model, tinyengine::qos_window(baseline, 0.3), &cfg()).unwrap();
        let rendered = plan.to_string();
        for d in &plan.decisions {
            assert!(rendered.contains(&d.name), "missing {}", d.name);
        }
        assert!(rendered.contains("QoS"));
    }

    #[test]
    fn sequence_dp_infeasible_window_rejected() {
        let model = vww();
        assert!(matches!(
            optimize_sequence(&model, 1e-6, &cfg()),
            Err(DaeDvfsError::Qos(_))
        ));
    }

    #[test]
    fn infeasible_qos_rejected() {
        let model = vww();
        let err = optimize(&model, 1e-6, &cfg()).unwrap_err();
        assert!(matches!(err, DaeDvfsError::Qos(_)));
    }

    #[test]
    fn empty_model_is_an_error_not_a_panic() {
        // Regression: the replay path used to index `decisions[0]` and
        // panic on zero-layer models.
        let model = Model::new("hollow", tinynn::Shape::new(4, 4, 1), Vec::new());
        assert!(matches!(
            optimize(&model, 1.0, &cfg()),
            Err(DaeDvfsError::EmptyModel { .. })
        ));
        assert!(matches!(
            optimize_sequence(&model, 1.0, &cfg()),
            Err(DaeDvfsError::EmptyModel { .. })
        ));
        assert!(matches!(
            run_dae_dvfs(&model, 0.3, &cfg()),
            Err(DaeDvfsError::EmptyModel { .. })
        ));
        let hollow_plan = DeploymentPlan {
            model: "hollow".into(),
            qos_secs: 1.0,
            decisions: Vec::new(),
            predicted_latency_secs: 0.0,
            predicted_energy: Joules::ZERO,
        };
        assert!(matches!(
            deploy(&model, &hollow_plan, &cfg()),
            Err(DaeDvfsError::EmptyModel { .. })
        ));
    }

    #[test]
    fn dp_resolution_is_ablatable() {
        // Coarser resolutions still produce feasible plans; the knob rides
        // in the config instead of a hard-coded constant.
        let model = vww();
        let baseline = TinyEngine::new().run(&model).unwrap().total_time_secs;
        let qos = tinyengine::qos_window(baseline, 0.3);
        for resolution in [250usize, 2000] {
            let cfg = DseConfig::paper().with_dp_resolution(resolution);
            let plan = optimize(&model, qos, &cfg).unwrap();
            assert!(
                plan.predicted_latency_secs <= qos + 1e-9,
                "res {resolution}"
            );
        }
    }

    #[test]
    fn beats_tinyengine_baselines() {
        // The headline comparison at moderate slack.
        let model = vww();
        let engine = TinyEngine::new();
        let baseline = engine.run(&model).unwrap().total_time_secs;
        let qos = tinyengine::qos_window(baseline, 0.3);

        let ours = run_dae_dvfs(&model, 0.3, &cfg()).unwrap();
        let te = tinyengine::run_iso_latency(&engine, &model, qos, tinyengine::IdlePolicy::Busy216)
            .unwrap();
        let te_gated =
            tinyengine::run_iso_latency(&engine, &model, qos, tinyengine::IdlePolicy::ClockGated)
                .unwrap();

        assert!(
            ours.total_energy < te.total_energy,
            "must beat plain TinyEngine: {} vs {}",
            ours.total_energy,
            te.total_energy
        );
        assert!(
            ours.total_energy < te_gated.total_energy,
            "must beat TinyEngine+gating: {} vs {}",
            ours.total_energy,
            te_gated.total_energy
        );
    }
}
