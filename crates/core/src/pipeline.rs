//! The end-to-end methodology (paper Fig. 3): DAE lowering → per-layer DSE
//! → Pareto extraction → MCKP → deployable plan → iso-latency execution.

use mcu_sim::{Machine, SegmentClass};
use stm32_power::Joules;
use stm32_rcc::SysclkConfig;
use tinyengine::{KernelProfile, TinyEngine};
use tinynn::{LayerKind, Model};

use crate::dae::dae_segments;
use crate::dse::{explore_layer, DseConfig, DsePoint};
use crate::error::DaeDvfsError;
use crate::mckp::{solve_dp, MckpItem};
use crate::pareto::pareto_front;

/// The per-layer decision of a deployment: which granularity and which HFO
/// frequency the layer runs with.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerDecision {
    /// Layer name.
    pub name: String,
    /// Reporting kind.
    pub kind: LayerKind,
    /// The chosen DSE point.
    pub point: DsePoint,
}

/// A complete DAE+DVFS deployment plan for one model under one QoS budget.
///
/// `Display` renders the per-layer decision table (the firmware-facing
/// artifact: which granularity and PLL setting each layer uses).
#[derive(Debug, Clone, PartialEq)]
pub struct DeploymentPlan {
    /// Model name.
    pub model: String,
    /// The QoS window (absolute seconds).
    pub qos_secs: f64,
    /// Per-layer decisions in execution order.
    pub decisions: Vec<LayerDecision>,
    /// Predicted inference latency (sum of chosen points).
    pub predicted_latency_secs: f64,
    /// Predicted inference energy (sum of chosen points).
    pub predicted_energy: Joules,
}

impl std::fmt::Display for DeploymentPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "deployment plan for {} (QoS {:.3} ms, predicted {:.3} ms / {:.3} mJ)",
            self.model,
            self.qos_secs * 1e3,
            self.predicted_latency_secs * 1e3,
            self.predicted_energy.as_mj()
        )?;
        writeln!(
            f,
            "{:>18} | {:>10} | {:>3} | {:>8} | {:>22}",
            "layer", "kind", "g", "HFO", "PLL {HSE,M,N}/P"
        )?;
        for d in &self.decisions {
            let (hse, m, n) = d.point.hfo.label_tuple();
            writeln!(
                f,
                "{:>18} | {:>10} | {:>3} | {:>4} MHz | {:>18}",
                d.name,
                d.kind.to_string(),
                d.point.granularity.0,
                d.point.hfo.sysclk().as_u64() / 1_000_000,
                format!("{{{hse},{m},{n}}}/{}", d.point.hfo.pllp()),
            )?;
        }
        Ok(())
    }
}

/// Result of executing a deployment plan over its iso-latency window.
#[derive(Debug, Clone, PartialEq)]
pub struct DeploymentReport {
    /// The executed plan.
    pub plan: DeploymentPlan,
    /// Measured inference latency.
    pub inference_secs: f64,
    /// Measured inference energy.
    pub inference_energy: Joules,
    /// Energy spent idling (clock gated) until the QoS deadline.
    pub idle_energy: Joules,
    /// Total window energy.
    pub total_energy: Joules,
}

/// The number of DP time buckets used by [`optimize`].
pub const DP_RESOLUTION: usize = 2000;

/// Lowers a model into layer profiles (shared with the baseline engine).
///
/// # Errors
///
/// Propagates shape errors from the model plan.
pub fn lower_model(model: &Model) -> Result<Vec<KernelProfile>, DaeDvfsError> {
    let plan = model.plan().map_err(tinyengine::EngineError::from)?;
    Ok(model
        .layers()
        .zip(plan.iter())
        .map(|(nl, info)| tinyengine::layer_profile(&nl.layer, info))
        .collect())
}

/// Replays a decision sequence on a fresh machine, returning the measured
/// `(latency, energy)` including all inter-layer switching costs.
fn execute_decisions(
    profiles: &[KernelProfile],
    decisions: &[LayerDecision],
    config: &DseConfig,
) -> (f64, Joules) {
    let first_hfo = SysclkConfig::Pll(decisions[0].point.hfo);
    let mut machine = Machine::new(first_hfo)
        .with_switch_model(config.switch_model)
        .with_power(config.power.clone());
    for (profile, decision) in profiles.iter().zip(decisions) {
        let hfo_cfg = SysclkConfig::Pll(decision.point.hfo);
        for seg in dae_segments(profile, decision.point.granularity, &config.cache) {
            match seg.class {
                SegmentClass::Memory => {
                    machine.switch_clock(config.modes.lfo);
                    // Layer boundaries with an HFO change re-program the
                    // PLL under the staging segment (see
                    // `mcu_sim::Machine::prepare_pll`).
                    machine.prepare_pll(decision.point.hfo);
                }
                SegmentClass::Compute | SegmentClass::Other => {
                    machine.switch_clock(hfo_cfg);
                }
            }
            machine.run_segment(&seg);
        }
    }
    (machine.elapsed_secs(), machine.energy())
}

/// Runs steps 1–3 of the methodology: DSE every layer, keep the Pareto
/// fronts, and solve the MCKP for the given QoS window.
///
/// Two refinements over the plain MCKP formulation (Eq. 2–5 of the paper):
///
/// * the objective includes the clock-gated idle power of the
///   post-inference tail: minimizing `Σ Eₖ + P_idle · (QoS − Σ tₖ)` is
///   equivalent to using item values `Eₖ − P_idle · tₖ` (plus a constant),
///   so slower-but-leaner points are only preferred when they genuinely
///   beat "finish fast, then gate the clocks";
/// * DSE items are relock-free, so each MCKP solution is *replayed* with
///   full inter-layer switching costs; a deterministic grid of switching
///   reserves is evaluated and the feasible schedule with the lowest
///   window energy wins (the relock-free all-fastest schedule is always a
///   candidate, so feasibility is guaranteed whenever it exists).
///
/// # Errors
///
/// [`DaeDvfsError::Qos`] if even the fastest schedule misses the window;
/// propagates lowering errors.
pub fn optimize(
    model: &Model,
    qos_secs: f64,
    config: &DseConfig,
) -> Result<DeploymentPlan, DaeDvfsError> {
    let profiles = lower_model(model)?;
    let idle_power = config.power.clock_gated_power.as_f64();

    let mut fronts: Vec<Vec<DsePoint>> = Vec::with_capacity(profiles.len());
    for p in &profiles {
        let front = pareto_front(explore_layer(p, config));
        debug_assert!(!front.is_empty());
        fronts.push(front);
    }

    let classes: Vec<Vec<MckpItem>> = fronts
        .iter()
        .map(|front| {
            front
                .iter()
                .map(|pt| MckpItem {
                    time_secs: pt.latency_secs,
                    energy: pt.energy.as_f64() - idle_power * pt.latency_secs,
                })
                .collect()
        })
        .collect();

    let build_decisions = |choices: &[usize]| -> Vec<LayerDecision> {
        profiles
            .iter()
            .zip(&fronts)
            .zip(choices)
            .map(|((profile, front), &choice)| LayerDecision {
                name: profile.name.clone(),
                kind: profile.kind,
                point: front[choice].clone(),
            })
            .collect()
    };

    // Sequence-aware budget search. DSE items are relock-free, so the DP
    // solution can overrun once inter-layer re-locks are replayed. Rather
    // than accepting the first feasible reserve, evaluate a deterministic
    // grid of reserves (anchored on the observed overhead of the
    // unreserved solution) and keep the feasible schedule with the lowest
    // *window* energy. The all-fastest selection — maximum HFO everywhere,
    // hence relock-free — is always a candidate, so the search only fails
    // when the instance is genuinely infeasible.
    let min_time: f64 = classes
        .iter()
        .map(|c| {
            c.iter()
                .map(|i| i.time_secs)
                .fold(f64::INFINITY, f64::min)
        })
        .sum();
    // Headroom so the DP's ceil-rounding (at most one bucket per class)
    // cannot round the fastest selection out of the smallest budget.
    let rounding_margin = 1.0 + (classes.len() + 1) as f64 / DP_RESOLUTION as f64;
    let reserve_cap = (qos_secs - min_time * rounding_margin).max(0.0);

    let window_energy =
        |latency: f64, energy: Joules| energy.as_f64() + idle_power * (qos_secs - latency);

    let mut best: Option<(f64, Vec<LayerDecision>, f64, Joules)> = None;
    let mut consider = |decisions: Vec<LayerDecision>, latency: f64, energy: Joules| {
        if latency <= qos_secs {
            let score = window_energy(latency, energy);
            if best.as_ref().is_none_or(|(s, ..)| score < *s) {
                best = Some((score, decisions, latency, energy));
            }
        }
    };

    // Anchor: the unreserved solution and its observed switching overhead.
    let base = solve_dp(&classes, qos_secs, DP_RESOLUTION)?;
    let base_decisions = build_decisions(&base.choices);
    let (base_latency, base_energy) = execute_decisions(&profiles, &base_decisions, config);
    let overhead = (base_latency - base.total_time_secs).max(0.0);
    consider(base_decisions, base_latency, base_energy);

    let mut reserves: Vec<f64> = [0.5, 1.0, 1.5, 2.0, 3.0]
        .iter()
        .map(|k| (k * overhead).min(reserve_cap))
        .filter(|r| *r > 0.0)
        .collect();
    // Also cover the budget axis itself: overhead-anchored points can miss
    // the regime where a much tighter budget yields a schedule with fewer
    // distinct frequencies (and therefore fewer re-locks).
    for frac in [0.1, 0.2, 0.3, 0.5, 0.7] {
        reserves.push(frac * reserve_cap);
    }
    reserves.push(reserve_cap);
    reserves.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    reserves.dedup();
    for reserve in reserves {
        let budget = qos_secs - reserve;
        if budget <= 0.0 {
            continue;
        }
        if let Ok(solution) = solve_dp(&classes, budget, DP_RESOLUTION) {
            let decisions = build_decisions(&solution.choices);
            let (latency, energy) = execute_decisions(&profiles, &decisions, config);
            consider(decisions, latency, energy);
        }
    }

    // Always-feasible candidate: per-layer fastest (relock-free).
    let fastest: Vec<usize> = fronts
        .iter()
        .map(|front| {
            front
                .iter()
                .enumerate()
                .min_by(|a, b| {
                    a.1.latency_secs
                        .partial_cmp(&b.1.latency_secs)
                        .expect("latencies are finite")
                })
                .map(|(i, _)| i)
                .expect("fronts are non-empty")
        })
        .collect();
    let decisions = build_decisions(&fastest);
    let (latency, energy) = execute_decisions(&profiles, &decisions, config);
    consider(decisions, latency, energy);

    match best {
        Some((_, decisions, latency, energy)) => Ok(DeploymentPlan {
            model: model.name.clone(),
            qos_secs,
            decisions,
            predicted_latency_secs: latency,
            predicted_energy: energy,
        }),
        None => Err(DaeDvfsError::Qos(crate::mckp::MckpError::Infeasible {
            min_time_secs: latency,
            budget_secs: qos_secs,
        })),
    }
}

/// Executes a deployment plan on a fresh machine and idles (clock gated)
/// until the QoS deadline.
///
/// # Errors
///
/// Propagates lowering errors. The plan is assumed to come from
/// [`optimize`] against the same model.
///
/// # Panics
///
/// Panics if the replayed schedule overruns the plan's QoS window, which
/// cannot happen for plans produced by [`optimize`] on the same model and
/// configuration.
pub fn deploy(
    model: &Model,
    plan: &DeploymentPlan,
    config: &DseConfig,
) -> Result<DeploymentReport, DaeDvfsError> {
    let profiles = lower_model(model)?;
    assert_eq!(
        profiles.len(),
        plan.decisions.len(),
        "plan does not match the model layer count"
    );
    let (inference_secs, inference_energy) =
        execute_decisions(&profiles, &plan.decisions, config);
    let remaining = plan.qos_secs - inference_secs;
    assert!(
        remaining >= -1e-9,
        "deployment overran its QoS window: {inference_secs}s > {}s",
        plan.qos_secs
    );
    let idle_energy = config.power.clock_gated_power * remaining.max(0.0);
    Ok(DeploymentReport {
        plan: plan.clone(),
        inference_secs,
        inference_energy,
        idle_energy,
        total_energy: inference_energy + idle_energy,
    })
}

/// Sequence-aware variant of [`optimize`]: selects one Pareto point per
/// layer with the layered-graph DP of [`crate::seqdp`], which prices
/// inter-layer PLL re-locks exactly instead of searching reserve budgets.
///
/// The returned plan is validated by machine replay; the replay result is
/// what the plan reports (and it can only be *faster* than the DP's
/// conservative prediction, never slower).
///
/// # Errors
///
/// Same conditions as [`optimize`].
pub fn optimize_sequence(
    model: &Model,
    qos_secs: f64,
    config: &DseConfig,
) -> Result<DeploymentPlan, DaeDvfsError> {
    let profiles = lower_model(model)?;
    let idle_power = config.power.clock_gated_power.as_f64();
    let fronts: Vec<Vec<DsePoint>> = profiles
        .iter()
        .map(|p| pareto_front(explore_layer(p, config)))
        .collect();
    let solution = crate::seqdp::solve_sequence(
        &fronts,
        qos_secs,
        DP_RESOLUTION,
        config,
        idle_power,
    )?;
    let decisions: Vec<LayerDecision> = profiles
        .iter()
        .zip(&fronts)
        .zip(&solution.choices)
        .map(|((profile, front), &choice)| LayerDecision {
            name: profile.name.clone(),
            kind: profile.kind,
            point: front[choice].clone(),
        })
        .collect();
    let (latency, energy) = execute_decisions(&profiles, &decisions, config);
    if latency > qos_secs {
        return Err(DaeDvfsError::Qos(crate::mckp::MckpError::Infeasible {
            min_time_secs: latency,
            budget_secs: qos_secs,
        }));
    }
    Ok(DeploymentPlan {
        model: model.name.clone(),
        qos_secs,
        decisions,
        predicted_latency_secs: latency,
        predicted_energy: energy,
    })
}

/// Convenience wrapper: baseline latency → QoS window → optimize → deploy.
///
/// `slack` is the paper's QoS constraint level (0.10 / 0.30 / 0.50).
///
/// # Errors
///
/// Propagates [`optimize`] and [`deploy`] errors.
pub fn run_dae_dvfs(
    model: &Model,
    slack: f64,
    config: &DseConfig,
) -> Result<DeploymentReport, DaeDvfsError> {
    let baseline = TinyEngine::new()
        .run(model)
        .map_err(DaeDvfsError::Engine)?;
    let qos = tinyengine::qos_window(baseline.total_time_secs, slack);
    let plan = optimize(model, qos, config)?;
    deploy(model, &plan, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinynn::models::vww;

    fn cfg() -> DseConfig {
        DseConfig::paper()
    }

    #[test]
    fn optimize_respects_qos() {
        let model = vww();
        let baseline = TinyEngine::new().run(&model).unwrap().total_time_secs;
        for slack in [0.1, 0.3, 0.5] {
            let qos = tinyengine::qos_window(baseline, slack);
            let plan = optimize(&model, qos, &cfg()).unwrap();
            assert!(
                plan.predicted_latency_secs <= qos + 1e-9,
                "slack {slack}: predicted {} > qos {qos}",
                plan.predicted_latency_secs
            );
            assert_eq!(plan.decisions.len(), model.layer_count());
        }
    }

    #[test]
    fn deploy_reproduces_prediction_exactly() {
        // optimize() predicts by replaying the schedule with full
        // switching costs; deploy() is the same replay, so the numbers
        // must agree to floating-point accuracy.
        let model = vww();
        let baseline = TinyEngine::new().run(&model).unwrap().total_time_secs;
        let qos = tinyengine::qos_window(baseline, 0.3);
        let plan = optimize(&model, qos, &cfg()).unwrap();
        let report = deploy(&model, &plan, &cfg()).unwrap();
        assert!(
            (report.inference_secs - plan.predicted_latency_secs).abs() < 1e-12,
            "deployment {} vs prediction {}",
            report.inference_secs,
            plan.predicted_latency_secs
        );
        assert!(
            (report.inference_energy.as_f64() - plan.predicted_energy.as_f64()).abs() < 1e-12
        );
        assert!(report.inference_secs <= qos + 1e-12);
    }

    #[test]
    fn relaxed_qos_saves_energy() {
        let model = vww();
        let tight = run_dae_dvfs(&model, 0.1, &cfg()).unwrap();
        let relaxed = run_dae_dvfs(&model, 0.5, &cfg()).unwrap();
        assert!(
            relaxed.inference_energy < tight.inference_energy,
            "relaxed {} vs tight {}",
            relaxed.inference_energy,
            tight.inference_energy
        );
    }

    #[test]
    fn sequence_dp_meets_qos_and_matches_or_beats_grid_search() {
        let model = vww();
        let baseline = TinyEngine::new().run(&model).unwrap().total_time_secs;
        let config = cfg();
        let gated = config.power.clock_gated_power.as_f64();
        for slack in [0.1, 0.3, 0.5] {
            let qos = tinyengine::qos_window(baseline, slack);
            let seq = optimize_sequence(&model, qos, &config).unwrap();
            assert!(seq.predicted_latency_secs <= qos + 1e-12);
            let grid = optimize(&model, qos, &config).unwrap();
            let window = |p: &DeploymentPlan| {
                p.predicted_energy.as_f64() + gated * (qos - p.predicted_latency_secs)
            };
            // The sequence DP prices re-locks exactly; allow only the DP
            // discretization wobble in the other direction.
            assert!(
                window(&seq) <= window(&grid) * 1.01,
                "slack {slack}: seq {} vs grid {}",
                window(&seq),
                window(&grid)
            );
        }
    }

    #[test]
    fn plan_display_lists_every_layer() {
        let model = vww();
        let baseline = TinyEngine::new().run(&model).unwrap().total_time_secs;
        let plan = optimize(&model, tinyengine::qos_window(baseline, 0.3), &cfg()).unwrap();
        let rendered = plan.to_string();
        for d in &plan.decisions {
            assert!(rendered.contains(&d.name), "missing {}", d.name);
        }
        assert!(rendered.contains("QoS"));
    }

    #[test]
    fn sequence_dp_infeasible_window_rejected() {
        let model = vww();
        assert!(matches!(
            optimize_sequence(&model, 1e-6, &cfg()),
            Err(DaeDvfsError::Qos(_))
        ));
    }

    #[test]
    fn infeasible_qos_rejected() {
        let model = vww();
        let err = optimize(&model, 1e-6, &cfg()).unwrap_err();
        assert!(matches!(err, DaeDvfsError::Qos(_)));
    }

    #[test]
    fn beats_tinyengine_baselines() {
        // The headline comparison at moderate slack.
        let model = vww();
        let engine = TinyEngine::new();
        let baseline = engine.run(&model).unwrap().total_time_secs;
        let qos = tinyengine::qos_window(baseline, 0.3);

        let ours = run_dae_dvfs(&model, 0.3, &cfg()).unwrap();
        let te = tinyengine::run_iso_latency(
            &engine,
            &model,
            qos,
            tinyengine::IdlePolicy::Busy216,
        )
        .unwrap();
        let te_gated = tinyengine::run_iso_latency(
            &engine,
            &model,
            qos,
            tinyengine::IdlePolicy::ClockGated,
        )
        .unwrap();

        assert!(
            ours.total_energy < te.total_energy,
            "must beat plain TinyEngine: {} vs {}",
            ours.total_energy,
            te.total_energy
        );
        assert!(
            ours.total_energy < te_gated.total_energy,
            "must beat TinyEngine+gating: {} vs {}",
            ours.total_energy,
            te_gated.total_energy
        );
    }
}
