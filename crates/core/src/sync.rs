//! Poison-tolerant locking helpers shared by the planner's workspace
//! pool and the serving subsystem.
//!
//! Every `Mutex`/`Condvar` in this crate guards plain data whose
//! invariants hold between any two lock acquisitions (maps, counters,
//! queues of owned values) — a panic elsewhere cannot leave them
//! logically inconsistent, so lock poisoning is uniformly ignored. This
//! module is the single home of that policy; if it ever needs to
//! change, it changes here.

use std::sync::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};
use std::time::Duration;

/// Locks `mutex`, recovering the guard from a poisoned lock.
pub(crate) fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// [`Condvar::wait`], recovering the guard from a poisoned lock.
pub(crate) fn wait<'a, T>(condvar: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    match condvar.wait(guard) {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// [`Condvar::wait_timeout`], recovering the guard from a poisoned lock.
pub(crate) fn wait_timeout<'a, T>(
    condvar: &Condvar,
    guard: MutexGuard<'a, T>,
    timeout: Duration,
) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
    match condvar.wait_timeout(guard, timeout) {
        Ok(pair) => pair,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn lock_recovers_from_poisoning() {
        let mutex = Mutex::new(7);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = mutex.lock().unwrap();
            panic!("poison the lock");
        }));
        assert!(mutex.is_poisoned());
        assert_eq!(*lock(&mutex), 7);
    }
}
