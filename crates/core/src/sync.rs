//! Poison-tolerant, **rank-checked** locking for the planner's workspace
//! pool and the serving subsystem.
//!
//! Every `Mutex`/`Condvar` in this crate guards plain data whose
//! invariants hold between any two lock acquisitions (maps, counters,
//! queues of owned values) — a panic elsewhere cannot leave them
//! logically inconsistent, so lock poisoning is uniformly ignored. This
//! module is the single home of that policy; if it ever needs to
//! change, it changes here. The workspace linter (`repro-lint`) enforces
//! the single-home property: raw `Mutex`/`Condvar` types and `.lock()` /
//! `.wait()` method calls are rejected everywhere outside this file.
//!
//! # Lock ranks
//!
//! The serving stack's "acyclic lock order" used to be a comment in
//! `service/front.rs`. It is now an executable invariant: every
//! [`RankedMutex`] carries a [`LockRank`], and under `debug_assertions` a
//! thread-local stack of held ranks is maintained — acquiring a lock
//! whose rank is not strictly greater than the highest rank already held
//! panics with **both** acquisition sites. Release builds compile the
//! check away entirely.
//!
//! The rank map (low acquires first, high acquires last):
//!
//! | rank | lock | home |
//! |------|------|------|
//! | 5 `server-conn` | HTTP server's accepted-connection queue | `server/mod.rs` |
//! | 10 `queue` | submission queue + drain flags | `service/front.rs` |
//! | 20 `cache-shard` | plan-cache shard (LRU map **and** its single-flight table share this lock) | `service/cache.rs` |
//! | 30 `ticket` | per-request result slot | `service/front.rs` |
//! | 40 `timing` | serving wall-clock accumulator | `service/front.rs` |
//! | 45 `obs-ring` | HTTP server's bounded receipt ring | `server/mod.rs` |
//! | 46 `obs-trace` | HTTP server's JSONL trace writer | `server/mod.rs` |
//! | 50 `workspace-pool` | idle solver-workspace slots | `solver/workspace.rs` |
//!
//! A condvar wait *releases* its mutex, so [`wait`] / [`wait_timeout`]
//! pop the rank for the duration of the block and re-check it on wakeup.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};
use std::time::Duration;

/// Deadlock-avoidance rank of a [`RankedMutex`]. On any one thread,
/// locks must be acquired in strictly increasing rank order; see the
/// [module docs](self) for the workspace's rank map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct LockRank {
    /// Position in the global acquisition order (strictly increasing).
    pub(crate) level: u16,
    /// Human-readable name used in violation reports.
    pub(crate) name: &'static str,
}

impl fmt::Display for LockRank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "`{}` (rank {})", self.name, self.level)
    }
}

/// The workspace's lock-rank map. Levels are spaced by 10 so a future
/// lock can slot between existing ones without renumbering.
pub(crate) mod rank {
    use super::LockRank;

    /// The HTTP server's queue of accepted-but-unserviced connections.
    /// Below everything else: a connection worker drops this guard
    /// before touching the plan service, so the rank never composes —
    /// but ranking it lowest keeps any future composition legal.
    pub(crate) const SERVER_CONN: LockRank = LockRank {
        level: 5,
        name: "server-conn",
    };
    /// The service's submission queue (and its serving/draining flags).
    pub(crate) const QUEUE: LockRank = LockRank {
        level: 10,
        name: "queue",
    };
    /// One plan-cache shard: the LRU map and the single-flight table
    /// share this lock, so the ISSUE-level "queue < flight table < cache
    /// shard" order collapses to queue < cache-shard here.
    pub(crate) const CACHE_SHARD: LockRank = LockRank {
        level: 20,
        name: "cache-shard",
    };
    /// A request ticket's result slot.
    pub(crate) const TICKET: LockRank = LockRank {
        level: 30,
        name: "ticket",
    };
    /// The serving wall-clock accumulator.
    pub(crate) const TIMING: LockRank = LockRank {
        level: 40,
        name: "timing",
    };
    /// The HTTP server's bounded ring of recent plan receipts. Acquired
    /// after the request is fully answered (no service lock is held),
    /// but ranked above `timing` so a stats snapshot may legally consult
    /// the ring while holding its accumulator.
    pub(crate) const OBS_RING: LockRank = LockRank {
        level: 45,
        name: "obs-ring",
    };
    /// The HTTP server's JSONL trace writer (admitted-request recording).
    /// Acquired strictly after the receipt ring when both are touched
    /// for one response, and never held across service calls.
    pub(crate) const OBS_TRACE: LockRank = LockRank {
        level: 46,
        name: "obs-trace",
    };
    /// The solver workspace pool's idle slots.
    pub(crate) const WORKSPACE: LockRank = LockRank {
        level: 50,
        name: "workspace-pool",
    };
}

#[cfg(debug_assertions)]
mod check {
    //! The debug-only held-rank stack. Thread-local because the rank
    //! discipline is a per-thread property: a deadlock cycle needs one
    //! thread acquiring out of order relative to another, and forbidding
    //! non-increasing acquisition on *every* thread excludes all cycles.

    use super::LockRank;
    use std::cell::RefCell;
    use std::panic::Location;

    struct Held {
        token: u64,
        level: u16,
        name: &'static str,
        site: &'static Location<'static>,
    }

    thread_local! {
        static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
        static NEXT_TOKEN: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
    }

    /// Records an acquisition, panicking (with both sites) if `rank` is
    /// not strictly above every rank this thread already holds.
    pub(super) fn acquire(rank: LockRank, site: &'static Location<'static>) -> u64 {
        let conflict = HELD.with(|held| {
            let held = held.borrow();
            held.last()
                .filter(|top| rank.level <= top.level)
                .map(|top| (top.level, top.name, top.site))
        });
        if let Some((level, name, held_site)) = conflict {
            panic!(
                "lock-rank violation: acquiring {rank} at {site} while holding `{name}` \
                 (rank {level}) acquired at {held_site}; locks must be taken in strictly \
                 increasing rank order (rank map: crates/core/src/sync.rs)"
            );
        }
        let token = NEXT_TOKEN.with(|t| {
            let token = t.get();
            t.set(token + 1);
            token
        });
        HELD.with(|held| {
            held.borrow_mut().push(Held {
                token,
                level: rank.level,
                name: rank.name,
                site,
            });
        });
        token
    }

    /// Removes the acquisition identified by `token` (usually the top of
    /// the stack; out-of-order guard drops are tolerated).
    pub(super) fn release(token: u64) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(index) = held.iter().rposition(|h| h.token == token) {
                held.remove(index);
            }
        });
    }
}

/// A [`Mutex`] with a [`LockRank`]; the only mutex type the workspace
/// uses outside this module. Acquire with the free function [`lock`].
#[derive(Debug)]
pub(crate) struct RankedMutex<T> {
    rank_level: u16,
    rank_name: &'static str,
    inner: Mutex<T>,
}

impl<T> RankedMutex<T> {
    /// A mutex guarding `value` at `rank`.
    pub(crate) const fn new(rank: LockRank, value: T) -> Self {
        RankedMutex {
            rank_level: rank.level,
            rank_name: rank.name,
            inner: Mutex::new(value),
        }
    }

    fn rank(&self) -> LockRank {
        LockRank {
            level: self.rank_level,
            name: self.rank_name,
        }
    }
}

/// A [`Condvar`] paired with [`RankedMutex`] guards; the only condvar
/// type the workspace uses outside this module. Wait with the free
/// functions [`wait`] / [`wait_timeout`].
#[derive(Debug, Default)]
pub(crate) struct RankedCondvar {
    inner: Condvar,
}

impl RankedCondvar {
    /// A fresh condvar.
    pub(crate) const fn new() -> Self {
        RankedCondvar {
            inner: Condvar::new(),
        }
    }

    /// Wakes every waiter. (There is deliberately no `notify_one`: the
    /// serving stack's enqueue wakeups must be broadcast so a lingering
    /// batch worker cannot swallow a wakeup aimed at an idle one — see
    /// `service/front.rs`.)
    pub(crate) fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// The guard of a [`RankedMutex`]; releases the lock — and its rank —
/// on drop.
pub(crate) struct RankedGuard<'a, T> {
    /// `None` only transiently: while the guard is surrendered to a
    /// condvar wait, and in `Drop` after the hand-off.
    inner: Option<MutexGuard<'a, T>>,
    rank: LockRank,
    #[cfg(debug_assertions)]
    token: u64,
}

impl<'a, T> RankedGuard<'a, T> {
    /// Wraps a freshly acquired raw guard, registering its rank.
    #[track_caller]
    fn register(inner: MutexGuard<'a, T>, rank: LockRank) -> Self {
        #[cfg(debug_assertions)]
        let token = check::acquire(rank, std::panic::Location::caller());
        RankedGuard {
            inner: Some(inner),
            rank,
            #[cfg(debug_assertions)]
            token,
        }
    }

    /// Surrenders the raw guard (for a condvar wait), unregistering the
    /// rank for the duration of the block.
    fn surrender(mut self) -> (MutexGuard<'a, T>, LockRank) {
        #[cfg(debug_assertions)]
        check::release(self.token);
        let inner = self.inner.take().unwrap_or_else(|| unreachable!());
        let rank = self.rank;
        (inner, rank)
    }
}

impl<T> Deref for RankedGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        match &self.inner {
            Some(guard) => guard,
            None => unreachable!("guard accessed while surrendered"),
        }
    }
}

impl<T> DerefMut for RankedGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        match &mut self.inner {
            Some(guard) => guard,
            None => unreachable!("guard accessed while surrendered"),
        }
    }
}

impl<T> Drop for RankedGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.take().is_some() {
            #[cfg(debug_assertions)]
            check::release(self.token);
        }
    }
}

/// Recovers a raw guard from a poisoned lock result — the single home of
/// the workspace's poison-tolerance policy.
fn recover<'a, T>(
    result: Result<MutexGuard<'a, T>, std::sync::PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    match result {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Locks `mutex`, recovering the guard from a poisoned lock and (under
/// `debug_assertions`) enforcing the rank order against every lock the
/// calling thread already holds.
#[track_caller]
pub(crate) fn lock<T>(mutex: &RankedMutex<T>) -> RankedGuard<'_, T> {
    let inner = recover(mutex.inner.lock());
    RankedGuard::register(inner, mutex.rank())
}

/// [`Condvar::wait`] over ranked guards: the rank is released for the
/// blocking interval (the mutex is unlocked while waiting) and
/// re-checked on wakeup.
#[track_caller]
pub(crate) fn wait<'a, T>(
    condvar: &RankedCondvar,
    guard: RankedGuard<'a, T>,
) -> RankedGuard<'a, T> {
    let (inner, rank) = guard.surrender();
    let inner = recover(condvar.inner.wait(inner));
    RankedGuard::register(inner, rank)
}

/// [`Condvar::wait_timeout`] over ranked guards; same rank hand-off as
/// [`wait`].
#[track_caller]
pub(crate) fn wait_timeout<'a, T>(
    condvar: &RankedCondvar,
    guard: RankedGuard<'a, T>,
    timeout: Duration,
) -> (RankedGuard<'a, T>, WaitTimeoutResult) {
    let (inner, rank) = guard.surrender();
    let (inner, result) = match condvar.inner.wait_timeout(inner, timeout) {
        Ok(pair) => pair,
        Err(poisoned) => poisoned.into_inner(),
    };
    (RankedGuard::register(inner, rank), result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_recovers_from_poisoning() {
        let mutex = RankedMutex::new(rank::QUEUE, 7);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = lock(&mutex);
            panic!("poison the lock");
        }));
        assert_eq!(*lock(&mutex), 7);
    }

    #[test]
    fn ascending_acquisition_passes() {
        let queue = RankedMutex::new(rank::QUEUE, 1);
        let shard = RankedMutex::new(rank::CACHE_SHARD, 2);
        let ticket = RankedMutex::new(rank::TICKET, 3);
        let q = lock(&queue);
        let s = lock(&shard);
        let t = lock(&ticket);
        assert_eq!(*q + *s + *t, 6);
        // Releasing out of stack order is fine too.
        drop(s);
        drop(t);
        drop(q);
        // And sequential (non-nested) re-acquisition at any rank is fine.
        assert_eq!(*lock(&queue), 1);
        assert_eq!(*lock(&queue), 1);
    }

    /// The acceptance scenario: an inverted acquisition (cache shard held,
    /// then queue) is detected and the panic names **both** sites.
    #[test]
    #[cfg(debug_assertions)]
    fn inverted_acquisition_panics_with_both_sites() {
        let queue = RankedMutex::new(rank::QUEUE, 1);
        let shard = RankedMutex::new(rank::CACHE_SHARD, 2);
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _shard = lock(&shard); // first site
            let _queue = lock(&queue); // second site: rank 10 under rank 20
        }));
        let payload = unwound.expect_err("inversion must panic");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "non-string panic payload".into());
        assert!(
            message.contains("lock-rank violation"),
            "unexpected panic: {message}"
        );
        assert!(message.contains("`queue` (rank 10)"), "{message}");
        assert!(message.contains("`cache-shard` (rank 20)"), "{message}");
        // Both acquisition sites are file:line references into this test.
        assert_eq!(
            message.matches("sync.rs:").count(),
            2,
            "expected both acquisition sites in: {message}"
        );
    }

    #[test]
    #[cfg(debug_assertions)]
    fn same_rank_reacquisition_is_rejected() {
        let a = RankedMutex::new(rank::CACHE_SHARD, 1);
        let b = RankedMutex::new(rank::CACHE_SHARD, 2);
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _a = lock(&a);
            let _b = lock(&b); // equal rank: would deadlock against a peer
        }));
        assert!(unwound.is_err());
    }

    #[test]
    #[cfg(debug_assertions)]
    fn violation_unwinds_clean_and_the_thread_stays_usable() {
        let queue = RankedMutex::new(rank::QUEUE, 1);
        let timing = RankedMutex::new(rank::TIMING, 4);
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _t = lock(&timing);
            let _q = lock(&queue);
        }));
        assert!(unwound.is_err());
        // The unwound guards released their ranks: a fresh ascending
        // sequence on this thread passes.
        let q = lock(&queue);
        let t = lock(&timing);
        assert_eq!(*q + *t, 5);
    }

    #[test]
    fn condvar_wait_releases_the_rank_while_blocked() {
        // A waiter parked on `ticket` (rank 30) must not poison the rank
        // stack: the worker thread acquires queue→shard→ticket while the
        // waiter blocks, and the waiter's wakeup re-registers cleanly.
        let slot = RankedMutex::new(rank::TICKET, None::<u32>);
        let ready = RankedCondvar::new();
        std::thread::scope(|s| {
            s.spawn(|| {
                let mut guard = lock(&slot);
                while guard.is_none() {
                    guard = wait(&ready, guard);
                }
                assert_eq!(*guard, Some(42));
                // While still holding `ticket`, a higher rank is fine...
                let timing = RankedMutex::new(rank::TIMING, ());
                let _t = lock(&timing);
            });
            std::thread::sleep(Duration::from_millis(10));
            *lock(&slot) = Some(42);
            ready.notify_all();
        });
    }

    #[test]
    fn wait_timeout_times_out_and_keeps_the_guard() {
        let slot = RankedMutex::new(rank::TICKET, 0u32);
        let ready = RankedCondvar::new();
        let guard = lock(&slot);
        let (guard, result) = wait_timeout(&ready, guard, Duration::from_millis(5));
        assert!(result.timed_out());
        assert_eq!(*guard, 0);
    }
}
