//! Per-layer design-space exploration (paper Sec. III-B, step 2A).
//!
//! For every layer, every decoupling granularity `g` and every HFO
//! frequency candidate is priced by replaying the DAE segment schedule on a
//! simulated machine: memory segments at LFO, compute segments at HFO,
//! paying the (warm-PLL) switch costs in between. The result is the
//! `(latency, energy)` cloud from which the Pareto front is extracted.

use std::sync::Arc;

use mcu_sim::cache::CacheConfig;
use mcu_sim::{CpuModel, MemoryTiming};
use stm32_power::{Joules, PowerModel};
use stm32_rcc::{PllConfig, SwitchCostModel};
use tinyengine::KernelProfile;

use crate::dae::{dae_segments, Granularity};
use crate::modes::OperatingModes;
use crate::schedule::{evaluate_schedule, explore_compiled, CompiledLayer};

/// One evaluated `(g, f)` configuration of one layer.
#[derive(Debug, Clone, PartialEq)]
pub struct DsePoint {
    /// The decoupling granularity.
    pub granularity: Granularity,
    /// The HFO PLL configuration (compute-segment clock).
    pub hfo: PllConfig,
    /// Layer latency under this configuration, seconds.
    pub latency_secs: f64,
    /// Layer energy under this configuration.
    pub energy: Joules,
    /// Clock switches performed.
    pub switches: u64,
    /// Duration of the layer's *first* memory (staging) segment at LFO,
    /// seconds — zero for `g = 0`. An incoming PLL re-lock can hide under
    /// this much execution (see `mcu_sim::Machine::prepare_pll`), which the
    /// sequence-aware optimizer exploits.
    pub first_stage_secs: f64,
}

/// Knobs of the exploration (all ablatable).
///
/// This is the *lowered* board description every pricing and solver routine
/// consumes. Prefer producing one through a [`crate::target::Target`]
/// (`target.dse_config()`) or through the `with_*` builder methods below;
/// the raw public fields remain available as the compatibility layer for
/// existing ablation code, but new code should not construct the struct
/// literally so future fields (like `cpu` and `memory`, added for the
/// target abstraction) can keep appearing without breaking callers.
#[derive(Debug, Clone)]
pub struct DseConfig {
    /// The operating-mode universe.
    pub modes: OperatingModes,
    /// Granularities to explore for DAE-capable layers.
    pub granularities: Vec<Granularity>,
    /// Cache geometry used by the DAE lowering.
    pub cache: CacheConfig,
    /// Switch-cost model.
    pub switch_model: SwitchCostModel,
    /// Power model.
    pub power: PowerModel,
    /// CPU timing model the machine replays price against.
    pub cpu: CpuModel,
    /// Memory-system timing (SRAM latencies, flash wait-state ladder).
    pub memory: MemoryTiming,
    /// Number of time buckets the MCKP / sequence DPs discretize the QoS
    /// budget into. Finer resolutions tighten the ceil-rounding at the cost
    /// of solver time; ablatable like every other knob.
    pub dp_resolution: usize,
}

impl DseConfig {
    /// The default DP time-axis resolution.
    pub const DEFAULT_DP_RESOLUTION: usize = 2000;

    /// The paper's exploration: `g ∈ {0,2,4,8,12,16}`, the full HFO ladder,
    /// STM32F767 cache, substrate models and default costs.
    pub fn paper() -> Self {
        DseConfig {
            modes: OperatingModes::paper(),
            granularities: Granularity::PAPER_SET.to_vec(),
            cache: CacheConfig::stm32f767(),
            switch_model: SwitchCostModel::default(),
            power: PowerModel::nucleo_f767zi(),
            cpu: CpuModel::cortex_m7(),
            memory: MemoryTiming::stm32f767(),
            dp_resolution: Self::DEFAULT_DP_RESOLUTION,
        }
    }

    /// Replaces the operating-mode universe (builder style).
    pub fn with_modes(mut self, modes: OperatingModes) -> Self {
        self.modes = modes;
        self
    }

    /// Replaces the explored granularity set (builder style).
    pub fn with_granularities(mut self, granularities: Vec<Granularity>) -> Self {
        self.granularities = granularities;
        self
    }

    /// Replaces the cache geometry (builder style).
    pub fn with_cache(mut self, cache: CacheConfig) -> Self {
        self.cache = cache;
        self
    }

    /// Replaces the switch-cost model (builder style).
    pub fn with_switch_model(mut self, switch_model: SwitchCostModel) -> Self {
        self.switch_model = switch_model;
        self
    }

    /// Replaces the power model (builder style).
    pub fn with_power(mut self, power: PowerModel) -> Self {
        self.power = power;
        self
    }

    /// Replaces the CPU timing model (builder style).
    pub fn with_cpu(mut self, cpu: CpuModel) -> Self {
        self.cpu = cpu;
        self
    }

    /// Replaces the memory-system timing (builder style).
    pub fn with_memory(mut self, memory: MemoryTiming) -> Self {
        self.memory = memory;
        self
    }

    /// Overrides the DP resolution (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `resolution` is zero.
    pub fn with_dp_resolution(mut self, resolution: usize) -> Self {
        assert!(resolution > 0, "resolution must be non-zero");
        self.dp_resolution = resolution;
        self
    }
}

impl Default for DseConfig {
    fn default() -> Self {
        DseConfig::paper()
    }
}

/// Prices one `(g, f)` configuration of `profile` by machine replay.
///
/// The machine starts with the point's own HFO PLL locked, i.e. the point
/// is *relock-free*: it covers the intra-layer LFO↔HFO mux toggles but not
/// the PLL re-lock a deployment pays when the previous layer used a
/// different HFO. The pipeline's optimizer accounts for those inter-layer
/// re-locks sequence-aware (see `dae_dvfs::pipeline::optimize`).
pub fn evaluate_point(
    profile: &KernelProfile,
    g: Granularity,
    hfo: &PllConfig,
    config: &DseConfig,
) -> DsePoint {
    let segments = dae_segments(profile, g, &config.cache);
    evaluate_schedule(&segments, g, hfo, config, &Arc::new(config.power.clone()))
}

/// Explores the full `(g, f)` grid for one layer.
///
/// DAE-capable layers (depthwise, pointwise) get every granularity; "rest"
/// layers only get frequency scaling (`g = 0`), matching Fig. 6 where rest
/// rows carry granularity `0-0`.
///
/// Single-shot convenience: lowers the layer once into a throw-away
/// [`CompiledLayer`] and sweeps it. Callers that revisit layers should
/// hold a [`crate::Planner`] (or their own `CompiledLayer`) instead.
pub fn explore_layer(profile: &KernelProfile, config: &DseConfig) -> Vec<DsePoint> {
    let layer = CompiledLayer::compile(profile.clone(), config);
    explore_compiled(&layer, config, &Arc::new(config.power.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm32_rcc::Hertz;
    use tinynn::models::vww_sized;
    use tinynn::Layer;

    fn profile_of(kind_dw: bool) -> KernelProfile {
        let model = vww_sized(32);
        let plan = model.plan().unwrap();
        let found = model
            .layers()
            .zip(plan.iter())
            .find(|(nl, _)| {
                if kind_dw {
                    matches!(nl.layer, Layer::Depthwise(_))
                } else {
                    matches!(nl.layer, Layer::Pointwise(_))
                }
            })
            .map(|(nl, info)| tinyengine::layer_profile(&nl.layer, info));
        found.unwrap()
    }

    #[test]
    fn higher_frequency_lower_latency_at_fixed_g() {
        let cfg = DseConfig::paper();
        let p = profile_of(false);
        let f100 = cfg.modes.hfo_at(Hertz::mhz(100)).copied().unwrap();
        let f216 = cfg.modes.hfo_at(Hertz::mhz(216)).copied().unwrap();
        for g in [Granularity(0), Granularity(8)] {
            let slow = evaluate_point(&p, g, &f100, &cfg);
            let fast = evaluate_point(&p, g, &f216, &cfg);
            assert!(
                fast.latency_secs < slow.latency_secs,
                "216 MHz must beat 100 MHz at {g}"
            );
        }
    }

    #[test]
    fn dae_reduces_energy_for_pointwise() {
        // Weight-walk amortization plus LFO staging: at a fixed HFO, the
        // best granularity must undercut the interleaved baseline for
        // pointwise layers.
        let cfg = DseConfig::paper();
        let p = profile_of(false);
        let f216 = cfg.modes.hfo_at(Hertz::mhz(216)).copied().unwrap();
        let base = evaluate_point(&p, Granularity(0), &f216, &cfg);
        let best_dae = [2u8, 4, 8, 12, 16]
            .into_iter()
            .map(|g| evaluate_point(&p, Granularity(g), &f216, &cfg))
            .min_by(|a, b| a.energy.partial_cmp(&b.energy).unwrap())
            .unwrap();
        assert!(
            best_dae.energy < base.energy,
            "DAE ({}) must undercut baseline: {} vs {}",
            best_dae.granularity,
            best_dae.energy,
            base.energy
        );
    }

    #[test]
    fn dae_reduces_energy_for_oversized_depthwise() {
        // When the input tensor exceeds the L1, DAE staging de-duplicates
        // the strided per-channel walks: the best granularity must win.
        let model = tinynn::models::mobilenet_v2();
        let plan = model.plan().unwrap();
        let found = model
            .layers()
            .zip(plan.iter())
            .filter(|(nl, _)| matches!(nl.layer, Layer::Depthwise(_)))
            .map(|(nl, info)| tinyengine::layer_profile(&nl.layer, info))
            .find(|p| p.input_bytes() > 2 * 16 * 1024);
        let p = found.expect("MBV2 has oversized depthwise tensors");
        let cfg = DseConfig::paper();
        let f216 = cfg.modes.hfo_at(Hertz::mhz(216)).copied().unwrap();
        let base = evaluate_point(&p, Granularity(0), &f216, &cfg);
        let best_dae = [2u8, 4, 8, 12, 16]
            .into_iter()
            .map(|g| evaluate_point(&p, Granularity(g), &f216, &cfg))
            .min_by(|a, b| a.energy.partial_cmp(&b.energy).unwrap())
            .unwrap();
        assert!(
            best_dae.energy < base.energy,
            "DAE ({}) must undercut baseline on {}: {} vs {}",
            best_dae.granularity,
            p.name,
            best_dae.energy,
            base.energy
        );
        assert!(
            best_dae.latency_secs < base.latency_secs,
            "de-duplicated walks should also be faster"
        );
    }

    #[test]
    fn dae_switches_scale_with_groups() {
        let cfg = DseConfig::paper();
        let p = profile_of(true);
        let f216 = cfg.modes.hfo_at(Hertz::mhz(216)).copied().unwrap();
        let g2 = evaluate_point(&p, Granularity(2), &f216, &cfg);
        let g16 = evaluate_point(&p, Granularity(16), &f216, &cfg);
        assert!(g2.switches > g16.switches, "finer g must switch more");
        let base = evaluate_point(&p, Granularity(0), &f216, &cfg);
        assert_eq!(base.switches, 0, "baseline never switches");
    }

    #[test]
    fn rest_layers_get_frequency_only() {
        let model = vww_sized(32);
        let plan = model.plan().unwrap();
        let found = model
            .layers()
            .zip(plan.iter())
            .find(|(nl, _)| matches!(nl.layer, Layer::Conv2d(_)))
            .map(|(nl, info)| tinyengine::layer_profile(&nl.layer, info));
        let rest = found.unwrap();
        let cfg = DseConfig::paper();
        let points = explore_layer(&rest, &cfg);
        assert_eq!(points.len(), cfg.modes.hfo.len());
        assert!(points.iter().all(|p| p.granularity.is_baseline()));
    }

    #[test]
    fn dae_layers_get_full_grid() {
        let cfg = DseConfig::paper();
        let p = profile_of(true);
        let points = explore_layer(&p, &cfg);
        assert_eq!(points.len(), cfg.modes.hfo.len() * cfg.granularities.len());
    }

    #[test]
    fn all_points_positive() {
        let cfg = DseConfig::paper();
        for p in [profile_of(true), profile_of(false)] {
            for pt in explore_layer(&p, &cfg) {
                assert!(pt.latency_secs > 0.0);
                assert!(pt.energy.as_f64() > 0.0);
            }
        }
    }
}
