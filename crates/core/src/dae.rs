//! The Decoupled Access-Execute transform (paper Sec. III-A).
//!
//! DAE restructures depthwise and pointwise convolution kernels so that
//! *memory accesses* (staging `g` channel planes / image columns into the
//! cache) and *CPU execution* (convolving the staged buffers) become
//! separate code regions. Two views are provided:
//!
//! * [`dae_segments`] — the scheduling view: the segment list a DAE-enabled
//!   layer executes, alternating memory-class and compute-class segments.
//!   This is what the DSE and the deployment executor price and run;
//! * [`dae_forward_depthwise`] / [`dae_forward_pointwise`] — the functional
//!   view: actually computing the layer with the restructured loop order,
//!   used to prove the transform is bit-exact ("DAE-enabled CNNs entail no
//!   accuracy drops").

use mcu_sim::cache::CacheConfig;
use mcu_sim::{MemoryTraffic, OpCounts, Segment};
use tinyengine::KernelProfile;
use tinynn::layers::{DepthwiseConv2d, PointwiseConv2d};
use tinynn::{NnError, Tensor};

/// A decoupling granularity: how many units (channels / columns) are
/// buffered before computing. `0` means "no DAE" — the unmodified baseline
/// kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Granularity(pub u8);

impl Granularity {
    /// The paper's explored set: `g ∈ {0, 2, 4, 8, 12, 16}`.
    pub const PAPER_SET: [Granularity; 6] = [
        Granularity(0),
        Granularity(2),
        Granularity(4),
        Granularity(8),
        Granularity(12),
        Granularity(16),
    ];

    /// Whether this is the no-DAE baseline.
    pub const fn is_baseline(self) -> bool {
        self.0 == 0
    }

    /// The batch size as a count (baseline maps to "all at once in the
    /// interleaved order", so this is only meaningful when `!is_baseline`).
    pub const fn batch(self) -> u64 {
        self.0 as u64
    }
}

impl std::fmt::Display for Granularity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "g={}", self.0)
    }
}

/// Per-line staging overhead: the buffer-staging loop issues roughly one
/// load, one address update and a store-to-buffer per cache line moved.
fn staging_ops(traffic: &MemoryTraffic) -> OpCounts {
    let lines = traffic.sram_line_fills + traffic.flash_line_fills;
    OpCounts {
        alu: lines * 2,
        load: lines,
        store: lines,
        branch: lines / 4,
        mac: 0,
    }
}

/// Lowers one DAE-enabled layer into its segment schedule.
///
/// For `g = 0` this returns the single interleaved baseline segment
/// (identical to what `tinyengine` lowers). For `g > 0` the layer becomes
/// `ceil(units / g)` pairs of segments:
///
/// * a **memory segment** staging `g` units (plus the weights, once, in the
///   first group), classed [`mcu_sim::SegmentClass::Memory`];
/// * a **compute segment** with the per-unit compute ops, classed
///   [`mcu_sim::SegmentClass::Compute`]. If the group working set exceeds
///   the cache, the spilled fraction of the staged lines is re-fetched here
///   — the "cache misses skyrocket" regime of oversized granularities.
pub fn dae_segments(profile: &KernelProfile, g: Granularity, cache: &CacheConfig) -> Vec<Segment> {
    if g.is_baseline() || profile.units <= 1 || !profile.dae_capable() {
        return vec![Segment::other(
            profile.name.clone(),
            profile.baseline_ops(),
            profile.baseline_traffic(cache),
        )];
    }

    let batch = g.batch();
    let groups = profile.units.div_ceil(batch);
    let mut segments = Vec::with_capacity(2 * groups as usize);
    let mut remaining = profile.units;
    let mut first = true;
    while remaining > 0 {
        let n = remaining.min(batch);
        // Memory-bound segment: stage n unit buffers (+ weights once).
        let stage = profile.dae_stage_traffic(n, first, cache);
        segments.push(Segment::memory(
            format!("{}/mem", profile.name),
            staging_ops(&stage),
            stage,
        ));
        // Compute-bound segment: convolve the staged buffers (one weight
        // walk per group, spills when the batch overflows the cache).
        segments.push(Segment::compute(
            format!("{}/comp", profile.name),
            profile.dae_compute_ops(n),
            profile.dae_compute_traffic(n, groups, cache),
        ));
        remaining -= n;
        first = false;
    }
    segments
}

/// Executes a depthwise convolution with DAE loop order: channels are
/// processed in groups of `g` (staged, then convolved), exactly Listing 1
/// of the paper. Bit-exact with [`DepthwiseConv2d::forward`].
///
/// # Errors
///
/// Propagates layer shape errors.
pub fn dae_forward_depthwise(
    layer: &DepthwiseConv2d,
    input: &Tensor,
    g: Granularity,
) -> Result<Tensor, NnError> {
    if g.is_baseline() {
        return layer.forward(input);
    }
    let out_shape = layer.output_shape(input.shape())?;
    let mut out = Tensor::zeros(out_shape);
    let batch = g.batch() as usize;
    let mut channel = 0usize;
    while channel < layer.channels {
        let end = (channel + batch).min(layer.channels);
        // Memory-bound region: on hardware this loads channels
        // `channel..end` into the cache-resident buffers (ClockSwitchHSE
        // happens here). The simulation's functional view has no staging to
        // do — the data is already addressable — so the region is the loop
        // boundary itself.
        // Compute-bound region: convolve each buffered channel
        // (ClockSwitchPLL happens here).
        for c in channel..end {
            layer.convolve_channel(input, &mut out, c)?;
        }
        channel = end;
    }
    Ok(out)
}

/// Executes a pointwise convolution with DAE loop order: image columns are
/// processed in groups of `g`. Bit-exact with
/// [`PointwiseConv2d::forward`].
///
/// # Errors
///
/// Propagates layer shape errors.
pub fn dae_forward_pointwise(
    layer: &PointwiseConv2d,
    input: &Tensor,
    g: Granularity,
) -> Result<Tensor, NnError> {
    if g.is_baseline() {
        return layer.forward(input);
    }
    let out_shape = layer.output_shape(input.shape())?;
    let mut out = Tensor::zeros(out_shape);
    let cols = out_shape.h * out_shape.w;
    let batch = g.batch() as usize;
    let mut col = 0usize;
    while col < cols {
        let end = (col + batch).min(cols);
        for i in col..end {
            let (y, x) = (i / out_shape.w, i % out_shape.w);
            layer.compute_column(input, &mut out, y, x)?;
        }
        col = end;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcu_sim::SegmentClass;
    use tinynn::models::vww_sized;
    use tinynn::quant::QuantParams;
    use tinynn::{Layer, Shape};

    fn dw_profile() -> KernelProfile {
        let model = vww_sized(32);
        let plan = model.plan().unwrap();
        let found = model
            .layers()
            .zip(plan.iter())
            .find(|(nl, _)| matches!(nl.layer, Layer::Depthwise(_)))
            .map(|(nl, info)| tinyengine::layer_profile(&nl.layer, info));
        found.unwrap()
    }

    #[test]
    fn baseline_is_single_segment() {
        let cache = CacheConfig::stm32f767();
        let segs = dae_segments(&dw_profile(), Granularity(0), &cache);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].class, SegmentClass::Other);
    }

    #[test]
    fn dae_alternates_memory_and_compute() {
        let cache = CacheConfig::stm32f767();
        let p = dw_profile();
        let segs = dae_segments(&p, Granularity(4), &cache);
        let groups = p.units.div_ceil(4);
        assert_eq!(segs.len(), (2 * groups) as usize);
        for (i, s) in segs.iter().enumerate() {
            let expected = if i % 2 == 0 {
                SegmentClass::Memory
            } else {
                SegmentClass::Compute
            };
            assert_eq!(s.class, expected, "segment {i}");
        }
    }

    #[test]
    fn dae_preserves_mac_work() {
        // The transform re-orders work; MAC counts must be conserved for
        // every granularity (line traffic legitimately *shrinks* because
        // staging de-duplicates the strided walks).
        let cache = CacheConfig::stm32f767();
        let p = dw_profile();
        let base = dae_segments(&p, Granularity(0), &cache);
        let base_macs: u64 = base.iter().map(|s| s.ops.mac).sum();
        for g in [2u8, 4, 8, 12, 16] {
            let segs = dae_segments(&p, Granularity(g), &cache);
            let macs: u64 = segs.iter().map(|s| s.ops.mac).sum();
            assert_eq!(macs, base_macs, "MACs not conserved at g={g}");
        }
    }

    #[test]
    fn weights_staged_once() {
        let cache = CacheConfig::stm32f767();
        let p = dw_profile();
        let segs = dae_segments(&p, Granularity(4), &cache);
        let flash_total: u64 = segs.iter().map(|s| s.traffic.flash_line_fills).sum();
        assert_eq!(
            flash_total,
            tinyengine::cost::lines(p.weight_bytes),
            "weights must be fetched exactly once"
        );
    }

    #[test]
    fn functional_depthwise_equivalence() {
        let q = QuantParams::from_scales(0.5, 0.03, 2.0);
        let weights = tinynn::models::synth::weights("dae-dw-test", 8 * 9);
        let bias = tinynn::models::synth::biases("dae-dw-test", 8);
        let dw = DepthwiseConv2d::new(3, 1, 1, 8, weights, bias, q).unwrap();
        let input = Tensor::from_fn(Shape::new(10, 10, 8), |y, x, c| {
            (((y * 31 + x * 17 + c * 5) % 240) as i32 - 120) as i8
        });
        let reference = dw.forward(&input).unwrap();
        for g in Granularity::PAPER_SET {
            let out = dae_forward_depthwise(&dw, &input, g).unwrap();
            assert_eq!(out, reference, "depthwise DAE diverged at {g}");
        }
    }

    #[test]
    fn functional_pointwise_equivalence() {
        let q = QuantParams::from_scales(0.5, 0.02, 3.0);
        let weights = tinynn::models::synth::weights("dae-pw-test", 12 * 6);
        let bias = tinynn::models::synth::biases("dae-pw-test", 12);
        let pw = PointwiseConv2d::new(6, 12, weights, bias, q).unwrap();
        let input = Tensor::from_fn(Shape::new(7, 9, 6), |y, x, c| {
            (((y * 13 + x * 29 + c * 3) % 250) as i32 - 125) as i8
        });
        let reference = pw.forward(&input).unwrap();
        for g in Granularity::PAPER_SET {
            let out = dae_forward_pointwise(&pw, &input, g).unwrap();
            assert_eq!(out, reference, "pointwise DAE diverged at {g}");
        }
    }

    #[test]
    fn oversized_granularity_spills() {
        // A layer whose per-unit buffers are large: staging 16 at once must
        // overflow the 16 KB cache and generate spill traffic.
        let p = KernelProfile {
            name: "big-dw".into(),
            kind: tinynn::LayerKind::Depthwise,
            geometry: tinyengine::cost::UnitGeometry::DepthwiseChannels {
                tensor_lines: tinyengine::cost::lines(32 * 4 * 1024),
                tensor_bytes: 32 * 4 * 1024,
            },
            units: 32,
            unit_input_bytes: 4 * 1024, // 64x64 channel plane
            unit_output_bytes: 4 * 1024,
            unit_ops: OpCounts {
                mac: 9 * 4096,
                load: 9 * 4096,
                ..OpCounts::ZERO
            },
            weight_walk_ops: OpCounts::ZERO,
            baseline_unroll: 1,
            weight_bytes: 9 * 32,
        };
        let cache = CacheConfig::stm32f767();
        let small = dae_segments(&p, Granularity(2), &cache);
        let large = dae_segments(&p, Granularity(16), &cache);
        let spill = |segs: &[Segment]| -> u64 {
            segs.iter()
                .filter(|s| s.class == SegmentClass::Compute)
                .map(|s| s.traffic.sram_line_fills)
                .sum()
        };
        // Writeback traffic is identical; the delta is pure spill.
        assert!(
            spill(&large) > spill(&small),
            "16-unit batches must thrash: {} vs {}",
            spill(&large),
            spill(&small)
        );
    }

    #[test]
    fn granularity_display() {
        assert_eq!(Granularity(8).to_string(), "g=8");
        assert!(Granularity(0).is_baseline());
        assert!(!Granularity(2).is_baseline());
    }
}
