//! Error type of the DAE-DVFS pipeline.

use std::error::Error;
use std::fmt;

use crate::mckp::MckpError;
use tinyengine::EngineError;

/// Errors produced by the end-to-end methodology.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DaeDvfsError {
    /// Lowering or baseline-execution error.
    Engine(EngineError),
    /// The QoS constraint cannot be met (or an MCKP class was empty).
    Qos(MckpError),
    /// The model has no layers: there is nothing to schedule or deploy.
    EmptyModel {
        /// Name of the offending model.
        model: String,
    },
}

impl fmt::Display for DaeDvfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DaeDvfsError::Engine(e) => write!(f, "lowering failed: {e}"),
            DaeDvfsError::Qos(e) => write!(f, "optimization failed: {e}"),
            DaeDvfsError::EmptyModel { model } => {
                write!(f, "model {model:?} has no layers to plan")
            }
        }
    }
}

impl Error for DaeDvfsError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DaeDvfsError::Engine(e) => Some(e),
            DaeDvfsError::Qos(e) => Some(e),
            DaeDvfsError::EmptyModel { .. } => None,
        }
    }
}

impl From<EngineError> for DaeDvfsError {
    fn from(e: EngineError) -> Self {
        DaeDvfsError::Engine(e)
    }
}

impl From<MckpError> for DaeDvfsError {
    fn from(e: MckpError) -> Self {
        DaeDvfsError::Qos(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn implements_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<DaeDvfsError>();
    }

    #[test]
    fn displays_inner_error() {
        let e = DaeDvfsError::Qos(MckpError::Infeasible {
            min_time_secs: 2.0,
            budget_secs: 1.0,
        });
        assert!(e.to_string().contains("infeasible"));
        assert!(e.source().is_some());
    }
}
