//! Error type of the DAE-DVFS pipeline.

use std::error::Error;
use std::fmt;

use crate::mckp::MckpError;
use tinyengine::EngineError;

/// Errors produced by the end-to-end methodology.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DaeDvfsError {
    /// Lowering or baseline-execution error.
    Engine(EngineError),
    /// The QoS constraint cannot be met (or an MCKP class was empty).
    Qos(MckpError),
    /// The model has no layers: there is nothing to schedule or deploy.
    EmptyModel {
        /// Name of the offending model.
        model: String,
    },
    /// A planning request (or configuration) carries a degenerate value —
    /// NaN, non-positive, or zero where a positive quantity is required.
    InvalidRequest {
        /// The offending field (e.g. `"qos_secs"`, `"dp_resolution"`).
        field: &'static str,
        /// Why the value was rejected, including the value itself.
        reason: String,
    },
    /// A [`crate::PlanArtifact`] does not match the planner it is being
    /// imported into (schema version, target, model or configuration
    /// fingerprint disagree).
    ArtifactMismatch {
        /// The disagreeing field.
        field: &'static str,
        /// What the importing planner expected.
        expected: String,
        /// What the artifact carries.
        found: String,
    },
    /// A plan artifact could not be decoded (malformed JSON or values
    /// outside the schema).
    ArtifactParse {
        /// What went wrong.
        reason: String,
    },
}

impl fmt::Display for DaeDvfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DaeDvfsError::Engine(e) => write!(f, "lowering failed: {e}"),
            DaeDvfsError::Qos(e) => write!(f, "optimization failed: {e}"),
            DaeDvfsError::EmptyModel { model } => {
                write!(f, "model {model:?} has no layers to plan")
            }
            DaeDvfsError::InvalidRequest { field, reason } => {
                write!(f, "invalid request: {field} {reason}")
            }
            DaeDvfsError::ArtifactMismatch {
                field,
                expected,
                found,
            } => {
                write!(
                    f,
                    "plan artifact mismatch on {field}: expected {expected}, found {found}"
                )
            }
            DaeDvfsError::ArtifactParse { reason } => {
                write!(f, "plan artifact parse error: {reason}")
            }
        }
    }
}

impl Error for DaeDvfsError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DaeDvfsError::Engine(e) => Some(e),
            DaeDvfsError::Qos(e) => Some(e),
            DaeDvfsError::EmptyModel { .. }
            | DaeDvfsError::InvalidRequest { .. }
            | DaeDvfsError::ArtifactMismatch { .. }
            | DaeDvfsError::ArtifactParse { .. } => None,
        }
    }
}

impl From<EngineError> for DaeDvfsError {
    fn from(e: EngineError) -> Self {
        DaeDvfsError::Engine(e)
    }
}

impl From<MckpError> for DaeDvfsError {
    fn from(e: MckpError) -> Self {
        DaeDvfsError::Qos(e)
    }
}

/// Errors of the concurrent plan-serving front end
/// ([`crate::service::PlanService`]): admission-control rejections are
/// distinct, typed variants so callers can tell backpressure from
/// planning failures and react (shed load, retry later, re-register).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServiceError {
    /// The bounded submission queue is full — backpressure. The request
    /// was **not** admitted; retry later or shed load.
    QueueFull {
        /// The queue's configured capacity.
        capacity: usize,
    },
    /// The service has no running workers (submitted outside
    /// [`crate::service::PlanService::run`], or after the drain began).
    NotServing,
    /// The planner key does not belong to this service.
    UnknownPlanner {
        /// The offending key's index.
        key: usize,
    },
    /// The request itself failed to plan (degenerate knobs, infeasible
    /// QoS, …) — the planner-level error, verbatim.
    Plan(DaeDvfsError),
    /// A worker thread panicked while solving the batch holding this
    /// request; the panic propagates out of
    /// [`crate::service::PlanService::run`], and blocked waiters receive
    /// this instead of hanging.
    WorkerPanicked,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::QueueFull { capacity } => {
                write!(f, "submission queue full (capacity {capacity})")
            }
            ServiceError::NotServing => write!(f, "service has no running workers"),
            ServiceError::UnknownPlanner { key } => {
                write!(f, "planner key {key} is not registered with this service")
            }
            ServiceError::Plan(e) => write!(f, "planning failed: {e}"),
            ServiceError::WorkerPanicked => {
                write!(f, "a worker thread panicked while solving this request")
            }
        }
    }
}

impl Error for ServiceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServiceError::Plan(e) => Some(e),
            ServiceError::QueueFull { .. }
            | ServiceError::NotServing
            | ServiceError::UnknownPlanner { .. }
            | ServiceError::WorkerPanicked => None,
        }
    }
}

impl From<DaeDvfsError> for ServiceError {
    fn from(e: DaeDvfsError) -> Self {
        ServiceError::Plan(e)
    }
}

/// Errors of the on-disk plan registry
/// ([`crate::registry::PlanRegistry`]). Only *infrastructure* failures
/// surface here — an undecodable or mismatched artifact file is not an
/// error but a quarantine event (the file is moved aside and counted; see
/// the registry module docs), because a corrupt cold-tier entry must
/// never take the serving path down.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RegistryError {
    /// A filesystem operation on the registry directory failed.
    Io {
        /// The failing operation (e.g. `"create-dir"`, `"rename"`).
        op: &'static str,
        /// The path the operation targeted.
        path: String,
        /// The underlying I/O error, rendered.
        reason: String,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::Io { op, path, reason } => {
                write!(f, "registry {op} failed for {path}: {reason}")
            }
        }
    }
}

impl Error for RegistryError {}

/// Errors of the HTTP plan server ([`crate::server::PlanServer`]).
/// Per-connection failures (malformed requests, timeouts, client drops)
/// are wire-level events answered with HTTP status codes or a closed
/// socket, never surfaced here; only failures that prevent the server
/// from serving at all are typed.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServerError {
    /// The listener could not be set up on the configured address
    /// (bind, local-address query, or non-blocking mode).
    Bind {
        /// The configured bind address.
        addr: String,
        /// The underlying I/O error, rendered.
        reason: String,
    },
    /// The request-trace JSONL file could not be opened
    /// ([`crate::server::PlanServer::trace_to`]). Only *setup* failures
    /// are typed: once recording, a failed trace append is advisory and
    /// never takes the serving path down.
    Trace {
        /// The configured trace file path.
        path: String,
        /// The underlying I/O error, rendered.
        reason: String,
    },
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Bind { addr, reason } => {
                write!(f, "server failed to listen on {addr}: {reason}")
            }
            ServerError::Trace { path, reason } => {
                write!(f, "server failed to open trace file {path}: {reason}")
            }
        }
    }
}

impl Error for ServerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn implements_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<DaeDvfsError>();
    }

    #[test]
    fn new_variants_display_their_context() {
        let invalid = DaeDvfsError::InvalidRequest {
            field: "qos_secs",
            reason: "must be positive, got -1".into(),
        };
        assert!(invalid.to_string().contains("qos_secs"));
        assert!(invalid.source().is_none());

        let mismatch = DaeDvfsError::ArtifactMismatch {
            field: "target",
            expected: "stm32f767".into(),
            found: "generic".into(),
        };
        let s = mismatch.to_string();
        assert!(s.contains("target") && s.contains("stm32f767") && s.contains("generic"));

        let parse = DaeDvfsError::ArtifactParse {
            reason: "unexpected end of input".into(),
        };
        assert!(parse.to_string().contains("unexpected end"));
    }

    #[test]
    fn service_error_chains_to_plan_errors() {
        let full = ServiceError::QueueFull { capacity: 64 };
        assert!(full.to_string().contains("64"));
        assert!(full.source().is_none());

        let plan: ServiceError = DaeDvfsError::EmptyModel { model: "m".into() }.into();
        assert!(plan.to_string().contains("planning failed"));
        assert!(plan.source().is_some());

        assert!(ServiceError::NotServing.to_string().contains("workers"));
        assert!(ServiceError::UnknownPlanner { key: 3 }
            .to_string()
            .contains('3'));
    }

    #[test]
    fn server_errors_name_their_target() {
        let bind = ServerError::Bind {
            addr: "127.0.0.1:80".into(),
            reason: "permission denied".into(),
        };
        assert!(bind.to_string().contains("127.0.0.1:80"));
        let trace = ServerError::Trace {
            path: "/tmp/trace.jsonl".into(),
            reason: "read-only file system".into(),
        };
        let s = trace.to_string();
        assert!(s.contains("/tmp/trace.jsonl") && s.contains("read-only"));
    }

    #[test]
    fn displays_inner_error() {
        let e = DaeDvfsError::Qos(MckpError::Infeasible {
            min_time_secs: 2.0,
            budget_secs: 1.0,
        });
        assert!(e.to_string().contains("infeasible"));
        assert!(e.source().is_some());
    }
}
