//! The target platform abstraction: everything board-specific behind one
//! trait.
//!
//! The DATE'24 methodology — DAE split → per-layer DSE → Pareto → MCKP —
//! is board-agnostic; only the *numbers* it prices against belong to a
//! particular MCU: the operating-mode ladder (LFO + HFO points), the
//! switch-cost model, the cache geometry and memory wait-state table the
//! segments are priced with, the power coefficients, and how the baseline
//! engine executes. [`Target`] packages exactly those numbers:
//!
//! * [`Stm32F767Target`] is the paper's simulated STM32F767ZI Nucleo —
//!   the first implementation, bit-identical to the historical
//!   `DseConfig`-driven path ([`crate::Planner::new`] is a thin wrapper
//!   over [`crate::Planner::for_target`] with this target);
//! * [`GenericCortexMTarget`] is a fully parameterized Cortex-M
//!   description (clock ladder, wait-state table, power coefficients,
//!   cache geometry, CPU timing) built on the existing `mcu-sim` /
//!   `stm32-power` / `stm32-rcc` primitives. Configured with the F767's
//!   parameters it reproduces the F767 Pareto fronts exactly (pinned by
//!   `tests/target_api.rs`), which is what makes the abstraction real
//!   rather than a rename.
//!
//! A target's [`Target::id`] is the stable string that ends up in
//! serialized [`crate::PlanArtifact`]s, so plans optimized on one machine
//! can be validated before being deployed on another.

use std::fmt;

use mcu_sim::cache::CacheConfig;
use mcu_sim::{CpuModel, Machine, MemoryTiming};
use stm32_power::PowerModel;
use stm32_rcc::{SwitchCostModel, SysclkConfig};
use tinyengine::{LoweredModel, TinyEngine};
use tinynn::Model;

use crate::dae::Granularity;
use crate::dse::DseConfig;
use crate::error::DaeDvfsError;
use crate::modes::OperatingModes;

/// A deployment platform: the complete board-specific parameter set the
/// planning stack prices against.
///
/// The provided methods derive everything composite — the lowered
/// [`DseConfig`], the baseline engine, the machines replays run on — from
/// the granular getters, so a new board only describes its hardware.
/// Implementations must be deterministic: two calls to any getter must
/// return equal values, because compiled schedules and plan-artifact
/// fingerprints assume the description is immutable.
pub trait Target: fmt::Debug + Send + Sync {
    /// Stable identifier of the platform (e.g. `"stm32f767"`), recorded in
    /// plan artifacts and used to reject cross-target imports.
    fn id(&self) -> &str;

    /// The operating-mode universe: the fixed LFO plus the HFO ladder.
    fn modes(&self) -> OperatingModes;

    /// Decoupling granularities explored for DAE-capable layers.
    fn granularities(&self) -> Vec<Granularity>;

    /// L1 data-cache geometry the DAE lowering stages against.
    fn cache(&self) -> CacheConfig;

    /// Clock-switch cost model (PLL re-lock and mux-toggle times).
    fn switch_model(&self) -> SwitchCostModel;

    /// Board power model.
    fn power(&self) -> PowerModel;

    /// CPU timing model.
    fn cpu(&self) -> CpuModel;

    /// Memory-system timing, including the flash wait-state ladder.
    fn memory(&self) -> MemoryTiming;

    /// Default DP time-axis resolution for this platform.
    fn dp_resolution(&self) -> usize {
        DseConfig::DEFAULT_DP_RESOLUTION
    }

    /// Assembles the lowered exploration configuration every pricing and
    /// solver routine consumes.
    fn dse_config(&self) -> DseConfig {
        DseConfig {
            modes: self.modes(),
            granularities: self.granularities(),
            cache: self.cache(),
            switch_model: self.switch_model(),
            power: self.power(),
            cpu: self.cpu(),
            memory: self.memory(),
            dp_resolution: self.dp_resolution(),
        }
    }

    /// Lowers `model` into the platform's baseline (whole-layer,
    /// fixed-clock) execution, the reference the QoS windows are derived
    /// from.
    ///
    /// The default runs the TinyEngine baseline at the platform's fastest
    /// HFO point with the platform cache — on the F767 that is exactly the
    /// paper's 216 MHz TinyEngine setup.
    ///
    /// # Errors
    ///
    /// Propagates lowering errors (shape mismatches, SRAM budget).
    fn compile_baseline(&self, model: &Model) -> Result<LoweredModel, DaeDvfsError> {
        let modes = self.modes();
        TinyEngine::new()
            .with_clock(SysclkConfig::Pll(*modes.fastest_hfo()))
            .with_cache(self.cache())
            .compile(model)
            .map_err(DaeDvfsError::Engine)
    }

    /// Builds the machine a baseline replay executes on, starting at
    /// `clock`.
    ///
    /// The default prices baselines on the *same* substrate the DSE uses —
    /// this target's CPU, memory, switch-cost and power models — so QoS
    /// windows and baseline comparisons stay consistent with the plans
    /// measured against them. With the stock F767 models this is
    /// numerically identical to the plain `mcu-sim` machine the historical
    /// path used.
    fn baseline_machine(&self, clock: SysclkConfig) -> Machine {
        Machine::new(clock)
            .with_cpu(self.cpu())
            .with_memory(self.memory())
            .with_switch_model(self.switch_model())
            .with_power(self.power())
    }
}

/// The paper's platform: the simulated STM32F767ZI Nucleo board.
///
/// Wraps a [`DseConfig`] verbatim, so ablated configurations (custom
/// ladders, switch costs, cache geometries) remain expressible:
/// [`crate::Planner::new`] forwards any `DseConfig` through
/// [`Stm32F767Target::with_config`] unchanged and is therefore
/// bit-identical to the pre-target pipeline.
#[derive(Debug, Clone)]
pub struct Stm32F767Target {
    config: DseConfig,
}

impl Stm32F767Target {
    /// The platform exactly as evaluated in the paper
    /// ([`DseConfig::paper`]).
    pub fn paper() -> Self {
        Stm32F767Target {
            config: DseConfig::paper(),
        }
    }

    /// An F767 carrying an explicit (possibly ablated) configuration.
    pub fn with_config(config: DseConfig) -> Self {
        Stm32F767Target { config }
    }
}

impl Default for Stm32F767Target {
    fn default() -> Self {
        Stm32F767Target::paper()
    }
}

impl Target for Stm32F767Target {
    fn id(&self) -> &str {
        "stm32f767"
    }

    fn modes(&self) -> OperatingModes {
        self.config.modes.clone()
    }

    fn granularities(&self) -> Vec<Granularity> {
        self.config.granularities.clone()
    }

    fn cache(&self) -> CacheConfig {
        self.config.cache
    }

    fn switch_model(&self) -> SwitchCostModel {
        self.config.switch_model
    }

    fn power(&self) -> PowerModel {
        self.config.power.clone()
    }

    fn cpu(&self) -> CpuModel {
        self.config.cpu
    }

    fn memory(&self) -> MemoryTiming {
        self.config.memory
    }

    fn dp_resolution(&self) -> usize {
        self.config.dp_resolution
    }

    fn dse_config(&self) -> DseConfig {
        self.config.clone()
    }

    fn compile_baseline(&self, model: &Model) -> Result<LoweredModel, DaeDvfsError> {
        // The paper's baseline is TinyEngine at its stock 216 MHz clock and
        // F767 cache, independent of any ladder ablation in `config` — this
        // is what the historical `Planner::baseline` did.
        TinyEngine::new()
            .compile(model)
            .map_err(DaeDvfsError::Engine)
    }
}

/// A fully parameterized Cortex-M platform description.
///
/// Starts from the F767's parameters ([`GenericCortexMTarget::new`]) and
/// lets every board knob be replaced builder-style: the clock ladder
/// (via [`OperatingModes::custom`] / [`OperatingModes::from_sysclks`]),
/// the flash wait-state table (via
/// [`MemoryTiming::with_flash_ladder`]), the power coefficients (via the
/// [`PowerModel`] builders), cache geometry, CPU timing, switch costs and
/// granularity set.
///
/// # Examples
///
/// ```
/// use dae_dvfs::{GenericCortexMTarget, OperatingModes, Planner, Target};
/// use stm32_rcc::Hertz;
/// use tinynn::models::vww_sized;
///
/// # fn main() -> Result<(), dae_dvfs::DaeDvfsError> {
/// let modes = OperatingModes::from_sysclks(
///     Hertz::mhz(25),
///     Hertz::mhz(25),
///     &[Hertz::mhz(75), Hertz::mhz(100), Hertz::mhz(150)],
/// )
/// .expect("ladder reachable");
/// let board = GenericCortexMTarget::new("cortex-m-custom").with_modes(modes);
/// let planner = Planner::for_target(board, &vww_sized(32))?;
/// assert_eq!(planner.target().id(), "cortex-m-custom");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GenericCortexMTarget {
    id: String,
    modes: OperatingModes,
    granularities: Vec<Granularity>,
    cache: CacheConfig,
    switch_model: SwitchCostModel,
    power: PowerModel,
    cpu: CpuModel,
    memory: MemoryTiming,
    dp_resolution: usize,
}

impl GenericCortexMTarget {
    /// A generic target initialized with the F767's parameters; customize
    /// with the `with_*` builders.
    pub fn new(id: impl Into<String>) -> Self {
        GenericCortexMTarget {
            id: id.into(),
            modes: OperatingModes::paper(),
            granularities: Granularity::PAPER_SET.to_vec(),
            cache: CacheConfig::stm32f767(),
            switch_model: SwitchCostModel::default(),
            power: PowerModel::nucleo_f767zi(),
            cpu: CpuModel::cortex_m7(),
            memory: MemoryTiming::stm32f767(),
            dp_resolution: DseConfig::DEFAULT_DP_RESOLUTION,
        }
    }

    /// The F767 expressed through the generic description — used by the
    /// cross-target parity tests to prove the abstraction does not bend
    /// the numbers.
    pub fn f767() -> Self {
        GenericCortexMTarget::new("generic-f767")
    }

    /// Replaces the operating-mode universe (builder style).
    pub fn with_modes(mut self, modes: OperatingModes) -> Self {
        self.modes = modes;
        self
    }

    /// Replaces the explored granularity set (builder style).
    pub fn with_granularities(mut self, granularities: Vec<Granularity>) -> Self {
        self.granularities = granularities;
        self
    }

    /// Replaces the cache geometry (builder style).
    pub fn with_cache(mut self, cache: CacheConfig) -> Self {
        self.cache = cache;
        self
    }

    /// Replaces the switch-cost model (builder style).
    pub fn with_switch_model(mut self, switch_model: SwitchCostModel) -> Self {
        self.switch_model = switch_model;
        self
    }

    /// Replaces the power model (builder style).
    pub fn with_power(mut self, power: PowerModel) -> Self {
        self.power = power;
        self
    }

    /// Replaces the CPU timing model (builder style).
    pub fn with_cpu(mut self, cpu: CpuModel) -> Self {
        self.cpu = cpu;
        self
    }

    /// Replaces the memory-system timing, including the flash wait-state
    /// table (builder style).
    pub fn with_memory(mut self, memory: MemoryTiming) -> Self {
        self.memory = memory;
        self
    }

    /// Replaces the default DP resolution (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `resolution` is zero.
    pub fn with_dp_resolution(mut self, resolution: usize) -> Self {
        assert!(resolution > 0, "resolution must be non-zero");
        self.dp_resolution = resolution;
        self
    }
}

impl Target for GenericCortexMTarget {
    fn id(&self) -> &str {
        &self.id
    }

    fn modes(&self) -> OperatingModes {
        self.modes.clone()
    }

    fn granularities(&self) -> Vec<Granularity> {
        self.granularities.clone()
    }

    fn cache(&self) -> CacheConfig {
        self.cache
    }

    fn switch_model(&self) -> SwitchCostModel {
        self.switch_model
    }

    fn power(&self) -> PowerModel {
        self.power.clone()
    }

    fn cpu(&self) -> CpuModel {
        self.cpu
    }

    fn memory(&self) -> MemoryTiming {
        self.memory
    }

    fn dp_resolution(&self) -> usize {
        self.dp_resolution
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm32_rcc::Hertz;

    #[test]
    fn f767_target_reproduces_paper_config() {
        let target = Stm32F767Target::paper();
        let via_target = target.dse_config();
        let direct = DseConfig::paper();
        assert_eq!(via_target.modes, direct.modes);
        assert_eq!(via_target.granularities, direct.granularities);
        assert_eq!(via_target.cache, direct.cache);
        assert_eq!(via_target.switch_model, direct.switch_model);
        assert_eq!(via_target.power, direct.power);
        assert_eq!(via_target.cpu, direct.cpu);
        assert_eq!(via_target.memory, direct.memory);
        assert_eq!(via_target.dp_resolution, direct.dp_resolution);
        assert_eq!(target.id(), "stm32f767");
    }

    #[test]
    fn f767_with_config_passes_ablations_through() {
        let ablated = DseConfig::paper().with_dp_resolution(500);
        let target = Stm32F767Target::with_config(ablated.clone());
        assert_eq!(target.dse_config().dp_resolution, 500);
        assert_eq!(target.dp_resolution(), 500);
    }

    #[test]
    fn generic_f767_matches_native_f767_config() {
        let generic = GenericCortexMTarget::f767().dse_config();
        let native = Stm32F767Target::paper().dse_config();
        assert_eq!(generic.modes, native.modes);
        assert_eq!(generic.granularities, native.granularities);
        assert_eq!(generic.cache, native.cache);
        assert_eq!(generic.switch_model, native.switch_model);
        assert_eq!(generic.power, native.power);
        assert_eq!(generic.cpu, native.cpu);
        assert_eq!(generic.memory, native.memory);
    }

    #[test]
    fn generic_builders_replace_every_knob() {
        let modes = OperatingModes::fig4();
        let cache = CacheConfig {
            size_bytes: 8 * 1024,
            line_bytes: 32,
            ways: 2,
        };
        let target = GenericCortexMTarget::new("custom")
            .with_modes(modes.clone())
            .with_granularities(vec![Granularity(0), Granularity(4)])
            .with_cache(cache)
            .with_switch_model(SwitchCostModel::new(300e-6, 2e-6))
            .with_power(PowerModel::nucleo_f767zi().with_core_w_per_hz(0.5e-9))
            .with_cpu(CpuModel::cortex_m7())
            .with_memory(
                MemoryTiming::stm32f767()
                    .with_flash_ladder(stm32_rcc::WaitStateLadder::new(Hertz::mhz(24), 9)),
            )
            .with_dp_resolution(1234);
        let cfg = target.dse_config();
        assert_eq!(cfg.modes, modes);
        assert_eq!(cfg.granularities, vec![Granularity(0), Granularity(4)]);
        assert_eq!(cfg.cache, cache);
        assert_eq!(cfg.switch_model, SwitchCostModel::new(300e-6, 2e-6));
        assert_eq!(cfg.memory.flash_ladder.max_wait_states, 9);
        assert_eq!(cfg.dp_resolution, 1234);
        assert_eq!(target.id(), "custom");
    }

    #[test]
    fn generic_baseline_runs_at_own_fastest_hfo() {
        let modes = OperatingModes::fig4();
        let fastest = *modes.fastest_hfo();
        let target = GenericCortexMTarget::new("slow-board").with_modes(modes);
        let lowered = target
            .compile_baseline(&tinynn::models::vww_sized(32))
            .expect("baseline lowers");
        assert_eq!(lowered.clock(), &SysclkConfig::Pll(fastest));
    }

    #[test]
    fn f767_baseline_matches_tinyengine_stock() {
        let model = tinynn::models::vww_sized(32);
        let via_target = Stm32F767Target::paper()
            .compile_baseline(&model)
            .expect("lowers");
        let stock = TinyEngine::new().compile(&model).expect("lowers");
        assert_eq!(via_target.clock(), stock.clock());
        assert_eq!(via_target.run(), stock.run());
    }
}
