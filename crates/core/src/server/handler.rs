//! Request routing and the [`ServiceError`] → HTTP status mapping.
//!
//! The handler is a pure function from a parsed [`Request`] (plus the
//! server's route table and [`PlanService`]) to a [`Response`]; all
//! socket concerns live in [`super::http`] and the connection loop. The
//! wire format is documented in DESIGN.md, "Network serving & artifact
//! registry".
//!
//! The plan route is **zero-serialization**: a successful plan is
//! answered with the service's cached artifact bytes
//! ([`crate::PlanService::plan_served`] → [`Body::Shared`]) — rendered
//! exactly once when the plan was solved, never re-serialized here — so
//! a cache hit performs no JSON work and no body allocation at all.
//!
//! [`PlanService`]: crate::PlanService

use crate::artifact::{json, json_quote};
use crate::error::{DaeDvfsError, ServiceError};
use crate::request::PlanRequest;
use crate::service::ServiceStats;

use super::http::{Body, Conn, Request, Response};
use super::PlanServer;

/// Builds a JSON error response: `{"error": "<message>"}`.
pub(crate) fn error_response(status: u16, reason: &'static str, message: &str) -> Response {
    Response {
        status,
        reason,
        content_type: "application/json",
        body: Body::Owned(format!("{{\"error\": {}}}\n", json_quote(message)).into_bytes()),
        receipt: None,
    }
}

/// Builds a 200 response with a JSON body.
fn ok_json(body: Body) -> Response {
    Response {
        status: 200,
        reason: "OK",
        content_type: "application/json",
        body,
        receipt: None,
    }
}

/// Maps a [`ServiceError`] to its HTTP status line.
///
/// | error | status |
/// |---|---|
/// | `QueueFull` | 429 (retryable backpressure) |
/// | `NotServing` | 503 (startup/drain; retry elsewhere) |
/// | `UnknownPlanner` | 404 (the route resolves to nothing) |
/// | `Plan(InvalidRequest \| ArtifactParse)` | 400 (caller's request) |
/// | `Plan(Qos \| EmptyModel)` | 422 (well-formed but unsatisfiable) |
/// | `Plan(Engine \| ArtifactMismatch)`, `WorkerPanicked` | 500 |
pub(crate) fn status_for(error: &ServiceError) -> (u16, &'static str) {
    match error {
        ServiceError::QueueFull { .. } => (429, "Too Many Requests"),
        ServiceError::NotServing => (503, "Service Unavailable"),
        ServiceError::UnknownPlanner { .. } => (404, "Not Found"),
        ServiceError::Plan(plan) => match plan {
            DaeDvfsError::InvalidRequest { .. } | DaeDvfsError::ArtifactParse { .. } => {
                (400, "Bad Request")
            }
            DaeDvfsError::Qos(_) | DaeDvfsError::EmptyModel { .. } => {
                (422, "Unprocessable Content")
            }
            DaeDvfsError::Engine(_) | DaeDvfsError::ArtifactMismatch { .. } => {
                (500, "Internal Server Error")
            }
        },
        ServiceError::WorkerPanicked => (500, "Internal Server Error"),
    }
}

/// Where one request routes. Resolved from borrowed method/target
/// tokens *before* dispatch, so the dispatch arms are free to borrow
/// the connection mutably (the `/stats` scratch buffer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Route {
    Healthz,
    Stats,
    Metrics,
    Plan,
    /// `GET /v1/receipt/<fp>` with a well-formed 16-hex fingerprint.
    Receipt(u64),
    /// `GET /v1/receipt/<fp>` whose fingerprint is not 16 hex digits.
    BadFingerprint,
    MethodNotAllowed,
    NotFound,
}

/// Maps a method/path pair to its route. The target arrives with any
/// query string already stripped ([`Conn::target`]).
fn route_of(method: &str, target: &str) -> Route {
    if let Some(fingerprint) = target.strip_prefix("/v1/receipt/") {
        if method != "GET" {
            return Route::MethodNotAllowed;
        }
        if fingerprint.len() != 16 || !fingerprint.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Route::BadFingerprint;
        }
        return match u64::from_str_radix(fingerprint, 16) {
            Ok(fp) => Route::Receipt(fp),
            Err(_) => Route::BadFingerprint,
        };
    }
    match (method, target) {
        ("GET", "/healthz") => Route::Healthz,
        ("GET", "/stats") => Route::Stats,
        ("GET", "/metrics") => Route::Metrics,
        ("POST", "/v1/plan") => Route::Plan,
        // Known path, wrong method — checked before the catch-all so
        // e.g. `GET /v1/plan` is a 405, not an "unknown path" 404.
        (_, "/healthz" | "/stats" | "/metrics" | "/v1/plan") => Route::MethodNotAllowed,
        _ => Route::NotFound,
    }
}

/// Routes one request (whose tokens live in `conn`'s read buffer).
/// Never panics and never returns transport errors — every outcome,
/// including handler-side failures, is a [`Response`].
pub(crate) fn handle(server: &PlanServer<'_>, conn: &mut Conn, request: &Request) -> Response {
    let route = route_of(conn.method(request), conn.target(request));
    match route {
        Route::Healthz => Response {
            status: 200,
            reason: "OK",
            content_type: "text/plain",
            body: Body::Static(b"ok\n"),
            receipt: None,
        },
        Route::Stats => {
            // Rendered into the connection's reusable scratch buffer:
            // no per-field Strings, no per-response body allocation on
            // a warmed keep-alive connection.
            let stats = server.service().stats();
            render_stats(conn.scratch_mut(), &stats);
            ok_json(Body::Scratch)
        }
        Route::Metrics => Response {
            status: 200,
            reason: "OK",
            content_type: "text/plain",
            body: Body::Owned(render_metrics(&server.service().stats()).into_bytes()),
            receipt: None,
        },
        Route::Plan => plan_response(server, conn.body(request)),
        Route::Receipt(fingerprint) => match server.receipt_for(fingerprint) {
            Some(receipt) => ok_json(Body::Owned(receipt.to_json().into_bytes())),
            None => error_response(
                404,
                "Not Found",
                "no receipt for this fingerprint in the ring",
            ),
        },
        Route::BadFingerprint => error_response(
            400,
            "Bad Request",
            "receipt fingerprint must be 16 hex digits",
        ),
        Route::MethodNotAllowed => error_response(
            405,
            "Method Not Allowed",
            "method not allowed for this path",
        ),
        Route::NotFound => error_response(404, "Not Found", "unknown path"),
    }
}

/// Decodes the `POST /v1/plan` body: `{"planner": <route name>,
/// "qos_secs": <f64> | "slack": <f64>, "solver"?: <tag>,
/// "dp_resolution"?: <u64>}`.
fn decode_plan_request(body: &str) -> Result<(String, PlanRequest), String> {
    let value = json::parse(body).map_err(|e| e.to_string())?;
    let obj = value.as_object("plan request").map_err(|e| e.to_string())?;
    let planner = obj
        .get_str("planner")
        .map_err(|e| e.to_string())?
        .to_string();
    let mut request = match (obj.get("qos_secs").is_ok(), obj.get("slack").is_ok()) {
        (true, false) => PlanRequest::qos(obj.get_f64("qos_secs").map_err(|e| e.to_string())?),
        (false, true) => PlanRequest::slack(obj.get_f64("slack").map_err(|e| e.to_string())?),
        (true, true) => return Err("specify exactly one of qos_secs and slack".to_string()),
        (false, false) => return Err("missing budget: provide qos_secs or slack".to_string()),
    };
    if obj.get("solver").is_ok() {
        let tag = obj.get_str("solver").map_err(|e| e.to_string())?;
        let Some(solver) = crate::registry::parse_solver(tag) else {
            return Err(format!(
                "unknown solver {tag:?} (expected reserve-grid or sequence-dp)"
            ));
        };
        request = request.with_solver(solver);
    }
    if obj.get("dp_resolution").is_ok() {
        let resolution = obj.get_u64("dp_resolution").map_err(|e| e.to_string())?;
        request = request.with_dp_resolution(resolution as usize);
    }
    Ok((planner, request))
}

/// Serves `POST /v1/plan`: decode → route →
/// [`PlanService::plan_served`] → the plan's cached artifact bytes (the
/// same bytes [`crate::PlanArtifact::to_json`] produced when the plan
/// was solved, shared by `Arc` — so responses are bit-comparable across
/// requests, restarts, and the on-disk registry, and a cache hit
/// serializes nothing).
///
/// [`PlanService::plan_served`]: crate::PlanService::plan_served
fn plan_response(server: &PlanServer<'_>, body: &[u8]) -> Response {
    let body = match std::str::from_utf8(body) {
        Ok(body) => body,
        Err(_) => return error_response(400, "Bad Request", "body is not UTF-8"),
    };
    let (planner_name, plan_request) = match decode_plan_request(body) {
        Ok(decoded) => decoded,
        Err(reason) => return error_response(400, "Bad Request", &reason),
    };
    let Some(key) = server.route_key(&planner_name) else {
        return error_response(
            404,
            "Not Found",
            &format!("unknown planner {planner_name:?}"),
        );
    };
    if server.config().receipts {
        match server.service().plan_receipted(key, &plan_request) {
            Ok((served, receipt)) => {
                server.record(&receipt, body);
                let mut response = ok_json(Body::Shared(served.into_bytes()));
                response.receipt = Some(receipt.to_header_value());
                response
            }
            Err(error) => {
                let (status, reason) = status_for(&error);
                error_response(status, reason, &error.to_string())
            }
        }
    } else {
        match server.service().plan_served(key, &plan_request) {
            Ok(served) => ok_json(Body::Shared(served.into_bytes())),
            Err(error) => {
                let (status, reason) = status_for(&error);
                error_response(status, reason, &error.to_string())
            }
        }
    }
}

/// Hand-rolled JSON for `GET /stats`, written into the connection's
/// reusable scratch buffer: the [`ServiceStats`] snapshot, including
/// the registry tier counters (all zero when no registry is attached)
/// and the serving hot-path counters (`inline_hits`, `bytes_served`,
/// `enqueued`). One `write!` into a `Vec<u8>` — which cannot fail — so
/// a warmed buffer renders with zero allocations and no per-field
/// `String`s.
fn render_stats(out: &mut Vec<u8>, stats: &ServiceStats) {
    use std::io::Write as _;
    let _ = write!(
        out,
        concat!(
            "{{\n",
            "  \"submitted\": {},\n",
            "  \"completed\": {},\n",
            "  \"rejected\": {},\n",
            "  \"failed\": {},\n",
            "  \"batches\": {},\n",
            "  \"batched_requests\": {},\n",
            "  \"max_batch\": {},\n",
            "  \"inline_hits\": {},\n",
            "  \"bytes_served\": {},\n",
            "  \"enqueued\": {},\n",
            "  \"queue_depth\": {},\n",
            "  \"max_queue_depth\": {},\n",
            "  \"elapsed_secs\": {},\n",
            "  \"registry_hits\": {},\n",
            "  \"registry_writes\": {},\n",
            "  \"quarantined\": {},\n",
            "  \"cache\": {{\n",
            "    \"hits\": {},\n",
            "    \"misses\": {},\n",
            "    \"joined\": {},\n",
            "    \"inserted\": {},\n",
            "    \"evicted\": {},\n",
            "    \"entries\": {}\n",
            "  }}\n",
            "}}\n",
        ),
        stats.submitted,
        stats.completed,
        stats.rejected,
        stats.failed,
        stats.batches,
        stats.batched_requests,
        stats.max_batch,
        stats.inline_hits,
        stats.bytes_served,
        stats.enqueued,
        stats.queue_depth,
        stats.max_queue_depth,
        stats.elapsed_secs,
        stats.registry_hits,
        stats.registry_writes,
        stats.quarantined,
        stats.cache.hits,
        stats.cache.misses,
        stats.cache.joined,
        stats.cache.inserted,
        stats.cache.evicted,
        stats.cache.entries,
    );
}

/// Plain-text rendering for `GET /metrics`: the counter snapshot plus
/// one latency histogram block per serving path — sample count,
/// conservative p50/p99 (bucket upper bounds), and the non-empty
/// power-of-two buckets as `le=<upper-bound-ns>` cumulative-free pairs.
/// Empty lanes render their count only, keeping the payload small.
fn render_metrics(stats: &ServiceStats) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (name, value) in [
        ("plan_requests_submitted_total", stats.submitted),
        ("plan_requests_completed_total", stats.completed),
        ("plan_requests_rejected_total", stats.rejected),
        ("plan_requests_failed_total", stats.failed),
        ("plan_batches_total", stats.batches),
        ("plan_inline_hits_total", stats.inline_hits),
        ("plan_bytes_served_total", stats.bytes_served),
        ("plan_cache_hits_total", stats.cache.hits),
        ("plan_cache_misses_total", stats.cache.misses),
        ("plan_registry_hits_total", stats.registry_hits),
        ("plan_registry_writes_total", stats.registry_writes),
    ] {
        let _ = writeln!(out, "{name} {value}");
    }
    for (label, histogram) in stats.paths.iter() {
        let count = histogram.count();
        let _ = writeln!(out, "plan_path_requests_total{{path=\"{label}\"}} {count}");
        if count == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "plan_path_latency_ns{{path=\"{label}\",quantile=\"0.5\"}} {}",
            histogram.percentile_upper_nanos(0.5)
        );
        let _ = writeln!(
            out,
            "plan_path_latency_ns{{path=\"{label}\",quantile=\"0.99\"}} {}",
            histogram.percentile_upper_nanos(0.99)
        );
        for (index, &samples) in histogram.buckets.iter().enumerate() {
            if samples > 0 {
                let _ = writeln!(
                    out,
                    "plan_path_latency_ns_bucket{{path=\"{label}\",le=\"{}\"}} {samples}",
                    crate::obs::bucket_upper_nanos(index)
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_mapping_matches_the_documented_table() {
        assert_eq!(status_for(&ServiceError::QueueFull { capacity: 4 }).0, 429);
        assert_eq!(status_for(&ServiceError::NotServing).0, 503);
        assert_eq!(status_for(&ServiceError::UnknownPlanner { key: 7 }).0, 404);
        assert_eq!(status_for(&ServiceError::WorkerPanicked).0, 500);
        assert_eq!(
            status_for(&ServiceError::Plan(DaeDvfsError::InvalidRequest {
                field: "qos_secs",
                reason: "must be positive".to_string(),
            }))
            .0,
            400
        );
        assert_eq!(
            status_for(&ServiceError::Plan(DaeDvfsError::ArtifactParse {
                reason: "truncated".to_string(),
            }))
            .0,
            400
        );
        assert_eq!(
            status_for(&ServiceError::Plan(DaeDvfsError::Qos(
                crate::mckp::MckpError::Infeasible {
                    min_time_secs: 2.0,
                    budget_secs: 1.0,
                }
            )))
            .0,
            422
        );
        assert_eq!(
            status_for(&ServiceError::Plan(DaeDvfsError::EmptyModel {
                model: "m".to_string(),
            }))
            .0,
            422
        );
        assert_eq!(
            status_for(&ServiceError::Plan(DaeDvfsError::ArtifactMismatch {
                field: "model_fingerprint",
                expected: "0".to_string(),
                found: "1".to_string(),
            }))
            .0,
            500
        );
    }

    #[test]
    fn plan_body_decoding_accepts_both_budgets_and_rejects_ambiguity() {
        let (name, request) =
            decode_plan_request("{\"planner\": \"vww\", \"qos_secs\": 0.25}").unwrap();
        assert_eq!(name, "vww");
        assert!(matches!(
            request.budget(),
            crate::QosBudget::Window(w) if w == 0.25
        ));

        let (_, request) = decode_plan_request(
            "{\"planner\": \"vww\", \"slack\": 0.3, \"solver\": \"sequence-dp\", \
             \"dp_resolution\": 512}",
        )
        .unwrap();
        assert!(matches!(request.solver(), crate::Solver::SequenceDp));
        assert_eq!(request.dp_resolution(), Some(512));

        assert!(decode_plan_request("{\"planner\": \"vww\"}").is_err());
        assert!(
            decode_plan_request("{\"planner\": \"vww\", \"qos_secs\": 0.2, \"slack\": 0.3}")
                .is_err()
        );
        assert!(decode_plan_request(
            "{\"planner\": \"vww\", \"slack\": 0.3, \"solver\": \"magic\"}"
        )
        .is_err());
        assert!(decode_plan_request("not json").is_err());
    }

    #[test]
    fn error_responses_are_json_objects() {
        let response = error_response(400, "Bad Request", "a \"quoted\" reason");
        assert_eq!(response.status, 400);
        let body = std::str::from_utf8(response.body.as_bytes()).unwrap();
        assert!(body.starts_with("{\"error\": "));
        assert!(body.contains("\\\"quoted\\\""));
    }

    fn sample_stats() -> ServiceStats {
        ServiceStats {
            submitted: 14,
            completed: 14,
            rejected: 0,
            failed: 0,
            batches: 1,
            batched_requests: 2,
            max_batch: 2,
            inline_hits: 12,
            bytes_served: 3456,
            enqueued: 2,
            queue_depth: 0,
            max_queue_depth: 2,
            elapsed_secs: 1.0,
            registry_hits: 0,
            registry_writes: 0,
            quarantined: 0,
            cache: crate::service::CacheStats::default(),
            paths: crate::obs::PathStats::empty(),
        }
    }

    #[test]
    fn stats_json_includes_the_hot_path_counters() {
        let mut out = Vec::new();
        render_stats(&mut out, &sample_stats());
        let rendered = String::from_utf8(out).unwrap();
        assert!(rendered.contains("\"inline_hits\": 12"));
        assert!(rendered.contains("\"bytes_served\": 3456"));
        assert!(rendered.contains("\"enqueued\": 2"));
    }

    #[test]
    fn metrics_render_counters_and_only_populated_lanes() {
        let mut stats = sample_stats();
        let rendered = render_metrics(&stats);
        assert!(rendered.contains("plan_requests_submitted_total 14"));
        // Empty lanes contribute their count line and nothing else.
        assert!(rendered.contains("plan_path_requests_total{path=\"inline-hit\"} 0"));
        assert!(!rendered.contains("quantile"));

        stats.paths.histograms[crate::obs::ServePath::InlineHit.index()].buckets[10] = 3;
        let rendered = render_metrics(&stats);
        assert!(rendered.contains("plan_path_requests_total{path=\"inline-hit\"} 3"));
        assert!(
            rendered.contains("plan_path_latency_ns{path=\"inline-hit\",quantile=\"0.5\"} 2047")
        );
        assert!(rendered.contains("plan_path_latency_ns_bucket{path=\"inline-hit\",le=\"2047\"} 3"));
    }

    #[test]
    fn routes_resolve_methods_paths_and_receipt_fingerprints() {
        assert_eq!(route_of("GET", "/healthz"), Route::Healthz);
        assert_eq!(route_of("GET", "/stats"), Route::Stats);
        assert_eq!(route_of("GET", "/metrics"), Route::Metrics);
        assert_eq!(route_of("POST", "/v1/plan"), Route::Plan);
        assert_eq!(
            route_of("GET", "/v1/receipt/00ff00ff00ff00ff"),
            Route::Receipt(0x00ff_00ff_00ff_00ff)
        );
        assert_eq!(route_of("GET", "/v1/receipt/short"), Route::BadFingerprint);
        assert_eq!(
            route_of("GET", "/v1/receipt/zzzzzzzzzzzzzzzz"),
            Route::BadFingerprint
        );
        assert_eq!(
            route_of("POST", "/v1/receipt/00ff00ff00ff00ff"),
            Route::MethodNotAllowed
        );
        for path in ["/healthz", "/stats", "/metrics", "/v1/plan"] {
            assert_eq!(route_of("PUT", path), Route::MethodNotAllowed, "{path}");
        }
        assert_eq!(route_of("GET", "/nope"), Route::NotFound);
    }
}
