//! The network serving subsystem: a dependency-free HTTP/1.1 front end
//! over [`crate::service::PlanService`].
//!
//! [`PlanServer`] owns nothing but a borrow of the service and a route
//! table; [`PlanServer::serve`] binds a [`std::net::TcpListener`] and
//! runs a bounded accept/worker pool on `std::thread::scope`, mirroring
//! the service's own scoped-ownership design — no `'static` bounds, no
//! detached threads, and a guaranteed join before `serve` returns. The
//! wire protocol (three routes, status-code mapping, drain semantics) is
//! documented in DESIGN.md, "Network serving & artifact registry":
//!
//! * `POST /v1/plan` — JSON plan request → the planner's
//!   [`crate::PlanArtifact`] JSON, byte-identical to
//!   [`crate::PlanArtifact::to_json`] so responses can be compared
//!   bit-for-bit across processes and restarts; each answer carries its
//!   audit [`crate::obs::Receipt`] in an `X-Plan-Receipt` header
//!   (unless [`ServerConfig::receipts`] is off);
//! * `GET /v1/receipt/<fp>` — the most recent receipt for a request
//!   fingerprint, from a bounded in-memory ring;
//! * `GET /stats` — the [`crate::ServiceStats`] snapshot (including the
//!   registry cold-tier counters) as JSON;
//! * `GET /metrics` — plain-text counters plus per-path power-of-two
//!   latency histograms;
//! * `GET /healthz` — liveness.
//!
//! Backpressure is layered: the accept thread bounds *connections*
//! (backlog past [`ServerConfig::backlog`] is answered with an immediate
//! 503), and the service's own bounded queue bounds *requests*
//! ([`crate::ServiceError::QueueFull`] → 429). Shutdown is a graceful
//! drain: when the [`PlanServer::serve`] closure returns (or panics), the
//! listener stops accepting, every already-admitted connection is served
//! one last round (pipelined requests included, answered with
//! `Connection: close`), and the workers join.
//!
//! # Example
//!
//! ```
//! use std::io::{Read, Write};
//! use std::net::TcpStream;
//! use std::sync::Arc;
//! use dae_dvfs::{PlanRequest, Planner, PlanServer, PlanService, ServerConfig, ServiceConfig};
//! use tinynn::models::vww_sized;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let planner = Arc::new(Planner::new(&vww_sized(32), &Default::default())?);
//! let mut service = PlanService::new(ServiceConfig::default().with_workers(2))?;
//! let key = service.register(planner);
//! let response = service.run(|svc| -> std::io::Result<String> {
//!     let io_err = |e: String| std::io::Error::new(std::io::ErrorKind::Other, e);
//!     let server = PlanServer::new(svc, ServerConfig::default())
//!         .and_then(|s| s.route("vww", key))
//!         .map_err(|e| io_err(e.to_string()))?;
//!     server
//!         .serve(|handle| -> std::io::Result<String> {
//!             let mut stream = TcpStream::connect(handle.addr())?;
//!             let body = "{\"planner\": \"vww\", \"slack\": 0.3}";
//!             write!(
//!                 stream,
//!                 "POST /v1/plan HTTP/1.1\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
//!                 body.len(),
//!             )?;
//!             let mut response = String::new();
//!             stream.read_to_string(&mut response)?;
//!             Ok(response)
//!         })
//!         .map_err(|e| io_err(e.to_string()))?
//! })?;
//! assert!(response.starts_with("HTTP/1.1 200 OK"));
//! # Ok(())
//! # }
//! ```

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::artifact::json_quote;
use crate::error::{DaeDvfsError, ServerError};
use crate::obs::Receipt;
use crate::service::{PlanService, PlannerKey};
use crate::sync::{lock, rank, wait, RankedCondvar, RankedMutex};

mod handler;
mod http;

/// How long the accept thread sleeps when the (non-blocking) listener
/// has nothing to accept, which doubles as its shutdown-poll latency.
const ACCEPT_POLL: Duration = Duration::from_millis(1);

/// Bound on the in-memory receipt ring served by `GET /v1/receipt/<fp>`:
/// the newest receipts win, the oldest are dropped — an audit window,
/// not an archive (the JSONL trace is the durable record).
const RECEIPT_RING_CAPACITY: usize = 1024;

/// Tuning knobs of a [`PlanServer`]; start from `Default` and adjust
/// builder-style.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct ServerConfig {
    /// Bind address. The default `127.0.0.1:0` picks an ephemeral
    /// loopback port; read the real one from [`ServerHandle::addr`].
    pub addr: String,
    /// Connection-worker threads (each serves one connection at a time).
    pub workers: usize,
    /// Bound on accepted-but-unserviced connections; arrivals past it
    /// receive an immediate best-effort 503 and are closed.
    pub backlog: usize,
    /// Cap on a request's head (request line + headers) → 431 past it.
    pub max_header_bytes: usize,
    /// Cap on a request's declared body length → 413 past it.
    pub max_body_bytes: usize,
    /// Per-request read budget and keep-alive idle timeout. Also bounds
    /// how long a drain waits on a connection that is mid-request.
    pub read_timeout: Duration,
    /// Whether plan answers carry receipts (`X-Plan-Receipt` header,
    /// receipt ring, trace records, per-path histograms). On by default;
    /// turning it off serves plans through the receipt-free path — the
    /// before/after lever the receipt-overhead benchmark uses.
    pub receipts: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            backlog: 64,
            max_header_bytes: 8192,
            max_body_bytes: 65536,
            read_timeout: Duration::from_secs(2),
            receipts: true,
        }
    }
}

impl ServerConfig {
    /// Replaces the bind address (builder style).
    pub fn with_addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Replaces the connection-worker count (builder style).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Replaces the accepted-connection bound (builder style).
    pub fn with_backlog(mut self, backlog: usize) -> Self {
        self.backlog = backlog;
        self
    }

    /// Replaces the request-head size cap (builder style).
    pub fn with_max_header_bytes(mut self, bytes: usize) -> Self {
        self.max_header_bytes = bytes;
        self
    }

    /// Replaces the request-body size cap (builder style).
    pub fn with_max_body_bytes(mut self, bytes: usize) -> Self {
        self.max_body_bytes = bytes;
        self
    }

    /// Replaces the per-request read budget (builder style).
    pub fn with_read_timeout(mut self, timeout: Duration) -> Self {
        self.read_timeout = timeout;
        self
    }

    /// Enables or disables plan receipts (builder style).
    pub fn with_receipts(mut self, receipts: bool) -> Self {
        self.receipts = receipts;
        self
    }

    /// Checks every knob for degenerate values.
    ///
    /// # Errors
    ///
    /// [`DaeDvfsError::InvalidRequest`] naming the offending field for an
    /// empty address, a zero worker/backlog/size bound, or a zero read
    /// timeout.
    pub fn validate(&self) -> Result<(), DaeDvfsError> {
        if self.addr.is_empty() {
            return Err(DaeDvfsError::InvalidRequest {
                field: "addr",
                reason: "must be non-empty".into(),
            });
        }
        for (field, value) in [
            ("workers", self.workers),
            ("backlog", self.backlog),
            ("max_header_bytes", self.max_header_bytes),
            ("max_body_bytes", self.max_body_bytes),
        ] {
            if value == 0 {
                return Err(DaeDvfsError::InvalidRequest {
                    field,
                    reason: "must be non-zero".into(),
                });
            }
        }
        if self.read_timeout.is_zero() {
            return Err(DaeDvfsError::InvalidRequest {
                field: "read_timeout",
                reason: "must be non-zero".into(),
            });
        }
        Ok(())
    }
}

/// Accepted connections awaiting a worker, behind the lowest lock rank:
/// a worker drops this lock before touching the plan service, so the
/// rank never composes with the service's locks — ranking it below them
/// keeps any future composition legal anyway.
#[derive(Debug)]
struct ConnQueue {
    items: VecDeque<TcpStream>,
}

/// State shared between the accept thread, the connection workers, and
/// every [`ServerHandle`].
#[derive(Debug)]
struct Shared {
    queue: RankedMutex<ConnQueue>,
    available: RankedCondvar,
    /// Once set, the accept thread exits and workers drain the queue
    /// instead of blocking on it; never cleared.
    shutdown: AtomicBool,
}

impl Shared {
    fn new() -> Self {
        Shared {
            queue: RankedMutex::new(
                rank::SERVER_CONN,
                ConnQueue {
                    items: VecDeque::new(),
                },
            ),
            available: RankedCondvar::new(),
            shutdown: AtomicBool::new(false),
        }
    }

    /// Begins the drain: stop accepting, wake every worker. Idempotent.
    ///
    /// The flag is stored while the queue lock is held so the store is
    /// ordered against every worker's check-then-wait critical section
    /// in [`next_connection`]: a worker that saw the flag clear under
    /// the lock is either already parked in `wait` (the broadcast below
    /// wakes it) or has not yet locked (it will observe the flag).
    /// Storing outside the lock would let the store + broadcast land
    /// between a worker's check and its park — the worker's last wakeup,
    /// missed, and `serve` would never join.
    fn begin_shutdown(&self) {
        let queue = lock(&self.queue);
        self.shutdown.store(true, Ordering::Release);
        drop(queue);
        self.available.notify_all();
    }

    fn draining(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }
}

/// A handle to a running server, passed to the [`PlanServer::serve`]
/// closure: the bound address (with the real ephemeral port) plus an
/// explicit early-shutdown trigger.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// The address the listener actually bound.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Begins the graceful drain without waiting for the serve closure
    /// to return: the listener stops accepting, admitted connections are
    /// served their final round, workers exit. Idempotent; the drain
    /// also begins automatically when the closure returns.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }
}

/// Begins the drain when dropped, so a panicking serve closure still
/// releases the accept thread and the workers (the panic then propagates
/// out of the joined scope).
struct ShutdownOnDrop<'a>(&'a Shared);

impl Drop for ShutdownOnDrop<'_> {
    fn drop(&mut self) {
        self.0.begin_shutdown();
    }
}

/// The HTTP front end: a route table mapping planner names to
/// [`PlannerKey`]s, served over a scoped accept/worker thread pool.
///
/// See the [module docs](self) for the wire protocol and an end-to-end
/// example.
/// The JSONL request-trace recorder ([`PlanServer::trace_to`]): one
/// line per receipted plan admission, in fulfillment order.
#[derive(Debug)]
struct TraceWriter {
    file: std::fs::File,
    /// Arrival-order sequence number stamped on each trace line.
    seq: u64,
}

#[derive(Debug)]
pub struct PlanServer<'a> {
    service: &'a PlanService,
    config: ServerConfig,
    routes: Vec<(String, PlannerKey)>,
    /// Bounded ring of the newest receipts, behind `GET
    /// /v1/receipt/<fp>`. Ranked above every service lock and never
    /// held across a service call — recording happens strictly after
    /// the answer is in hand.
    ring: RankedMutex<VecDeque<Receipt>>,
    /// The optional trace recorder; acquired strictly after (and never
    /// while holding) the ring.
    trace: RankedMutex<Option<TraceWriter>>,
}

impl<'a> PlanServer<'a> {
    /// A server over `service` with no routes yet; add them with
    /// [`PlanServer::route`].
    ///
    /// # Errors
    ///
    /// [`DaeDvfsError::InvalidRequest`] when `config` fails
    /// [`ServerConfig::validate`].
    pub fn new(service: &'a PlanService, config: ServerConfig) -> Result<Self, DaeDvfsError> {
        config.validate()?;
        Ok(PlanServer {
            service,
            config,
            routes: Vec::new(),
            ring: RankedMutex::new(rank::OBS_RING, VecDeque::new()),
            trace: RankedMutex::new(rank::OBS_TRACE, None),
        })
    }

    /// Adds a route: requests whose `"planner"` field equals `name` are
    /// planned against `key` (builder style).
    ///
    /// # Errors
    ///
    /// [`DaeDvfsError::InvalidRequest`] for an empty or duplicate name,
    /// or a key that is not registered with this server's service.
    pub fn route(mut self, name: &str, key: PlannerKey) -> Result<Self, DaeDvfsError> {
        if name.is_empty() {
            return Err(DaeDvfsError::InvalidRequest {
                field: "route",
                reason: "route name must be non-empty".into(),
            });
        }
        if self.routes.iter().any(|(n, _)| n == name) {
            return Err(DaeDvfsError::InvalidRequest {
                field: "route",
                reason: format!("duplicate route {name:?}"),
            });
        }
        if self.service.planner(key).is_none() {
            return Err(DaeDvfsError::InvalidRequest {
                field: "route",
                reason: format!("route {name:?}: key is not registered with this service"),
            });
        }
        self.routes.push((name.to_string(), key));
        Ok(self)
    }

    /// The configuration this server was built with.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The service behind the routes.
    pub(crate) fn service(&self) -> &PlanService {
        self.service
    }

    /// Resolves a route name to its planner key.
    pub(crate) fn route_key(&self, name: &str) -> Option<PlannerKey> {
        self.routes
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, key)| *key)
    }

    /// Streams every receipted plan admission to a JSONL trace file
    /// (builder style): one line per answered `POST /v1/plan`, carrying
    /// the arrival sequence number, the request fingerprint, the path
    /// taken, the served plan hash, and the verbatim request body — the
    /// record `plan_server --replay` drives a fresh stack through to
    /// re-assert plan-hash equality offline. Appends to an existing
    /// file, so one trace can span server restarts.
    ///
    /// # Errors
    ///
    /// [`ServerError::Trace`] when the file cannot be opened; append
    /// failures during serving are advisory (dropped, never fatal).
    pub fn trace_to(self, path: &str) -> Result<Self, ServerError> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| ServerError::Trace {
                path: path.to_string(),
                reason: e.to_string(),
            })?;
        *lock(&self.trace) = Some(TraceWriter { file, seq: 0 });
        Ok(self)
    }

    /// Records one answered plan request: pushes the receipt onto the
    /// bounded ring (newest wins) and, when tracing, appends the JSONL
    /// trace line. Called with no other lock held; the two locks are
    /// taken in rank order and released between, so recording can never
    /// deadlock the serving path.
    pub(crate) fn record(&self, receipt: &Receipt, body: &str) {
        {
            let mut ring = lock(&self.ring);
            if ring.len() >= RECEIPT_RING_CAPACITY {
                ring.pop_front();
            }
            ring.push_back(*receipt);
        }
        let mut trace = lock(&self.trace);
        if let Some(writer) = trace.as_mut() {
            let line = format!(
                "{{\"seq\": {}, \"target\": \"/v1/plan\", \"fingerprint\": \"{:016x}\", \
                 \"path\": \"{}\", \"plan_hash\": \"{:016x}\", \"body\": {}}}\n",
                writer.seq,
                receipt.fingerprint(),
                receipt.path.label(),
                receipt.plan_hash,
                json_quote(body),
            );
            writer.seq += 1;
            use std::io::Write as _;
            // Advisory: a full disk must not take the serving path down.
            let _ = writer.file.write_all(line.as_bytes());
        }
    }

    /// Looks a fingerprint up in the receipt ring, newest first.
    pub(crate) fn receipt_for(&self, fingerprint: u64) -> Option<Receipt> {
        lock(&self.ring)
            .iter()
            .rev()
            .find(|r| r.fingerprint() == fingerprint)
            .copied()
    }

    /// Binds the listener and serves until the closure returns: `f` runs
    /// on the calling thread with a [`ServerHandle`] (the real bound
    /// address plus early shutdown), while an accept thread and
    /// [`ServerConfig::workers`] connection workers run on a scope.
    /// When `f` returns — or panics, or calls [`ServerHandle::shutdown`]
    /// — the listener stops accepting and every admitted connection is
    /// drained before `serve` returns.
    ///
    /// Serving requests end-to-end additionally requires the service's
    /// workers, so call this inside [`PlanService::run`]; outside it the
    /// wire protocol still answers (`/healthz`, `/stats`, and 503 for
    /// plans), which is itself exercised by the conformance tests.
    ///
    /// # Errors
    ///
    /// [`ServerError::Bind`] when the listener cannot be set up on
    /// [`ServerConfig::addr`]. Closure and per-connection failures are
    /// never `Err`: the closure's value is returned verbatim, and wire
    /// failures are answered with status codes or a closed socket.
    pub fn serve<R: Send>(
        &self,
        f: impl FnOnce(&ServerHandle) -> R + Send,
    ) -> Result<R, ServerError> {
        let bind_err = |e: std::io::Error| ServerError::Bind {
            addr: self.config.addr.clone(),
            reason: e.to_string(),
        };
        let listener = TcpListener::bind(self.config.addr.as_str()).map_err(bind_err)?;
        let addr = listener.local_addr().map_err(bind_err)?;
        // Non-blocking accepts let the accept thread poll the shutdown
        // flag; accepted streams are switched back to blocking mode.
        listener.set_nonblocking(true).map_err(bind_err)?;
        let shared = Arc::new(Shared::new());
        let handle = ServerHandle {
            addr,
            shared: Arc::clone(&shared),
        };
        let result = std::thread::scope(|scope| {
            let shared = &*handle.shared;
            scope.spawn(|| self.accept_loop(&listener, shared));
            for _ in 0..self.config.workers {
                scope.spawn(|| self.worker_loop(shared));
            }
            let _drain = ShutdownOnDrop(shared);
            f(&handle)
        });
        Ok(result)
    }

    /// Accepts until shutdown, pushing connections to the worker queue
    /// and bouncing arrivals past the backlog with an immediate 503.
    /// Transient accept errors (aborted handshakes, fd exhaustion) are
    /// retried after a backoff — the listener must outlive them.
    fn accept_loop(&self, listener: &TcpListener, shared: &Shared) {
        while !shared.draining() {
            match listener.accept() {
                Ok((stream, _peer)) => self.admit(stream, shared),
                Err(_) => std::thread::sleep(ACCEPT_POLL),
            }
        }
    }

    /// Queues one accepted connection, or bounces it when the backlog
    /// bound is reached.
    fn admit(&self, mut stream: TcpStream, shared: &Shared) {
        let mut queue = lock(&shared.queue);
        if queue.items.len() >= self.config.backlog {
            drop(queue);
            http::reject_busy(&mut stream);
            return;
        }
        queue.items.push_back(stream);
        drop(queue);
        shared.available.notify_all();
    }

    /// Serves queued connections until shutdown *and* the queue is empty:
    /// connections admitted before the drain began are still served.
    fn worker_loop(&self, shared: &Shared) {
        while let Some(stream) = next_connection(shared) {
            self.handle_connection(stream, shared);
        }
    }

    /// The per-connection loop: read a request, answer it, repeat while
    /// keep-alive holds. The queue lock is **not** held here — only the
    /// service's own synchronization is in play, so the `server-conn`
    /// rank never composes with the service ranks.
    fn handle_connection(&self, stream: TcpStream, shared: &Shared) {
        // Accepted sockets may inherit the listener's non-blocking mode
        // (platform-dependent); force blocking + a read timeout so the
        // read loop's timeout arithmetic is the only clock in play.
        if stream.set_nonblocking(false).is_err() {
            return;
        }
        if stream
            .set_read_timeout(Some(self.config.read_timeout))
            .is_err()
        {
            return;
        }
        let _ = stream.set_nodelay(true);
        let limits = http::Limits {
            max_header_bytes: self.config.max_header_bytes,
            max_body_bytes: self.config.max_body_bytes,
            read_timeout: self.config.read_timeout,
        };
        let mut conn = http::Conn::new(stream);
        loop {
            let draining = shared.draining();
            match conn.read_request(&limits, draining) {
                http::ReadOutcome::Request(request) => {
                    let response = handler::handle(self, &mut conn, &request);
                    // Re-check the drain flag: a request admitted just as
                    // the drain began is answered, but the connection is
                    // told to go away.
                    let close = !request.keep_alive || shared.draining();
                    // The response no longer borrows the read buffer, so
                    // the request's bytes can be retired before the write.
                    conn.consume(&request);
                    if conn.write_response(&response, close).is_err() || close {
                        return;
                    }
                }
                http::ReadOutcome::Closed | http::ReadOutcome::TimedOut => return,
                http::ReadOutcome::Malformed(reason) => {
                    let _ = conn
                        .write_response(&handler::error_response(400, "Bad Request", reason), true);
                    return;
                }
                http::ReadOutcome::HeadersTooLarge => {
                    let _ = conn.write_response(
                        &handler::error_response(
                            431,
                            "Request Header Fields Too Large",
                            "request head exceeds the configured limit",
                        ),
                        true,
                    );
                    return;
                }
                http::ReadOutcome::BodyTooLarge => {
                    let _ = conn.write_response(
                        &handler::error_response(
                            413,
                            "Content Too Large",
                            "request body exceeds the configured limit",
                        ),
                        true,
                    );
                    return;
                }
            }
        }
    }
}

/// Blocks for the next admitted connection; `None` once the drain began
/// and the queue is empty (the worker's exit signal).
fn next_connection(shared: &Shared) -> Option<TcpStream> {
    let mut queue = lock(&shared.queue);
    loop {
        // Pop before checking the drain flag: connections admitted
        // before the drain must still be served.
        if let Some(stream) = queue.items.pop_front() {
            return Some(stream);
        }
        if shared.draining() {
            return None;
        }
        queue = wait(&shared.available, queue);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use crate::Planner;
    use tinynn::models::vww_sized;

    fn service_with_route() -> (PlanService, PlannerKey) {
        let planner =
            Arc::new(Planner::new(&vww_sized(32), &Default::default()).expect("planner builds"));
        let mut service =
            PlanService::new(ServiceConfig::default().with_workers(1)).expect("service builds");
        let key = service.register(planner);
        (service, key)
    }

    #[test]
    fn config_validation_names_the_offending_field() {
        assert!(ServerConfig::default().validate().is_ok());
        let cases: [(ServerConfig, &str); 6] = [
            (ServerConfig::default().with_addr(""), "addr"),
            (ServerConfig::default().with_workers(0), "workers"),
            (ServerConfig::default().with_backlog(0), "backlog"),
            (
                ServerConfig::default().with_max_header_bytes(0),
                "max_header_bytes",
            ),
            (
                ServerConfig::default().with_max_body_bytes(0),
                "max_body_bytes",
            ),
            (
                ServerConfig::default().with_read_timeout(Duration::ZERO),
                "read_timeout",
            ),
        ];
        for (config, expected) in cases {
            match config.validate().expect_err("degenerate config rejected") {
                DaeDvfsError::InvalidRequest { field, .. } => assert_eq!(field, expected),
                other => panic!("expected InvalidRequest, got {other:?}"),
            }
        }
    }

    #[test]
    fn routes_are_validated_at_build_time() {
        let (service, key) = service_with_route();
        let server = PlanServer::new(&service, ServerConfig::default())
            .and_then(|s| s.route("vww", key))
            .expect("valid route accepted");
        assert_eq!(server.route_key("vww"), Some(key));
        assert_eq!(server.route_key("nope"), None);

        let err = PlanServer::new(&service, ServerConfig::default())
            .and_then(|s| s.route("vww", key))
            .and_then(|s| s.route("vww", key))
            .expect_err("duplicate route rejected");
        assert!(matches!(
            err,
            DaeDvfsError::InvalidRequest { field: "route", .. }
        ));

        let err = PlanServer::new(&service, ServerConfig::default())
            .and_then(|s| s.route("", key))
            .expect_err("empty route rejected");
        assert!(matches!(
            err,
            DaeDvfsError::InvalidRequest { field: "route", .. }
        ));
    }

    #[test]
    fn bind_failure_is_a_typed_error() {
        let (service, _key) = service_with_route();
        let server = PlanServer::new(
            &service,
            ServerConfig::default().with_addr("256.256.256.256:1"),
        )
        .expect("config itself is well-formed");
        let err = server.serve(|_| ()).expect_err("bogus address fails");
        match err {
            ServerError::Bind { addr, .. } => assert_eq!(addr, "256.256.256.256:1"),
            other => panic!("expected Bind, got {other:?}"),
        }
    }

    #[test]
    fn trace_setup_failure_is_a_typed_error() {
        let (service, key) = service_with_route();
        let err = PlanServer::new(&service, ServerConfig::default())
            .and_then(|s| s.route("vww", key))
            .expect("server builds")
            .trace_to("/nonexistent-dir/trace.jsonl")
            .expect_err("unopenable trace path fails");
        match err {
            ServerError::Trace { path, .. } => assert_eq!(path, "/nonexistent-dir/trace.jsonl"),
            other => panic!("expected Trace, got {other:?}"),
        }
    }

    #[test]
    fn receipt_ring_is_bounded_and_newest_wins() {
        fn key_of(seed: u64) -> crate::service::PlanKey {
            crate::service::PlanKey {
                model_fingerprint: seed,
                config_fingerprint: seed ^ 0xabc,
                solver: crate::request::Solver::ReserveGrid,
                window_bits: 0.25f64.to_bits(),
                dp_resolution: 2000,
            }
        }
        let (service, key) = service_with_route();
        let server = PlanServer::new(&service, ServerConfig::default())
            .and_then(|s| s.route("vww", key))
            .expect("server builds");
        assert_eq!(server.receipt_for(1), None);
        let mut receipt = crate::obs::Receipt {
            key: key_of(0),
            path: crate::obs::ServePath::Solved,
            solver: "reserve-grid",
            artifact_schema_version: 1,
            plan_hash: 0,
            solve_nanos: 0,
            total_nanos: 0,
        };
        for i in 0..(RECEIPT_RING_CAPACITY as u64 + 8) {
            receipt.key = key_of(i);
            receipt.plan_hash = i;
            server.record(&receipt, "{}");
        }
        assert_eq!(lock(&server.ring).len(), RECEIPT_RING_CAPACITY);
        // The oldest eight were evicted; the newest are all present.
        let newest = {
            let ring = lock(&server.ring);
            *ring.back().expect("ring non-empty")
        };
        assert_eq!(newest.plan_hash, RECEIPT_RING_CAPACITY as u64 + 7);
        assert_eq!(
            server.receipt_for(newest.fingerprint()),
            Some(newest),
            "lookup finds the newest receipt for its fingerprint"
        );
    }

    #[test]
    fn serve_returns_the_closure_value_and_drains() {
        let (service, key) = service_with_route();
        let server = PlanServer::new(&service, ServerConfig::default().with_workers(2))
            .and_then(|s| s.route("vww", key))
            .expect("server builds");
        let value = server
            .serve(|handle| {
                assert_ne!(handle.addr().port(), 0);
                handle.shutdown(); // early shutdown is idempotent
                42u32
            })
            .expect("ephemeral loopback bind succeeds");
        assert_eq!(value, 42);
    }

    /// Regression: `begin_shutdown` must order its flag-store against the
    /// workers' check-then-wait critical section (it takes the queue lock
    /// while storing). An unordered store + broadcast landing between a
    /// worker's check and its park is that worker's last wakeup — missed,
    /// the scope never joins and `serve` hangs. Shutting down immediately
    /// after spawn, many times over, hammers exactly that window.
    #[test]
    fn immediate_shutdown_never_strands_a_worker() {
        let (service, key) = service_with_route();
        let server = PlanServer::new(&service, ServerConfig::default().with_workers(4))
            .and_then(|s| s.route("vww", key))
            .expect("server builds");
        for _ in 0..50 {
            server
                .serve(|handle| handle.shutdown())
                .expect("ephemeral loopback bind succeeds");
        }
    }
}
