//! HTTP/1.1 wire handling: request assembly (with size limits and
//! timeouts) and response writing over a raw [`TcpStream`].
//!
//! This is a deliberately small subset of RFC 9112 — exactly what the
//! plan server needs: request line + headers + `Content-Length` bodies,
//! keep-alive/`Connection: close`, and pipelining (a connection buffer
//! that retains bytes beyond the current request). Chunked transfer
//! encoding is not supported and is rejected as malformed rather than
//! misparsed.
//!
//! Every failure is a typed [`ReadOutcome`] the connection loop turns
//! into a status code or a closed socket; nothing here panics and no
//! `io::Error` escapes.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Size and time bounds applied while assembling one request.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Limits {
    /// Cap on the request line + headers, bytes.
    pub max_header_bytes: usize,
    /// Cap on the declared `Content-Length`, bytes.
    pub max_body_bytes: usize,
    /// Wall-clock budget for assembling one full request. The socket
    /// read timeout only bounds a *single* read; this bounds the sum, so
    /// a trickling client cannot pin a worker indefinitely.
    pub read_timeout: Duration,
}

/// One parsed request.
#[derive(Debug)]
pub(crate) struct Request {
    /// Uppercase method token, verbatim.
    pub method: String,
    /// The request target (path), verbatim.
    pub target: String,
    /// Body bytes (empty without a `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response
    /// (HTTP/1.1 default, overridden by `Connection:` headers).
    pub keep_alive: bool,
}

/// Outcome of one [`Conn::read_request`] call.
#[derive(Debug)]
pub(crate) enum ReadOutcome {
    /// A complete request was assembled.
    Request(Request),
    /// The peer closed (or errored) the connection cleanly between
    /// requests; nothing to answer.
    Closed,
    /// The per-request read budget elapsed; the connection is abandoned
    /// without a response (the peer is not listening usefully).
    TimedOut,
    /// The bytes cannot be a request this server understands → 400.
    Malformed(&'static str),
    /// Request line + headers exceed the configured cap → 431.
    HeadersTooLarge,
    /// Declared body exceeds the configured cap → 413.
    BodyTooLarge,
}

/// Result of one socket fill.
enum Fill {
    /// More bytes (possibly zero after an `Interrupted` retry) arrived.
    Data,
    /// Orderly end of stream.
    Eof,
    /// The socket timeout or the overall deadline fired.
    TimedOut,
    /// A hard transport error; treat like a close.
    Error,
}

/// A response ready to serialize.
#[derive(Debug)]
pub(crate) struct Response {
    pub status: u16,
    pub reason: &'static str,
    pub content_type: &'static str,
    pub body: Vec<u8>,
}

/// One accepted connection: the stream plus the pipeline buffer of bytes
/// read past the previous request.
#[derive(Debug)]
pub(crate) struct Conn {
    stream: TcpStream,
    buf: Vec<u8>,
}

/// Index just past `\r\n\r\n`'s first byte pair — i.e. the offset of the
/// terminator — if the head is complete.
fn head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

impl Conn {
    pub fn new(stream: TcpStream) -> Self {
        Conn {
            stream,
            buf: Vec::new(),
        }
    }

    /// Assembles the next request from the pipeline buffer plus the
    /// socket. With `drain` set (server shutting down) an *empty* buffer
    /// returns [`ReadOutcome::Closed`] immediately instead of blocking
    /// for a request that may never come; already-received (pipelined)
    /// requests are still parsed and answered.
    pub fn read_request(&mut self, limits: &Limits, drain: bool) -> ReadOutcome {
        let deadline = Instant::now() + limits.read_timeout;
        let head_len = loop {
            if let Some(end) = head_end(&self.buf) {
                if end > limits.max_header_bytes {
                    return ReadOutcome::HeadersTooLarge;
                }
                break end;
            }
            if self.buf.len() > limits.max_header_bytes {
                return ReadOutcome::HeadersTooLarge;
            }
            if drain && self.buf.is_empty() {
                return ReadOutcome::Closed;
            }
            match self.fill(deadline) {
                Fill::Data => {}
                Fill::Eof => {
                    return if self.buf.is_empty() {
                        ReadOutcome::Closed
                    } else {
                        ReadOutcome::Malformed("connection closed mid-request")
                    };
                }
                Fill::TimedOut => return ReadOutcome::TimedOut,
                Fill::Error => return ReadOutcome::Closed,
            }
        };
        let head = match std::str::from_utf8(&self.buf[..head_len]) {
            Ok(head) => head,
            Err(_) => return ReadOutcome::Malformed("non-UTF-8 request head"),
        };
        let mut lines = lines_of(head);
        let Some(request_line) = lines.next() else {
            return ReadOutcome::Malformed("empty request head");
        };
        let mut parts = request_line.split(' ');
        let (Some(method), Some(target), Some(version), None) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            return ReadOutcome::Malformed("malformed request line");
        };
        if method.is_empty() || target.is_empty() {
            return ReadOutcome::Malformed("malformed request line");
        }
        let default_keep_alive = match version {
            "HTTP/1.1" => true,
            "HTTP/1.0" => false,
            _ => return ReadOutcome::Malformed("unsupported HTTP version"),
        };
        let mut keep_alive = default_keep_alive;
        let mut content_length: Option<usize> = None;
        for line in lines {
            let Some((name, value)) = line.split_once(':') else {
                return ReadOutcome::Malformed("malformed header line");
            };
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim();
            match name.as_str() {
                "content-length" => {
                    // RFC 9110 §8.6: the value is 1*DIGIT. `parse` alone
                    // also accepts a leading `+`, which a stricter proxy
                    // in front of this server would reject — a parsing
                    // disagreement is request-smuggling surface, so
                    // digits only.
                    if value.is_empty() || !value.bytes().all(|b| b.is_ascii_digit()) {
                        return ReadOutcome::Malformed("bad content-length");
                    }
                    let Ok(len) = value.parse::<usize>() else {
                        return ReadOutcome::Malformed("bad content-length");
                    };
                    if content_length.is_some_and(|prev| prev != len) {
                        return ReadOutcome::Malformed("conflicting content-length");
                    }
                    content_length = Some(len);
                }
                "transfer-encoding" => {
                    return ReadOutcome::Malformed("transfer-encoding not supported");
                }
                "connection" => {
                    let value = value.to_ascii_lowercase();
                    if value.split(',').any(|t| t.trim() == "close") {
                        keep_alive = false;
                    } else if value.split(',').any(|t| t.trim() == "keep-alive") {
                        keep_alive = true;
                    }
                }
                _ => {}
            }
        }
        // Own the request-line tokens before the body reads below
        // re-borrow the buffer mutably.
        let method = method.to_string();
        let target = target.to_string();
        let body_len = content_length.unwrap_or(0);
        if body_len > limits.max_body_bytes {
            return ReadOutcome::BodyTooLarge;
        }
        let body_start = head_len + 4;
        while self.buf.len() < body_start + body_len {
            match self.fill(deadline) {
                Fill::Data => {}
                Fill::Eof => return ReadOutcome::Malformed("connection closed mid-body"),
                Fill::TimedOut => return ReadOutcome::TimedOut,
                Fill::Error => return ReadOutcome::Closed,
            }
        }
        let request = Request {
            method,
            target,
            body: self.buf[body_start..body_start + body_len].to_vec(),
            keep_alive,
        };
        // Keep everything past this request: pipelined requests are
        // parsed on the next call without touching the socket.
        self.buf.drain(..body_start + body_len);
        ReadOutcome::Request(request)
    }

    /// Reads one chunk off the socket into the buffer, honoring the
    /// overall request deadline: the socket's read timeout is clamped to
    /// the budget's remainder before every blocking read, so the *sum*
    /// of reads — not each read alone — is what the deadline bounds. (A
    /// fixed per-read timeout would let a client trickling one byte just
    /// before the deadline hold the worker for up to a full extra
    /// timeout inside the final read.)
    fn fill(&mut self, deadline: Instant) -> Fill {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Fill::TimedOut;
        }
        if self.stream.set_read_timeout(Some(remaining)).is_err() {
            return Fill::Error;
        }
        let mut chunk = [0u8; 4096];
        match self.stream.read(&mut chunk) {
            Ok(0) => Fill::Eof,
            Ok(n) => {
                self.buf.extend_from_slice(&chunk[..n]);
                Fill::Data
            }
            Err(e) => match e.kind() {
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => Fill::TimedOut,
                std::io::ErrorKind::Interrupted => Fill::Data,
                _ => Fill::Error,
            },
        }
    }

    /// Serializes and flushes `response`. `close` selects the
    /// `Connection:` header (the caller decides based on the request and
    /// the drain state); write failures (peer dropped mid-response) are
    /// reported so the caller abandons the connection, never the server.
    pub fn write_response(&mut self, response: &Response, close: bool) -> std::io::Result<()> {
        let head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n\r\n",
            response.status,
            response.reason,
            response.content_type,
            response.body.len(),
            if close { "close" } else { "keep-alive" },
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(&response.body)?;
        self.stream.flush()
    }
}

/// Iterates the non-empty `\r\n`-separated lines of a request head.
fn lines_of(head: &str) -> impl Iterator<Item = &str> {
    head.split("\r\n").filter(|l| !l.is_empty())
}

/// Writes a minimal one-shot response on a stream that never became a
/// [`Conn`] (the accept backlog was full); best-effort by design.
pub(crate) fn reject_busy(stream: &mut TcpStream) {
    let _ = stream.write_all(
        b"HTTP/1.1 503 Service Unavailable\r\ncontent-type: application/json\r\n\
          content-length: 36\r\nconnection: close\r\n\r\n\
          {\"error\": \"connection backlog full\"}",
    );
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_end_finds_the_terminator() {
        assert_eq!(head_end(b"GET / HTTP/1.1\r\n\r\n"), Some(14));
        assert_eq!(head_end(b"GET / HTTP/1.1\r\n"), None);
        assert_eq!(head_end(b""), None);
    }

    #[test]
    fn busy_rejection_content_length_matches_the_body() {
        // The hand-written 503 declares its body length inline; keep the
        // two in sync.
        let body = "{\"error\": \"connection backlog full\"}";
        assert_eq!(body.len(), 36);
    }
}
