//! HTTP/1.1 wire handling: request assembly (with size limits and
//! timeouts) and response writing over a raw [`TcpStream`].
//!
//! This is a deliberately small subset of RFC 9112 — exactly what the
//! plan server needs: request line + headers + `Content-Length` bodies,
//! keep-alive/`Connection: close`, and pipelining (a connection buffer
//! that retains bytes beyond the current request). Chunked transfer
//! encoding is not supported and is rejected as malformed rather than
//! misparsed.
//!
//! The per-request wire path is **allocation-free**: a parsed
//! [`Request`] is a set of byte *ranges* into the connection's reusable
//! read buffer (no `String`/`Vec` per request; the buffer is drained
//! only after the response is built), and [`Conn::write_response`]
//! assembles head + body into a reusable output buffer — integers
//! rendered digit-by-digit, one `write_all`, so a cache-hit response is
//! one syscall over bytes that already existed ([`Body::Shared`]).
//!
//! Every failure is a typed [`ReadOutcome`] the connection loop turns
//! into a status code or a closed socket; nothing here panics and no
//! `io::Error` escapes.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Size and time bounds applied while assembling one request.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Limits {
    /// Cap on the request line + headers, bytes.
    pub max_header_bytes: usize,
    /// Cap on the declared `Content-Length`, bytes.
    pub max_body_bytes: usize,
    /// Wall-clock budget for assembling one full request. The socket
    /// read timeout only bounds a *single* read; this bounds the sum, so
    /// a trickling client cannot pin a worker indefinitely.
    pub read_timeout: Duration,
}

/// One parsed request: byte ranges into the connection's read buffer
/// (resolved through [`Conn::method`] / [`Conn::target`] /
/// [`Conn::body`]) instead of owned copies. The ranges are plain
/// offsets, so they survive buffer growth during the body reads; they
/// are valid until [`Conn::consume`] retires the request.
#[derive(Debug)]
pub(crate) struct Request {
    /// Uppercase method token, as a `(start, end)` range.
    method: (usize, usize),
    /// The request target (path), as a `(start, end)` range.
    target: (usize, usize),
    /// Body bytes, as a `(start, end)` range (empty without a
    /// `Content-Length`).
    body: (usize, usize),
    /// Total bytes this request occupies at the front of the buffer
    /// (head + terminator + body) — what [`Conn::consume`] drains.
    len: usize,
    /// Whether the connection should stay open after the response
    /// (HTTP/1.1 default, overridden by `Connection:` headers).
    pub keep_alive: bool,
}

/// Outcome of one [`Conn::read_request`] call.
#[derive(Debug)]
pub(crate) enum ReadOutcome {
    /// A complete request was assembled.
    Request(Request),
    /// The peer closed (or errored) the connection cleanly between
    /// requests; nothing to answer.
    Closed,
    /// The per-request read budget elapsed; the connection is abandoned
    /// without a response (the peer is not listening usefully).
    TimedOut,
    /// The bytes cannot be a request this server understands → 400.
    Malformed(&'static str),
    /// Request line + headers exceed the configured cap → 431.
    HeadersTooLarge,
    /// Declared body exceeds the configured cap → 413.
    BodyTooLarge,
}

/// Result of one socket fill.
enum Fill {
    /// More bytes (possibly zero after an `Interrupted` retry) arrived.
    Data,
    /// Orderly end of stream.
    Eof,
    /// The socket timeout or the overall deadline fired.
    TimedOut,
    /// A hard transport error; treat like a close.
    Error,
}

/// A response payload. The hot path serves [`Body::Shared`] — the
/// service's cached artifact bytes by `Arc` clone, no copy, no
/// serialization; error paths own their (small) bodies, and `/stats`
/// renders into the connection's reusable scratch buffer
/// ([`Body::Scratch`]) so the warm path stays allocation-free.
#[derive(Debug)]
pub(crate) enum Body {
    /// A compile-time constant body (`/healthz`).
    Static(&'static [u8]),
    /// A body rendered for this response (errors, `/metrics`).
    Owned(Vec<u8>),
    /// The service's cached response bytes, shared by reference count.
    Shared(Arc<[u8]>),
    /// The body lives in the connection's reusable scratch buffer
    /// ([`Conn::scratch_mut`]); resolved by [`Conn::write_response`].
    Scratch,
}

impl Body {
    /// The body's bytes; [`Body::Scratch`] resolves through the
    /// connection in [`Conn::write_response`], so it is empty here.
    pub fn as_bytes(&self) -> &[u8] {
        match self {
            Body::Static(bytes) => bytes,
            Body::Owned(bytes) => bytes,
            Body::Shared(bytes) => bytes,
            Body::Scratch => &[],
        }
    }
}

/// A response ready to serialize.
#[derive(Debug)]
pub(crate) struct Response {
    pub status: u16,
    pub reason: &'static str,
    pub content_type: &'static str,
    pub body: Body,
    /// Rendered `X-Plan-Receipt` header value, when the answer carries
    /// its audit receipt ([`crate::obs::Receipt::to_header_value`]).
    pub receipt: Option<String>,
}

/// One accepted connection: the stream, the pipeline buffer of bytes
/// read past the previous request, and the reusable response buffer.
/// Both buffers keep their capacity across requests, so a keep-alive
/// connection stops allocating after its first round.
#[derive(Debug)]
pub(crate) struct Conn {
    stream: TcpStream,
    buf: Vec<u8>,
    out: Vec<u8>,
    /// Reusable body scratch for handler-rendered responses
    /// ([`Body::Scratch`]): `/stats` writes its JSON here instead of
    /// allocating a fresh `String` per request.
    scratch: Vec<u8>,
}

/// Index just past `\r\n\r\n`'s first byte pair — i.e. the offset of the
/// terminator — if the head is complete.
fn head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// The offset of `inner` within `outer`, both borrowed from the same
/// buffer. Plain pointer arithmetic on shared borrows — no `unsafe` —
/// used to turn the head parser's `&str` tokens back into ranges.
fn offset_in(outer: &[u8], inner: &str) -> usize {
    inner.as_ptr() as usize - outer.as_ptr() as usize
}

/// Appends `value`'s decimal digits to `out` without allocating (the
/// `format!`-free half of the one-write response path).
fn push_usize(out: &mut Vec<u8>, mut value: usize) {
    let mut digits = [0u8; 20];
    let mut i = digits.len();
    loop {
        i -= 1;
        digits[i] = b'0' + (value % 10) as u8;
        value /= 10;
        if value == 0 {
            break;
        }
    }
    out.extend_from_slice(&digits[i..]);
}

impl Conn {
    pub fn new(stream: TcpStream) -> Self {
        Conn {
            stream,
            buf: Vec::new(),
            out: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// Clears and hands out the connection's scratch buffer for a
    /// [`Body::Scratch`] response. The capacity persists across
    /// requests, so a keep-alive connection renders `/stats` with zero
    /// allocations once the buffer has grown to its working size.
    pub fn scratch_mut(&mut self) -> &mut Vec<u8> {
        self.scratch.clear();
        &mut self.scratch
    }

    /// The request's method token. The head was validated as UTF-8
    /// during parsing, so the fallback is unreachable; it exists to keep
    /// this accessor panic-free.
    pub fn method<'a>(&'a self, request: &Request) -> &'a str {
        std::str::from_utf8(&self.buf[request.method.0..request.method.1]).unwrap_or("")
    }

    /// The request's target **path**, same contract as [`Conn::method`].
    /// Any query string is stripped before route matching (RFC 9112
    /// origin-form is `path [?query]`), so `GET /stats?x=1` routes like
    /// `GET /stats` instead of falling through to 404.
    pub fn target<'a>(&'a self, request: &Request) -> &'a str {
        let raw = std::str::from_utf8(&self.buf[request.target.0..request.target.1]).unwrap_or("");
        match raw.find('?') {
            Some(query) => &raw[..query],
            None => raw,
        }
    }

    /// The request's body bytes.
    pub fn body<'a>(&'a self, request: &Request) -> &'a [u8] {
        &self.buf[request.body.0..request.body.1]
    }

    /// Retires `request`: drains its bytes from the front of the buffer
    /// (keeping capacity and any pipelined bytes behind it). Call after
    /// the response is built; the request's ranges are dead afterwards.
    pub fn consume(&mut self, request: &Request) {
        self.buf.drain(..request.len);
    }

    /// Assembles the next request from the pipeline buffer plus the
    /// socket. With `drain` set (server shutting down) an *empty* buffer
    /// returns [`ReadOutcome::Closed`] immediately instead of blocking
    /// for a request that may never come; already-received (pipelined)
    /// requests are still parsed and answered.
    pub fn read_request(&mut self, limits: &Limits, drain: bool) -> ReadOutcome {
        let deadline = Instant::now() + limits.read_timeout;
        let head_len = loop {
            if let Some(end) = head_end(&self.buf) {
                if end > limits.max_header_bytes {
                    return ReadOutcome::HeadersTooLarge;
                }
                break end;
            }
            if self.buf.len() > limits.max_header_bytes {
                return ReadOutcome::HeadersTooLarge;
            }
            if drain && self.buf.is_empty() {
                return ReadOutcome::Closed;
            }
            match self.fill(deadline) {
                Fill::Data => {}
                Fill::Eof => {
                    return if self.buf.is_empty() {
                        ReadOutcome::Closed
                    } else {
                        ReadOutcome::Malformed("connection closed mid-request")
                    };
                }
                Fill::TimedOut => return ReadOutcome::TimedOut,
                Fill::Error => return ReadOutcome::Closed,
            }
        };
        let head = match std::str::from_utf8(&self.buf[..head_len]) {
            Ok(head) => head,
            Err(_) => return ReadOutcome::Malformed("non-UTF-8 request head"),
        };
        let mut lines = lines_of(head);
        let Some(request_line) = lines.next() else {
            return ReadOutcome::Malformed("empty request head");
        };
        let mut parts = request_line.split(' ');
        let (Some(method), Some(target), Some(version), None) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            return ReadOutcome::Malformed("malformed request line");
        };
        if method.is_empty() || target.is_empty() {
            return ReadOutcome::Malformed("malformed request line");
        }
        let default_keep_alive = match version {
            "HTTP/1.1" => true,
            "HTTP/1.0" => false,
            _ => return ReadOutcome::Malformed("unsupported HTTP version"),
        };
        let mut keep_alive = default_keep_alive;
        let mut content_length: Option<usize> = None;
        for line in lines {
            let Some((name, value)) = line.split_once(':') else {
                return ReadOutcome::Malformed("malformed header line");
            };
            let name = name.trim();
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                // RFC 9110 §8.6: the value is 1*DIGIT. `parse` alone
                // also accepts a leading `+`, which a stricter proxy
                // in front of this server would reject — a parsing
                // disagreement is request-smuggling surface, so
                // digits only.
                if value.is_empty() || !value.bytes().all(|b| b.is_ascii_digit()) {
                    return ReadOutcome::Malformed("bad content-length");
                }
                let Ok(len) = value.parse::<usize>() else {
                    return ReadOutcome::Malformed("bad content-length");
                };
                if content_length.is_some_and(|prev| prev != len) {
                    return ReadOutcome::Malformed("conflicting content-length");
                }
                content_length = Some(len);
            } else if name.eq_ignore_ascii_case("transfer-encoding") {
                return ReadOutcome::Malformed("transfer-encoding not supported");
            } else if name.eq_ignore_ascii_case("connection") {
                if value
                    .split(',')
                    .any(|t| t.trim().eq_ignore_ascii_case("close"))
                {
                    keep_alive = false;
                } else if value
                    .split(',')
                    .any(|t| t.trim().eq_ignore_ascii_case("keep-alive"))
                {
                    keep_alive = true;
                }
            }
        }
        // Turn the borrowed tokens into plain offsets before the body
        // reads below re-borrow the buffer mutably (offsets survive
        // buffer growth; borrows would not).
        let method_start = offset_in(&self.buf, method);
        let method = (method_start, method_start + method.len());
        let target_start = offset_in(&self.buf, target);
        let target = (target_start, target_start + target.len());
        let body_len = content_length.unwrap_or(0);
        if body_len > limits.max_body_bytes {
            return ReadOutcome::BodyTooLarge;
        }
        let body_start = head_len + 4;
        while self.buf.len() < body_start + body_len {
            match self.fill(deadline) {
                Fill::Data => {}
                Fill::Eof => return ReadOutcome::Malformed("connection closed mid-body"),
                Fill::TimedOut => return ReadOutcome::TimedOut,
                Fill::Error => return ReadOutcome::Closed,
            }
        }
        // The bytes stay in the buffer (pipelined requests behind them
        // included) until the caller responds and calls `consume`.
        ReadOutcome::Request(Request {
            method,
            target,
            body: (body_start, body_start + body_len),
            len: body_start + body_len,
            keep_alive,
        })
    }

    /// Reads one chunk off the socket into the buffer, honoring the
    /// overall request deadline: the socket's read timeout is clamped to
    /// the budget's remainder before every blocking read, so the *sum*
    /// of reads — not each read alone — is what the deadline bounds. (A
    /// fixed per-read timeout would let a client trickling one byte just
    /// before the deadline hold the worker for up to a full extra
    /// timeout inside the final read.)
    fn fill(&mut self, deadline: Instant) -> Fill {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Fill::TimedOut;
        }
        if self.stream.set_read_timeout(Some(remaining)).is_err() {
            return Fill::Error;
        }
        let mut chunk = [0u8; 4096];
        match self.stream.read(&mut chunk) {
            Ok(0) => Fill::Eof,
            Ok(n) => {
                self.buf.extend_from_slice(&chunk[..n]);
                Fill::Data
            }
            Err(e) => match e.kind() {
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => Fill::TimedOut,
                std::io::ErrorKind::Interrupted => Fill::Data,
                _ => Fill::Error,
            },
        }
    }

    /// Serializes and flushes `response` through the connection's
    /// reusable output buffer: head and body in **one** `write_all`
    /// (one syscall, no interleaving partial writes on the wire), no
    /// per-response allocation once the buffer has grown to its working
    /// size. `close` selects the `Connection:` header (the caller
    /// decides based on the request and the drain state); write failures
    /// (peer dropped mid-response) are reported so the caller abandons
    /// the connection, never the server.
    pub fn write_response(&mut self, response: &Response, close: bool) -> std::io::Result<()> {
        let body: &[u8] = match &response.body {
            Body::Scratch => &self.scratch,
            other => other.as_bytes(),
        };
        self.out.clear();
        self.out.extend_from_slice(b"HTTP/1.1 ");
        push_usize(&mut self.out, usize::from(response.status));
        self.out.push(b' ');
        self.out.extend_from_slice(response.reason.as_bytes());
        self.out.extend_from_slice(b"\r\ncontent-type: ");
        self.out.extend_from_slice(response.content_type.as_bytes());
        self.out.extend_from_slice(b"\r\ncontent-length: ");
        push_usize(&mut self.out, body.len());
        if let Some(receipt) = &response.receipt {
            self.out.extend_from_slice(b"\r\nx-plan-receipt: ");
            self.out.extend_from_slice(receipt.as_bytes());
        }
        self.out.extend_from_slice(b"\r\nconnection: ");
        self.out
            .extend_from_slice(if close { b"close" } else { b"keep-alive" });
        self.out.extend_from_slice(b"\r\n\r\n");
        self.out.extend_from_slice(body);
        self.stream.write_all(&self.out)?;
        self.stream.flush()
    }
}

/// Iterates the non-empty `\r\n`-separated lines of a request head.
fn lines_of(head: &str) -> impl Iterator<Item = &str> {
    head.split("\r\n").filter(|l| !l.is_empty())
}

/// Writes a minimal one-shot response on a stream that never became a
/// [`Conn`] (the accept backlog was full); best-effort by design.
pub(crate) fn reject_busy(stream: &mut TcpStream) {
    let _ = stream.write_all(
        b"HTTP/1.1 503 Service Unavailable\r\ncontent-type: application/json\r\n\
          content-length: 36\r\nconnection: close\r\n\r\n\
          {\"error\": \"connection backlog full\"}",
    );
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_end_finds_the_terminator() {
        assert_eq!(head_end(b"GET / HTTP/1.1\r\n\r\n"), Some(14));
        assert_eq!(head_end(b"GET / HTTP/1.1\r\n"), None);
        assert_eq!(head_end(b""), None);
    }

    #[test]
    fn busy_rejection_content_length_matches_the_body() {
        // The hand-written 503 declares its body length inline; keep the
        // two in sync.
        let body = "{\"error\": \"connection backlog full\"}";
        assert_eq!(body.len(), 36);
    }

    #[test]
    fn push_usize_renders_decimal_digits() {
        for (value, expected) in [
            (0usize, "0"),
            (7, "7"),
            (200, "200"),
            (431, "431"),
            (usize::MAX, &usize::MAX.to_string()),
        ] {
            let mut out = Vec::new();
            push_usize(&mut out, value);
            assert_eq!(out, expected.as_bytes());
        }
    }

    #[test]
    fn offset_in_recovers_token_positions() {
        let buf = b"POST /v1/plan HTTP/1.1".to_vec();
        let head = std::str::from_utf8(&buf).unwrap();
        let target = head.split(' ').nth(1).unwrap();
        assert_eq!(offset_in(&buf, target), 5);
        assert_eq!(target.len(), 8);
    }

    #[test]
    fn body_variants_expose_the_same_bytes() {
        let shared: Arc<[u8]> = Arc::from(b"xyz".to_vec().into_boxed_slice());
        assert_eq!(Body::Static(b"xyz").as_bytes(), b"xyz");
        assert_eq!(Body::Owned(b"xyz".to_vec()).as_bytes(), b"xyz");
        assert_eq!(Body::Shared(shared).as_bytes(), b"xyz");
        // Scratch bodies resolve through the connection at write time.
        assert_eq!(Body::Scratch.as_bytes(), b"");
    }
}
