//! Evaluation reporting: the aggregations behind Fig. 5, Fig. 6 and the
//! headline claims.

use stm32_power::Joules;
use stm32_rcc::Hertz;
use tinyengine::{qos_window, IdlePolicy};
use tinynn::{LayerKind, Model};

use crate::dse::DseConfig;
use crate::error::DaeDvfsError;
use crate::pipeline::DeploymentPlan;
use crate::planner::Planner;

/// Iso-latency energy of our approach vs the two baselines (one Fig. 5 bar
/// group).
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyComparison {
    /// Model name.
    pub model: String,
    /// QoS slack level (0.10 / 0.30 / 0.50).
    pub slack: f64,
    /// The QoS window in seconds.
    pub qos_secs: f64,
    /// DAE+DVFS total window energy.
    pub ours: Joules,
    /// Plain TinyEngine (busy idle at 216 MHz).
    pub tinyengine: Joules,
    /// TinyEngine with clock gating.
    pub tinyengine_gated: Joules,
}

impl EnergyComparison {
    /// Energy gain over plain TinyEngine, percent.
    pub fn gain_vs_tinyengine_pct(&self) -> f64 {
        (self.tinyengine.as_f64() - self.ours.as_f64()) / self.tinyengine.as_f64() * 100.0
    }

    /// Energy gain over TinyEngine + clock gating, percent.
    pub fn gain_vs_gated_pct(&self) -> f64 {
        (self.tinyengine_gated.as_f64() - self.ours.as_f64()) / self.tinyengine_gated.as_f64()
            * 100.0
    }
}

/// Runs the full iso-latency comparison for one model and slack level.
///
/// Single-shot convenience over [`Planner::compare_with_baselines`]; use
/// the planner directly to compare several slack levels without repeating
/// the DSE.
///
/// # Errors
///
/// Propagates pipeline and baseline errors.
pub fn compare_with_baselines(
    model: &Model,
    slack: f64,
    config: &DseConfig,
) -> Result<EnergyComparison, DaeDvfsError> {
    Planner::new(model, config)?.compare_with_baselines(slack)
}

impl Planner {
    /// Runs the iso-latency comparison of one slack level against the
    /// cached fronts and the cached TinyEngine lowering.
    ///
    /// # Errors
    ///
    /// Propagates baseline and optimization errors.
    pub fn compare_with_baselines(&self, slack: f64) -> Result<EnergyComparison, DaeDvfsError> {
        crate::request::validate_positive_time("slack", slack)?;
        let baseline = self.baseline()?;
        let qos = qos_window(self.baseline_latency()?, slack);

        let plan = self.optimize(qos)?;
        let ours = self.deploy(&plan)?;
        // The paper's plain-TinyEngine baseline keeps "the board remaining
        // in an idle state with a constant frequency of 216 MHz": WFI sleep
        // with all clocks (including the 432 MHz-VCO PLL) still running.
        // Both baselines replay on the *target's* machine (same substrate
        // the window was derived from), at the target's baseline clock.
        let te = baseline.run_iso_latency_on(
            &mut self.target().baseline_machine(*baseline.clock()),
            qos,
            IdlePolicy::Wfi216,
        );
        let gated = baseline.run_iso_latency_on(
            &mut self.target().baseline_machine(*baseline.clock()),
            qos,
            IdlePolicy::ClockGated,
        );

        Ok(EnergyComparison {
            model: self.model().name.clone(),
            slack,
            qos_secs: qos,
            ours: ours.total_energy,
            tinyengine: te.total_energy,
            tinyengine_gated: gated.total_energy,
        })
    }

    /// Runs [`Planner::compare_with_baselines`] for a batch of slack
    /// levels, striping the independent per-slack work (solve, deploy,
    /// two baseline replays) over `std::thread::scope` when more than one
    /// core is available. Results are returned in slack order and are
    /// identical to the sequential loop.
    ///
    /// # Errors
    ///
    /// [`DaeDvfsError::InvalidRequest`] for NaN / non-positive slacks;
    /// the error of the earliest failing slack otherwise.
    pub fn compare_sweep(&self, slacks: &[f64]) -> Result<Vec<EnergyComparison>, DaeDvfsError> {
        for &s in slacks {
            crate::request::validate_positive_time("slack", s)?;
        }
        // Prime the shared baseline lowering before fanning out, so the
        // workers race on a cache hit rather than compiling it N times.
        if !slacks.is_empty() {
            self.baseline()?;
        }
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(slacks.len());
        if threads <= 1 {
            return slacks
                .iter()
                .map(|&s| self.compare_with_baselines(s))
                .collect();
        }
        let mut slots: Vec<Option<Result<EnergyComparison, DaeDvfsError>>> =
            (0..slacks.len()).map(|_| None).collect();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    s.spawn(move || {
                        slacks
                            .iter()
                            .enumerate()
                            .skip(t)
                            .step_by(threads)
                            .map(|(i, &slack)| (i, self.compare_with_baselines(slack)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for handle in handles {
                for (i, cmp) in handle.join().expect("comparison worker thread panicked") {
                    slots[i] = Some(cmp);
                }
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("every slack is compared exactly once"))
            .collect()
    }
}

/// One row of the Fig. 6 frequency map: a layer's chosen HFO frequency and
/// granularity under a given QoS.
#[derive(Debug, Clone, PartialEq)]
pub struct FrequencyMapRow {
    /// Layer name.
    pub name: String,
    /// Layer kind (pointwise / depthwise / rest).
    pub kind: LayerKind,
    /// Chosen HFO frequency.
    pub hfo: Hertz,
    /// Chosen granularity.
    pub granularity: u8,
}

/// The Fig. 6 view of one deployment plan.
#[derive(Debug, Clone, PartialEq)]
pub struct FrequencyMap {
    /// Model name.
    pub model: String,
    /// QoS slack the plan was optimized for.
    pub slack: f64,
    /// Per-layer rows in execution order.
    pub rows: Vec<FrequencyMapRow>,
}

impl FrequencyMap {
    /// Builds the map from a deployment plan.
    pub fn from_plan(plan: &DeploymentPlan, slack: f64) -> Self {
        FrequencyMap {
            model: plan.model.clone(),
            slack,
            rows: plan
                .decisions
                .iter()
                .map(|d| FrequencyMapRow {
                    name: d.name.clone(),
                    kind: d.kind,
                    hfo: d.point.hfo.sysclk(),
                    granularity: d.point.granularity.0,
                })
                .collect(),
        }
    }

    /// Fraction of layers of `kind` running at exactly `freq` (in `[0,1]`;
    /// 0 when the kind is absent).
    pub fn share_at(&self, kind: LayerKind, freq: Hertz) -> f64 {
        let of_kind: Vec<_> = self.rows.iter().filter(|r| r.kind == kind).collect();
        if of_kind.is_empty() {
            return 0.0;
        }
        of_kind.iter().filter(|r| r.hfo == freq).count() as f64 / of_kind.len() as f64
    }

    /// Fraction of layers of `kind` at or below `freq`.
    pub fn share_at_or_below(&self, kind: LayerKind, freq: Hertz) -> f64 {
        let of_kind: Vec<_> = self.rows.iter().filter(|r| r.kind == kind).collect();
        if of_kind.is_empty() {
            return 0.0;
        }
        of_kind.iter().filter(|r| r.hfo <= freq).count() as f64 / of_kind.len() as f64
    }

    /// Fraction of all layers running at `freq`.
    pub fn overall_share_at(&self, freq: Hertz) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.rows.iter().filter(|r| r.hfo == freq).count() as f64 / self.rows.len() as f64
    }

    /// Fraction of DAE-capable layers using granularity `g`.
    pub fn granularity_share(&self, g: u8) -> f64 {
        let capable: Vec<_> = self
            .rows
            .iter()
            .filter(|r| matches!(r.kind, LayerKind::Depthwise | LayerKind::Pointwise))
            .collect();
        if capable.is_empty() {
            return 0.0;
        }
        capable.iter().filter(|r| r.granularity == g).count() as f64 / capable.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::optimize;
    use tinyengine::TinyEngine;
    use tinynn::models::vww;

    #[test]
    fn comparison_has_positive_gains_at_moderate_slack() {
        let model = vww();
        let cmp = compare_with_baselines(&model, 0.3, &DseConfig::paper()).unwrap();
        assert!(cmp.gain_vs_tinyengine_pct() > 0.0);
        assert!(cmp.gain_vs_gated_pct() > 0.0);
        assert!(cmp.gain_vs_tinyengine_pct() > cmp.gain_vs_gated_pct());
    }

    #[test]
    fn compare_sweep_matches_sequential_loop() {
        let model = vww();
        let planner = Planner::new(&model, &DseConfig::paper()).unwrap();
        let slacks = [0.1, 0.3, 0.5];
        let swept = planner.compare_sweep(&slacks).unwrap();
        assert_eq!(swept.len(), slacks.len());
        for (cmp, &slack) in swept.iter().zip(&slacks) {
            let solo = planner.compare_with_baselines(slack).unwrap();
            assert_eq!(*cmp, solo, "slack {slack} diverged under striping");
        }
        assert!(matches!(
            planner.compare_sweep(&[0.3, f64::NAN]),
            Err(crate::error::DaeDvfsError::InvalidRequest { .. })
        ));
        assert!(planner.compare_sweep(&[]).unwrap().is_empty());
    }

    #[test]
    fn frequency_map_shares_sum_to_one() {
        let model = vww();
        let engine = TinyEngine::new();
        let t = engine.run(&model).unwrap().total_time_secs;
        let plan = optimize(&model, qos_window(t, 0.3), &DseConfig::paper()).unwrap();
        let map = FrequencyMap::from_plan(&plan, 0.3);
        assert_eq!(map.rows.len(), model.layer_count());

        let freqs: std::collections::BTreeSet<Hertz> = map.rows.iter().map(|r| r.hfo).collect();
        let total: f64 = freqs.iter().map(|&f| map.overall_share_at(f)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn tight_qos_uses_higher_frequencies() {
        let model = vww();
        let engine = TinyEngine::new();
        let t = engine.run(&model).unwrap().total_time_secs;
        let cfg = DseConfig::paper();
        let tight =
            FrequencyMap::from_plan(&optimize(&model, qos_window(t, 0.1), &cfg).unwrap(), 0.1);
        let relaxed =
            FrequencyMap::from_plan(&optimize(&model, qos_window(t, 0.5), &cfg).unwrap(), 0.5);
        let max = Hertz::mhz(216);
        assert!(
            tight.overall_share_at(max) >= relaxed.overall_share_at(max),
            "tight {} vs relaxed {}",
            tight.overall_share_at(max),
            relaxed.overall_share_at(max)
        );
    }

    #[test]
    fn share_of_missing_kind_is_zero() {
        let map = FrequencyMap {
            model: "empty".into(),
            slack: 0.1,
            rows: Vec::new(),
        };
        assert_eq!(map.share_at(LayerKind::Depthwise, Hertz::mhz(216)), 0.0);
        assert_eq!(map.overall_share_at(Hertz::mhz(216)), 0.0);
        assert_eq!(map.granularity_share(4), 0.0);
    }
}
