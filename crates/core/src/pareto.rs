//! Pareto-front extraction over (latency, energy) points (step 2B).

use crate::dse::DsePoint;

/// Extracts the Pareto-optimal subset minimizing both latency and energy.
///
/// The result is sorted by ascending latency (therefore descending energy);
/// dominated and duplicate points are removed.
///
/// # Examples
///
/// ```
/// use dae_dvfs::{pareto_front, DsePoint, Granularity};
/// use stm32_power::Joules;
/// use stm32_rcc::{ClockSource, Hertz, PllConfig};
///
/// # fn main() -> Result<(), stm32_rcc::RccError> {
/// let pll = PllConfig::new(ClockSource::hse(Hertz::mhz(50)), 25, 216, 2)?;
/// let mk = |t: f64, e: f64| DsePoint {
///     granularity: Granularity(0),
///     hfo: pll,
///     latency_secs: t,
///     energy: Joules::new(e),
///     switches: 0,
///     first_stage_secs: 0.0,
/// };
/// let front = pareto_front(vec![mk(1.0, 5.0), mk(2.0, 3.0), mk(1.5, 6.0)]);
/// assert_eq!(front.len(), 2); // (1.5, 6.0) is dominated by (1.0, 5.0)
/// # Ok(())
/// # }
/// ```
pub fn pareto_front(mut points: Vec<DsePoint>) -> Vec<DsePoint> {
    points.sort_by(|a, b| {
        a.latency_secs
            .partial_cmp(&b.latency_secs)
            .expect("latencies are finite")
            .then(
                a.energy
                    .partial_cmp(&b.energy)
                    .expect("energies are finite"),
            )
    });
    let mut front: Vec<DsePoint> = Vec::new();
    for p in points {
        match front.last() {
            Some(last) if p.energy >= last.energy => {
                // Dominated: slower-or-equal (by sort order) and not
                // strictly cheaper.
            }
            _ => front.push(p),
        }
    }
    front
}

/// Whether `a` dominates `b` (no worse in both objectives, better in one).
pub fn dominates(a: &DsePoint, b: &DsePoint) -> bool {
    let no_worse = a.latency_secs <= b.latency_secs && a.energy <= b.energy;
    let better = a.latency_secs < b.latency_secs || a.energy < b.energy;
    no_worse && better
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dae::Granularity;
    use stm32_power::Joules;
    use stm32_rcc::{ClockSource, Hertz, PllConfig};

    fn mk(t: f64, e: f64) -> DsePoint {
        DsePoint {
            granularity: Granularity(0),
            hfo: PllConfig::new(ClockSource::hse(Hertz::mhz(50)), 25, 216, 2).unwrap(),
            latency_secs: t,
            energy: Joules::new(e),
            switches: 0,
            first_stage_secs: 0.0,
        }
    }

    #[test]
    fn front_is_mutually_nondominated() {
        let pts = vec![
            mk(1.0, 9.0),
            mk(2.0, 7.0),
            mk(3.0, 8.0), // dominated by (2,7)
            mk(4.0, 2.0),
            mk(0.5, 12.0),
            mk(0.5, 11.0), // duplicate latency, cheaper
        ];
        let front = pareto_front(pts);
        for a in &front {
            for b in &front {
                assert!(!dominates(a, b) || a == b || !std::ptr::eq(a, b));
            }
        }
        // Expected survivors: (0.5,11), (1,9), (2,7), (4,2).
        assert_eq!(front.len(), 4);
        assert_eq!(front[0].latency_secs, 0.5);
        assert_eq!(front[0].energy, Joules::new(11.0));
    }

    #[test]
    fn front_sorted_by_latency_energy_decreasing() {
        let pts = vec![mk(3.0, 1.0), mk(1.0, 3.0), mk(2.0, 2.0)];
        let front = pareto_front(pts);
        assert_eq!(front.len(), 3);
        for w in front.windows(2) {
            assert!(w[0].latency_secs < w[1].latency_secs);
            assert!(w[0].energy > w[1].energy);
        }
    }

    #[test]
    fn single_point_survives() {
        let front = pareto_front(vec![mk(1.0, 1.0)]);
        assert_eq!(front.len(), 1);
    }

    #[test]
    fn empty_input() {
        assert!(pareto_front(Vec::new()).is_empty());
    }

    #[test]
    fn identical_points_deduplicated() {
        let front = pareto_front(vec![mk(1.0, 1.0), mk(1.0, 1.0), mk(1.0, 1.0)]);
        assert_eq!(front.len(), 1);
    }

    #[test]
    fn dominates_relation() {
        assert!(dominates(&mk(1.0, 1.0), &mk(2.0, 2.0)));
        assert!(dominates(&mk(1.0, 2.0), &mk(1.0, 3.0)));
        assert!(!dominates(&mk(1.0, 3.0), &mk(2.0, 2.0)));
        assert!(!dominates(&mk(1.0, 1.0), &mk(1.0, 1.0)));
    }
}
