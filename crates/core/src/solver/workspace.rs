//! Reusable flat DP storage for the solver core.
//!
//! Every solve used to allocate its DP rows (`vec![vec![INF; buckets]]`),
//! per-class pick tables and backtracking traces from scratch. A
//! [`SolverWorkspace`] owns all of those buffers as row-major flat vectors
//! and hands them to the DP cores, which resize-and-refill instead of
//! reallocating. The [`crate::Planner`] holds a [`WorkspacePool`] of them
//! and reuses them across `optimize` / `sweep` calls; standalone callers
//! can create one per thread and amortize it over a batch of solves.
//!
//! The workspace carries no results — after a solve it is an opaque bag of
//! scratch capacity, safe to reuse for any later solve of any shape.

use stm32_rcc::Hertz;

use crate::sync::{lock, rank, RankedMutex};

/// Per-item precomputed data for the sequence DP: the item's frequency id
/// in the solve's frequency universe, its bucket weights and adjusted
/// energies for the same-frequency and changed-frequency transitions.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SeqItem {
    /// Index of the item's HFO sysclk in the sorted frequency universe.
    pub f_new: u16,
    /// Bucket weight when the previous layer left the same HFO locked.
    pub w_same: usize,
    /// Bucket weight when entering from a different HFO (adds the exposed
    /// re-lock overhead).
    pub w_diff: usize,
    /// Adjusted energy (window objective) for the same-frequency entry.
    pub de_same: f64,
    /// Adjusted energy for the changed-frequency entry.
    pub de_diff: f64,
}

/// Reusable flat buffers for the MCKP and sequence DPs.
///
/// Construct once, pass to the `*_with` solver entry points (or to
/// [`crate::solver::mckp_sweep`] / [`crate::solver::sequence_sweep`]), and
/// keep it around: buffer capacity is retained between solves, so steady
/// state solves allocate nothing.
#[derive(Debug, Clone, Default)]
pub struct SolverWorkspace {
    /// Current MCKP DP row (`buckets` entries; min energy per exact
    /// bucket-weight).
    pub(crate) mckp_dp: Vec<f64>,
    /// Next MCKP DP row being built (swapped with `mckp_dp` per class).
    pub(crate) mckp_next: Vec<f64>,
    /// Row-major pick table: `picks[k * buckets + b]` is the item chosen
    /// for class `k` at bucket `b` (`u32::MAX` = unreachable).
    pub(crate) mckp_picks: Vec<u32>,
    /// Per-item bucket weights, class-major (see `mckp_offsets`).
    pub(crate) mckp_weights: Vec<usize>,
    /// Start offset of each class in `mckp_weights` (plus a final
    /// end-of-data sentinel).
    pub(crate) mckp_offsets: Vec<usize>,
    /// Current sequence DP grid (`nf * buckets` entries, row-major by
    /// frequency).
    pub(crate) seq_dp: Vec<f64>,
    /// Next sequence DP grid being built.
    pub(crate) seq_next: Vec<f64>,
    /// Flat backtracking trace: `(item, prev_freq, prev_bucket)` per
    /// `(layer, freq, bucket)` state.
    pub(crate) seq_back: Vec<(u32, u16, u32)>,
    /// Per-item precomputed weights / energies / frequency ids,
    /// front-major (see `seq_offsets`).
    pub(crate) seq_items: Vec<SeqItem>,
    /// Start offset of each front in `seq_items` (plus a final sentinel).
    pub(crate) seq_offsets: Vec<usize>,
    /// The solve's sorted, deduplicated frequency universe.
    pub(crate) freqs: Vec<Hertz>,
}

impl SolverWorkspace {
    /// An empty workspace; buffers grow on first use and are retained.
    pub fn new() -> Self {
        SolverWorkspace::default()
    }
}

/// A small pool of [`SolverWorkspace`]s shared by concurrent solvers.
///
/// The [`crate::Planner`] historically kept **one** workspace behind a
/// `try_lock`: the loser of any contention solved into a throw-away
/// workspace and its warmed buffers were dropped on the floor. The pool
/// keeps up to `capacity` workspaces around instead, so every concurrent
/// solve checks one out, reuses its retained buffers, and returns it —
/// steady-state contended solves allocate nothing.
///
/// Checkouts never block on other solvers: [`WorkspacePool::take`] only
/// holds the pool lock long enough to pop a slot, and an empty pool hands
/// out a fresh workspace (warmed ones are returned up to the capacity,
/// extras are dropped). Results can never depend on which workspace a
/// solve used — the buffers are pure scratch.
#[derive(Debug)]
pub struct WorkspacePool {
    /// Carries [`rank::WORKSPACE`], the highest rank in the workspace's
    /// lock order: a solve may run under any service lock regime without
    /// inverting the acquisition order.
    slots: RankedMutex<Vec<SolverWorkspace>>,
    capacity: usize,
}

impl Default for WorkspacePool {
    /// A single-slot pool (the smallest useful capacity).
    fn default() -> Self {
        WorkspacePool::new(1)
    }
}

impl WorkspacePool {
    /// A pool retaining at most `capacity` idle workspaces (floored at 1).
    pub fn new(capacity: usize) -> Self {
        WorkspacePool {
            slots: RankedMutex::new(rank::WORKSPACE, Vec::new()),
            capacity: capacity.max(1),
        }
    }

    /// A pool sized to the machine's available parallelism — one retained
    /// workspace per hardware thread that could be solving concurrently.
    pub fn for_parallelism() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        WorkspacePool::new(threads)
    }

    /// Checks a workspace out of the pool (a fresh one when the pool is
    /// empty). Pair with [`WorkspacePool::put`], or use
    /// [`WorkspacePool::run`] for the scoped form.
    pub fn take(&self) -> SolverWorkspace {
        lock(&self.slots).pop().unwrap_or_default()
    }

    /// Returns a workspace to the pool; dropped if the pool already holds
    /// `capacity` idle workspaces.
    pub fn put(&self, workspace: SolverWorkspace) {
        let mut slots = lock(&self.slots);
        if slots.len() < self.capacity.max(1) {
            slots.push(workspace);
        }
    }

    /// Runs `f` with a pooled workspace, returning it afterwards. The
    /// closure runs outside any lock, so concurrent `run` calls proceed
    /// in parallel on distinct workspaces.
    pub fn run<R>(&self, f: impl FnOnce(&mut SolverWorkspace) -> R) -> R {
        let mut workspace = self.take();
        let result = f(&mut workspace);
        self.put(workspace);
        result
    }

    /// Number of idle workspaces currently retained (diagnostics/tests).
    pub fn idle(&self) -> usize {
        lock(&self.slots).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_is_reusable_scratch() {
        let ws = SolverWorkspace::new();
        assert!(ws.mckp_dp.is_empty());
        // Clone + Default make it cheap to hand one per worker thread.
        let _ = ws.clone();
    }

    #[test]
    fn pool_reuses_returned_workspaces() {
        let pool = WorkspacePool::new(2);
        assert_eq!(pool.idle(), 0);
        let mut ws = pool.take();
        ws.mckp_dp.resize(128, 0.0);
        let capacity = ws.mckp_dp.capacity();
        pool.put(ws);
        assert_eq!(pool.idle(), 1);
        // The warmed buffer comes back on the next checkout.
        let ws = pool.take();
        assert!(ws.mckp_dp.capacity() >= capacity);
        assert_eq!(pool.idle(), 0);
        pool.put(ws);
    }

    #[test]
    fn pool_caps_retained_workspaces() {
        let pool = WorkspacePool::new(2);
        for _ in 0..5 {
            pool.put(SolverWorkspace::new());
        }
        assert_eq!(pool.idle(), 2);
    }

    #[test]
    fn run_returns_the_workspace() {
        let pool = WorkspacePool::new(4);
        let out = pool.run(|ws| {
            ws.mckp_dp.push(1.0);
            ws.mckp_dp.len()
        });
        assert_eq!(out, 1);
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn concurrent_checkouts_get_distinct_workspaces() {
        let pool = WorkspacePool::new(8);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    pool.run(|ws| {
                        ws.mckp_dp.clear();
                        ws.mckp_dp.resize(64, 0.0);
                    });
                });
            }
        });
        assert!(pool.idle() >= 1 && pool.idle() <= 8);
    }
}
