//! Reusable flat DP storage for the solver core.
//!
//! Every solve used to allocate its DP rows (`vec![vec![INF; buckets]]`),
//! per-class pick tables and backtracking traces from scratch. A
//! [`SolverWorkspace`] owns all of those buffers as row-major flat vectors
//! and hands them to the DP cores, which resize-and-refill instead of
//! reallocating. The [`crate::Planner`] holds a [`WorkspacePool`] of them
//! and reuses them across `optimize` / `sweep` calls; standalone callers
//! can create one per thread and amortize it over a batch of solves.
//!
//! Since the quantized-kernel rewrite the workspace also retains the
//! **checkpointed** DP table of its last solve: one row per class/layer
//! prefix (`mckp_rows` / `seq_rows`) together with the quantized item
//! lanes and grid that produced it. The incremental entry points
//! ([`crate::solver::mckp_resweep`] / [`crate::solver::sequence_resweep`])
//! diff freshly prepared lanes against the retained ones bitwise and
//! refill only the suffix rows after the first changed class. The scratch
//! contract is therefore refined, not weakened: **results never depend on
//! which workspace a solve used** — retained checkpoints only change how
//! much of the table is *refilled*, never its contents, because a prefix
//! is reused only when the grid and every lane byte feeding it are
//! identical. A workspace stays safe to reuse for any later solve of any
//! shape.

use stm32_rcc::Hertz;

use crate::solver::Grid;
use crate::sync::{lock, rank, RankedMutex};

/// Per-item precomputed data for the sequence DP: the item's frequency id
/// in the solve's frequency universe, its bucket weights and adjusted
/// energies for the same-frequency and changed-frequency transitions.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SeqItem {
    /// Index of the item's HFO sysclk in the sorted frequency universe.
    pub f_new: u16,
    /// Bucket weight when the previous layer left the same HFO locked.
    pub w_same: usize,
    /// Bucket weight when entering from a different HFO (adds the exposed
    /// re-lock overhead).
    pub w_diff: usize,
    /// Adjusted energy (window objective) for the same-frequency entry.
    pub de_same: f64,
    /// Adjusted energy for the changed-frequency entry.
    pub de_diff: f64,
}

impl SeqItem {
    /// Bitwise equality (energies compared via `to_bits`), the comparison
    /// the incremental re-solve diff uses: a reused prefix must have been
    /// produced by *byte-identical* lanes, so NaN-safe bit comparison is
    /// the only acceptable notion of "unchanged".
    pub fn bits_eq(&self, other: &SeqItem) -> bool {
        self.f_new == other.f_new
            && self.w_same == other.w_same
            && self.w_diff == other.w_diff
            && self.de_same.to_bits() == other.de_same.to_bits()
            && self.de_diff.to_bits() == other.de_diff.to_bits()
    }
}

/// Reusable flat buffers for the MCKP and sequence DPs.
///
/// Construct once, pass to the `*_with` solver entry points (or to
/// [`crate::solver::mckp_sweep`] / [`crate::solver::sequence_sweep`]), and
/// keep it around: buffer capacity is retained between solves, so steady
/// state solves allocate nothing, and the checkpointed table of the last
/// solve stays available for [`crate::solver::mckp_resweep`] /
/// [`crate::solver::sequence_resweep`] to reuse.
#[derive(Debug, Clone, Default)]
pub struct SolverWorkspace {
    /// Checkpointed MCKP DP table, `(classes + 1) × buckets` row-major:
    /// row `0` is the empty prefix (`[0, ∞, …]`), row `k + 1` the state
    /// after relaxing class `k`. The last row is the answer table; the
    /// interior rows are the per-class checkpoints incremental re-solve
    /// resumes from (they also back the pick reconstruction at extract
    /// time, replacing the historical pick table).
    pub(crate) mckp_rows: Vec<f64>,
    /// Quantized per-item bucket weights, class-major (see
    /// `mckp_offsets`); `u32::MAX` marks an item wider than the table.
    pub(crate) mckp_weights: Vec<u32>,
    /// Per-item energies, class-major, densely packed for the kernel.
    pub(crate) mckp_energies: Vec<f64>,
    /// Start offset of each class in the MCKP lanes (plus a final
    /// end-of-data sentinel).
    pub(crate) mckp_offsets: Vec<usize>,
    /// Staging lane for freshly quantized weights, diffed against
    /// `mckp_weights` before being committed (swap, not copy).
    pub(crate) mckp_stage_weights: Vec<u32>,
    /// Staging lane for fresh energies (see `mckp_stage_weights`).
    pub(crate) mckp_stage_energies: Vec<f64>,
    /// Staging offsets for the fresh lanes.
    pub(crate) mckp_stage_offsets: Vec<usize>,
    /// The grid `mckp_rows` was filled on; `None` until the first solve.
    /// A retained prefix is only reused when the new grid is identical.
    pub(crate) mckp_grid: Option<Grid>,
    /// Checkpointed sequence DP table, `layers × (nf × buckets)`
    /// row-major: row `k` is the state after layer `k` (layer 0 is the
    /// boot-initialized row). Backs both incremental re-solve and the
    /// backtrack reconstruction, replacing the historical trace table.
    pub(crate) seq_rows: Vec<f64>,
    /// Per-item precomputed weights / energies / frequency ids,
    /// front-major (see `seq_offsets`).
    pub(crate) seq_items: Vec<SeqItem>,
    /// Start offset of each front in `seq_items` (plus a final sentinel).
    pub(crate) seq_offsets: Vec<usize>,
    /// Staging buffer for freshly prepared sequence items.
    pub(crate) seq_stage_items: Vec<SeqItem>,
    /// Staging offsets for the fresh sequence lanes.
    pub(crate) seq_stage_offsets: Vec<usize>,
    /// The solve's sorted, deduplicated frequency universe.
    pub(crate) freqs: Vec<Hertz>,
    /// Staging buffer for the fresh frequency universe (the item lanes'
    /// `f_new` ids are only comparable when the universes match).
    pub(crate) stage_freqs: Vec<Hertz>,
    /// The grid `seq_rows` was filled on; `None` until the first solve.
    pub(crate) seq_grid: Option<Grid>,
}

impl SolverWorkspace {
    /// An empty workspace; buffers grow on first use and are retained.
    pub fn new() -> Self {
        SolverWorkspace::default()
    }
}

/// A small pool of [`SolverWorkspace`]s shared by concurrent solvers.
///
/// The [`crate::Planner`] historically kept **one** workspace behind a
/// `try_lock`: the loser of any contention solved into a throw-away
/// workspace and its warmed buffers were dropped on the floor. The pool
/// keeps up to `capacity` workspaces around instead, so every concurrent
/// solve checks one out, reuses its retained buffers, and returns it —
/// steady-state contended solves allocate nothing, and a hot group's
/// checkpointed table tends to come back on the next checkout, letting
/// the incremental entry points skip the fill entirely.
///
/// Checkouts never block on other solvers: [`WorkspacePool::take`] only
/// holds the pool lock long enough to pop a slot, and an empty pool hands
/// out a fresh workspace (warmed ones are returned up to the capacity,
/// extras are dropped). Results can never depend on which workspace a
/// solve used — retained checkpoints only change how much of the table is
/// refilled, never its contents (see [`SolverWorkspace`]).
#[derive(Debug)]
pub struct WorkspacePool {
    /// Carries [`rank::WORKSPACE`], the highest rank in the workspace's
    /// lock order: a solve may run under any service lock regime without
    /// inverting the acquisition order.
    slots: RankedMutex<Vec<SolverWorkspace>>,
    capacity: usize,
}

impl Default for WorkspacePool {
    /// A single-slot pool (the smallest useful capacity).
    fn default() -> Self {
        WorkspacePool::new(1)
    }
}

impl WorkspacePool {
    /// A pool retaining at most `capacity` idle workspaces (floored at 1).
    pub fn new(capacity: usize) -> Self {
        WorkspacePool {
            slots: RankedMutex::new(rank::WORKSPACE, Vec::new()),
            capacity: capacity.max(1),
        }
    }

    /// A pool sized to the machine's available parallelism — one retained
    /// workspace per hardware thread that could be solving concurrently.
    pub fn for_parallelism() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        WorkspacePool::new(threads)
    }

    /// Checks a workspace out of the pool (a fresh one when the pool is
    /// empty). Pair with [`WorkspacePool::put`], or use
    /// [`WorkspacePool::run`] for the scoped form.
    pub fn take(&self) -> SolverWorkspace {
        lock(&self.slots).pop().unwrap_or_default()
    }

    /// Returns a workspace to the pool; dropped if the pool already holds
    /// `capacity` idle workspaces.
    pub fn put(&self, workspace: SolverWorkspace) {
        let mut slots = lock(&self.slots);
        if slots.len() < self.capacity.max(1) {
            slots.push(workspace);
        }
    }

    /// Runs `f` with a pooled workspace, returning it afterwards. The
    /// closure runs outside any lock, so concurrent `run` calls proceed
    /// in parallel on distinct workspaces.
    pub fn run<R>(&self, f: impl FnOnce(&mut SolverWorkspace) -> R) -> R {
        let mut workspace = self.take();
        let result = f(&mut workspace);
        self.put(workspace);
        result
    }

    /// Number of idle workspaces currently retained (diagnostics/tests).
    pub fn idle(&self) -> usize {
        lock(&self.slots).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_is_reusable_scratch() {
        let ws = SolverWorkspace::new();
        assert!(ws.mckp_rows.is_empty());
        assert!(ws.mckp_grid.is_none());
        // Clone + Default make it cheap to hand one per worker thread.
        let _ = ws.clone();
    }

    #[test]
    fn seq_item_bit_equality_is_nan_safe_and_sign_aware() {
        let a = SeqItem {
            f_new: 1,
            w_same: 2,
            w_diff: 3,
            de_same: 0.5,
            de_diff: f64::NAN,
        };
        // NaN != NaN as floats, but the lane diff must treat an unchanged
        // NaN byte pattern as unchanged.
        assert!(a.bits_eq(&a));
        let mut b = a;
        b.de_same = -0.5;
        assert!(!a.bits_eq(&b));
        let mut c = a;
        c.de_same = -0.0;
        let mut d = a;
        d.de_same = 0.0;
        assert!(!c.bits_eq(&d), "signed zeros differ bitwise");
    }

    #[test]
    fn pool_reuses_returned_workspaces() {
        let pool = WorkspacePool::new(2);
        assert_eq!(pool.idle(), 0);
        let mut ws = pool.take();
        ws.mckp_rows.resize(128, 0.0);
        let capacity = ws.mckp_rows.capacity();
        pool.put(ws);
        assert_eq!(pool.idle(), 1);
        // The warmed buffer comes back on the next checkout.
        let ws = pool.take();
        assert!(ws.mckp_rows.capacity() >= capacity);
        assert_eq!(pool.idle(), 0);
        pool.put(ws);
    }

    #[test]
    fn pool_caps_retained_workspaces() {
        let pool = WorkspacePool::new(2);
        for _ in 0..5 {
            pool.put(SolverWorkspace::new());
        }
        assert_eq!(pool.idle(), 2);
    }

    #[test]
    fn run_returns_the_workspace() {
        let pool = WorkspacePool::new(4);
        let out = pool.run(|ws| {
            ws.mckp_rows.push(1.0);
            ws.mckp_rows.len()
        });
        assert_eq!(out, 1);
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn concurrent_checkouts_get_distinct_workspaces() {
        let pool = WorkspacePool::new(8);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    pool.run(|ws| {
                        ws.mckp_rows.clear();
                        ws.mckp_rows.resize(64, 0.0);
                    });
                });
            }
        });
        assert!(pool.idle() >= 1 && pool.idle() <= 8);
    }
}
