//! Reusable flat DP storage for the solver core.
//!
//! Every solve used to allocate its DP rows (`vec![vec![INF; buckets]]`),
//! per-class pick tables and backtracking traces from scratch. A
//! [`SolverWorkspace`] owns all of those buffers as row-major flat vectors
//! and hands them to the DP cores, which resize-and-refill instead of
//! reallocating. The [`crate::Planner`] holds one behind a mutex and
//! reuses it across `optimize` / `sweep` calls; standalone callers can
//! create one per thread and amortize it over a batch of solves.
//!
//! The workspace carries no results — after a solve it is an opaque bag of
//! scratch capacity, safe to reuse for any later solve of any shape.

use stm32_rcc::Hertz;

/// Per-item precomputed data for the sequence DP: the item's frequency id
/// in the solve's frequency universe, its bucket weights and adjusted
/// energies for the same-frequency and changed-frequency transitions.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SeqItem {
    /// Index of the item's HFO sysclk in the sorted frequency universe.
    pub f_new: u16,
    /// Bucket weight when the previous layer left the same HFO locked.
    pub w_same: usize,
    /// Bucket weight when entering from a different HFO (adds the exposed
    /// re-lock overhead).
    pub w_diff: usize,
    /// Adjusted energy (window objective) for the same-frequency entry.
    pub de_same: f64,
    /// Adjusted energy for the changed-frequency entry.
    pub de_diff: f64,
}

/// Reusable flat buffers for the MCKP and sequence DPs.
///
/// Construct once, pass to the `*_with` solver entry points (or to
/// [`crate::solver::mckp_sweep`] / [`crate::solver::sequence_sweep`]), and
/// keep it around: buffer capacity is retained between solves, so steady
/// state solves allocate nothing.
#[derive(Debug, Clone, Default)]
pub struct SolverWorkspace {
    /// Current MCKP DP row (`buckets` entries; min energy per exact
    /// bucket-weight).
    pub(crate) mckp_dp: Vec<f64>,
    /// Next MCKP DP row being built (swapped with `mckp_dp` per class).
    pub(crate) mckp_next: Vec<f64>,
    /// Row-major pick table: `picks[k * buckets + b]` is the item chosen
    /// for class `k` at bucket `b` (`u32::MAX` = unreachable).
    pub(crate) mckp_picks: Vec<u32>,
    /// Per-item bucket weights, class-major (see `mckp_offsets`).
    pub(crate) mckp_weights: Vec<usize>,
    /// Start offset of each class in `mckp_weights` (plus a final
    /// end-of-data sentinel).
    pub(crate) mckp_offsets: Vec<usize>,
    /// Current sequence DP grid (`nf * buckets` entries, row-major by
    /// frequency).
    pub(crate) seq_dp: Vec<f64>,
    /// Next sequence DP grid being built.
    pub(crate) seq_next: Vec<f64>,
    /// Flat backtracking trace: `(item, prev_freq, prev_bucket)` per
    /// `(layer, freq, bucket)` state.
    pub(crate) seq_back: Vec<(u32, u16, u32)>,
    /// Per-item precomputed weights / energies / frequency ids,
    /// front-major (see `seq_offsets`).
    pub(crate) seq_items: Vec<SeqItem>,
    /// Start offset of each front in `seq_items` (plus a final sentinel).
    pub(crate) seq_offsets: Vec<usize>,
    /// The solve's sorted, deduplicated frequency universe.
    pub(crate) freqs: Vec<Hertz>,
}

impl SolverWorkspace {
    /// An empty workspace; buffers grow on first use and are retained.
    pub fn new() -> Self {
        SolverWorkspace::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_is_reusable_scratch() {
        let ws = SolverWorkspace::new();
        assert!(ws.mckp_dp.is_empty());
        // Clone + Default make it cheap to hand one per worker thread.
        let _ = ws.clone();
    }
}
