//! The sequence-DP core: layered-graph table fill over `(frequency,
//! time-bucket)` states, with per-budget extraction.
//!
//! See the [module docs](crate::solver) for the shared-grid argument.
//! [`crate::seqdp::solve_sequence`] wraps [`solve_sequence_with`] on a
//! single-budget grid and is bit-identical to the historical per-call
//! implementation.

use stm32_rcc::Hertz;

use crate::dse::{DseConfig, DsePoint};
use crate::mckp::MckpError;
use crate::seqdp::{entry_overhead_secs, entry_power, tally_sequence, SequenceSolution};
use crate::solver::workspace::{SeqItem, SolverWorkspace};
use crate::solver::{validate_budget, validate_resolution, Grid, MAX_SWEEP_STATES};

const INF: f64 = f64::INFINITY;

fn validate_fronts(fronts: &[Vec<DsePoint>]) -> Result<(), MckpError> {
    if fronts.is_empty() {
        return Err(MckpError::InvalidInput {
            field: "fronts",
            reason: "sequence needs at least one layer".into(),
        });
    }
    for (k, f) in fronts.iter().enumerate() {
        if f.is_empty() {
            return Err(MckpError::EmptyClass { class: k });
        }
    }
    Ok(())
}

/// Builds the solve's sorted, deduplicated frequency universe into the
/// workspace and returns its size.
fn build_freqs(fronts: &[Vec<DsePoint>], ws: &mut SolverWorkspace) -> usize {
    ws.freqs.clear();
    ws.freqs
        .extend(fronts.iter().flat_map(|f| f.iter().map(|p| p.hfo.sysclk())));
    ws.freqs.sort();
    ws.freqs.dedup();
    ws.freqs.len()
}

/// Precomputes every item's frequency id, bucket weights and adjusted
/// energies once — the inner DP transition then only selects between the
/// same/changed variants instead of re-deriving overheads and
/// re-searching `freqs` per layer. Expects [`build_freqs`] to have run.
///
/// # Errors
///
/// [`MckpError::InvalidInput`] if an item's sysclk is missing from the
/// workspace's frequency universe — impossible when [`build_freqs`] ran
/// over the same fronts, but reported as a typed error rather than a
/// panic so a corrupted workspace cannot take a serving worker down.
fn prepare_items(
    fronts: &[Vec<DsePoint>],
    scale: f64,
    config: &DseConfig,
    idle_power_w: f64,
    ws: &mut SolverWorkspace,
) -> Result<(), MckpError> {
    let freq_id = |f: Hertz, freqs: &[Hertz]| -> Result<u16, MckpError> {
        match freqs.iter().position(|&x| x == f) {
            Some(id) => Ok(id as u16),
            None => Err(MckpError::InvalidInput {
                field: "fronts",
                reason: format!("sysclk {f} missing from the solve's frequency universe"),
            }),
        }
    };
    let weight = |t: f64| -> usize { (t / scale).ceil() as usize };

    ws.seq_offsets.clear();
    ws.seq_items.clear();
    for front in fronts {
        ws.seq_offsets.push(ws.seq_items.len());
        for p in front {
            let base_e = p.energy.as_f64() - idle_power_w * p.latency_secs;
            let overhead = entry_overhead_secs(p, config);
            let overhead_e = entry_power(p, config).as_f64() * overhead - idle_power_w * overhead;
            ws.seq_items.push(SeqItem {
                f_new: freq_id(p.hfo.sysclk(), &ws.freqs)?,
                w_same: weight(p.latency_secs),
                w_diff: weight(p.latency_secs + overhead),
                de_same: base_e,
                de_diff: base_e + overhead_e,
            });
        }
    }
    ws.seq_offsets.push(ws.seq_items.len());
    Ok(())
}

/// Fills the layered DP grid: after the call `ws.seq_dp[f * buckets + b]`
/// is the minimum adjusted energy having left frequency `f` locked with
/// total bucket-weight exactly `b`, and `ws.seq_back` traces every
/// `(layer, f, b)` state.
fn fill_table(fronts: &[Vec<DsePoint>], buckets: usize, ws: &mut SolverWorkspace) {
    let nf = ws.freqs.len();
    let states = nf * buckets;
    let SolverWorkspace {
        seq_dp: dp,
        seq_next: next,
        seq_back: back,
        seq_items: items,
        seq_offsets: offsets,
        ..
    } = ws;
    dp.clear();
    dp.resize(states, INF);
    next.clear();
    next.resize(states, INF);
    back.clear();
    back.resize(fronts.len() * states, (u32::MAX, 0u16, 0u32));

    // Layer 0: the machine boots with the first layer's PLL locked (as
    // the paper's setup does), so no entry cost.
    for i in 0..fronts[0].len() {
        let it = items[offsets[0] + i];
        let w = it.w_same;
        if w >= buckets {
            continue;
        }
        let f = it.f_new as usize;
        if it.de_same < dp[f * buckets + w] {
            dp[f * buckets + w] = it.de_same;
            back[f * buckets + w] = (i as u32, 0, 0);
        }
    }

    for (k, front) in fronts.iter().enumerate().skip(1) {
        for slot in next.iter_mut() {
            *slot = INF;
        }
        let trace = &mut back[k * states..(k + 1) * states];
        for i in 0..front.len() {
            let it = items[offsets[k] + i];
            let f_new = it.f_new as usize;
            for f_prev in 0..nf {
                let (w, de) = if f_prev == f_new {
                    (it.w_same, it.de_same)
                } else {
                    (it.w_diff, it.de_diff)
                };
                if w >= buckets {
                    continue;
                }
                let row = &dp[f_prev * buckets..(f_prev + 1) * buckets];
                for (b, &cur) in row.iter().enumerate().take(buckets - w) {
                    if cur.is_finite() {
                        let cand = cur + de;
                        let nb = b + w;
                        if cand < next[f_new * buckets + nb] {
                            next[f_new * buckets + nb] = cand;
                            trace[f_new * buckets + nb] = (i as u32, f_prev as u16, b as u32);
                        }
                    }
                }
            }
        }
        std::mem::swap(dp, next);
    }
}

/// Read-only view of a filled sequence-DP table inside a workspace.
#[derive(Debug, Clone, Copy)]
struct SeqTableRef<'a> {
    nf: usize,
    buckets: usize,
    dp: &'a [f64],
    back: &'a [(u32, u16, u32)],
}

/// Scans the terminal states within `limit` buckets and backtracks the
/// cheapest one into a per-layer selection, then re-tallies it exactly.
fn extract(
    fronts: &[Vec<DsePoint>],
    config: &DseConfig,
    limit: usize,
    budget_secs: f64,
    t: SeqTableRef<'_>,
) -> Result<SequenceSolution, MckpError> {
    let states = t.nf * t.buckets;
    let mut best: Option<(usize, usize, f64)> = None;
    for f in 0..t.nf {
        for b in 0..=limit {
            let e = t.dp[f * t.buckets + b];
            if e.is_finite() && best.is_none_or(|(.., be)| e < be) {
                best = Some((f, b, e));
            }
        }
    }
    let (mut f, mut b, _) = best.ok_or(MckpError::Infeasible {
        min_time_secs: budget_secs,
        budget_secs,
    })?;

    let mut choices = vec![0usize; fronts.len()];
    for k in (0..fronts.len()).rev() {
        let (item, pf, pb) = t.back[k * states + f * t.buckets + b];
        assert!(item != u32::MAX, "backtracking hit an unreachable state");
        choices[k] = item as usize;
        f = pf as usize;
        b = pb as usize;
    }
    Ok(tally_sequence(fronts, choices, config))
}

/// [`crate::seqdp::solve_sequence`] against a caller-provided workspace:
/// same validation, same single-budget grid, zero steady-state
/// allocation.
pub(crate) fn solve_sequence_with(
    fronts: &[Vec<DsePoint>],
    budget_secs: f64,
    resolution: usize,
    config: &DseConfig,
    idle_power_w: f64,
    ws: &mut SolverWorkspace,
) -> Result<SequenceSolution, MckpError> {
    validate_budget(budget_secs)?;
    validate_resolution(resolution)?;
    validate_fronts(fronts)?;
    let grid = Grid::single(budget_secs, resolution);
    build_freqs(fronts, ws);
    prepare_items(fronts, grid.scale, config, idle_power_w, ws)?;
    fill_table(fronts, grid.buckets, ws);
    extract(
        fronts,
        config,
        grid.buckets - 1,
        budget_secs,
        SeqTableRef {
            nf: ws.freqs.len(),
            buckets: grid.buckets,
            dp: &ws.seq_dp,
            back: &ws.seq_back,
        },
    )
}

/// A filled multi-budget sequence-DP table (the [`MckpSweep`] analogue
/// for the re-lock-aware solver).
///
/// [`SequenceSweep::best_for`] takes `&self`, so budgets can be answered
/// concurrently.
///
/// [`MckpSweep`]: crate::solver::MckpSweep
#[derive(Debug, Clone, Copy)]
pub struct SequenceSweep<'a> {
    fronts: &'a [Vec<DsePoint>],
    config: &'a DseConfig,
    grid: Grid,
    nf: usize,
    dp: &'a [f64],
    back: &'a [(u32, u16, u32)],
}

/// Runs one sequence-DP pass over the shared grid of `budgets` into `ws`
/// and returns the extraction handle.
///
/// # Errors
///
/// [`MckpError::InvalidInput`] for an empty batch / degenerate budgets or
/// resolution / zero layers; [`MckpError::EmptyClass`] if a layer has no
/// candidates. Per-budget infeasibility is reported by
/// [`SequenceSweep::best_for`].
pub fn sequence_sweep<'a>(
    fronts: &'a [Vec<DsePoint>],
    budgets: &[f64],
    resolution: usize,
    config: &'a DseConfig,
    idle_power_w: f64,
    ws: &'a mut SolverWorkspace,
) -> Result<SequenceSweep<'a>, MckpError> {
    validate_fronts(fronts)?;
    let nf = build_freqs(fronts, ws);
    // The backtrace holds one state per (layer, frequency, bucket), so
    // the bucket axis is capped by the total state budget rather than
    // MAX_SWEEP_BUCKETS alone (never below the per-call grid, whose
    // trace every historical call already allocated).
    let max_buckets = MAX_SWEEP_STATES / (nf * fronts.len()).max(1);
    let grid = Grid::shared_with_cap(budgets, resolution, max_buckets)?;
    prepare_items(fronts, grid.scale, config, idle_power_w, ws)?;
    fill_table(fronts, grid.buckets, ws);
    Ok(SequenceSweep {
        fronts,
        config,
        grid,
        nf: ws.freqs.len(),
        dp: &ws.seq_dp,
        back: &ws.seq_back,
    })
}

impl SequenceSweep<'_> {
    /// The shared grid's bucket width in seconds.
    pub fn scale(&self) -> f64 {
        self.grid.scale
    }

    /// Extracts the best feasible sequence for one budget from the shared
    /// table. Budgets above the grid's maximum are answered as if they
    /// were the maximum.
    ///
    /// # Errors
    ///
    /// [`MckpError::InvalidInput`] for a degenerate budget;
    /// [`MckpError::Infeasible`] if no schedule fits `budget_secs`.
    pub fn best_for(&self, budget_secs: f64) -> Result<SequenceSolution, MckpError> {
        validate_budget(budget_secs)?;
        extract(
            self.fronts,
            self.config,
            self.grid.limit_for(budget_secs),
            budget_secs,
            SeqTableRef {
                nf: self.nf,
                buckets: self.grid.buckets,
                dp: self.dp,
                back: self.back,
            },
        )
    }
}

/// Solves every budget of a batch from **one** sequence-DP pass.
///
/// The outer `Result` carries batch-level errors; per-budget entries
/// carry each budget's own feasibility. Results match per-call
/// [`crate::seqdp::solve_sequence`] within the documented discretization
/// bound.
///
/// # Errors
///
/// Same batch-level conditions as [`sequence_sweep`].
pub fn solve_sequence_sweep(
    fronts: &[Vec<DsePoint>],
    budgets: &[f64],
    resolution: usize,
    config: &DseConfig,
    idle_power_w: f64,
) -> Result<Vec<Result<SequenceSolution, MckpError>>, MckpError> {
    let mut ws = SolverWorkspace::new();
    let sweep = sequence_sweep(fronts, budgets, resolution, config, idle_power_w, &mut ws)?;
    Ok(budgets.iter().map(|&b| sweep.best_for(b)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seqdp::solve_sequence;
    use stm32_power::Joules;

    fn cfg() -> DseConfig {
        DseConfig::paper()
    }

    fn point(t_ms: f64, e_mj: f64, mhz: u64, stage_ms: f64) -> DsePoint {
        let modes = crate::modes::OperatingModes::paper();
        DsePoint {
            granularity: crate::dae::Granularity(if stage_ms > 0.0 { 8 } else { 0 }),
            hfo: *modes.hfo_at(Hertz::mhz(mhz)).expect("in ladder"),
            latency_secs: t_ms * 1e-3,
            energy: Joules::new(e_mj * 1e-3),
            switches: 0,
            first_stage_secs: stage_ms * 1e-3,
        }
    }

    fn fronts() -> Vec<Vec<DsePoint>> {
        vec![
            vec![point(1.0, 0.30, 216, 0.0)],
            vec![point(1.0, 0.20, 150, 0.0), point(1.05, 0.28, 216, 0.0)],
            vec![point(0.8, 0.15, 108, 0.1), point(0.6, 0.25, 216, 0.0)],
        ]
    }

    #[test]
    fn single_budget_sweep_agrees_with_solve_sequence_exactly() {
        let fronts = fronts();
        for budget_ms in [2.7, 3.2, 5.0, 9.0] {
            let budget = budget_ms * 1e-3;
            let per_call = solve_sequence(&fronts, budget, 1500, &cfg(), 0.012).unwrap();
            let via_sweep = solve_sequence_sweep(&fronts, &[budget], 1500, &cfg(), 0.012).unwrap()
                [0]
            .clone()
            .unwrap();
            assert_eq!(per_call, via_sweep);
        }
    }

    #[test]
    fn sweep_answers_every_budget_feasibly() {
        let fronts = fronts();
        let budgets: Vec<f64> = [2.7, 3.0, 4.0, 6.0, 9.0].map(|b| b * 1e-3).to_vec();
        let out = solve_sequence_sweep(&fronts, &budgets, 2000, &cfg(), 0.012).unwrap();
        let mut prev = f64::INFINITY;
        for (sol, &b) in out.iter().zip(&budgets) {
            let sol = sol.as_ref().unwrap();
            let adjusted = sol.total_energy - 0.012 * sol.total_time_secs;
            assert!(sol.total_time_secs <= b + 1e-9, "budget {b} violated");
            assert!(adjusted <= prev + 1e-12, "relaxed budget got costlier");
            prev = adjusted;
        }
    }

    #[test]
    fn sweep_reports_per_budget_infeasibility() {
        let fronts = vec![vec![point(5.0, 0.1, 216, 0.0)]];
        let out = solve_sequence_sweep(&fronts, &[1e-3, 6e-3], 400, &cfg(), 0.0).unwrap();
        assert!(matches!(out[0], Err(MckpError::Infeasible { .. })));
        assert!(out[1].is_ok());
    }

    #[test]
    fn zero_layer_sequence_is_a_typed_error() {
        assert!(matches!(
            solve_sequence_sweep(&[], &[1.0], 100, &cfg(), 0.0),
            Err(MckpError::InvalidInput {
                field: "fronts",
                ..
            })
        ));
    }
}
