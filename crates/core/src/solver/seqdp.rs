//! The sequence-DP core: layered-graph table fill over `(frequency,
//! time-bucket)` states, with per-budget extraction.
//!
//! See the [module docs](crate::solver) for the shared-grid argument and
//! [`crate::solver::kernel`] for the branch-free relaxation and the
//! backtrack-reconstruction argument. [`crate::seqdp::solve_sequence`]
//! wraps [`solve_sequence_with`] on a single-budget grid and is
//! bit-identical to the historical per-call implementation.
//!
//! The table is stored as **per-layer checkpoint rows**: `layers × (nf ×
//! buckets)` with row `k` holding the state after layer `k` (layer 0 is
//! the boot-initialized row). The rows replace the historical
//! `(item, prev_freq, prev_bucket)` trace table — backtracking
//! reconstructs each layer's transition from two adjacent rows, which
//! shrinks the table by the 12-byte-per-state trace — and they are what
//! [`sequence_resweep`] resumes from when only a suffix of the layers
//! changed.

use stm32_rcc::Hertz;

use crate::dse::{DseConfig, DsePoint};
use crate::mckp::MckpError;
use crate::seqdp::{entry_overhead_secs, entry_power, tally_sequence, SequenceSolution};
use crate::solver::workspace::{SeqItem, SolverWorkspace};
use crate::solver::{kernel, validate_budget, validate_resolution, Grid, MAX_SWEEP_STATES};

const INF: f64 = f64::INFINITY;

fn validate_fronts(fronts: &[Vec<DsePoint>]) -> Result<(), MckpError> {
    if fronts.is_empty() {
        return Err(MckpError::InvalidInput {
            field: "fronts",
            reason: "sequence needs at least one layer".into(),
        });
    }
    for (k, f) in fronts.iter().enumerate() {
        if f.is_empty() {
            return Err(MckpError::EmptyClass { class: k });
        }
    }
    Ok(())
}

/// Builds the solve's sorted, deduplicated frequency universe into the
/// workspace's *staging* buffer and returns its size. Staging keeps the
/// previous solve's universe intact for the incremental diff (item
/// frequency ids are only comparable when the universes match).
fn build_freqs(fronts: &[Vec<DsePoint>], ws: &mut SolverWorkspace) -> usize {
    ws.stage_freqs.clear();
    ws.stage_freqs
        .extend(fronts.iter().flat_map(|f| f.iter().map(|p| p.hfo.sysclk())));
    ws.stage_freqs.sort();
    ws.stage_freqs.dedup();
    ws.stage_freqs.len()
}

/// Precomputes every item's frequency id, bucket weights and adjusted
/// energies once into the *staging* lanes — the inner DP transition then
/// only selects between the same/changed variants instead of re-deriving
/// overheads and re-searching `freqs` per layer. Expects [`build_freqs`]
/// to have run.
///
/// # Errors
///
/// [`MckpError::InvalidInput`] if an item's sysclk is missing from the
/// staged frequency universe — impossible when [`build_freqs`] ran over
/// the same fronts, but reported as a typed error rather than a panic so
/// a corrupted workspace cannot take a serving worker down.
fn prepare_items(
    fronts: &[Vec<DsePoint>],
    scale: f64,
    config: &DseConfig,
    idle_power_w: f64,
    ws: &mut SolverWorkspace,
) -> Result<(), MckpError> {
    let freq_id = |f: Hertz, freqs: &[Hertz]| -> Result<u16, MckpError> {
        match freqs.iter().position(|&x| x == f) {
            Some(id) => Ok(id as u16),
            None => Err(MckpError::InvalidInput {
                field: "fronts",
                reason: format!("sysclk {f} missing from the solve's frequency universe"),
            }),
        }
    };
    let weight = |t: f64| -> usize { (t / scale).ceil() as usize };

    ws.seq_stage_offsets.clear();
    ws.seq_stage_items.clear();
    for front in fronts {
        ws.seq_stage_offsets.push(ws.seq_stage_items.len());
        for p in front {
            let base_e = p.energy.as_f64() - idle_power_w * p.latency_secs;
            let overhead = entry_overhead_secs(p, config);
            let overhead_e = entry_power(p, config).as_f64() * overhead - idle_power_w * overhead;
            ws.seq_stage_items.push(SeqItem {
                f_new: freq_id(p.hfo.sysclk(), &ws.stage_freqs)?,
                w_same: weight(p.latency_secs),
                w_diff: weight(p.latency_secs + overhead),
                de_same: base_e,
                de_diff: base_e + overhead_e,
            });
        }
    }
    ws.seq_stage_offsets.push(ws.seq_stage_items.len());
    Ok(())
}

/// Number of leading layers whose staged lanes (and frequency universe)
/// are bit-identical to the workspace's committed state and whose
/// checkpoint rows are valid for `grid` — the DP prefix a resweep may
/// reuse. Returns 0 (full refill) on any grid / universe / shape change.
fn reusable_prefix(ws: &SolverWorkspace, grid: Grid, nlayers: usize) -> usize {
    if ws.seq_grid != Some(grid)
        || ws.freqs != ws.stage_freqs
        || ws.seq_offsets.len() != nlayers + 1
        || ws.seq_stage_offsets.len() != nlayers + 1
        || ws.seq_rows.len() != nlayers * ws.stage_freqs.len() * grid.buckets
    {
        return 0;
    }
    for k in 0..nlayers {
        let (lo, hi) = (ws.seq_offsets[k], ws.seq_offsets[k + 1]);
        let (slo, shi) = (ws.seq_stage_offsets[k], ws.seq_stage_offsets[k + 1]);
        if (lo, hi) != (slo, shi)
            || ws.seq_items[lo..hi]
                .iter()
                .zip(&ws.seq_stage_items[lo..hi])
                .any(|(a, b)| !a.bits_eq(b))
        {
            return k;
        }
    }
    nlayers
}

/// Swaps the staged sequence lanes and frequency universe in as the
/// committed ones and records the grid they quantize to.
fn commit_lanes(ws: &mut SolverWorkspace, grid: Grid) {
    std::mem::swap(&mut ws.seq_items, &mut ws.seq_stage_items);
    std::mem::swap(&mut ws.seq_offsets, &mut ws.seq_stage_offsets);
    std::mem::swap(&mut ws.freqs, &mut ws.stage_freqs);
    ws.seq_grid = Some(grid);
}

/// Fills the checkpointed layered DP grid from layer `start` on:
/// afterwards `rows[k * states + f * buckets + b]` is the minimum
/// adjusted energy over layers `0..=k` having left frequency `f` locked
/// with total bucket-weight exactly `b`.
fn fill_table_from(nlayers: usize, buckets: usize, start: usize, ws: &mut SolverWorkspace) {
    let nf = ws.freqs.len();
    let states = nf * buckets;
    let SolverWorkspace {
        seq_rows: rows,
        seq_items: items,
        seq_offsets: offsets,
        ..
    } = ws;
    if start == 0 {
        rows.clear();
        rows.resize(nlayers * states, INF);
        // Layer 0: the machine boots with the first layer's PLL locked
        // (as the paper's setup does), so no entry cost. The handful of
        // scattered stores stays branchy — it is O(items), not O(states).
        let row0 = &mut rows[..states];
        for it in &items[offsets[0]..offsets[1]] {
            let w = it.w_same;
            if w >= buckets {
                continue;
            }
            let s = it.f_new as usize * buckets + w;
            if it.de_same < row0[s] {
                row0[s] = it.de_same;
            }
        }
    }
    for k in start.max(1)..nlayers {
        let (prev_rows, cur_rows) = rows.split_at_mut(k * states);
        let prev = &prev_rows[(k - 1) * states..];
        let cur = &mut cur_rows[..states];
        if start != 0 {
            // Suffix refill over a retained table (fresh tables are
            // already all-INF from the resize above).
            cur.fill(INF);
        }
        for it in &items[offsets[k]..offsets[k + 1]] {
            let f_new = it.f_new as usize;
            for f_prev in 0..nf {
                let (w, de) = if f_prev == f_new {
                    (it.w_same, it.de_same)
                } else {
                    (it.w_diff, it.de_diff)
                };
                if w >= buckets {
                    continue;
                }
                let prev_row = &prev[f_prev * buckets..f_prev * buckets + (buckets - w)];
                let cur_row = &mut cur[f_new * buckets + w..(f_new + 1) * buckets];
                kernel::relax_min_into(prev_row, cur_row, de);
            }
        }
    }
}

/// Read-only view of a filled sequence-DP table inside a workspace.
#[derive(Debug, Clone, Copy)]
struct SeqTableRef<'a> {
    nf: usize,
    buckets: usize,
    rows: &'a [f64],
    items: &'a [SeqItem],
    offsets: &'a [usize],
}

/// Reconstructs the transition the historical trace table would have
/// stored for state `(f, b)` of layer `k ≥ 1`: the first `(item,
/// prev_freq)` pair — in the fill's iteration order, item-major — whose
/// candidate reproduces `value` bit-for-bit against the previous layer's
/// checkpoint row (see [`crate::solver::kernel`] for why first bitwise
/// match ≡ stored winner). Returns `(item, prev_freq, prev_bucket)`.
fn reconstruct_transition(
    prev: &[f64],
    items: &[SeqItem],
    nf: usize,
    buckets: usize,
    f: usize,
    b: usize,
    value: f64,
) -> Option<(usize, usize, usize)> {
    let bits = value.to_bits();
    for (i, it) in items.iter().enumerate() {
        if it.f_new as usize != f {
            continue;
        }
        for f_prev in 0..nf {
            let (w, de) = if f_prev == f {
                (it.w_same, it.de_same)
            } else {
                (it.w_diff, it.de_diff)
            };
            if w >= buckets || w > b {
                continue;
            }
            let pb = b - w;
            if (prev[f_prev * buckets + pb] + de).to_bits() == bits {
                return Some((i, f_prev, pb));
            }
        }
    }
    None
}

/// Scans the terminal states within `limit` buckets and backtracks the
/// cheapest one into a per-layer selection, then re-tallies it exactly.
fn extract(
    fronts: &[Vec<DsePoint>],
    config: &DseConfig,
    limit: usize,
    budget_secs: f64,
    t: SeqTableRef<'_>,
) -> Result<SequenceSolution, MckpError> {
    let states = t.nf * t.buckets;
    let nlayers = fronts.len();
    let last = &t.rows[(nlayers - 1) * states..nlayers * states];
    let mut best: Option<(usize, usize, f64)> = None;
    for f in 0..t.nf {
        for b in 0..=limit {
            let e = last[f * t.buckets + b];
            if e.is_finite() && best.is_none_or(|(.., be)| e < be) {
                best = Some((f, b, e));
            }
        }
    }
    let (mut f, mut b, _) = best.ok_or(MckpError::Infeasible {
        min_time_secs: budget_secs,
        budget_secs,
    })?;

    let mut choices = vec![0usize; nlayers];
    for k in (1..nlayers).rev() {
        let value = t.rows[k * states + f * t.buckets + b];
        let prev = &t.rows[(k - 1) * states..k * states];
        let (item, pf, pb) = reconstruct_transition(
            prev,
            &t.items[t.offsets[k]..t.offsets[k + 1]],
            t.nf,
            t.buckets,
            f,
            b,
            value,
        )
        .ok_or(MckpError::CorruptTable {
            class: k,
            bucket: b,
        })?;
        choices[k] = item;
        f = pf;
        b = pb;
    }
    // Layer 0 has no predecessor: its state was written directly by the
    // boot init, so the choice is the first item landing exactly on
    // `(f, b)` with the stored energy bits.
    let value = t.rows[f * t.buckets + b];
    let bits = value.to_bits();
    choices[0] = t.items[t.offsets[0]..t.offsets[1]]
        .iter()
        .position(|it| it.f_new as usize == f && it.w_same == b && it.de_same.to_bits() == bits)
        .ok_or(MckpError::CorruptTable {
            class: 0,
            bucket: b,
        })?;
    Ok(tally_sequence(fronts, choices, config))
}

/// [`crate::seqdp::solve_sequence`] against a caller-provided workspace:
/// same validation, same single-budget grid, zero steady-state
/// allocation.
pub(crate) fn solve_sequence_with(
    fronts: &[Vec<DsePoint>],
    budget_secs: f64,
    resolution: usize,
    config: &DseConfig,
    idle_power_w: f64,
    ws: &mut SolverWorkspace,
) -> Result<SequenceSolution, MckpError> {
    validate_budget(budget_secs)?;
    validate_resolution(resolution)?;
    validate_fronts(fronts)?;
    let grid = Grid::single(budget_secs, resolution);
    build_freqs(fronts, ws);
    prepare_items(fronts, grid.scale, config, idle_power_w, ws)?;
    commit_lanes(ws, grid);
    fill_table_from(fronts.len(), grid.buckets, 0, ws);
    extract(
        fronts,
        config,
        grid.buckets - 1,
        budget_secs,
        SeqTableRef {
            nf: ws.freqs.len(),
            buckets: grid.buckets,
            rows: &ws.seq_rows,
            items: &ws.seq_items,
            offsets: &ws.seq_offsets,
        },
    )
}

/// A filled multi-budget sequence-DP table (the [`MckpSweep`] analogue
/// for the re-lock-aware solver).
///
/// [`SequenceSweep::best_for`] takes `&self`, so budgets can be answered
/// concurrently.
///
/// [`MckpSweep`]: crate::solver::MckpSweep
#[derive(Debug, Clone, Copy)]
pub struct SequenceSweep<'a> {
    fronts: &'a [Vec<DsePoint>],
    config: &'a DseConfig,
    grid: Grid,
    nf: usize,
    refilled: usize,
    rows: &'a [f64],
    items: &'a [SeqItem],
    offsets: &'a [usize],
}

fn sweep_impl<'a>(
    fronts: &'a [Vec<DsePoint>],
    budgets: &[f64],
    resolution: usize,
    config: &'a DseConfig,
    idle_power_w: f64,
    ws: &'a mut SolverWorkspace,
    reuse: bool,
) -> Result<SequenceSweep<'a>, MckpError> {
    validate_fronts(fronts)?;
    let nf = build_freqs(fronts, ws);
    // The checkpoint table holds one state per (layer, frequency,
    // bucket), so the bucket axis is capped by the total state budget
    // rather than MAX_SWEEP_BUCKETS alone (never below the per-call
    // grid, whose table every historical call already allocated).
    let max_buckets = MAX_SWEEP_STATES / (nf * fronts.len()).max(1);
    let grid = Grid::shared_with_cap(budgets, resolution, max_buckets)?;
    prepare_items(fronts, grid.scale, config, idle_power_w, ws)?;
    let start = if reuse {
        reusable_prefix(ws, grid, fronts.len())
    } else {
        0
    };
    commit_lanes(ws, grid);
    fill_table_from(fronts.len(), grid.buckets, start, ws);
    Ok(SequenceSweep {
        fronts,
        config,
        grid,
        nf,
        refilled: fronts.len() - start,
        rows: &ws.seq_rows,
        items: &ws.seq_items,
        offsets: &ws.seq_offsets,
    })
}

/// Runs one sequence-DP pass over the shared grid of `budgets` into `ws`
/// and returns the extraction handle. The table is always filled from
/// scratch; use [`sequence_resweep`] to reuse retained checkpoints.
///
/// # Errors
///
/// [`MckpError::InvalidInput`] for an empty batch / degenerate budgets or
/// resolution / zero layers; [`MckpError::EmptyClass`] if a layer has no
/// candidates. Per-budget infeasibility is reported by
/// [`SequenceSweep::best_for`].
pub fn sequence_sweep<'a>(
    fronts: &'a [Vec<DsePoint>],
    budgets: &[f64],
    resolution: usize,
    config: &'a DseConfig,
    idle_power_w: f64,
    ws: &'a mut SolverWorkspace,
) -> Result<SequenceSweep<'a>, MckpError> {
    sweep_impl(fronts, budgets, resolution, config, idle_power_w, ws, false)
}

/// [`sequence_sweep`] with **incremental re-solve**: diffs the freshly
/// prepared item lanes and frequency universe against the checkpointed
/// table retained in `ws` and refills only the layers from the first
/// change on (the fleet-drift scenario: one layer's Pareto front moved,
/// the prefix below it is reused). Bit-identical to [`sequence_sweep`]
/// on the same inputs — see [`crate::solver::mckp_resweep`] for the
/// reuse-safety argument; [`SequenceSweep::refilled_layers`] reports the
/// work done.
///
/// # Errors
///
/// Same conditions as [`sequence_sweep`].
pub fn sequence_resweep<'a>(
    fronts: &'a [Vec<DsePoint>],
    budgets: &[f64],
    resolution: usize,
    config: &'a DseConfig,
    idle_power_w: f64,
    ws: &'a mut SolverWorkspace,
) -> Result<SequenceSweep<'a>, MckpError> {
    sweep_impl(fronts, budgets, resolution, config, idle_power_w, ws, true)
}

impl SequenceSweep<'_> {
    /// The shared grid's bucket width in seconds.
    pub fn scale(&self) -> f64 {
        self.grid.scale
    }

    /// How many trailing layers the producing fill actually refilled:
    /// the layer count for [`sequence_sweep`], the changed suffix length
    /// (possibly 0) for [`sequence_resweep`].
    pub fn refilled_layers(&self) -> usize {
        self.refilled
    }

    /// Extracts the best feasible sequence for one budget from the shared
    /// table. Budgets above the grid's maximum are answered as if they
    /// were the maximum.
    ///
    /// # Errors
    ///
    /// [`MckpError::InvalidInput`] for a degenerate budget;
    /// [`MckpError::Infeasible`] if no schedule fits `budget_secs`.
    pub fn best_for(&self, budget_secs: f64) -> Result<SequenceSolution, MckpError> {
        validate_budget(budget_secs)?;
        extract(
            self.fronts,
            self.config,
            self.grid.limit_for(budget_secs),
            budget_secs,
            SeqTableRef {
                nf: self.nf,
                buckets: self.grid.buckets,
                rows: self.rows,
                items: self.items,
                offsets: self.offsets,
            },
        )
    }
}

/// Solves every budget of a batch from **one** sequence-DP pass.
///
/// The outer `Result` carries batch-level errors; per-budget entries
/// carry each budget's own feasibility. Results match per-call
/// [`crate::seqdp::solve_sequence`] within the documented discretization
/// bound.
///
/// # Errors
///
/// Same batch-level conditions as [`sequence_sweep`].
pub fn solve_sequence_sweep(
    fronts: &[Vec<DsePoint>],
    budgets: &[f64],
    resolution: usize,
    config: &DseConfig,
    idle_power_w: f64,
) -> Result<Vec<Result<SequenceSolution, MckpError>>, MckpError> {
    let mut ws = SolverWorkspace::new();
    let sweep = sequence_sweep(fronts, budgets, resolution, config, idle_power_w, &mut ws)?;
    Ok(budgets.iter().map(|&b| sweep.best_for(b)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seqdp::solve_sequence;
    use stm32_power::Joules;

    fn cfg() -> DseConfig {
        DseConfig::paper()
    }

    fn point(t_ms: f64, e_mj: f64, mhz: u64, stage_ms: f64) -> DsePoint {
        let modes = crate::modes::OperatingModes::paper();
        DsePoint {
            granularity: crate::dae::Granularity(if stage_ms > 0.0 { 8 } else { 0 }),
            hfo: *modes.hfo_at(Hertz::mhz(mhz)).expect("in ladder"),
            latency_secs: t_ms * 1e-3,
            energy: Joules::new(e_mj * 1e-3),
            switches: 0,
            first_stage_secs: stage_ms * 1e-3,
        }
    }

    fn fronts() -> Vec<Vec<DsePoint>> {
        vec![
            vec![point(1.0, 0.30, 216, 0.0)],
            vec![point(1.0, 0.20, 150, 0.0), point(1.05, 0.28, 216, 0.0)],
            vec![point(0.8, 0.15, 108, 0.1), point(0.6, 0.25, 216, 0.0)],
        ]
    }

    #[test]
    fn single_budget_sweep_agrees_with_solve_sequence_exactly() {
        let fronts = fronts();
        for budget_ms in [2.7, 3.2, 5.0, 9.0] {
            let budget = budget_ms * 1e-3;
            let per_call = solve_sequence(&fronts, budget, 1500, &cfg(), 0.012).unwrap();
            let via_sweep = solve_sequence_sweep(&fronts, &[budget], 1500, &cfg(), 0.012).unwrap()
                [0]
            .clone()
            .unwrap();
            assert_eq!(per_call, via_sweep);
        }
    }

    #[test]
    fn sweep_answers_every_budget_feasibly() {
        let fronts = fronts();
        let budgets: Vec<f64> = [2.7, 3.0, 4.0, 6.0, 9.0].map(|b| b * 1e-3).to_vec();
        let out = solve_sequence_sweep(&fronts, &budgets, 2000, &cfg(), 0.012).unwrap();
        let mut prev = f64::INFINITY;
        for (sol, &b) in out.iter().zip(&budgets) {
            let sol = sol.as_ref().unwrap();
            let adjusted = sol.total_energy - 0.012 * sol.total_time_secs;
            assert!(sol.total_time_secs <= b + 1e-9, "budget {b} violated");
            assert!(adjusted <= prev + 1e-12, "relaxed budget got costlier");
            prev = adjusted;
        }
    }

    #[test]
    fn sweep_reports_per_budget_infeasibility() {
        let fronts = vec![vec![point(5.0, 0.1, 216, 0.0)]];
        let out = solve_sequence_sweep(&fronts, &[1e-3, 6e-3], 400, &cfg(), 0.0).unwrap();
        assert!(matches!(out[0], Err(MckpError::Infeasible { .. })));
        assert!(out[1].is_ok());
    }

    #[test]
    fn zero_layer_sequence_is_a_typed_error() {
        assert!(matches!(
            solve_sequence_sweep(&[], &[1.0], 100, &cfg(), 0.0),
            Err(MckpError::InvalidInput {
                field: "fronts",
                ..
            })
        ));
    }

    #[test]
    fn resweep_skips_the_fill_when_nothing_changed() {
        let fronts = fronts();
        let budgets: Vec<f64> = [2.7, 4.0, 9.0].map(|b| b * 1e-3).to_vec();
        let cfg = cfg();
        let mut ws = SolverWorkspace::new();
        let full: Vec<_> = {
            let sweep = sequence_sweep(&fronts, &budgets, 1200, &cfg, 0.012, &mut ws).unwrap();
            assert_eq!(sweep.refilled_layers(), fronts.len());
            budgets.iter().map(|&b| sweep.best_for(b)).collect()
        };
        let again: Vec<_> = {
            let sweep = sequence_resweep(&fronts, &budgets, 1200, &cfg, 0.012, &mut ws).unwrap();
            assert_eq!(sweep.refilled_layers(), 0, "identical solve must reuse");
            budgets.iter().map(|&b| sweep.best_for(b)).collect()
        };
        assert_eq!(full, again);
    }

    #[test]
    fn resweep_refills_only_the_drifted_suffix() {
        let mut fronts = fronts();
        let budgets: Vec<f64> = [2.7, 4.0, 9.0].map(|b| b * 1e-3).to_vec();
        let cfg = cfg();
        let mut ws = SolverWorkspace::new();
        let _ = sequence_sweep(&fronts, &budgets, 1200, &cfg, 0.012, &mut ws).unwrap();
        // Drift the last layer's front (energy only: the frequency
        // universe is unchanged, so the prefix stays valid).
        fronts[2][0].energy = Joules::new(0.17e-3);
        let incremental: Vec<_> = {
            let sweep = sequence_resweep(&fronts, &budgets, 1200, &cfg, 0.012, &mut ws).unwrap();
            assert_eq!(sweep.refilled_layers(), 1, "only the drifted layer refills");
            budgets.iter().map(|&b| sweep.best_for(b)).collect()
        };
        let scratch = solve_sequence_sweep(&fronts, &budgets, 1200, &cfg, 0.012).unwrap();
        assert_eq!(incremental, scratch, "incremental must be bit-identical");
    }

    #[test]
    fn resweep_invalidates_on_frequency_universe_change() {
        let mut fronts = fronts();
        let budgets: Vec<f64> = [2.7, 9.0].map(|b| b * 1e-3).to_vec();
        let cfg = cfg();
        let mut ws = SolverWorkspace::new();
        let _ = sequence_sweep(&fronts, &budgets, 800, &cfg, 0.012, &mut ws).unwrap();
        // A new sysclk anywhere renumbers every item's frequency id, so
        // even a last-layer change must trigger a full refill.
        fronts[2].push(point(0.9, 0.22, 75, 0.0));
        let sweep = sequence_resweep(&fronts, &budgets, 800, &cfg, 0.012, &mut ws).unwrap();
        assert_eq!(sweep.refilled_layers(), fronts.len());
        let scratch = solve_sequence_sweep(&fronts, &budgets, 800, &cfg, 0.012).unwrap();
        let inc: Vec<_> = budgets.iter().map(|&b| sweep.best_for(b)).collect();
        assert_eq!(inc, scratch);
    }
}
