//! Branch-free relaxation kernels shared by the MCKP and sequence DPs.
//!
//! The historical inner loops were branchy:
//!
//! ```text
//! if base.is_finite() {
//!     let cand = base + energy;
//!     if cand < next[b] { next[b] = cand; pick[b] = i; }
//! }
//! ```
//!
//! Two data-dependent branches per bucket defeat the autovectorizer, and
//! the side-band `pick` store forces a mixed f64/u32 blend even where the
//! candidate loses. This module replaces them with a select-form
//! min-reduction over contiguous bucket ranges ([`relax_min_into`]) plus
//! a backtrack-time pick *reconstruction* ([`reconstruct_pick`]), which
//! together are bit-identical to the branchy original:
//!
//! * **The `is_finite` guard is redundant.** `+∞` is the table's
//!   infeasibility sentinel and it is *absorbing*: `INF + e == INF` for
//!   every finite `e`, and `INF < x` is false for every stored `x`, so a
//!   candidate built on an infeasible base can never win the strict `<`
//!   select. Dropping the guard changes no stored value. (NaN candidates
//!   lose every `cand < incumbent` comparison exactly as they did under
//!   the branchy form, so they are never stored either.)
//! * **The select preserves tie order.** `*n = if cand < *n { cand }
//!   else { *n }` keeps the first-item-wins semantics of the original
//!   strict `<` update (this is also exactly x86 `vminpd`'s operand
//!   order, which is why LLVM lifts the loop to packed min + unrolled
//!   lanes). `f64::min` would *not* be equivalent: its `±0.0` / NaN
//!   operand preferences differ from strict `<`.
//! * **Picks need not be stored at all.** With per-class row checkpoints
//!   retained (see [`crate::solver::SolverWorkspace`]), the winning item
//!   at bucket `b` of class `k` is recomputed at backtrack time as the
//!   *first* item `i` (in class order) whose candidate reproduces the
//!   stored value bit-for-bit: `(rows[k][b - w_i] + e_i).to_bits() ==
//!   rows[k+1][b].to_bits()`. Values at a bucket only decrease during a
//!   class pass and the update comparison is strict, so if an earlier
//!   item's candidate had equalled the final value bitwise, it would have
//!   been stored and every later equal candidate would have lost `<` —
//!   i.e. the first bitwise match *is* the stored winner. (The comparison
//!   must be on bits, not `==`: `-0.0 == +0.0` as floats, but under
//!   strict `<` a later `-0.0` candidate never displaces a stored `+0.0`,
//!   and the bitwise test reproduces exactly that.)
//!
//! Item data is quantized into contiguous lanes at prepare time (see
//! `prepare_lanes` in the DP cores): bucket weights into a `u32` lane
//! (with `u32::MAX` marking items wider than the table, exactly the
//! buckets-saturating skip of the historical `usize` cast) and energies
//! into a dense `f64` lane. Energies stay `f64` — narrowing them to
//! `f32` would violate the bit-identity constraint the planner
//! equivalence pins enforce. Item energies are expected finite (the
//! planner only produces finite values); non-finite energies keep the
//! kernels deterministic but make the selection unspecified.

/// Unroll width of the chunked min-reduction. Eight f64 lanes = two
/// AVX2 / one AVX-512 vector per chunk; the remainder loop handles the
/// tail scalar-wise with identical semantics.
const LANES: usize = 8;

/// The branch-free DP relaxation: `next[j] = min(next[j], prev[j] + delta)`
/// for every `j`, with strict-`<` select semantics (first writer wins
/// ties; NaN/∞ candidates never stored). `prev` and `next` must be the
/// same length — the caller passes the shifted contiguous bucket ranges
/// `prev[..buckets - w]` / `next[w..]`.
#[inline]
pub(crate) fn relax_min_into(prev: &[f64], next: &mut [f64], delta: f64) {
    debug_assert_eq!(prev.len(), next.len());
    let mut next_chunks = next.chunks_exact_mut(LANES);
    let mut prev_chunks = prev.chunks_exact(LANES);
    for (n, p) in (&mut next_chunks).zip(&mut prev_chunks) {
        for l in 0..LANES {
            let cand = p[l] + delta;
            n[l] = if cand < n[l] { cand } else { n[l] };
        }
    }
    for (n, &p) in next_chunks
        .into_remainder()
        .iter_mut()
        .zip(prev_chunks.remainder())
    {
        let cand = p + delta;
        *n = if cand < *n { cand } else { *n };
    }
}

/// Reconstructs the pick the branchy kernel would have stored at bucket
/// `b`: the first item `i` whose candidate `prev[b - w_i] + e_i`
/// reproduces `value` bit-for-bit (see the module docs for why first
/// bitwise match ≡ stored winner). `prev` is the full predecessor row;
/// `weights`/`energies` are one class's lane slices. Returns `None` only
/// when the table and lanes are out of sync (a corrupted workspace).
pub(crate) fn reconstruct_pick(
    prev: &[f64],
    weights: &[u32],
    energies: &[f64],
    b: usize,
    value: f64,
) -> Option<usize> {
    let bits = value.to_bits();
    for (i, (&w, &e)) in weights.iter().zip(energies).enumerate() {
        let w = w as usize;
        if w > b || w >= prev.len() {
            continue;
        }
        if (prev[b - w] + e).to_bits() == bits {
            return Some(i);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const INF: f64 = f64::INFINITY;

    /// The historical branchy relaxation, kept as the reference oracle.
    fn relax_branchy(prev: &[f64], next: &mut [f64], delta: f64) {
        for (n, &p) in next.iter_mut().zip(prev) {
            if p.is_finite() {
                let cand = p + delta;
                if cand < *n {
                    *n = cand;
                }
            }
        }
    }

    #[test]
    fn select_relax_is_bit_identical_to_the_branchy_form() {
        // Mix of reachable, unreachable (INF) and negative values, across
        // lengths straddling the chunk width.
        let base: Vec<f64> = (0..37)
            .map(|i| match i % 5 {
                0 => INF,
                1 => -0.25 * i as f64,
                2 => 1.5 * i as f64,
                3 => 0.0,
                _ => 1e-9 * i as f64,
            })
            .collect();
        for len in [0, 1, 7, 8, 9, 16, 23, 37] {
            for delta in [0.0, -1.5, 2.25, 1e-12] {
                let mut a: Vec<f64> = base[..len].iter().map(|x| x * 0.5 + 1.0).collect();
                let mut b = a.clone();
                relax_branchy(&base[..len], &mut a, delta);
                relax_min_into(&base[..len], &mut b, delta);
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.to_bits(), y.to_bits(), "len {len} delta {delta}");
                }
            }
        }
    }

    #[test]
    fn infinity_bases_and_nan_candidates_never_win() {
        let prev = [INF, 1.0, f64::NAN];
        let mut next = [0.5, 0.5, 0.5];
        relax_min_into(&prev, &mut next, -1.0);
        assert_eq!(next[0], 0.5, "INF base must stay absorbing");
        assert_eq!(next[1], 0.0, "finite base relaxes normally");
        assert_eq!(next[2], 0.5, "NaN candidate must lose the select");
    }

    #[test]
    fn reconstruction_returns_the_first_winner_in_class_order() {
        // Two items produce the same value at b = 3; the first wins.
        let prev = [0.0, INF, 1.0, INF];
        let weights = [1u32, 3, 2];
        let energies = [2.0, 3.0, 2.0];
        // Candidates at b = 3: item0 = prev[2]+2 = 3, item1 = prev[0]+3 = 3,
        // item2 = prev[1]+2 = INF.
        assert_eq!(
            reconstruct_pick(&prev, &weights, &energies, 3, 3.0),
            Some(0)
        );
        // A value nothing produced is a corrupt table.
        assert_eq!(reconstruct_pick(&prev, &weights, &energies, 3, 4.0), None);
    }

    #[test]
    fn reconstruction_distinguishes_signed_zero_bitwise() {
        let prev = [0.0];
        let weights = [0u32, 0];
        let energies = [-0.0, 0.0];
        // 0.0 + -0.0 = 0.0 (IEEE), 0.0 + 0.0 = 0.0: both candidates are
        // +0.0 here, so the first item wins.
        assert_eq!(
            reconstruct_pick(&prev, &weights, &energies, 0, 0.0),
            Some(0)
        );
        // But a stored -0.0 only matches a candidate with -0.0 bits.
        let prev2 = [-0.0];
        let energies2 = [0.0, -0.0];
        assert_eq!(
            reconstruct_pick(&prev2, &weights, &energies2, 0, -0.0),
            Some(1),
            "-0.0 + 0.0 = +0.0 must not match the stored -0.0 bits"
        );
    }

    #[test]
    fn items_wider_than_the_table_are_skipped() {
        let prev = [0.0, 1.0];
        let weights = [u32::MAX, 1];
        let energies = [0.0, 1.0];
        assert_eq!(
            reconstruct_pick(&prev, &weights, &energies, 1, 1.0),
            Some(1)
        );
    }
}
