//! The shared solver core: one DP pass, many budgets.
//!
//! The pseudo-polynomial MCKP and sequence DPs ([`crate::mckp`],
//! [`crate::seqdp`]) dominate planning time. Historically every QoS point
//! re-ran the full table fill on a *budget-relative* time grid
//! (`scale = budget / resolution`), even though a DP table computed over
//! an absolute grid already contains the optimum for **every** budget at
//! or below its maximum: `dp[b]` is the minimum objective over selections
//! of total bucket-weight exactly `b`, so answering a budget `B` is just a
//! scan of the buckets `0..=⌊B/scale⌋` plus a backtrack.
//!
//! This module exploits that:
//!
//! * [`mckp_sweep`] / [`sequence_sweep`] run **one** table fill over a
//!   shared absolute grid sized to the largest requested budget, with the
//!   scale chosen so the *smallest* budget still resolves to at least the
//!   requested bucket count (`Grid::shared`). The returned
//!   [`MckpSweep`] / [`SequenceSweep`] handles answer any budget within
//!   the grid by a cheap scan-and-backtrack ([`MckpSweep::best_for`]),
//!   which is what turns an N-point QoS sweep into ~1 DP pass plus N
//!   extractions.
//! * [`solve_dp_sweep`] / [`solve_sequence_sweep`] are the batch
//!   conveniences over those handles.
//! * All storage lives in a reusable [`SolverWorkspace`] of row-major
//!   flat buffers — no per-call, per-layer `vec![vec![…]]` allocations —
//!   and per-item bucket weights / energies / frequency ids are quantized
//!   once per solve into contiguous `u32`/`f64` lanes instead of being
//!   re-derived per layer transition.
//! * The table fills run on the branch-free kernels of `solver/kernel.rs`
//!   (select-form chunked min-reductions the autovectorizer lifts to
//!   SIMD; `+∞` is the absorbing infeasibility sentinel, picks are
//!   reconstructed at backtrack time instead of stored) and the DP table
//!   is retained as per-class **checkpoint rows**, which is what
//!   [`mckp_resweep`] / [`sequence_resweep`] resume from: when only a
//!   suffix of the classes/layers changed since the workspace's last
//!   solve, the unaffected prefix is reused and only the suffix refills —
//!   bit-identically to a from-scratch fill.
//!
//! The single-budget entry points [`crate::mckp::solve_dp`] and
//! [`crate::seqdp::solve_sequence`] are thin wrappers over the same cores
//! with a one-budget grid (`scale = budget / resolution`), which keeps
//! them bit-identical to the historical implementations — the planner
//! equivalence pins rely on that.
//!
//! ## Discretization bound
//!
//! Item weights are rounded *up* to buckets and budgets are rounded
//! *down*, so every extracted solution is feasible in real time. For a
//! budget `B` answered on a grid of scale `s` with `n` classes, the
//! returned energy `E` satisfies the standard pseudo-polynomial bound
//!
//! ```text
//! OPT(B) ≤ E ≤ OPT(B − n·s)
//! ```
//!
//! (each of the `n` chosen items loses at most one bucket to rounding,
//! and the budget itself at most one more — absorbed by the floor).
//! Because `Grid::shared` picks `s ≤ min_budget / resolution`, the
//! shared-grid answer for every budget is at least as finely resolved as
//! the per-call answer (`s ≤ B / resolution` for every `B` in the batch),
//! so sweep and per-call results agree within the *per-call* bound:
//! both lie in `[OPT(B), OPT(B − n·B/resolution)]`. The property tests in
//! `tests/proptests.rs` pin exactly this window against the exhaustive
//! solver.
//!
//! ## Grid capping
//!
//! A batch whose budgets span many orders of magnitude would need
//! `resolution · max/min` buckets. `Grid::shared` caps the table at
//! [`MAX_SWEEP_BUCKETS`]; past the cap the scale coarsens and the
//! smallest budgets resolve to fewer buckets than requested (the bound
//! above still holds with the actual scale, which [`MckpSweep::scale`]
//! reports).

mod kernel;
mod mckp;
mod seqdp;
mod workspace;

pub(crate) use mckp::solve_dp_with;
pub use mckp::{mckp_resweep, mckp_sweep, solve_dp_sweep, MckpSweep};
pub(crate) use seqdp::solve_sequence_with;
pub use seqdp::{sequence_resweep, sequence_sweep, solve_sequence_sweep, SequenceSweep};
pub use workspace::{SolverWorkspace, WorkspacePool};

use crate::mckp::MckpError;

/// Hard cap on the bucket count of a shared sweep grid; batches whose
/// budget spread would exceed it get a coarser scale instead of an
/// unbounded table (see the module docs).
pub const MAX_SWEEP_BUCKETS: usize = 1 << 20;

/// Hard cap on the total backtrace state count of a sequence sweep
/// (`layers × frequencies × buckets`): the sequence DP's trace multiplies
/// the bucket axis by the layer and frequency counts, so its grid is
/// capped by states, not buckets. The bucket floor is always at least
/// `resolution + 1`, i.e. never coarser than the historical per-call
/// grid, whose trace the caller already paid for.
pub const MAX_SWEEP_STATES: usize = 1 << 24;

/// The discretized time axis of one solve: a bucket width (`scale`,
/// seconds) and the number of buckets (`buckets`, covering weights
/// `0..buckets`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Grid {
    pub scale: f64,
    pub buckets: usize,
}

impl Grid {
    /// The historical single-budget grid: `scale = budget / resolution`,
    /// `resolution + 1` buckets. Bit-identical to the pre-sweep solvers.
    pub fn single(budget_secs: f64, resolution: usize) -> Grid {
        Grid {
            scale: budget_secs / resolution as f64,
            buckets: resolution + 1,
        }
    }

    /// A shared absolute grid covering every budget in `budgets`: the
    /// scale resolves the smallest budget into at least `resolution`
    /// buckets, and the bucket count covers the largest budget, capped at
    /// [`MAX_SWEEP_BUCKETS`]. A one-budget batch degenerates to exactly
    /// the historical single-budget grid.
    ///
    /// # Errors
    ///
    /// [`MckpError::InvalidInput`] for an empty batch, a non-finite or
    /// non-positive budget, or zero resolution.
    pub fn shared(budgets: &[f64], resolution: usize) -> Result<Grid, MckpError> {
        Grid::shared_with_cap(budgets, resolution, MAX_SWEEP_BUCKETS)
    }

    /// [`Grid::shared`] with an explicit bucket cap (floored at
    /// `resolution + 1`, so a capped grid is never coarser than the
    /// historical single-budget grid). The sequence sweep uses this to
    /// bound its `layers × frequencies × buckets` backtrace by
    /// [`MAX_SWEEP_STATES`] rather than by the bucket axis alone.
    pub fn shared_with_cap(
        budgets: &[f64],
        resolution: usize,
        max_buckets: usize,
    ) -> Result<Grid, MckpError> {
        validate_resolution(resolution)?;
        if budgets.is_empty() {
            return Err(MckpError::InvalidInput {
                field: "budgets",
                reason: "batch must contain at least one budget".into(),
            });
        }
        let mut min_b = f64::INFINITY;
        let mut max_b = 0.0f64;
        for &b in budgets {
            validate_budget(b)?;
            min_b = min_b.min(b);
            max_b = max_b.max(b);
        }
        let max_buckets = max_buckets.max(resolution + 1);
        // `exact_limit` is clamped at the cap itself, so extreme spreads
        // (or a scale that underflows to zero) saturate there instead of
        // overflowing `usize` — hitting the cap selects the coarse branch.
        let mut scale = min_b / resolution as f64;
        let mut limit = exact_limit(max_b, scale, max_buckets);
        if limit >= max_buckets {
            scale = max_b / (max_buckets - 1) as f64;
            while exact_limit(max_b, scale, max_buckets) >= max_buckets {
                scale = f64::from_bits(scale.to_bits() + 1);
            }
            limit = exact_limit(max_b, scale, max_buckets);
        }
        Ok(Grid {
            scale,
            buckets: limit + 1,
        })
    }

    /// The largest bucket whose start lies within `budget` — i.e. the
    /// highest total weight a selection may carry and still be feasible in
    /// real time (`limit · scale ≤ budget`). Never exceeds the grid.
    pub fn limit_for(&self, budget_secs: f64) -> usize {
        exact_limit(budget_secs, self.scale, self.buckets - 1)
    }
}

/// The largest `l ≤ cap` with `l · scale ≤ budget`, computed by direct
/// comparison so budgets sitting exactly on a bucket edge resolve to that
/// edge regardless of how the initial float division rounds. The
/// comparison carries a 1-part-in-10¹² relative tolerance: the historical
/// single-budget solver scans all `resolution + 1` buckets even when
/// `resolution · (budget/resolution)` lands an ulp above the budget, and
/// the shared grid reproduces exactly that behavior (feasibility holds up
/// to the same float rounding).
fn exact_limit(budget: f64, scale: f64, cap: usize) -> usize {
    let tol = budget * (1.0 + 1e-12);
    let mut l = ((budget / scale) as usize).min(cap);
    while l < cap && (l + 1) as f64 * scale <= tol {
        l += 1;
    }
    while l > 0 && l as f64 * scale > tol {
        l -= 1;
    }
    l
}

/// Rejects non-finite / non-positive budgets with a typed error (the
/// solver API boundary is panic-free).
pub(crate) fn validate_budget(budget_secs: f64) -> Result<(), MckpError> {
    if !(budget_secs.is_finite() && budget_secs > 0.0) {
        return Err(MckpError::InvalidInput {
            field: "budget_secs",
            reason: format!("must be a positive finite time, got {budget_secs}"),
        });
    }
    Ok(())
}

/// Rejects a zero DP resolution with a typed error.
pub(crate) fn validate_resolution(resolution: usize) -> Result<(), MckpError> {
    if resolution == 0 {
        return Err(MckpError::InvalidInput {
            field: "resolution",
            reason: "must be non-zero".into(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_grid_matches_historical_layout() {
        let g = Grid::single(0.5, 2000);
        assert_eq!(g.buckets, 2001);
        assert!((g.scale - 0.5 / 2000.0).abs() < 1e-18);
    }

    #[test]
    fn shared_grid_keeps_resolution_for_smallest_budget() {
        for (lo, hi, res) in [(0.1, 1.0, 500), (0.33, 0.77, 2000), (1e-3, 3e-3, 100)] {
            let g = Grid::shared(&[lo, hi], res).unwrap();
            assert!(
                g.limit_for(lo) >= res,
                "smallest budget lost resolution: {} < {res}",
                g.limit_for(lo)
            );
            assert!(g.limit_for(hi) == g.buckets - 1);
            // The limit is real-time feasible up to float rounding.
            assert!(g.limit_for(lo) as f64 * g.scale <= lo * (1.0 + 1e-9));
        }
    }

    #[test]
    fn budgets_on_bucket_edges_resolve_to_the_edge() {
        let g = Grid::shared(&[1.0, 2.0], 100).unwrap();
        for l in [1usize, 37, 100, 150] {
            let edge = l as f64 * g.scale;
            assert_eq!(g.limit_for(edge), l, "edge budget {edge} missed bucket {l}");
        }
    }

    #[test]
    fn degenerate_inputs_are_typed_errors() {
        assert!(matches!(
            Grid::shared(&[], 100),
            Err(MckpError::InvalidInput {
                field: "budgets",
                ..
            })
        ));
        assert!(matches!(
            Grid::shared(&[1.0, f64::NAN], 100),
            Err(MckpError::InvalidInput {
                field: "budget_secs",
                ..
            })
        ));
        assert!(matches!(
            Grid::shared(&[1.0, -2.0], 100),
            Err(MckpError::InvalidInput {
                field: "budget_secs",
                ..
            })
        ));
        assert!(matches!(
            Grid::shared(&[1.0], 0),
            Err(MckpError::InvalidInput {
                field: "resolution",
                ..
            })
        ));
    }

    #[test]
    fn wide_spread_hits_the_bucket_cap() {
        let g = Grid::shared(&[1e-9, 1.0], 2000).unwrap();
        assert!(g.buckets <= MAX_SWEEP_BUCKETS);
        assert_eq!(g.limit_for(1.0), g.buckets - 1);
    }

    #[test]
    fn extreme_spreads_saturate_instead_of_overflowing() {
        // Spreads whose uncapped bucket count exceeds usize (and scales
        // that underflow to zero) must route into the cap branch, not
        // overflow arithmetic or produce an empty table.
        for budgets in [
            vec![1e-300, 1e300],
            vec![f64::MIN_POSITIVE, 1.0],
            vec![1e-6, 1e12],
        ] {
            let g = Grid::shared(&budgets, 2000).unwrap();
            assert!(
                g.buckets >= 2 && g.buckets <= MAX_SWEEP_BUCKETS,
                "{budgets:?}"
            );
            assert!(g.scale > 0.0);
        }
    }

    #[test]
    fn explicit_cap_never_drops_below_the_per_call_grid() {
        let g = Grid::shared_with_cap(&[1.0, 64.0], 2000, 16).unwrap();
        assert_eq!(g.limit_for(64.0), g.buckets - 1);
        assert!(g.buckets >= 2001, "cap floored at resolution + 1");
    }
}
