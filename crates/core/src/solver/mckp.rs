//! The MCKP dynamic-program core: one table fill, per-budget extraction.
//!
//! See the [module docs](crate::solver) for the shared-grid argument and
//! the discretization bound, and [`crate::solver::kernel`]'s docs for the
//! branch-free relaxation and the pick-reconstruction argument.
//! [`crate::mckp::solve_dp`] wraps [`solve_dp_with`] on a single-budget
//! grid and is bit-identical to the historical per-call implementation.
//!
//! The DP table is stored as **checkpoint rows**: `(classes + 1) ×
//! buckets`, row `k + 1` holding the state after class `k`. The rows
//! serve double duty — they replace the historical per-class pick table
//! (backtracking reconstructs the winning item from two adjacent rows)
//! and they are what [`mckp_resweep`] resumes from when only a suffix of
//! the classes changed.

use crate::mckp::{tally, validate, MckpError, MckpItem, MckpSolution};
use crate::solver::kernel;
use crate::solver::workspace::SolverWorkspace;
use crate::solver::{validate_budget, validate_resolution, Grid};

const INF: f64 = f64::INFINITY;

/// Read-only view of a filled DP table inside a workspace.
#[derive(Debug, Clone, Copy)]
struct TableRef<'a> {
    rows: &'a [f64],
    weights: &'a [u32],
    energies: &'a [f64],
    offsets: &'a [usize],
}

/// Quantizes every item into the workspace's *staging* lanes: bucket
/// weights into the `u32` weight lane (`u32::MAX` marks an item wider
/// than the table — the same items the historical `usize` weights
/// skipped via `w >= buckets`) and energies into the dense `f64` lane.
/// Staging keeps the previous solve's lanes intact for the incremental
/// diff; [`commit_lanes`] swaps them in.
fn prepare_lanes(classes: &[Vec<MckpItem>], grid: Grid, ws: &mut SolverWorkspace) {
    // The u32 weight lane requires the bucket axis to be u32-addressable;
    // every real grid is (MAX_SWEEP_BUCKETS = 2^20, and a larger
    // single-budget table would be unallocatable long before 2^32).
    debug_assert!(grid.buckets <= u32::MAX as usize);
    ws.mckp_stage_offsets.clear();
    ws.mckp_stage_weights.clear();
    ws.mckp_stage_energies.clear();
    for class in classes {
        ws.mckp_stage_offsets.push(ws.mckp_stage_weights.len());
        for item in class {
            // Same rounding as the historical kernel: ceil, then a
            // saturating float→int cast (NaN → 0), with out-of-table
            // weights collapsed onto the sentinel.
            let w = (item.time_secs / grid.scale).ceil() as usize;
            let w = if w >= grid.buckets {
                u32::MAX
            } else {
                w as u32
            };
            ws.mckp_stage_weights.push(w);
            ws.mckp_stage_energies.push(item.energy);
        }
    }
    ws.mckp_stage_offsets.push(ws.mckp_stage_weights.len());
}

/// Number of leading classes whose staged lanes are bit-identical to the
/// workspace's committed lanes *and* whose checkpoint rows are valid for
/// `grid` — the DP prefix a resweep may reuse. Returns 0 (full refill)
/// whenever the grid, the class count or the table shape changed.
fn reusable_prefix(ws: &SolverWorkspace, grid: Grid, nclasses: usize) -> usize {
    if ws.mckp_grid != Some(grid)
        || ws.mckp_offsets.len() != nclasses + 1
        || ws.mckp_stage_offsets.len() != nclasses + 1
        || ws.mckp_rows.len() != (nclasses + 1) * grid.buckets
    {
        return 0;
    }
    for k in 0..nclasses {
        let (lo, hi) = (ws.mckp_offsets[k], ws.mckp_offsets[k + 1]);
        let (slo, shi) = (ws.mckp_stage_offsets[k], ws.mckp_stage_offsets[k + 1]);
        if (lo, hi) != (slo, shi)
            || ws.mckp_weights[lo..hi] != ws.mckp_stage_weights[lo..hi]
            || ws.mckp_energies[lo..hi]
                .iter()
                .zip(&ws.mckp_stage_energies[lo..hi])
                .any(|(a, b)| a.to_bits() != b.to_bits())
        {
            return k;
        }
    }
    nclasses
}

/// Swaps the staged lanes in as the committed ones and records the grid
/// they quantize to. The displaced lanes become the next staging buffers.
fn commit_lanes(ws: &mut SolverWorkspace, grid: Grid) {
    std::mem::swap(&mut ws.mckp_weights, &mut ws.mckp_stage_weights);
    std::mem::swap(&mut ws.mckp_energies, &mut ws.mckp_stage_energies);
    std::mem::swap(&mut ws.mckp_offsets, &mut ws.mckp_stage_offsets);
    ws.mckp_grid = Some(grid);
}

/// Fills the checkpointed DP table from class `start` on: afterwards
/// `rows[(k + 1) * buckets + b]` is the minimum energy over selections
/// from classes `0..=k` of total bucket-weight exactly `b`. `start == 0`
/// reinitializes the whole table; `start == nclasses` is a no-op (the
/// retained table is already the answer).
fn fill_table_from(nclasses: usize, buckets: usize, start: usize, ws: &mut SolverWorkspace) {
    let SolverWorkspace {
        mckp_rows: rows,
        mckp_weights: weights,
        mckp_energies: energies,
        mckp_offsets: offsets,
        ..
    } = ws;
    if start == 0 {
        rows.clear();
        rows.resize((nclasses + 1) * buckets, INF);
        rows[0] = 0.0;
    }
    for k in start..nclasses {
        let (prev_rows, cur_rows) = rows.split_at_mut((k + 1) * buckets);
        let prev = &prev_rows[k * buckets..];
        let cur = &mut cur_rows[..buckets];
        if start != 0 {
            // Suffix refill over a retained table: the row holds the
            // previous solve's values and must be reset. (A fresh table
            // is already all-INF from the resize above.)
            cur.fill(INF);
        }
        for idx in offsets[k]..offsets[k + 1] {
            let w = weights[idx] as usize;
            if w >= buckets {
                continue;
            }
            kernel::relax_min_into(&prev[..buckets - w], &mut cur[w..], energies[idx]);
        }
    }
}

/// Scans the buckets `0..=limit` of the final row for the cheapest
/// reachable state and backtracks it into a per-class selection by
/// reconstructing each class's winning item from its checkpoint rows.
fn extract(
    classes: &[Vec<MckpItem>],
    buckets: usize,
    limit: usize,
    budget_secs: f64,
    t: TableRef<'_>,
) -> Result<MckpSolution, MckpError> {
    let nclasses = classes.len();
    let last = &t.rows[nclasses * buckets..];
    let mut best_b = None;
    let mut best_e = INF;
    for (b, &e) in last.iter().enumerate().take(limit + 1) {
        if e < best_e {
            best_e = e;
            best_b = Some(b);
        }
    }
    let mut b = best_b.ok_or(MckpError::Infeasible {
        // All-finite was pre-validated; reaching here means ceil-rounding
        // pushed every selection past the budget, which the validation
        // margin makes near-impossible, but report honestly.
        min_time_secs: budget_secs,
        budget_secs,
    })?;

    let mut choices = vec![0usize; nclasses];
    for k in (0..nclasses).rev() {
        let prev = &t.rows[k * buckets..(k + 1) * buckets];
        let value = t.rows[(k + 1) * buckets + b];
        let i = kernel::reconstruct_pick(
            prev,
            &t.weights[t.offsets[k]..t.offsets[k + 1]],
            &t.energies[t.offsets[k]..t.offsets[k + 1]],
            b,
            value,
        )
        .ok_or(MckpError::CorruptTable {
            class: k,
            bucket: b,
        })?;
        choices[k] = i;
        b -= t.weights[t.offsets[k] + i] as usize;
    }
    let (total_time_secs, total_energy) = tally(classes, &choices);
    Ok(MckpSolution {
        choices,
        total_time_secs,
        total_energy,
    })
}

/// [`crate::mckp::solve_dp`] against a caller-provided workspace: same
/// validation, same single-budget grid, zero steady-state allocation.
pub(crate) fn solve_dp_with(
    classes: &[Vec<MckpItem>],
    budget_secs: f64,
    resolution: usize,
    ws: &mut SolverWorkspace,
) -> Result<MckpSolution, MckpError> {
    validate_budget(budget_secs)?;
    validate_resolution(resolution)?;
    validate(classes, budget_secs)?;
    let grid = Grid::single(budget_secs, resolution);
    prepare_lanes(classes, grid, ws);
    commit_lanes(ws, grid);
    fill_table_from(classes.len(), grid.buckets, 0, ws);
    extract(
        classes,
        grid.buckets,
        grid.buckets - 1,
        budget_secs,
        TableRef {
            rows: &ws.mckp_rows,
            weights: &ws.mckp_weights,
            energies: &ws.mckp_energies,
            offsets: &ws.mckp_offsets,
        },
    )
}

/// A filled multi-budget MCKP table: one DP pass over a shared absolute
/// grid, ready to answer any budget up to its maximum with a cheap
/// scan-and-backtrack.
///
/// Borrows the classes it was solved for and the workspace holding the
/// table; extraction ([`MckpSweep::best_for`]) takes `&self`, so budgets
/// can be answered concurrently from several threads.
#[derive(Debug, Clone, Copy)]
pub struct MckpSweep<'a> {
    classes: &'a [Vec<MckpItem>],
    grid: Grid,
    min_time_secs: f64,
    refilled: usize,
    rows: &'a [f64],
    weights: &'a [u32],
    energies: &'a [f64],
    offsets: &'a [usize],
}

fn sweep_impl<'a>(
    classes: &'a [Vec<MckpItem>],
    budgets: &[f64],
    resolution: usize,
    ws: &'a mut SolverWorkspace,
    reuse: bool,
) -> Result<MckpSweep<'a>, MckpError> {
    let grid = Grid::shared(budgets, resolution)?;
    for (i, class) in classes.iter().enumerate() {
        if class.is_empty() {
            return Err(MckpError::EmptyClass { class: i });
        }
    }
    let min_time_secs: f64 = classes
        .iter()
        .map(|c| c.iter().map(|i| i.time_secs).fold(INF, f64::min))
        .sum();
    prepare_lanes(classes, grid, ws);
    let start = if reuse {
        reusable_prefix(ws, grid, classes.len())
    } else {
        0
    };
    commit_lanes(ws, grid);
    fill_table_from(classes.len(), grid.buckets, start, ws);
    Ok(MckpSweep {
        classes,
        grid,
        min_time_secs,
        refilled: classes.len() - start,
        rows: &ws.mckp_rows,
        weights: &ws.mckp_weights,
        energies: &ws.mckp_energies,
        offsets: &ws.mckp_offsets,
    })
}

/// Runs one MCKP DP pass over the shared grid of `budgets` into `ws` and
/// returns the extraction handle.
///
/// The grid is sized by `Grid::shared`: scaled to the largest budget,
/// with the smallest budget keeping at least `resolution` buckets (see
/// the module docs for the cap on pathological spreads). The table is
/// always filled from scratch; use [`mckp_resweep`] to reuse the
/// workspace's retained checkpoints when only a suffix of the classes
/// changed.
///
/// # Errors
///
/// [`MckpError::InvalidInput`] for an empty batch, non-finite /
/// non-positive budgets or zero resolution; [`MckpError::EmptyClass`] if
/// a class has no items. Per-budget infeasibility is reported by
/// [`MckpSweep::best_for`], not here.
pub fn mckp_sweep<'a>(
    classes: &'a [Vec<MckpItem>],
    budgets: &[f64],
    resolution: usize,
    ws: &'a mut SolverWorkspace,
) -> Result<MckpSweep<'a>, MckpError> {
    sweep_impl(classes, budgets, resolution, ws, false)
}

/// [`mckp_sweep`] with **incremental re-solve**: diffs the freshly
/// quantized item lanes against the checkpointed table retained in `ws`
/// (bitwise — grid, class sizes, weights and energy bit patterns) and
/// refills only the DP rows from the first changed class on. Unchanged
/// suffixless drift — e.g. the same model re-swept for a new batch of
/// budgets on the same grid, or one class's items perturbed — skips the
/// unaffected prefix entirely; a workspace holding a different grid or
/// model falls back to a full fill.
///
/// The result is **bit-identical** to [`mckp_sweep`] on the same inputs
/// (pinned by the incremental proptests): a prefix is reused only when
/// every byte feeding it is unchanged, so the refilled suffix reads
/// exactly the rows a full fill would have produced.
/// [`MckpSweep::refilled_classes`] reports how much work was done.
///
/// # Errors
///
/// Same conditions as [`mckp_sweep`].
pub fn mckp_resweep<'a>(
    classes: &'a [Vec<MckpItem>],
    budgets: &[f64],
    resolution: usize,
    ws: &'a mut SolverWorkspace,
) -> Result<MckpSweep<'a>, MckpError> {
    sweep_impl(classes, budgets, resolution, ws, true)
}

impl MckpSweep<'_> {
    /// The shared grid's bucket width in seconds (the `s` of the
    /// discretization bound `OPT(B) ≤ E ≤ OPT(B − n·s)`).
    pub fn scale(&self) -> f64 {
        self.grid.scale
    }

    /// Number of buckets in the shared table.
    pub fn buckets(&self) -> usize {
        self.grid.buckets
    }

    /// Sum of per-class minimum times — the feasibility floor every
    /// budget is checked against.
    pub fn min_time_secs(&self) -> f64 {
        self.min_time_secs
    }

    /// How many trailing classes the producing fill actually refilled:
    /// equal to the class count for [`mckp_sweep`], and the changed
    /// suffix length (possibly 0) for [`mckp_resweep`]. The incremental
    /// cost bound — o(full refill) after a single-class mutation — is
    /// asserted on this counter.
    pub fn refilled_classes(&self) -> usize {
        self.refilled
    }

    /// Extracts the energy-minimal feasible selection for one budget from
    /// the shared table (a bucket scan plus a backtrack; no DP work).
    ///
    /// The budget is rounded *down* to the grid, so the returned selection
    /// is feasible in real time. Budgets above the grid's maximum are
    /// answered as if they were the maximum (the table cannot contain
    /// heavier selections).
    ///
    /// # Errors
    ///
    /// [`MckpError::InvalidInput`] for a non-finite / non-positive budget;
    /// [`MckpError::Infeasible`] if even the fastest selection overruns
    /// `budget_secs`.
    pub fn best_for(&self, budget_secs: f64) -> Result<MckpSolution, MckpError> {
        validate_budget(budget_secs)?;
        if self.min_time_secs > budget_secs {
            return Err(MckpError::Infeasible {
                min_time_secs: self.min_time_secs,
                budget_secs,
            });
        }
        extract(
            self.classes,
            self.grid.buckets,
            self.grid.limit_for(budget_secs),
            budget_secs,
            TableRef {
                rows: self.rows,
                weights: self.weights,
                energies: self.energies,
                offsets: self.offsets,
            },
        )
    }
}

/// Solves every budget of a batch from **one** DP pass: builds the shared
/// table ([`mckp_sweep`]) and extracts each budget in order.
///
/// The outer `Result` carries batch-level errors (degenerate inputs,
/// empty classes); the per-budget entries carry each budget's own
/// feasibility. Results match per-call [`crate::mckp::solve_dp`] within
/// the documented discretization bound.
///
/// # Errors
///
/// Same batch-level conditions as [`mckp_sweep`].
pub fn solve_dp_sweep(
    classes: &[Vec<MckpItem>],
    budgets: &[f64],
    resolution: usize,
) -> Result<Vec<Result<MckpSolution, MckpError>>, MckpError> {
    let mut ws = SolverWorkspace::new();
    let sweep = mckp_sweep(classes, budgets, resolution, &mut ws)?;
    Ok(budgets.iter().map(|&b| sweep.best_for(b)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mckp::{solve_dp, solve_exhaustive};

    fn item(t: f64, e: f64) -> MckpItem {
        MckpItem {
            time_secs: t,
            energy: e,
        }
    }

    fn classes() -> Vec<Vec<MckpItem>> {
        vec![
            vec![item(1.0, 10.0), item(2.0, 6.0), item(4.0, 3.0)],
            vec![item(1.0, 8.0), item(3.0, 2.0)],
            vec![item(0.5, 5.0), item(1.5, 4.0), item(2.5, 1.0)],
        ]
    }

    #[test]
    fn sweep_matches_per_call_within_the_bound() {
        let classes = classes();
        let budgets = [3.0, 4.5, 6.0, 9.0];
        let resolution = 4000;
        let sweep = solve_dp_sweep(&classes, &budgets, resolution).unwrap();
        for (sol, &budget) in sweep.iter().zip(&budgets) {
            let sol = sol.as_ref().unwrap();
            let per_call = solve_dp(&classes, budget, resolution).unwrap();
            // Both lie in [OPT(B), OPT(B − n·scale_percall)]; the sweep's
            // grid is at least as fine for every budget in the batch.
            let slack = classes.len() as f64 * budget / resolution as f64;
            let opt = solve_exhaustive(&classes, budget).unwrap();
            let opt_tight = solve_exhaustive(&classes, budget - slack).unwrap();
            assert!(sol.total_time_secs <= budget + 1e-9);
            assert!(sol.total_energy >= opt.total_energy - 1e-9);
            assert!(sol.total_energy <= opt_tight.total_energy + 1e-9);
            assert!(per_call.total_energy >= opt.total_energy - 1e-9);
            assert!(per_call.total_energy <= opt_tight.total_energy + 1e-9);
        }
    }

    #[test]
    fn sweep_reports_per_budget_feasibility() {
        let classes = vec![vec![item(2.0, 1.0)], vec![item(3.0, 1.0)]];
        let out = solve_dp_sweep(&classes, &[4.0, 6.0], 500).unwrap();
        assert!(matches!(out[0], Err(MckpError::Infeasible { .. })));
        assert!(out[1].is_ok());
    }

    #[test]
    fn sweep_rejects_empty_class_up_front() {
        let classes = vec![vec![item(1.0, 1.0)], vec![]];
        assert_eq!(
            solve_dp_sweep(&classes, &[5.0], 100).unwrap_err(),
            MckpError::EmptyClass { class: 1 }
        );
    }

    #[test]
    fn single_budget_sweep_agrees_with_solve_dp_exactly() {
        // With one budget the shared grid *is* the historical grid, so the
        // results must be bit-identical, not merely within the bound.
        let classes = classes();
        for budget in [3.0, 4.5, 6.0, 9.0] {
            let per_call = solve_dp(&classes, budget, 2000).unwrap();
            let via_sweep = solve_dp_sweep(&classes, &[budget], 2000).unwrap()[0]
                .clone()
                .unwrap();
            assert_eq!(per_call, via_sweep);
        }
    }

    #[test]
    fn workspace_reuse_is_bit_identical_across_shapes() {
        let mut ws = SolverWorkspace::new();
        let a = classes();
        let b = vec![vec![item(0.2, 1.0), item(0.7, 0.4)]; 7];
        for _ in 0..3 {
            for (cl, budget) in [(&a, 6.0), (&b, 3.0), (&a, 3.5)] {
                let fresh = solve_dp(cl, budget, 777).unwrap();
                let reused = solve_dp_with(cl, budget, 777, &mut ws).unwrap();
                assert_eq!(fresh, reused);
            }
        }
    }

    #[test]
    fn relaxing_budget_within_one_table_never_costs_more() {
        let classes = classes();
        let budgets: Vec<f64> = (0..12).map(|i| 3.0 + 0.5 * i as f64).collect();
        let out = solve_dp_sweep(&classes, &budgets, 1000).unwrap();
        let mut prev = f64::INFINITY;
        for sol in out {
            let e = sol.unwrap().total_energy;
            assert!(e <= prev + 1e-12, "relaxed budget got costlier");
            prev = e;
        }
    }

    #[test]
    fn resweep_skips_the_fill_when_nothing_changed() {
        let classes = classes();
        let budgets = [3.0, 4.5, 6.0];
        let mut ws = SolverWorkspace::new();
        let full: Vec<_> = {
            let sweep = mckp_sweep(&classes, &budgets, 1000, &mut ws).unwrap();
            assert_eq!(sweep.refilled_classes(), classes.len());
            budgets.iter().map(|&b| sweep.best_for(b)).collect()
        };
        let again: Vec<_> = {
            let sweep = mckp_resweep(&classes, &budgets, 1000, &mut ws).unwrap();
            assert_eq!(sweep.refilled_classes(), 0, "identical solve must reuse");
            budgets.iter().map(|&b| sweep.best_for(b)).collect()
        };
        assert_eq!(full, again);
    }

    #[test]
    fn resweep_refills_only_the_changed_suffix() {
        let mut classes = classes();
        let budgets = [3.0, 4.5, 6.0, 9.0];
        let mut ws = SolverWorkspace::new();
        {
            let sweep = mckp_sweep(&classes, &budgets, 1500, &mut ws).unwrap();
            assert_eq!(sweep.refilled_classes(), 3);
        }
        // Mutate the last class only: two rows (prefix of 2 classes)
        // must survive.
        classes[2][1].energy = 3.75;
        let incremental: Vec<_> = {
            let sweep = mckp_resweep(&classes, &budgets, 1500, &mut ws).unwrap();
            assert_eq!(sweep.refilled_classes(), 1);
            budgets.iter().map(|&b| sweep.best_for(b)).collect()
        };
        let scratch = solve_dp_sweep(&classes, &budgets, 1500).unwrap();
        assert_eq!(incremental, scratch, "incremental must be bit-identical");
    }

    #[test]
    fn resweep_falls_back_to_full_fill_on_grid_change() {
        let classes = classes();
        let mut ws = SolverWorkspace::new();
        {
            let _ = mckp_sweep(&classes, &[3.0, 6.0], 1000, &mut ws).unwrap();
        }
        let sweep = mckp_resweep(&classes, &[3.5, 6.0], 1000, &mut ws).unwrap();
        assert_eq!(
            sweep.refilled_classes(),
            classes.len(),
            "a different budget batch means a different grid: full refill"
        );
    }

    #[test]
    fn resweep_detects_class_shrink_and_growth() {
        let mut classes = classes();
        let budgets = [4.0, 8.0];
        let mut ws = SolverWorkspace::new();
        let _ = mckp_sweep(&classes, &budgets, 800, &mut ws).unwrap();
        // Shrinking class 1 shifts the lane offsets of everything after it.
        classes[1].pop();
        let incremental: Vec<_> = {
            let sweep = mckp_resweep(&classes, &budgets, 800, &mut ws).unwrap();
            assert_eq!(sweep.refilled_classes(), 2, "classes 1.. must refill");
            budgets.iter().map(|&b| sweep.best_for(b)).collect()
        };
        assert_eq!(
            incremental,
            solve_dp_sweep(&classes, &budgets, 800).unwrap()
        );
        // Growing it back (different item) invalidates the same suffix.
        classes[1].push(item(2.5, 2.5));
        let sweep = mckp_resweep(&classes, &budgets, 800, &mut ws).unwrap();
        assert_eq!(sweep.refilled_classes(), 2);
    }

    #[test]
    fn corrupt_workspace_is_a_typed_error_not_a_panic() {
        let classes = classes();
        let mut ws = SolverWorkspace::new();
        let _ = mckp_sweep(&classes, &[6.0], 500, &mut ws).unwrap();
        // Desynchronize the table from the lanes: scribble over the rows.
        for v in ws.mckp_rows.iter_mut() {
            *v = 1.0;
        }
        let sweep = MckpSweep {
            classes: &classes,
            grid: Grid::single(6.0, 500),
            min_time_secs: 0.0,
            refilled: 0,
            rows: &ws.mckp_rows,
            weights: &ws.mckp_weights,
            energies: &ws.mckp_energies,
            offsets: &ws.mckp_offsets,
        };
        assert!(matches!(
            sweep.best_for(6.0),
            Err(MckpError::CorruptTable { .. })
        ));
    }
}
