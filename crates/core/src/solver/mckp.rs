//! The MCKP dynamic-program core: one table fill, per-budget extraction.
//!
//! See the [module docs](crate::solver) for the shared-grid argument and
//! the discretization bound. [`crate::mckp::solve_dp`] wraps
//! [`solve_dp_with`] on a single-budget grid and is bit-identical to the
//! historical per-call implementation.

use crate::mckp::{tally, validate, MckpError, MckpItem, MckpSolution};
use crate::solver::workspace::SolverWorkspace;
use crate::solver::{validate_budget, validate_resolution, Grid};

const INF: f64 = f64::INFINITY;

/// Read-only view of a filled DP table inside a workspace.
#[derive(Debug, Clone, Copy)]
struct TableRef<'a> {
    dp: &'a [f64],
    picks: &'a [u32],
    weights: &'a [usize],
    offsets: &'a [usize],
}

/// Precomputes every item's bucket weight once per solve (class-major into
/// the workspace) instead of re-deriving it per DP transition.
fn prepare_weights(classes: &[Vec<MckpItem>], scale: f64, ws: &mut SolverWorkspace) {
    ws.mckp_offsets.clear();
    ws.mckp_weights.clear();
    for class in classes {
        ws.mckp_offsets.push(ws.mckp_weights.len());
        for item in class {
            ws.mckp_weights
                .push((item.time_secs / scale).ceil() as usize);
        }
    }
    ws.mckp_offsets.push(ws.mckp_weights.len());
}

/// Fills the DP table: after the call, `ws.mckp_dp[b]` is the minimum
/// energy over selections of total bucket-weight exactly `b`, and
/// `ws.mckp_picks[k * buckets + b]` backtracks class `k`'s choice.
fn fill_table(classes: &[Vec<MckpItem>], buckets: usize, ws: &mut SolverWorkspace) {
    let SolverWorkspace {
        mckp_dp: dp,
        mckp_next: next,
        mckp_picks: picks,
        mckp_weights: weights,
        mckp_offsets: offsets,
        ..
    } = ws;
    dp.clear();
    dp.resize(buckets, INF);
    dp[0] = 0.0;
    next.clear();
    next.resize(buckets, INF);
    picks.clear();
    picks.resize(classes.len() * buckets, u32::MAX);

    for (k, class) in classes.iter().enumerate() {
        for slot in next.iter_mut() {
            *slot = INF;
        }
        let pick = &mut picks[k * buckets..(k + 1) * buckets];
        for (i, item) in class.iter().enumerate() {
            let w = weights[offsets[k] + i];
            if w >= buckets {
                continue;
            }
            for b in w..buckets {
                let base = dp[b - w];
                if base.is_finite() {
                    let cand = base + item.energy;
                    if cand < next[b] {
                        next[b] = cand;
                        pick[b] = i as u32;
                    }
                }
            }
        }
        // `dp[b]` keeps exact-weight semantics across classes; the
        // best-reachable bucket is found by the extraction scan, which is
        // what lets one table answer every budget.
        std::mem::swap(dp, next);
    }
}

/// Scans the buckets `0..=limit` for the cheapest reachable state and
/// backtracks it into a per-class selection.
fn extract(
    classes: &[Vec<MckpItem>],
    buckets: usize,
    limit: usize,
    budget_secs: f64,
    t: TableRef<'_>,
) -> Result<MckpSolution, MckpError> {
    let mut best_b = None;
    let mut best_e = INF;
    for (b, &e) in t.dp.iter().enumerate().take(limit + 1) {
        if e < best_e {
            best_e = e;
            best_b = Some(b);
        }
    }
    let mut b = best_b.ok_or(MckpError::Infeasible {
        // All-finite was pre-validated; reaching here means ceil-rounding
        // pushed every selection past the budget, which the validation
        // margin makes near-impossible, but report honestly.
        min_time_secs: budget_secs,
        budget_secs,
    })?;

    let mut choices = vec![0usize; classes.len()];
    for k in (0..classes.len()).rev() {
        let i = t.picks[k * buckets + b];
        assert!(i != u32::MAX, "backtracking hit an unreachable state");
        choices[k] = i as usize;
        b -= t.weights[t.offsets[k] + i as usize];
    }
    let (total_time_secs, total_energy) = tally(classes, &choices);
    Ok(MckpSolution {
        choices,
        total_time_secs,
        total_energy,
    })
}

/// [`crate::mckp::solve_dp`] against a caller-provided workspace: same
/// validation, same single-budget grid, zero steady-state allocation.
pub(crate) fn solve_dp_with(
    classes: &[Vec<MckpItem>],
    budget_secs: f64,
    resolution: usize,
    ws: &mut SolverWorkspace,
) -> Result<MckpSolution, MckpError> {
    validate_budget(budget_secs)?;
    validate_resolution(resolution)?;
    validate(classes, budget_secs)?;
    let grid = Grid::single(budget_secs, resolution);
    prepare_weights(classes, grid.scale, ws);
    fill_table(classes, grid.buckets, ws);
    extract(
        classes,
        grid.buckets,
        grid.buckets - 1,
        budget_secs,
        TableRef {
            dp: &ws.mckp_dp,
            picks: &ws.mckp_picks,
            weights: &ws.mckp_weights,
            offsets: &ws.mckp_offsets,
        },
    )
}

/// A filled multi-budget MCKP table: one DP pass over a shared absolute
/// grid, ready to answer any budget up to its maximum with a cheap
/// scan-and-backtrack.
///
/// Borrows the classes it was solved for and the workspace holding the
/// table; extraction ([`MckpSweep::best_for`]) takes `&self`, so budgets
/// can be answered concurrently from several threads.
#[derive(Debug, Clone, Copy)]
pub struct MckpSweep<'a> {
    classes: &'a [Vec<MckpItem>],
    grid: Grid,
    min_time_secs: f64,
    dp: &'a [f64],
    picks: &'a [u32],
    weights: &'a [usize],
    offsets: &'a [usize],
}

/// Runs one MCKP DP pass over the shared grid of `budgets` into `ws` and
/// returns the extraction handle.
///
/// The grid is sized by `Grid::shared`: scaled to the largest budget,
/// with the smallest budget keeping at least `resolution` buckets (see
/// the module docs for the cap on pathological spreads).
///
/// # Errors
///
/// [`MckpError::InvalidInput`] for an empty batch, non-finite /
/// non-positive budgets or zero resolution; [`MckpError::EmptyClass`] if
/// a class has no items. Per-budget infeasibility is reported by
/// [`MckpSweep::best_for`], not here.
pub fn mckp_sweep<'a>(
    classes: &'a [Vec<MckpItem>],
    budgets: &[f64],
    resolution: usize,
    ws: &'a mut SolverWorkspace,
) -> Result<MckpSweep<'a>, MckpError> {
    let grid = Grid::shared(budgets, resolution)?;
    for (i, class) in classes.iter().enumerate() {
        if class.is_empty() {
            return Err(MckpError::EmptyClass { class: i });
        }
    }
    let min_time_secs: f64 = classes
        .iter()
        .map(|c| c.iter().map(|i| i.time_secs).fold(INF, f64::min))
        .sum();
    prepare_weights(classes, grid.scale, ws);
    fill_table(classes, grid.buckets, ws);
    Ok(MckpSweep {
        classes,
        grid,
        min_time_secs,
        dp: &ws.mckp_dp,
        picks: &ws.mckp_picks,
        weights: &ws.mckp_weights,
        offsets: &ws.mckp_offsets,
    })
}

impl MckpSweep<'_> {
    /// The shared grid's bucket width in seconds (the `s` of the
    /// discretization bound `OPT(B) ≤ E ≤ OPT(B − n·s)`).
    pub fn scale(&self) -> f64 {
        self.grid.scale
    }

    /// Number of buckets in the shared table.
    pub fn buckets(&self) -> usize {
        self.grid.buckets
    }

    /// Sum of per-class minimum times — the feasibility floor every
    /// budget is checked against.
    pub fn min_time_secs(&self) -> f64 {
        self.min_time_secs
    }

    /// Extracts the energy-minimal feasible selection for one budget from
    /// the shared table (a bucket scan plus a backtrack; no DP work).
    ///
    /// The budget is rounded *down* to the grid, so the returned selection
    /// is feasible in real time. Budgets above the grid's maximum are
    /// answered as if they were the maximum (the table cannot contain
    /// heavier selections).
    ///
    /// # Errors
    ///
    /// [`MckpError::InvalidInput`] for a non-finite / non-positive budget;
    /// [`MckpError::Infeasible`] if even the fastest selection overruns
    /// `budget_secs`.
    pub fn best_for(&self, budget_secs: f64) -> Result<MckpSolution, MckpError> {
        validate_budget(budget_secs)?;
        if self.min_time_secs > budget_secs {
            return Err(MckpError::Infeasible {
                min_time_secs: self.min_time_secs,
                budget_secs,
            });
        }
        extract(
            self.classes,
            self.grid.buckets,
            self.grid.limit_for(budget_secs),
            budget_secs,
            TableRef {
                dp: self.dp,
                picks: self.picks,
                weights: self.weights,
                offsets: self.offsets,
            },
        )
    }
}

/// Solves every budget of a batch from **one** DP pass: builds the shared
/// table ([`mckp_sweep`]) and extracts each budget in order.
///
/// The outer `Result` carries batch-level errors (degenerate inputs,
/// empty classes); the per-budget entries carry each budget's own
/// feasibility. Results match per-call [`crate::mckp::solve_dp`] within
/// the documented discretization bound.
///
/// # Errors
///
/// Same batch-level conditions as [`mckp_sweep`].
pub fn solve_dp_sweep(
    classes: &[Vec<MckpItem>],
    budgets: &[f64],
    resolution: usize,
) -> Result<Vec<Result<MckpSolution, MckpError>>, MckpError> {
    let mut ws = SolverWorkspace::new();
    let sweep = mckp_sweep(classes, budgets, resolution, &mut ws)?;
    Ok(budgets.iter().map(|&b| sweep.best_for(b)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mckp::{solve_dp, solve_exhaustive};

    fn item(t: f64, e: f64) -> MckpItem {
        MckpItem {
            time_secs: t,
            energy: e,
        }
    }

    fn classes() -> Vec<Vec<MckpItem>> {
        vec![
            vec![item(1.0, 10.0), item(2.0, 6.0), item(4.0, 3.0)],
            vec![item(1.0, 8.0), item(3.0, 2.0)],
            vec![item(0.5, 5.0), item(1.5, 4.0), item(2.5, 1.0)],
        ]
    }

    #[test]
    fn sweep_matches_per_call_within_the_bound() {
        let classes = classes();
        let budgets = [3.0, 4.5, 6.0, 9.0];
        let resolution = 4000;
        let sweep = solve_dp_sweep(&classes, &budgets, resolution).unwrap();
        for (sol, &budget) in sweep.iter().zip(&budgets) {
            let sol = sol.as_ref().unwrap();
            let per_call = solve_dp(&classes, budget, resolution).unwrap();
            // Both lie in [OPT(B), OPT(B − n·scale_percall)]; the sweep's
            // grid is at least as fine for every budget in the batch.
            let slack = classes.len() as f64 * budget / resolution as f64;
            let opt = solve_exhaustive(&classes, budget).unwrap();
            let opt_tight = solve_exhaustive(&classes, budget - slack).unwrap();
            assert!(sol.total_time_secs <= budget + 1e-9);
            assert!(sol.total_energy >= opt.total_energy - 1e-9);
            assert!(sol.total_energy <= opt_tight.total_energy + 1e-9);
            assert!(per_call.total_energy >= opt.total_energy - 1e-9);
            assert!(per_call.total_energy <= opt_tight.total_energy + 1e-9);
        }
    }

    #[test]
    fn sweep_reports_per_budget_feasibility() {
        let classes = vec![vec![item(2.0, 1.0)], vec![item(3.0, 1.0)]];
        let out = solve_dp_sweep(&classes, &[4.0, 6.0], 500).unwrap();
        assert!(matches!(out[0], Err(MckpError::Infeasible { .. })));
        assert!(out[1].is_ok());
    }

    #[test]
    fn sweep_rejects_empty_class_up_front() {
        let classes = vec![vec![item(1.0, 1.0)], vec![]];
        assert_eq!(
            solve_dp_sweep(&classes, &[5.0], 100).unwrap_err(),
            MckpError::EmptyClass { class: 1 }
        );
    }

    #[test]
    fn single_budget_sweep_agrees_with_solve_dp_exactly() {
        // With one budget the shared grid *is* the historical grid, so the
        // results must be bit-identical, not merely within the bound.
        let classes = classes();
        for budget in [3.0, 4.5, 6.0, 9.0] {
            let per_call = solve_dp(&classes, budget, 2000).unwrap();
            let via_sweep = solve_dp_sweep(&classes, &[budget], 2000).unwrap()[0]
                .clone()
                .unwrap();
            assert_eq!(per_call, via_sweep);
        }
    }

    #[test]
    fn workspace_reuse_is_bit_identical_across_shapes() {
        let mut ws = SolverWorkspace::new();
        let a = classes();
        let b = vec![vec![item(0.2, 1.0), item(0.7, 0.4)]; 7];
        for _ in 0..3 {
            for (cl, budget) in [(&a, 6.0), (&b, 3.0), (&a, 3.5)] {
                let fresh = solve_dp(cl, budget, 777).unwrap();
                let reused = solve_dp_with(cl, budget, 777, &mut ws).unwrap();
                assert_eq!(fresh, reused);
            }
        }
    }

    #[test]
    fn relaxing_budget_within_one_table_never_costs_more() {
        let classes = classes();
        let budgets: Vec<f64> = (0..12).map(|i| 3.0 + 0.5 * i as f64).collect();
        let out = solve_dp_sweep(&classes, &budgets, 1000).unwrap();
        let mut prev = f64::INFINITY;
        for sol in out {
            let e = sol.unwrap().total_energy;
            assert!(e <= prev + 1e-12, "relaxed budget got costlier");
            prev = e;
        }
    }
}
