//! Dependency-free observability for the serving stack: **receipts**,
//! **per-path latency histograms**, and the primitives behind the
//! deterministic trace record/replay harness.
//!
//! Every answer the service hands back can carry a [`Receipt`]: the
//! request's full cache identity ([`crate::service::PlanKey`]), the serving path
//! that answered it ([`ServePath`]), the solver and artifact schema
//! versions, an FNV-1a hash of the exact bytes served ([`plan_hash`]),
//! and per-stage timing. Receipts are what turn the test-only
//! bit-identity pins into an *operational* property: two runs that
//! served the same request must report the same `plan_hash`, no matter
//! which path (inline hit, coalesced solve, registry load, …) answered,
//! and the `plan_server --replay` harness asserts exactly that over
//! recorded traces.
//!
//! Latency is recorded into fixed-size power-of-two histograms
//! (snapshots: [`HistogramSnapshot`]) — one per serving path, lock-free
//! atomics, no allocation — folded into [`crate::ServiceStats`] and
//! rendered by the HTTP server's `GET /metrics` endpoint.
//!
//! This module sits inside repro-lint's determinism perimeter. The one
//! wall-clock read lives in `monotonic_nanos` (waivered): timing is
//! *observability output only* — it never feeds a cache key, a solver,
//! or any served byte, so plan bits stay a pure function of the request.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use crate::service::PlanKey;

/// Nanoseconds since an arbitrary process-local epoch (the first call).
///
/// The single wall-clock site of the observability subsystem: every
/// receipt timestamp and histogram sample derives from differences of
/// this monotonic counter. Using one epoch keeps the perimeter tight —
/// repro-lint sees exactly one waivered `Instant::now` in `obs/`.
pub(crate) fn monotonic_nanos() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    // Saturate past ~584 years of uptime rather than wrapping.
    u64::try_from(EPOCH.get_or_init(Instant::now).elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// FNV-1a hash of served response bytes — the receipt's `plan_hash`.
///
/// This is the same primitive the artifact fingerprints and the
/// registry's content addresses use, re-exported so replay harnesses
/// outside this crate can recompute the hash of a body they received
/// and compare it against a recorded receipt.
pub fn plan_hash(bytes: &[u8]) -> u64 {
    crate::artifact::fnv1a(bytes)
}

/// Which path answered a request. Paths are mutually exclusive per
/// answer and cover every way a [`crate::PlanService`] can fulfill a
/// ticket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServePath {
    /// Lock-free fast path: cache hit answered inline at submit, no
    /// queue, no worker (`ServiceStats::inline_hits` counts these).
    InlineHit,
    /// Cache hit discovered on the locked submit path (hint race or
    /// registry-warmed entry served under the queue lock).
    CacheHit,
    /// Joined another request's in-flight solve and shared its answer
    /// (single-flight dedup, including queue-full stray fulfillment).
    FlightJoin,
    /// Led a coalesced batch: one shared-grid DP answered `batch`
    /// distinct leaders, this request among them.
    Coalesced {
        /// Distinct leaders the shared solve answered (≥ 2).
        batch: u32,
    },
    /// Answered from the on-disk registry (cold tier), no solve.
    RegistryHit,
    /// Led a singleton solve (batch of one).
    Solved,
}

impl ServePath {
    /// Number of distinct path kinds (histogram lanes).
    pub const COUNT: usize = 6;

    /// Stable labels, indexed by [`ServePath::index`]; the vocabulary
    /// the receipt header, `/metrics` and trace records share.
    pub const LABELS: [&'static str; ServePath::COUNT] = [
        "inline-hit",
        "cache-hit",
        "flight-join",
        "coalesced",
        "registry-hit",
        "solved",
    ];

    /// Histogram lane of this path.
    pub fn index(self) -> usize {
        match self {
            ServePath::InlineHit => 0,
            ServePath::CacheHit => 1,
            ServePath::FlightJoin => 2,
            ServePath::Coalesced { .. } => 3,
            ServePath::RegistryHit => 4,
            ServePath::Solved => 5,
        }
    }

    /// The path's stable label (see [`ServePath::LABELS`]).
    pub fn label(self) -> &'static str {
        ServePath::LABELS[self.index()]
    }

    /// Coalesced batch size; 1 for every non-coalesced path.
    pub fn batch(self) -> u32 {
        match self {
            ServePath::Coalesced { batch } => batch,
            _ => 1,
        }
    }
}

/// How a fulfilled ticket was answered, stamped by the service at
/// fulfillment time and carried to the receipt.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PathStamp {
    /// The answering path.
    pub path: ServePath,
    /// Nanoseconds the solve stage took (0 for solve-free paths).
    pub solve_nanos: u64,
}

impl PathStamp {
    /// A solve-free stamp (hits, joins, registry loads).
    pub(crate) fn instant(path: ServePath) -> Self {
        PathStamp {
            path,
            solve_nanos: 0,
        }
    }
}

/// One served answer's audit record.
///
/// The receipt pins everything an auditor needs to re-derive the
/// answer: the full request identity, the path that produced it, the
/// schema versions in play, and the FNV-1a hash of the exact bytes
/// served. Two receipts for the same [`crate::service::PlanKey`] must agree on
/// `plan_hash` — across paths, across restarts, across machines — or
/// the serving stack broke its bit-identity contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct Receipt {
    /// Full canonical request identity (the cache key).
    pub key: PlanKey,
    /// The path that answered.
    pub path: ServePath,
    /// Solver tag (registry envelope vocabulary: `reserve-grid` /
    /// `sequence-dp`).
    pub solver: &'static str,
    /// `PLAN_ARTIFACT_SCHEMA_VERSION` of the served artifact bytes.
    pub artifact_schema_version: u32,
    /// FNV-1a hash of the served bytes ([`plan_hash`]).
    pub plan_hash: u64,
    /// Nanoseconds spent in the solve stage (0 on solve-free paths).
    pub solve_nanos: u64,
    /// End-to-end nanoseconds from admission to fulfillment.
    pub total_nanos: u64,
}

impl Receipt {
    /// The request fingerprint: the FNV-1a mix of the full key — the
    /// same 64 bits the registry uses as a content address, rendered as
    /// 16 hex digits in headers, trace records and `/v1/receipt/<fp>`.
    pub fn fingerprint(&self) -> u64 {
        self.key.fnv()
    }

    /// Compact single-line rendering for the `X-Plan-Receipt` response
    /// header: `fp=…;path=…;batch=…;solver=…;artifact=v…;hash=…;
    /// solve_ns=…;total_ns=…` (semicolon-separated `k=v`, no spaces).
    pub fn to_header_value(&self) -> String {
        format!(
            "fp={:016x};path={};batch={};solver={};artifact=v{};hash={:016x};solve_ns={};total_ns={}",
            self.fingerprint(),
            self.path.label(),
            self.path.batch(),
            self.solver,
            self.artifact_schema_version,
            self.plan_hash,
            self.solve_nanos,
            self.total_nanos,
        )
    }

    /// JSON rendering for `GET /v1/receipt/<fp>` and trace records.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"fingerprint\": \"{:016x}\", \"path\": \"{}\", \"batch\": {}, \
             \"solver\": \"{}\", \"artifact_schema_version\": {}, \
             \"plan_hash\": \"{:016x}\", \"model_fingerprint\": \"{:016x}\", \
             \"config_fingerprint\": \"{:016x}\", \"window_bits\": \"{:016x}\", \
             \"dp_resolution\": {}, \"solve_ns\": {}, \"total_ns\": {}}}",
            self.fingerprint(),
            self.path.label(),
            self.path.batch(),
            self.solver,
            self.artifact_schema_version,
            self.plan_hash,
            self.key.model_fingerprint,
            self.key.config_fingerprint,
            self.key.window_bits,
            self.key.dp_resolution,
            self.solve_nanos,
            self.total_nanos,
        )
    }
}

/// Histogram lanes: power-of-two buckets over `u64` nanoseconds.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// Lane a value lands in: `0` for 0–1 ns, otherwise `⌊log₂ v⌋`, capped
/// at the overflow lane (everything ≥ 2³⁹ ns ≈ 9 minutes).
fn bucket_index(nanos: u64) -> usize {
    if nanos == 0 {
        0
    } else {
        ((63 - nanos.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Inclusive upper bound of a lane, in nanoseconds (`u64::MAX` for the
/// overflow lane).
pub fn bucket_upper_nanos(index: usize) -> u64 {
    if index >= HISTOGRAM_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << (index + 1)) - 1
    }
}

/// A fixed-size, lock-free latency histogram: 40 power-of-two buckets
/// over nanoseconds, recorded with relaxed atomics (counters only;
/// no ordering is needed because snapshots are advisory).
#[derive(Debug)]
pub(crate) struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Histogram {
    /// An empty histogram.
    pub(crate) const fn new() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
        }
    }

    /// Records one sample.
    pub(crate) fn record(&self, nanos: u64) {
        self.buckets[bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the bucket counts.
    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (slot, bucket) in buckets.iter_mut().zip(&self.buckets) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        HistogramSnapshot { buckets }
    }
}

/// An immutable copy of a `Histogram`'s counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-lane sample counts (lane `i` holds values in
    /// `[2^i, 2^(i+1))` ns; lane 0 additionally holds 0 and 1 ns; the
    /// last lane absorbs everything larger).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub const fn empty() -> Self {
        HistogramSnapshot {
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Nearest-rank `q`-quantile (0…1), reported as the **upper bound**
    /// of the bucket the ranked sample fell in — a conservative (never
    /// under-reported) latency. Returns 0 for an empty histogram.
    pub fn percentile_upper_nanos(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * (count - 1) as f64).round() as u64).min(count - 1);
        let mut seen = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen > rank {
                return bucket_upper_nanos(index);
            }
        }
        bucket_upper_nanos(HISTOGRAM_BUCKETS - 1)
    }
}

/// One latency histogram per serving path, lock-free.
#[derive(Debug)]
pub(crate) struct PathHistograms {
    lanes: [Histogram; ServePath::COUNT],
}

impl PathHistograms {
    /// All-empty histograms.
    pub(crate) const fn new() -> Self {
        PathHistograms {
            lanes: [
                Histogram::new(),
                Histogram::new(),
                Histogram::new(),
                Histogram::new(),
                Histogram::new(),
                Histogram::new(),
            ],
        }
    }

    /// Records one end-to-end sample on `path`'s lane.
    pub(crate) fn record(&self, path: ServePath, total_nanos: u64) {
        self.lanes[path.index()].record(total_nanos);
    }

    /// A point-in-time copy of every lane.
    pub(crate) fn snapshot(&self) -> PathStats {
        let mut histograms = [HistogramSnapshot::empty(); ServePath::COUNT];
        for (slot, lane) in histograms.iter_mut().zip(&self.lanes) {
            *slot = lane.snapshot();
        }
        PathStats { histograms }
    }
}

/// Per-path latency snapshots, folded into [`crate::ServiceStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathStats {
    /// One snapshot per [`ServePath`] lane (indexed by
    /// [`ServePath::index`]; labels in [`ServePath::LABELS`]).
    pub histograms: [HistogramSnapshot; ServePath::COUNT],
}

impl PathStats {
    /// All-empty snapshots.
    pub const fn empty() -> Self {
        PathStats {
            histograms: [HistogramSnapshot::empty(); ServePath::COUNT],
        }
    }

    /// Iterates `(label, snapshot)` pairs in lane order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &HistogramSnapshot)> {
        ServePath::LABELS.iter().copied().zip(&self.histograms)
    }

    /// Total samples across every lane.
    pub fn total_count(&self) -> u64 {
        self.histograms.iter().map(HistogramSnapshot::count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Solver;

    fn key() -> PlanKey {
        PlanKey {
            model_fingerprint: 0x1111_2222_3333_4444,
            config_fingerprint: 0x5555_6666_7777_8888,
            solver: Solver::ReserveGrid,
            window_bits: 0.25f64.to_bits(),
            dp_resolution: 2000,
        }
    }

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        // 0 and 1 share lane 0; each boundary 2^i opens lane i.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        for i in 1..HISTOGRAM_BUCKETS - 1 {
            let boundary = 1u64 << i;
            assert_eq!(bucket_index(boundary - 1), i - 1, "below 2^{i}");
            assert_eq!(bucket_index(boundary), i, "at 2^{i}");
            assert_eq!(bucket_index(boundary + 1), i, "above 2^{i}");
        }
    }

    #[test]
    fn oversized_samples_land_in_the_overflow_lane() {
        for v in [1u64 << 39, 1 << 40, 1 << 63, u64::MAX] {
            assert_eq!(bucket_index(v), HISTOGRAM_BUCKETS - 1, "{v}");
        }
        assert_eq!(bucket_upper_nanos(HISTOGRAM_BUCKETS - 1), u64::MAX);
        assert_eq!(bucket_upper_nanos(HISTOGRAM_BUCKETS), u64::MAX);
        assert_eq!(bucket_upper_nanos(0), 1);
        assert_eq!(bucket_upper_nanos(3), 15);
    }

    #[test]
    fn histogram_percentiles_use_nearest_rank_upper_bounds() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 100, 1000, 1_000_000] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 7);
        // Ranked samples: lanes [0,0,1,1,6,9,19]; the median (rank 3)
        // sits in lane 1 → upper bound 3 ns.
        assert_eq!(snap.percentile_upper_nanos(0.5), 3);
        assert_eq!(snap.percentile_upper_nanos(0.0), 1);
        assert_eq!(snap.percentile_upper_nanos(1.0), bucket_upper_nanos(19));
        assert_eq!(HistogramSnapshot::empty().percentile_upper_nanos(0.5), 0);
    }

    #[test]
    fn path_lanes_and_labels_agree() {
        let paths = [
            ServePath::InlineHit,
            ServePath::CacheHit,
            ServePath::FlightJoin,
            ServePath::Coalesced { batch: 4 },
            ServePath::RegistryHit,
            ServePath::Solved,
        ];
        let mut seen = [false; ServePath::COUNT];
        for p in paths {
            assert!(!seen[p.index()], "duplicate lane {}", p.index());
            seen[p.index()] = true;
            assert_eq!(ServePath::LABELS[p.index()], p.label());
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(ServePath::Coalesced { batch: 4 }.batch(), 4);
        assert_eq!(ServePath::InlineHit.batch(), 1);
    }

    #[test]
    fn path_histograms_record_on_the_right_lane() {
        let metrics = PathHistograms::new();
        metrics.record(ServePath::InlineHit, 100);
        metrics.record(ServePath::InlineHit, 200);
        metrics.record(ServePath::Coalesced { batch: 2 }, 5_000);
        let stats = metrics.snapshot();
        assert_eq!(stats.total_count(), 3);
        assert_eq!(stats.histograms[0].count(), 2);
        assert_eq!(stats.histograms[3].count(), 1);
        let labels: Vec<&str> = stats.iter().map(|(label, _)| label).collect();
        assert_eq!(labels, ServePath::LABELS);
    }

    #[test]
    fn receipt_header_and_json_render_the_full_identity() {
        let receipt = Receipt {
            key: key(),
            path: ServePath::Coalesced { batch: 3 },
            solver: "reserve-grid",
            artifact_schema_version: 1,
            plan_hash: 0xdead_beef_0123_4567,
            solve_nanos: 42_000,
            total_nanos: 99_000,
        };
        let header = receipt.to_header_value();
        assert!(header.starts_with(&format!("fp={:016x};", receipt.fingerprint())));
        assert!(header.contains(";path=coalesced;batch=3;"));
        assert!(header.contains(";solver=reserve-grid;artifact=v1;"));
        assert!(header.contains(";hash=deadbeef01234567;"));
        assert!(header.contains(";solve_ns=42000;total_ns=99000"));
        assert!(!header.contains(' '), "header values must be space-free");
        let json = receipt.to_json();
        assert!(json.contains("\"plan_hash\": \"deadbeef01234567\""));
        assert!(json.contains("\"path\": \"coalesced\""));
        assert!(json.contains("\"dp_resolution\": 2000"));
        assert_eq!(receipt.fingerprint(), receipt.key.fnv());
    }

    #[test]
    fn monotonic_nanos_is_nondecreasing() {
        let a = monotonic_nanos();
        let b = monotonic_nanos();
        assert!(b >= a);
    }

    #[test]
    fn plan_hash_is_fnv1a_of_the_bytes() {
        // FNV-1a offset basis: the hash of the empty input.
        assert_eq!(plan_hash(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(plan_hash(b"a"), plan_hash(b"b"));
    }
}
