//! The reusable planning front-end: one construction, many QoS points.
//!
//! [`Planner::new`] pays the expensive, QoS-independent work exactly once
//! — lowering the model, compiling the per-layer segment schedules
//! ([`crate::schedule`]), sweeping the DSE grid (in parallel) and
//! reducing each layer to its Pareto front. Every subsequent
//! [`Planner::optimize`] / [`Planner::optimize_sequence`] /
//! [`Planner::deploy`] call is a solver run plus machine replays against
//! the cache, which is why sweeping many QoS points
//! ([`Planner::sweep`]) costs barely more than solving one.
//!
//! The single-shot functions ([`crate::pipeline::optimize`],
//! [`crate::pipeline::run_dae_dvfs`], …) are thin wrappers that build a
//! throw-away `Planner`; their results are bit-identical to the
//! pre-`Planner` straight-line pipeline.

use std::sync::{Arc, OnceLock};

use stm32_power::{Joules, PowerModel};
use tinyengine::{qos_window, LoweredModel};
use tinynn::Model;

use crate::dse::{DseConfig, DsePoint};
use crate::error::DaeDvfsError;
use crate::mckp::{MckpError, MckpItem, MckpSolution};
use crate::pareto::pareto_front;
use crate::pipeline::{DeploymentPlan, DeploymentReport, LayerDecision};
use crate::request::{validate_positive_time, PlanRequest, QosBudget, Solver};
use crate::schedule::{explore_model, replay_decisions, CompiledLayer};
use crate::solver::{
    mckp_resweep, mckp_sweep, solve_dp_with, solve_sequence_with, Grid, SolverWorkspace,
    WorkspacePool,
};
use crate::target::{Stm32F767Target, Target};

/// A reusable planner for one `(model, target)` pair.
///
/// Owns the target description, the lowered profiles, the compiled
/// segment schedules and the per-layer Pareto fronts; borrow it wherever
/// repeated QoS points, plan replays or baseline comparisons are needed.
///
/// # Examples
///
/// ```
/// use dae_dvfs::{DseConfig, Planner};
/// use tinynn::models::vww_sized;
///
/// # fn main() -> Result<(), dae_dvfs::DaeDvfsError> {
/// let model = vww_sized(32);
/// let planner = Planner::new(&model, &DseConfig::paper())?;
/// let baseline = planner.baseline_latency()?;
/// // The DSE is paid once; each optimize call reuses it.
/// for slack in [0.1, 0.3, 0.5] {
///     let plan = planner.optimize(baseline * (1.0 + slack))?;
///     assert!(plan.predicted_latency_secs <= baseline * (1.0 + slack));
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Planner {
    target: Arc<dyn Target>,
    model: Model,
    config: DseConfig,
    power: Arc<PowerModel>,
    layers: Vec<CompiledLayer>,
    fronts: Vec<Vec<DsePoint>>,
    baseline: OnceLock<LoweredModel>,
    /// Pool of reusable flat DP buffers shared by every solver call on
    /// this planner; concurrent solves check out distinct workspaces, so
    /// contended callers still reuse warmed buffers instead of allocating
    /// throw-aways (plans never depend on which workspace was used — the
    /// buffers are pure scratch).
    workspace: WorkspacePool,
}

impl Planner {
    /// Lowers `model`, compiles its schedules and runs the full DSE sweep
    /// under `config` on the paper's STM32F767 platform.
    ///
    /// Thin wrapper over [`Planner::for_target`] with
    /// [`Stm32F767Target::with_config`] (or, for the default
    /// configuration, [`Stm32F767Target::paper`]); plans are bit-identical
    /// to the pre-target pipeline.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Planner::for_target`].
    pub fn new(model: &Model, config: &DseConfig) -> Result<Self, DaeDvfsError> {
        Planner::for_target(Stm32F767Target::with_config(config.clone()), model)
    }

    /// Lowers `model`, compiles its schedules and runs the full DSE sweep
    /// for an arbitrary [`Target`] platform.
    ///
    /// # Errors
    ///
    /// [`DaeDvfsError::EmptyModel`] for zero-layer models;
    /// [`DaeDvfsError::InvalidRequest`] if the target's configuration is
    /// degenerate (zero DP resolution, empty granularity set); propagates
    /// lowering errors.
    pub fn for_target(target: impl Target + 'static, model: &Model) -> Result<Self, DaeDvfsError> {
        Planner::for_target_arc(Arc::new(target), model)
    }

    /// [`Planner::for_target`] for an already-shared target handle.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Planner::for_target`].
    pub fn for_target_arc(target: Arc<dyn Target>, model: &Model) -> Result<Self, DaeDvfsError> {
        let config = target.dse_config();
        if config.dp_resolution == 0 {
            return Err(DaeDvfsError::InvalidRequest {
                field: "dp_resolution",
                reason: "must be non-zero".into(),
            });
        }
        if config.granularities.is_empty() {
            return Err(DaeDvfsError::InvalidRequest {
                field: "granularities",
                reason: "must not be empty".into(),
            });
        }
        let profiles = crate::pipeline::lower_model(model)?;
        if profiles.is_empty() {
            return Err(DaeDvfsError::EmptyModel {
                model: model.name.clone(),
            });
        }
        let power = Arc::new(config.power.clone());
        let layers: Vec<CompiledLayer> = profiles
            .into_iter()
            .map(|p| CompiledLayer::compile(p, &config))
            .collect();
        let fronts: Vec<Vec<DsePoint>> = explore_model(&layers, &config, &power)
            .into_iter()
            .map(pareto_front)
            .collect();
        debug_assert!(fronts.iter().all(|f| !f.is_empty()));
        Ok(Planner {
            target,
            model: model.clone(),
            config,
            power,
            layers,
            fronts,
            baseline: OnceLock::new(),
            workspace: WorkspacePool::for_parallelism(),
        })
    }

    /// The platform this planner prices against.
    pub fn target(&self) -> &dyn Target {
        self.target.as_ref()
    }

    /// The model this planner was built for.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// The exploration configuration (immutable: schedules and fronts were
    /// compiled under it).
    pub fn config(&self) -> &DseConfig {
        &self.config
    }

    /// The compiled per-layer schedules, in execution order.
    pub fn layers(&self) -> &[CompiledLayer] {
        &self.layers
    }

    /// The per-layer Pareto fronts the solvers select from.
    pub fn fronts(&self) -> &[Vec<DsePoint>] {
        &self.fronts
    }

    /// The shared power model every machine replay prices against; pass it
    /// to [`CompiledLayer::evaluate`] to avoid re-allocating one.
    pub fn power(&self) -> &Arc<PowerModel> {
        &self.power
    }

    /// The target's baseline lowering of this model, compiled once and
    /// cached (TinyEngine at 216 MHz on the F767; the target's fastest HFO
    /// elsewhere).
    ///
    /// # Errors
    ///
    /// Propagates baseline lowering errors (e.g. SRAM budget overflows the
    /// DAE path does not check).
    pub fn baseline(&self) -> Result<&LoweredModel, DaeDvfsError> {
        if let Some(lowered) = self.baseline.get() {
            return Ok(lowered);
        }
        let lowered = self.target.compile_baseline(&self.model)?;
        // A concurrent caller may have won the race; either value is
        // identical, so the set result is irrelevant.
        let _ = self.baseline.set(lowered);
        Ok(self.baseline.get().expect("baseline just initialized"))
    }

    /// The baseline inference latency at the target's fixed baseline
    /// clock, priced on the target's machine substrate.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Planner::baseline`].
    pub fn baseline_latency(&self) -> Result<f64, DaeDvfsError> {
        let lowered = self.baseline()?;
        let mut machine = self.target.baseline_machine(*lowered.clock());
        Ok(lowered.run_on(&mut machine).total_time_secs)
    }

    /// Replays a decision sequence with full inter-layer switching costs.
    fn execute(&self, decisions: &[LayerDecision]) -> (f64, Joules) {
        replay_decisions(&self.layers, decisions, &self.config, &self.power)
    }

    fn build_decisions(&self, choices: &[usize]) -> Vec<LayerDecision> {
        self.layers
            .iter()
            .zip(&self.fronts)
            .zip(choices)
            .map(|((layer, front), &choice)| LayerDecision {
                name: layer.profile().name.clone(),
                kind: layer.profile().kind,
                point: front[choice].clone(),
            })
            .collect()
    }

    /// Solves the MCKP for one QoS window against the cached fronts (steps
    /// 2C–3 of the methodology; the DSE was paid at construction).
    ///
    /// Algorithm and numerics are identical to the historical single-shot
    /// `optimize`: a reserve-grid budget search around the relock-free DP
    /// solution, every candidate validated by machine replay, the feasible
    /// schedule with the lowest window energy winning.
    ///
    /// # Errors
    ///
    /// [`DaeDvfsError::InvalidRequest`] for NaN / non-positive windows;
    /// [`DaeDvfsError::Qos`] if even the fastest schedule misses the
    /// window.
    pub fn optimize(&self, qos_secs: f64) -> Result<DeploymentPlan, DaeDvfsError> {
        validate_positive_time("qos_secs", qos_secs)?;
        self.optimize_at(qos_secs, self.config.dp_resolution)
    }

    /// The MCKP classes of the cached fronts under the window-energy
    /// objective (items are valued `E − P_idle·t`).
    fn mckp_classes(&self) -> Vec<Vec<MckpItem>> {
        let idle_power = self.config.power.clock_gated_power.as_f64();
        self.fronts
            .iter()
            .map(|front| {
                front
                    .iter()
                    .map(|pt| MckpItem {
                        time_secs: pt.latency_secs,
                        energy: pt.energy.as_f64() - idle_power * pt.latency_secs,
                    })
                    .collect()
            })
            .collect()
    }

    /// The deepest budget the reserve-grid search will ever solve for:
    /// the sum of per-class fastest times scaled by a rounding margin (so
    /// the DP's ceil-rounding — at most one bucket per class — cannot
    /// round the fastest selection out of the smallest budget). Both the
    /// per-point search (its reserve cap) and the sweep's shared grid
    /// derive from this one definition, which is what guarantees the grid
    /// covers every budget the search can visit.
    fn qos_floor(classes: &[Vec<MckpItem>], resolution: usize) -> f64 {
        let min_time: f64 = classes
            .iter()
            .map(|c| c.iter().map(|i| i.time_secs).fold(f64::INFINITY, f64::min))
            .sum();
        let rounding_margin = 1.0 + (classes.len() + 1) as f64 / resolution as f64;
        min_time * rounding_margin
    }

    /// Runs `f` against a workspace checked out of this planner's pool:
    /// concurrent solves get distinct workspaces (no blocking), and every
    /// workspace returns to the pool with its warmed buffers intact (the
    /// buffers are pure scratch, so results never depend on which one was
    /// used).
    fn with_workspace<R>(&self, f: impl FnOnce(&mut SolverWorkspace) -> R) -> R {
        self.workspace.run(f)
    }

    /// [`Planner::optimize`] at an explicit DP resolution (the request
    /// path's override hook).
    fn optimize_at(
        &self,
        qos_secs: f64,
        resolution: usize,
    ) -> Result<DeploymentPlan, DaeDvfsError> {
        let classes = self.mckp_classes();
        self.with_workspace(|ws| {
            self.search_reserve_grid(qos_secs, &classes, resolution, |budget| {
                solve_dp_with(&classes, budget, resolution, ws)
            })
        })
    }

    /// The reserve-grid budget search behind [`Planner::optimize`],
    /// parameterized over how a single budget is solved: the per-call
    /// path re-runs the DP per budget (bit-identical to the historical
    /// pipeline), the sweep path extracts every budget from one shared
    /// table ([`MckpSweep::best_for`]).
    ///
    /// DSE items are relock-free, so the DP solution can overrun once
    /// inter-layer re-locks are replayed. Rather than accepting the first
    /// feasible reserve, evaluate a deterministic grid of reserves
    /// (anchored on the observed overhead of the unreserved solution) and
    /// keep the feasible schedule with the lowest *window* energy. The
    /// all-fastest selection — maximum HFO everywhere, hence relock-free
    /// — is always a candidate, so the search only fails when the
    /// instance is genuinely infeasible. Distinct budgets frequently
    /// backtrack to the same selection, so replays are deduplicated by
    /// choice vector (identical choices replay identically; the first
    /// instance already fed the search, and `consider`'s strict `<` means
    /// duplicates can never change the winner).
    ///
    /// [`MckpSweep::best_for`]: crate::solver::MckpSweep::best_for
    fn search_reserve_grid(
        &self,
        qos_secs: f64,
        classes: &[Vec<MckpItem>],
        resolution: usize,
        mut solve: impl FnMut(f64) -> Result<MckpSolution, MckpError>,
    ) -> Result<DeploymentPlan, DaeDvfsError> {
        let idle_power = self.config.power.clock_gated_power.as_f64();
        let reserve_cap = (qos_secs - Planner::qos_floor(classes, resolution)).max(0.0);

        let mut best: Option<(f64, Vec<LayerDecision>, f64, Joules)> = None;
        let mut seen: Vec<(Vec<usize>, f64, Joules)> = Vec::new();
        let mut try_candidate = |choices: &[usize]| -> (f64, Joules) {
            if let Some((_, latency, energy)) = seen.iter().find(|(c, ..)| c.as_slice() == choices)
            {
                return (*latency, *energy);
            }
            let decisions = self.build_decisions(choices);
            let (latency, energy) = self.execute(&decisions);
            seen.push((choices.to_vec(), latency, energy));
            if latency <= qos_secs {
                let score = energy.as_f64() + idle_power * (qos_secs - latency);
                if best.as_ref().is_none_or(|(s, ..)| score < *s) {
                    best = Some((score, decisions, latency, energy));
                }
            }
            (latency, energy)
        };

        // Anchor: the unreserved solution and its observed switching
        // overhead.
        let base = solve(qos_secs)?;
        let (base_latency, _) = try_candidate(&base.choices);
        let overhead = (base_latency - base.total_time_secs).max(0.0);

        let mut reserves: Vec<f64> = [0.5, 1.0, 1.5, 2.0, 3.0]
            .iter()
            .map(|k| (k * overhead).min(reserve_cap))
            .filter(|r| *r > 0.0)
            .collect();
        // Also cover the budget axis itself: overhead-anchored points can
        // miss the regime where a much tighter budget yields a schedule
        // with fewer distinct frequencies (and therefore fewer re-locks).
        for frac in [0.1, 0.2, 0.3, 0.5, 0.7] {
            reserves.push(frac * reserve_cap);
        }
        reserves.push(reserve_cap);
        reserves.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        reserves.dedup();
        for reserve in reserves {
            let budget = qos_secs - reserve;
            if budget <= 0.0 {
                continue;
            }
            if let Ok(solution) = solve(budget) {
                try_candidate(&solution.choices);
            }
        }

        // Always-feasible candidate: per-layer fastest (relock-free).
        let fastest: Vec<usize> = self
            .fronts
            .iter()
            .map(|front| {
                front
                    .iter()
                    .enumerate()
                    .min_by(|a, b| {
                        a.1.latency_secs
                            .partial_cmp(&b.1.latency_secs)
                            .expect("latencies are finite")
                    })
                    .map(|(i, _)| i)
                    .expect("fronts are non-empty")
            })
            .collect();
        let (latency, _) = try_candidate(&fastest);

        match best {
            Some((_, decisions, latency, energy)) => Ok(DeploymentPlan {
                model: self.model.name.clone(),
                qos_secs,
                decisions,
                predicted_latency_secs: latency,
                predicted_energy: energy,
            }),
            None => Err(DaeDvfsError::Qos(MckpError::Infeasible {
                min_time_secs: latency,
                budget_secs: qos_secs,
            })),
        }
    }

    /// Sequence-aware variant of [`Planner::optimize`]: selects one Pareto
    /// point per layer with the layered-graph DP of [`crate::seqdp`],
    /// which prices inter-layer PLL re-locks exactly instead of searching
    /// reserve budgets.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Planner::optimize`].
    pub fn optimize_sequence(&self, qos_secs: f64) -> Result<DeploymentPlan, DaeDvfsError> {
        validate_positive_time("qos_secs", qos_secs)?;
        self.optimize_sequence_at(qos_secs, self.config.dp_resolution)
    }

    /// [`Planner::optimize_sequence`] at an explicit DP resolution.
    fn optimize_sequence_at(
        &self,
        qos_secs: f64,
        resolution: usize,
    ) -> Result<DeploymentPlan, DaeDvfsError> {
        let idle_power = self.config.power.clock_gated_power.as_f64();
        let solution = self.with_workspace(|ws| {
            solve_sequence_with(
                &self.fronts,
                qos_secs,
                resolution,
                &self.config,
                idle_power,
                ws,
            )
        })?;
        let decisions = self.build_decisions(&solution.choices);
        let (latency, energy) = self.execute(&decisions);
        if latency > qos_secs {
            return Err(DaeDvfsError::Qos(crate::mckp::MckpError::Infeasible {
                min_time_secs: latency,
                budget_secs: qos_secs,
            }));
        }
        Ok(DeploymentPlan {
            model: self.model.name.clone(),
            qos_secs,
            decisions,
            predicted_latency_secs: latency,
            predicted_energy: energy,
        })
    }

    /// Executes a deployment plan against the compiled schedules and idles
    /// (clock gated) until the QoS deadline.
    ///
    /// # Errors
    ///
    /// Currently infallible for plans produced by this planner; the
    /// `Result` mirrors the pipeline-level [`crate::pipeline::deploy`].
    ///
    /// # Panics
    ///
    /// Panics if the plan's layer count does not match the model, or if
    /// the replayed schedule overruns the plan's QoS window — neither can
    /// happen for plans produced by this planner.
    pub fn deploy(&self, plan: &DeploymentPlan) -> Result<DeploymentReport, DaeDvfsError> {
        assert_eq!(
            self.layers.len(),
            plan.decisions.len(),
            "plan does not match the model layer count"
        );
        let (inference_secs, inference_energy) = self.execute(&plan.decisions);
        let remaining = plan.qos_secs - inference_secs;
        assert!(
            remaining >= -1e-9,
            "deployment overran its QoS window: {inference_secs}s > {}s",
            plan.qos_secs
        );
        let idle_energy = self.config.power.clock_gated_power * remaining.max(0.0);
        Ok(DeploymentReport {
            plan: plan.clone(),
            inference_secs,
            inference_energy,
            idle_energy,
            total_energy: inference_energy + idle_energy,
        })
    }

    /// Optimizes a batch of QoS windows against the shared caches with a
    /// **single DP pass**: one MCKP table is filled over a shared
    /// absolute time grid covering every window (and every reserve budget
    /// the search can visit), and each window's entire reserve-grid
    /// search then runs on cheap per-budget extractions
    /// ([`crate::solver::MckpSweep::best_for`]) instead of re-running the
    /// DP per budget. The per-window work is striped over
    /// `std::thread::scope` when more than one core is available —
    /// extractions and machine replays are independent and read-only on
    /// the shared table, so results are identical to the sequential
    /// order.
    ///
    /// Duplicate windows are solved **once** and fanned back out to every
    /// occurrence (bit-identical: the solve for a window is
    /// deterministic). A window's plan is also independent of which other
    /// windows share the batch — for windows above the feasibility floor
    /// the shared grid's scale is `floor / resolution` regardless of the
    /// batch, and a DP table's prefix does not depend on the buckets
    /// above it — which is what lets [`crate::service`] coalesce
    /// concurrent requests through this path without changing any
    /// caller's answer.
    ///
    /// Every returned plan is feasible and matches what
    /// [`Planner::optimize`] would return within the solver's documented
    /// discretization bound (the shared grid resolves every budget at
    /// least as finely as the per-call grid; see [`crate::solver`]).
    /// Plans are returned in window order.
    ///
    /// # Errors
    ///
    /// [`DaeDvfsError::InvalidRequest`] for NaN / non-positive windows;
    /// the error of the earliest infeasible window otherwise.
    pub fn sweep(
        &self,
        qos_windows: impl IntoIterator<Item = f64>,
    ) -> Result<Vec<DeploymentPlan>, DaeDvfsError> {
        self.sweep_windows(qos_windows, false)
    }

    /// [`Planner::sweep`] with **incremental re-solve**: the shared-grid
    /// fill runs through [`crate::solver::mckp_resweep`], so when the
    /// pooled workspace still holds this planner's checkpointed table
    /// from an earlier sweep at the same resolution — the hot-group
    /// serving pattern, where the same model is re-swept batch after
    /// batch — the DP fill is skipped entirely and only the per-window
    /// extractions run. Results are **bit-identical** to
    /// [`Planner::sweep`] (pinned by `tests/planner_equivalence.rs`):
    /// checkpoints are reused only when the grid and every item lane byte
    /// match, and the shared grid's scale is a function of the planner
    /// and resolution alone, so the retained table is exactly the table
    /// a fresh fill would produce.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Planner::sweep`].
    pub fn resweep(
        &self,
        qos_windows: impl IntoIterator<Item = f64>,
    ) -> Result<Vec<DeploymentPlan>, DaeDvfsError> {
        self.sweep_windows(qos_windows, true)
    }

    fn sweep_windows(
        &self,
        qos_windows: impl IntoIterator<Item = f64>,
        reuse: bool,
    ) -> Result<Vec<DeploymentPlan>, DaeDvfsError> {
        let windows: Vec<f64> = qos_windows.into_iter().collect();
        for &q in &windows {
            validate_positive_time("qos_secs", q)?;
        }
        if windows.is_empty() {
            return Ok(Vec::new());
        }
        // Dedup repeated windows (first-occurrence order); NaN was
        // rejected above, so bit equality is value equality.
        let mut distinct: Vec<f64> = Vec::new();
        let mapping: Vec<usize> = windows
            .iter()
            .map(|&w| {
                distinct
                    .iter()
                    .position(|&d| d.to_bits() == w.to_bits())
                    .unwrap_or_else(|| {
                        distinct.push(w);
                        distinct.len() - 1
                    })
            })
            .collect();
        let solved = self.sweep_distinct(&distinct, self.config.dp_resolution, usize::MAX, reuse);
        // Fan results back out in window order; the earliest failing
        // window's error surfaces, as before.
        mapping.into_iter().map(|p| solved[p].clone()).collect()
    }

    /// Solves a batch of **distinct** QoS windows at an explicit DP
    /// resolution, returning one `Result` per window — the engine behind
    /// [`Planner::sweep`] and the coalescing core of [`crate::service`].
    ///
    /// Windows at or above the feasibility floor share one DP table whose
    /// scale is `floor / resolution` — a function of the planner and the
    /// resolution only, never of the batch — and a DP table's prefix does
    /// not depend on how many buckets lie above it, so **a window's plan
    /// is independent of which other windows were batched with it** (in
    /// particular, bit-identical to a singleton [`Planner::sweep`] of
    /// that window). Windows below the floor, and batches whose spread
    /// would cap the shared grid ([`crate::solver::MAX_SWEEP_BUCKETS`]),
    /// are solved on per-window grids, preserving the invariance at the
    /// cost of extra DP fills.
    ///
    /// `max_threads` caps the extraction striping (the table fill itself
    /// is single-threaded): callers that are already one of several
    /// parallel workers — the [`crate::service`] batch solvers — pass
    /// their share of the machine so concurrent batches do not
    /// oversubscribe it; [`Planner::sweep`] passes `usize::MAX` (cap by
    /// available parallelism alone).
    ///
    /// `reuse` routes the shared-grid fill through
    /// [`crate::solver::mckp_resweep`], reusing the pooled workspace's
    /// checkpointed table when it matches (bit-identical either way; see
    /// [`Planner::resweep`]). The service coalescer passes `true` so hot
    /// groups skip the fill across batch windows.
    pub(crate) fn sweep_distinct(
        &self,
        windows: &[f64],
        resolution: usize,
        max_threads: usize,
        reuse: bool,
    ) -> Vec<Result<DeploymentPlan, DaeDvfsError>> {
        let classes = self.mckp_classes();
        let min_time: f64 = classes
            .iter()
            .map(|c| c.iter().map(|i| i.time_secs).fold(f64::INFINITY, f64::min))
            .sum();
        let floor = Planner::qos_floor(&classes, resolution);
        let mut slots: Vec<Option<Result<DeploymentPlan, DaeDvfsError>>> =
            vec![None; windows.len()];

        // Windows below the fastest selection are infeasible before any
        // DP work — the same error the table extraction would report.
        for (i, &w) in windows.iter().enumerate() {
            if min_time > w {
                slots[i] = Some(Err(DaeDvfsError::Qos(MckpError::Infeasible {
                    min_time_secs: min_time,
                    budget_secs: w,
                })));
            }
        }

        let floor_ok = floor.is_finite() && floor > 0.0;
        let mut singles: Vec<(usize, f64)> = Vec::new();
        let mut shared: Vec<(usize, f64)> = Vec::new();
        for (i, &w) in windows.iter().enumerate() {
            if slots[i].is_some() {
                continue;
            }
            if floor_ok && w >= floor {
                shared.push((i, w));
            } else {
                singles.push((i, w));
            }
        }

        if !shared.is_empty() {
            let mut budgets: Vec<f64> = shared.iter().map(|&(_, w)| w).collect();
            budgets.push(floor);
            // The batch-independent scale the shared grid resolves to
            // when uncapped; a capped grid would couple every window's
            // answer to the batch maximum, so capped batches fall back to
            // per-window grids instead.
            let floor_scale = floor / resolution as f64;
            match Grid::shared(&budgets, resolution) {
                Ok(grid) if grid.scale == floor_scale => {
                    for (i, plan) in self.solve_on_shared_grid(
                        &classes,
                        &budgets,
                        resolution,
                        max_threads,
                        reuse,
                        &shared,
                    ) {
                        slots[i] = Some(plan);
                    }
                }
                _ => singles.append(&mut shared),
            }
        }

        for &(i, w) in &singles {
            slots[i] = Some(self.sweep_single(&classes, w, floor, floor_ok, resolution));
        }

        slots
            .into_iter()
            .map(|slot| slot.expect("every window is solved exactly once"))
            .collect()
    }

    /// Fills one shared-grid table for `budgets` and answers every
    /// `(slot, window)` target by extraction, striping the per-window
    /// reserve searches over `std::thread::scope`.
    fn solve_on_shared_grid(
        &self,
        classes: &[Vec<MckpItem>],
        budgets: &[f64],
        resolution: usize,
        max_threads: usize,
        reuse: bool,
        targets: &[(usize, f64)],
    ) -> Vec<(usize, Result<DeploymentPlan, DaeDvfsError>)> {
        let mut ws = self.workspace.take();
        let table = if reuse {
            mckp_resweep(classes, budgets, resolution, &mut ws)
        } else {
            mckp_sweep(classes, budgets, resolution, &mut ws)
        };
        let solved = match table {
            Ok(table) => {
                let threads = std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
                    .min(max_threads.max(1))
                    .min(targets.len());
                if threads <= 1 {
                    targets
                        .iter()
                        .map(|&(i, qos)| {
                            let plan = self.search_reserve_grid(qos, classes, resolution, |b| {
                                table.best_for(b)
                            });
                            (i, plan)
                        })
                        .collect()
                } else {
                    std::thread::scope(|s| {
                        let table = &table;
                        let handles: Vec<_> = (0..threads)
                            .map(|t| {
                                s.spawn(move || {
                                    targets
                                        .iter()
                                        .skip(t)
                                        .step_by(threads)
                                        .map(|&(i, qos)| {
                                            let plan = self.search_reserve_grid(
                                                qos,
                                                classes,
                                                resolution,
                                                |b| table.best_for(b),
                                            );
                                            (i, plan)
                                        })
                                        .collect::<Vec<_>>()
                                })
                            })
                            .collect();
                        handles
                            .into_iter()
                            .flat_map(|h| h.join().expect("sweep worker thread panicked"))
                            .collect()
                    })
                }
            }
            Err(e) => targets
                .iter()
                .map(|&(i, _)| (i, Err(DaeDvfsError::Qos(e.clone()))))
                .collect(),
        };
        self.workspace.put(ws);
        solved
    }

    /// Solves one window on its own grid (used when the window sits below
    /// the shared floor grid, or the batch's spread capped the shared
    /// table): budgets `{window, floor}` — exactly the grid a singleton
    /// sweep builds, so the answer stays batch-independent.
    fn sweep_single(
        &self,
        classes: &[Vec<MckpItem>],
        qos_secs: f64,
        floor: f64,
        floor_ok: bool,
        resolution: usize,
    ) -> Result<DeploymentPlan, DaeDvfsError> {
        let mut budgets = vec![qos_secs];
        if floor_ok {
            budgets.push(floor);
        }
        self.with_workspace(|ws| {
            let table = mckp_sweep(classes, &budgets, resolution, ws)?;
            self.search_reserve_grid(qos_secs, classes, resolution, |b| table.best_for(b))
        })
    }

    /// Convenience: baseline latency → QoS window at `slack` → optimize →
    /// deploy (the per-planner equivalent of
    /// [`crate::pipeline::run_dae_dvfs`]).
    ///
    /// # Errors
    ///
    /// [`DaeDvfsError::InvalidRequest`] for NaN / non-positive slacks;
    /// propagates baseline, optimization and deployment errors.
    pub fn run(&self, slack: f64) -> Result<DeploymentReport, DaeDvfsError> {
        validate_positive_time("slack", slack)?;
        let qos = qos_window(self.baseline_latency()?, slack);
        let plan = self.optimize(qos)?;
        self.deploy(&plan)
    }

    /// Solves a typed [`PlanRequest`] against the cached fronts: the
    /// budget is resolved (slack → window via the target baseline), the
    /// requested solver runs at the requested resolution, and degenerate
    /// requests are rejected before any solver work.
    ///
    /// For a plain [`PlanRequest::qos`] request with default solver and
    /// resolution this is exactly [`Planner::optimize`].
    ///
    /// # Errors
    ///
    /// [`DaeDvfsError::InvalidRequest`] for degenerate knobs; otherwise
    /// the same conditions as the selected solver.
    pub fn plan(&self, request: &PlanRequest) -> Result<DeploymentPlan, DaeDvfsError> {
        request.validate()?;
        let qos_secs = match request.budget() {
            QosBudget::Window(qos) => qos,
            QosBudget::Slack(slack) => qos_window(self.baseline_latency()?, slack),
        };
        let resolution = request.dp_resolution().unwrap_or(self.config.dp_resolution);
        match request.solver() {
            Solver::ReserveGrid => self.optimize_at(qos_secs, resolution),
            Solver::SequenceDp => self.optimize_sequence_at(qos_secs, resolution),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinynn::models::vww;

    #[test]
    fn sweep_reuses_one_dse() {
        let model = vww();
        let planner = Planner::new(&model, &DseConfig::paper()).unwrap();
        let baseline = planner.baseline_latency().unwrap();
        let plans = planner
            .sweep([0.1, 0.3, 0.5].map(|s| qos_window(baseline, s)))
            .unwrap();
        assert_eq!(plans.len(), 3);
        for plan in &plans {
            assert_eq!(plan.decisions.len(), model.layer_count());
            assert!(plan.predicted_latency_secs <= plan.qos_secs + 1e-12);
        }
        // Relaxing the window must not cost more window energy.
        let gated = planner.config().power.clock_gated_power.as_f64();
        let window = |p: &DeploymentPlan| {
            p.predicted_energy.as_f64() + gated * (p.qos_secs - p.predicted_latency_secs)
        };
        assert!(window(&plans[2]) <= window(&plans[0]) + 1e-12);
    }

    #[test]
    fn sweep_tracks_per_point_optimize_within_the_bound() {
        let model = vww();
        let planner = Planner::new(&model, &DseConfig::paper()).unwrap();
        let baseline = planner.baseline_latency().unwrap();
        let windows: Vec<f64> = [0.05, 0.15, 0.35, 0.55, 0.75]
            .iter()
            .map(|&s| qos_window(baseline, s))
            .collect();
        let swept = planner.sweep(windows.iter().copied()).unwrap();
        // Deterministic regardless of thread striping.
        let again = planner.sweep(windows.iter().copied()).unwrap();
        assert_eq!(swept, again);
        let gated = planner.config().power.clock_gated_power.as_f64();
        for (plan, &qos) in swept.iter().zip(&windows) {
            assert!(plan.predicted_latency_secs <= qos + 1e-12);
            let solo = planner.optimize(qos).unwrap();
            let window = |p: &DeploymentPlan| {
                p.predicted_energy.as_f64() + gated * (qos - p.predicted_latency_secs)
            };
            // The shared grid resolves every budget at least as finely as
            // the per-call grid, so the sweep's replay-validated winner is
            // typically better and never materially worse (the reserve
            // search replays candidates, so a coarser grid can luck into a
            // marginally better replay — bounded to a fraction of a
            // percent).
            assert!(
                window(plan) <= window(&solo) * 1.005,
                "sweep materially worse than optimize at {qos}: {} vs {}",
                window(plan),
                window(&solo)
            );
        }
    }

    #[test]
    fn sweep_dedups_duplicate_windows_bit_identically() {
        let model = vww();
        let planner = Planner::new(&model, &DseConfig::paper()).unwrap();
        let baseline = planner.baseline_latency().unwrap();
        let [a, b, c] = [0.1, 0.3, 0.5].map(|s| qos_window(baseline, s));
        let unique = planner.sweep([a, b, c]).unwrap();
        // Duplicated windows must fan the deduped answers back out
        // bit-identically to solving every occurrence.
        let duped = planner.sweep([a, b, a, c, b, c, a]).unwrap();
        let expected: Vec<_> = [0usize, 1, 0, 2, 1, 2, 0]
            .iter()
            .map(|&i| unique[i].clone())
            .collect();
        assert_eq!(duped, expected);
        // Batch invariance: a singleton sweep of each window answers
        // exactly what the batched sweep answered for it.
        for (i, &w) in [a, b, c].iter().enumerate() {
            assert_eq!(planner.sweep([w]).unwrap()[0], unique[i]);
        }
    }

    #[test]
    fn sweep_rejects_degenerate_windows_and_empty_batches() {
        let model = vww();
        let planner = Planner::new(&model, &DseConfig::paper()).unwrap();
        assert!(planner.sweep([]).unwrap().is_empty());
        assert!(matches!(
            planner.sweep([0.5, f64::NAN]),
            Err(DaeDvfsError::InvalidRequest { .. })
        ));
        // An infeasible window surfaces that window's error.
        assert!(matches!(
            planner.sweep([1e-9]),
            Err(DaeDvfsError::Qos(MckpError::Infeasible { .. }))
        ));
    }

    #[test]
    fn planner_deploy_matches_prediction() {
        let model = vww();
        let planner = Planner::new(&model, &DseConfig::paper()).unwrap();
        let qos = qos_window(planner.baseline_latency().unwrap(), 0.3);
        let plan = planner.optimize(qos).unwrap();
        let report = planner.deploy(&plan).unwrap();
        assert_eq!(report.inference_secs, plan.predicted_latency_secs);
        assert_eq!(report.inference_energy, plan.predicted_energy);
    }

    #[test]
    fn empty_model_rejected_at_construction() {
        let model = Model::new("empty", tinynn::Shape::new(8, 8, 3), Vec::new());
        match Planner::new(&model, &DseConfig::paper()) {
            Err(DaeDvfsError::EmptyModel { model }) => assert_eq!(model, "empty"),
            other => panic!("expected EmptyModel, got {other:?}"),
        }
    }

    #[test]
    fn fronts_cover_every_layer() {
        let model = vww();
        let planner = Planner::new(&model, &DseConfig::paper()).unwrap();
        assert_eq!(planner.fronts().len(), model.layer_count());
        assert_eq!(planner.layers().len(), model.layer_count());
        assert!(planner.fronts().iter().all(|f| !f.is_empty()));
    }
}
