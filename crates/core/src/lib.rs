//! # DAE-enabled DVFS for tinyML on STM32 MCUs
//!
//! Reference implementation of *"Decoupled Access-Execute enabled DVFS for
//! tinyML deployments on STM32 microcontrollers"* (DATE 2024) on a
//! simulated STM32F767. The methodology has three steps (paper Fig. 3):
//!
//! 1. **DAE** ([`dae`]): depthwise and pointwise convolutions are split
//!    into memory-bound (stage `g` channels/columns) and compute-bound
//!    (convolve them) segments — bit-exact, verified by property tests;
//! 2. **DSE** ([`dse`], [`pareto`]): each layer's `(g, f)` grid is priced
//!    on the machine model — memory segments at the 50 MHz LFO, compute at
//!    the PLL-driven HFO — and reduced to its Pareto front;
//! 3. **QoS optimization** ([`mckp`], [`pipeline`]): one Pareto point per
//!    layer is chosen by a multiple-choice-knapsack dynamic program so the
//!    model meets its latency budget with minimal energy.
//!
//! The methodology itself is board-agnostic; everything board-specific
//! lives behind the [`target::Target`] trait ([`Stm32F767Target`] is the
//! paper's platform, [`GenericCortexMTarget`] a parameterized alternative),
//! requests are expressed with the typed [`PlanRequest`] builder, and
//! optimized plans travel across processes as versioned [`PlanArtifact`]s.
//! For *streams* of concurrent requests, the [`service::PlanService`]
//! front end adds a fingerprint-keyed plan cache with single-flight miss
//! deduplication and coalesces same-model batches onto shared-grid
//! sweeps — the serving entry point when many tenants ask for plans at
//! once. Below the LRU, the [`registry::PlanRegistry`] persists every
//! artifact to a content-addressed on-disk cold tier so a restarted
//! process answers warm requests without a solve, and the
//! [`server::PlanServer`] puts a dependency-free HTTP/1.1 wire protocol
//! in front of the whole stack (DESIGN.md, "Network serving & artifact
//! registry"). Every served answer can carry an [`obs::Receipt`] — the
//! request's full cache identity, the serving path that answered it,
//! and an FNV-1a hash of the exact bytes served — surfaced on the wire
//! as `X-Plan-Receipt` headers, aggregated into per-path latency
//! histograms on [`ServiceStats`], and replayable offline via
//! `plan_server --replay` (DESIGN.md, "Observability: receipts, metrics
//! & trace replay"). The DP fills themselves run through branch-free quantized
//! kernels with checkpointed rows, so a planner whose inputs drifted in
//! one class can re-solve incrementally via [`Planner::resweep`] /
//! [`mckp_resweep`] / [`sequence_resweep`] — bit-identical to a cold
//! fill (DESIGN.md, "Quantized DP kernels & incremental re-solve").
//!
//! The serving stack's invariants are machine-checked: all locking goes
//! through the ranked mutexes in this crate's `sync` module (debug
//! builds panic on out-of-rank acquisition, citing both sites), and
//! `cargo run -p repro-lint -- --check` statically enforces the locking,
//! determinism, and panic-hygiene rules — see DESIGN.md, "Static
//! analysis & concurrency discipline".
//!
//! # Examples
//!
//! The typed request surface: build a [`Planner`] for a target, describe
//! what to optimize with [`PlanRequest`], deploy the plan.
//!
//! ```
//! use dae_dvfs::{PlanRequest, Planner, Stm32F767Target};
//! use tinynn::models::vww_sized;
//!
//! # fn main() -> Result<(), dae_dvfs::DaeDvfsError> {
//! let model = vww_sized(32);
//! let planner = Planner::for_target(Stm32F767Target::paper(), &model)?;
//! let plan = planner.plan(&PlanRequest::slack(0.3))?;
//! let report = planner.deploy(&plan)?;
//! assert!(report.inference_secs <= plan.qos_secs);
//! # Ok(())
//! # }
//! ```
//!
//! The historical free functions remain available, bit-identical for
//! every valid input (degenerate inputs — NaN / zero / negative budgets —
//! are now rejected with [`DaeDvfsError::InvalidRequest`] instead of
//! silently producing degenerate plans):
//!
//! ```
//! use dae_dvfs::{run_dae_dvfs, DseConfig};
//! use tinynn::models::vww_sized;
//!
//! # fn main() -> Result<(), dae_dvfs::DaeDvfsError> {
//! let model = vww_sized(32);
//! let report = run_dae_dvfs(&model, 0.3, &DseConfig::paper())?;
//! assert!(report.inference_secs <= report.plan.qos_secs);
//! # Ok(())
//! # }
//! ```

pub mod artifact;
pub mod classes;
pub mod dae;
pub mod dse;
pub mod error;
pub mod mckp;
pub mod modes;
pub mod obs;
pub mod pareto;
pub mod pipeline;
pub mod planner;
pub mod registry;
pub mod report;
pub mod request;
pub mod schedule;
pub mod seqdp;
pub mod server;
pub mod service;
pub mod solver;
mod sync;
pub mod target;

pub use artifact::{
    config_fingerprint, model_fingerprint, ArtifactDecision, PlanArtifact,
    PLAN_ARTIFACT_SCHEMA_VERSION,
};
pub use classes::{QosClass, QosClassLadder};
pub use dae::{dae_forward_depthwise, dae_forward_pointwise, dae_segments, Granularity};
pub use dse::{evaluate_point, explore_layer, DseConfig, DsePoint};
pub use error::{DaeDvfsError, RegistryError, ServerError, ServiceError};
pub use mckp::{solve_dp, solve_exhaustive, solve_greedy, MckpError, MckpItem, MckpSolution};
pub use modes::OperatingModes;
pub use obs::{HistogramSnapshot, PathStats, Receipt, ServePath};
pub use pareto::{dominates, pareto_front};
pub use pipeline::{
    deploy, lower_model, optimize, optimize_sequence, run_dae_dvfs, DeploymentPlan,
    DeploymentReport, LayerDecision,
};
pub use planner::Planner;
pub use registry::{PlanRegistry, RegistryStats, REGISTRY_SCHEMA_VERSION};
pub use report::{compare_with_baselines, EnergyComparison, FrequencyMap, FrequencyMapRow};
pub use request::{PlanRequest, QosBudget, Solver};
pub use schedule::{evaluate_schedule, explore_compiled, explore_model, CompiledLayer};
pub use seqdp::{solve_sequence, SequenceSolution};
pub use server::{PlanServer, ServerConfig, ServerHandle};
pub use service::{
    CacheStats, CoalesceMode, PlanService, PlanTicket, PlannerKey, ServedPlan, ServiceConfig,
    ServiceStats,
};
pub use solver::{
    mckp_resweep, mckp_sweep, sequence_resweep, sequence_sweep, solve_dp_sweep,
    solve_sequence_sweep, MckpSweep, SequenceSweep, SolverWorkspace, WorkspacePool,
    MAX_SWEEP_BUCKETS,
};
pub use target::{GenericCortexMTarget, Stm32F767Target, Target};
