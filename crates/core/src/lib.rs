//! # DAE-enabled DVFS for tinyML on STM32 MCUs
//!
//! Reference implementation of *"Decoupled Access-Execute enabled DVFS for
//! tinyML deployments on STM32 microcontrollers"* (DATE 2024) on a
//! simulated STM32F767. The methodology has three steps (paper Fig. 3):
//!
//! 1. **DAE** ([`dae`]): depthwise and pointwise convolutions are split
//!    into memory-bound (stage `g` channels/columns) and compute-bound
//!    (convolve them) segments — bit-exact, verified by property tests;
//! 2. **DSE** ([`dse`], [`pareto`]): each layer's `(g, f)` grid is priced
//!    on the machine model — memory segments at the 50 MHz LFO, compute at
//!    the PLL-driven HFO — and reduced to its Pareto front;
//! 3. **QoS optimization** ([`mckp`], [`pipeline`]): one Pareto point per
//!    layer is chosen by a multiple-choice-knapsack dynamic program so the
//!    model meets its latency budget with minimal energy.
//!
//! # Examples
//!
//! ```
//! use dae_dvfs::{run_dae_dvfs, DseConfig};
//! use tinynn::models::vww_sized;
//!
//! # fn main() -> Result<(), dae_dvfs::DaeDvfsError> {
//! let model = vww_sized(32);
//! let report = run_dae_dvfs(&model, 0.3, &DseConfig::paper())?;
//! assert!(report.inference_secs <= report.plan.qos_secs);
//! # Ok(())
//! # }
//! ```

pub mod classes;
pub mod dae;
pub mod dse;
pub mod error;
pub mod mckp;
pub mod modes;
pub mod pareto;
pub mod pipeline;
pub mod planner;
pub mod report;
pub mod schedule;
pub mod seqdp;

pub use classes::{QosClass, QosClassLadder};
pub use dae::{dae_forward_depthwise, dae_forward_pointwise, dae_segments, Granularity};
pub use dse::{evaluate_point, explore_layer, DseConfig, DsePoint};
pub use error::DaeDvfsError;
pub use mckp::{solve_dp, solve_exhaustive, solve_greedy, MckpError, MckpItem, MckpSolution};
pub use modes::OperatingModes;
pub use pareto::{dominates, pareto_front};
pub use pipeline::{
    deploy, lower_model, optimize, optimize_sequence, run_dae_dvfs, DeploymentPlan,
    DeploymentReport, LayerDecision,
};
pub use planner::Planner;
pub use schedule::{evaluate_schedule, explore_compiled, explore_model, CompiledLayer};
pub use seqdp::{solve_sequence, SequenceSolution};
pub use report::{compare_with_baselines, EnergyComparison, FrequencyMap, FrequencyMapRow};
