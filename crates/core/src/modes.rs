//! LFO / HFO operating modes (paper Sec. III-B).
//!
//! * **LFO** (Low Frequency Operation) "exclusively employs the HSE clock
//!   source at a predefined frequency (50 MHz) and aims to reduce power";
//!   it drives the memory-bound DAE segments.
//! * **HFO** (High Frequency Operation) "configures the system's clock
//!   using the PLL circuit" with `PLLN ∈ {75,100,150,168,216,336,432}` and
//!   `PLLM ∈ {25,50}`; it drives the compute-bound segments.
//!
//! Keeping the HFO PLL locked while SYSCLK runs off the HSE is what makes
//! LFO↔HFO transitions nearly free (a mux toggle instead of a 200 µs
//! re-lock).

use stm32_rcc::{ConfigSpace, Hertz, PllConfig, SysclkConfig, LFO_HSE};

/// The operating-mode universe a deployment may draw from.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatingModes {
    /// The fixed LFO configuration (HSE direct).
    pub lfo: SysclkConfig,
    /// Candidate HFO PLL configurations, ascending SYSCLK, one per distinct
    /// frequency (the power-optimal, i.e. minimum-VCO, representative).
    pub hfo: Vec<PllConfig>,
}

impl OperatingModes {
    /// The paper's mode set: LFO at 50 MHz, HFO candidates from the
    /// `PLLM ∈ {25,50}` × `PLLN ∈ {75..432}` grid on a 50 MHz HSE, reduced
    /// to the power-optimal configuration per distinct frequency.
    pub fn paper() -> Self {
        let space = ConfigSpace::paper();
        let hfo = space
            .iso_frequency_groups()
            .into_iter()
            .map(|g| *g.coolest())
            .collect();
        OperatingModes {
            lfo: SysclkConfig::hse_direct(LFO_HSE),
            hfo,
        }
    }

    /// Restricts the HFO ladder to the frequencies of the paper's Fig. 4
    /// sweep: 75, 100, 150, 168 and 216 MHz.
    pub fn fig4() -> Self {
        let all = OperatingModes::paper();
        let keep: [Hertz; 5] = [
            Hertz::mhz(75),
            Hertz::mhz(100),
            Hertz::mhz(150),
            Hertz::mhz(168),
            Hertz::mhz(216),
        ];
        OperatingModes {
            lfo: all.lfo,
            hfo: all
                .hfo
                .into_iter()
                .filter(|p| keep.contains(&p.sysclk()))
                .collect(),
        }
    }

    /// Builds a mode universe from an explicit LFO configuration and HFO
    /// ladder — the constructor a non-F767 target description uses.
    ///
    /// The ladder is sorted ascending by SYSCLK and de-duplicated per
    /// distinct frequency (first, i.e. coolest-VCO, representative wins,
    /// matching [`OperatingModes::paper`]).
    ///
    /// # Panics
    ///
    /// Panics if `hfo` is empty or `lfo` is invalid.
    pub fn custom(lfo: SysclkConfig, mut hfo: Vec<PllConfig>) -> Self {
        assert!(!hfo.is_empty(), "HFO ladder must not be empty");
        lfo.validate()
            .unwrap_or_else(|e| panic!("invalid LFO configuration: {e}"));
        hfo.sort_by_key(|p| (p.sysclk(), p.vco_output(), p.label_tuple()));
        hfo.dedup_by_key(|p| p.sysclk());
        OperatingModes { lfo, hfo }
    }

    /// Builds a mode universe from target SYSCLK frequencies: for each
    /// requested frequency the power-optimal (minimum-VCO) PLL
    /// configuration reachable from `hse` over the full divider space is
    /// selected.
    ///
    /// Returns `None` if any requested frequency is unreachable from
    /// `hse` within the datasheet windows.
    pub fn from_sysclks(lfo: Hertz, hse: Hertz, sysclks: &[Hertz]) -> Option<Self> {
        let mut space = ConfigSpace::new();
        space.hse(hse);
        for m in 2..=63 {
            space.pllm(m);
        }
        for n in 50..=432 {
            space.plln(n);
        }
        space.pllp_set(&[2, 4, 6, 8]);
        let groups = space.iso_frequency_groups();
        let hfo = sysclks
            .iter()
            .map(|&f| groups.iter().find(|g| g.sysclk == f).map(|g| *g.coolest()))
            .collect::<Option<Vec<_>>>()?;
        Some(OperatingModes::custom(SysclkConfig::hse_direct(lfo), hfo))
    }

    /// The HFO candidate producing exactly `sysclk`, if present.
    pub fn hfo_at(&self, sysclk: Hertz) -> Option<&PllConfig> {
        self.hfo.iter().find(|p| p.sysclk() == sysclk)
    }

    /// The fastest HFO candidate.
    ///
    /// # Panics
    ///
    /// Panics if the HFO set is empty.
    pub fn fastest_hfo(&self) -> &PllConfig {
        self.hfo
            .iter()
            .max_by_key(|p| p.sysclk())
            .expect("HFO set must not be empty")
    }

    /// The LFO frequency.
    pub fn lfo_sysclk(&self) -> Hertz {
        self.lfo.sysclk()
    }

    /// Replaces the LFO with a direct-HSE configuration at `freq` (builder
    /// style). The paper fixes LFO at 50 MHz; lower HSE frequencies trade
    /// staging latency for even less power — explored by the LFO ablation.
    ///
    /// # Panics
    ///
    /// Panics if `freq` is not a valid HSE frequency (1–50 MHz).
    pub fn with_lfo(mut self, freq: Hertz) -> Self {
        let cfg = SysclkConfig::hse_direct(freq);
        cfg.validate()
            .unwrap_or_else(|e| panic!("invalid LFO frequency {freq}: {e}"));
        self.lfo = cfg;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_modes_contain_expected_ladder() {
        let m = OperatingModes::paper();
        assert_eq!(m.lfo_sysclk(), Hertz::mhz(50));
        for mhz in [75u64, 100, 150, 168, 216] {
            assert!(m.hfo_at(Hertz::mhz(mhz)).is_some(), "missing HFO {mhz} MHz");
        }
        assert_eq!(m.fastest_hfo().sysclk(), Hertz::mhz(216));
    }

    #[test]
    fn one_candidate_per_frequency() {
        let m = OperatingModes::paper();
        let mut freqs: Vec<Hertz> = m.hfo.iter().map(|p| p.sysclk()).collect();
        let before = freqs.len();
        freqs.dedup();
        assert_eq!(before, freqs.len(), "duplicate frequencies in HFO set");
    }

    #[test]
    fn candidates_are_min_vco_per_frequency() {
        let m = OperatingModes::paper();
        let space = ConfigSpace::paper();
        for cand in &m.hfo {
            for other in space.enumerate_pll() {
                if other.sysclk() == cand.sysclk() {
                    assert!(cand.vco_output() <= other.vco_output());
                }
            }
        }
    }

    #[test]
    fn fig4_is_a_subset() {
        let fig4 = OperatingModes::fig4();
        assert_eq!(fig4.hfo.len(), 5);
        let paper = OperatingModes::paper();
        for p in &fig4.hfo {
            assert!(paper.hfo.contains(p));
        }
    }

    #[test]
    fn all_candidates_valid() {
        for p in OperatingModes::paper().hfo {
            assert!(p.validate().is_ok());
        }
    }

    #[test]
    fn custom_ladder_sorted_and_deduplicated() {
        let paper = OperatingModes::paper();
        // Feed the paper ladder in reverse with a duplicate frequency: the
        // constructor must restore ascending order and one-per-frequency.
        let mut shuffled: Vec<_> = paper.hfo.iter().rev().copied().collect();
        shuffled.push(paper.hfo[0]);
        let rebuilt = OperatingModes::custom(paper.lfo, shuffled);
        assert_eq!(rebuilt.hfo, paper.hfo);
        assert_eq!(rebuilt.lfo, paper.lfo);
    }

    #[test]
    fn from_sysclks_picks_min_vco_per_frequency() {
        let modes = OperatingModes::from_sysclks(
            Hertz::mhz(25),
            Hertz::mhz(25),
            &[Hertz::mhz(100), Hertz::mhz(150), Hertz::mhz(180)],
        )
        .expect("all frequencies reachable from a 25 MHz HSE");
        assert_eq!(modes.lfo_sysclk(), Hertz::mhz(25));
        assert_eq!(modes.hfo.len(), 3);
        for p in &modes.hfo {
            assert!(p.validate().is_ok());
        }
        // 100 MHz min-VCO from 25 MHz HSE: VCO 200 (e.g. /25 x200 /2 or
        // equivalent); never more than the 2x floor imposed by PLLP=2.
        let f100 = modes.hfo_at(Hertz::mhz(100)).unwrap();
        assert_eq!(f100.vco_output(), Hertz::mhz(200));
    }

    #[test]
    fn from_sysclks_rejects_unreachable_frequency() {
        // 217 MHz exceeds the SYSCLK ceiling: unreachable.
        assert!(
            OperatingModes::from_sysclks(Hertz::mhz(50), Hertz::mhz(50), &[Hertz::mhz(217)])
                .is_none()
        );
    }
}
