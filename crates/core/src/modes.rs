//! LFO / HFO operating modes (paper Sec. III-B).
//!
//! * **LFO** (Low Frequency Operation) "exclusively employs the HSE clock
//!   source at a predefined frequency (50 MHz) and aims to reduce power";
//!   it drives the memory-bound DAE segments.
//! * **HFO** (High Frequency Operation) "configures the system's clock
//!   using the PLL circuit" with `PLLN ∈ {75,100,150,168,216,336,432}` and
//!   `PLLM ∈ {25,50}`; it drives the compute-bound segments.
//!
//! Keeping the HFO PLL locked while SYSCLK runs off the HSE is what makes
//! LFO↔HFO transitions nearly free (a mux toggle instead of a 200 µs
//! re-lock).

use stm32_rcc::{ConfigSpace, Hertz, PllConfig, SysclkConfig, LFO_HSE};

/// The operating-mode universe a deployment may draw from.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatingModes {
    /// The fixed LFO configuration (HSE direct).
    pub lfo: SysclkConfig,
    /// Candidate HFO PLL configurations, ascending SYSCLK, one per distinct
    /// frequency (the power-optimal, i.e. minimum-VCO, representative).
    pub hfo: Vec<PllConfig>,
}

impl OperatingModes {
    /// The paper's mode set: LFO at 50 MHz, HFO candidates from the
    /// `PLLM ∈ {25,50}` × `PLLN ∈ {75..432}` grid on a 50 MHz HSE, reduced
    /// to the power-optimal configuration per distinct frequency.
    pub fn paper() -> Self {
        let space = ConfigSpace::paper();
        let hfo = space
            .iso_frequency_groups()
            .into_iter()
            .map(|g| *g.coolest())
            .collect();
        OperatingModes {
            lfo: SysclkConfig::hse_direct(LFO_HSE),
            hfo,
        }
    }

    /// Restricts the HFO ladder to the frequencies of the paper's Fig. 4
    /// sweep: 75, 100, 150, 168 and 216 MHz.
    pub fn fig4() -> Self {
        let all = OperatingModes::paper();
        let keep: [Hertz; 5] = [
            Hertz::mhz(75),
            Hertz::mhz(100),
            Hertz::mhz(150),
            Hertz::mhz(168),
            Hertz::mhz(216),
        ];
        OperatingModes {
            lfo: all.lfo,
            hfo: all
                .hfo
                .into_iter()
                .filter(|p| keep.contains(&p.sysclk()))
                .collect(),
        }
    }

    /// The HFO candidate producing exactly `sysclk`, if present.
    pub fn hfo_at(&self, sysclk: Hertz) -> Option<&PllConfig> {
        self.hfo.iter().find(|p| p.sysclk() == sysclk)
    }

    /// The fastest HFO candidate.
    ///
    /// # Panics
    ///
    /// Panics if the HFO set is empty.
    pub fn fastest_hfo(&self) -> &PllConfig {
        self.hfo
            .iter()
            .max_by_key(|p| p.sysclk())
            .expect("HFO set must not be empty")
    }

    /// The LFO frequency.
    pub fn lfo_sysclk(&self) -> Hertz {
        self.lfo.sysclk()
    }

    /// Replaces the LFO with a direct-HSE configuration at `freq` (builder
    /// style). The paper fixes LFO at 50 MHz; lower HSE frequencies trade
    /// staging latency for even less power — explored by the LFO ablation.
    ///
    /// # Panics
    ///
    /// Panics if `freq` is not a valid HSE frequency (1–50 MHz).
    pub fn with_lfo(mut self, freq: Hertz) -> Self {
        let cfg = SysclkConfig::hse_direct(freq);
        cfg.validate()
            .unwrap_or_else(|e| panic!("invalid LFO frequency {freq}: {e}"));
        self.lfo = cfg;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_modes_contain_expected_ladder() {
        let m = OperatingModes::paper();
        assert_eq!(m.lfo_sysclk(), Hertz::mhz(50));
        for mhz in [75u64, 100, 150, 168, 216] {
            assert!(
                m.hfo_at(Hertz::mhz(mhz)).is_some(),
                "missing HFO {mhz} MHz"
            );
        }
        assert_eq!(m.fastest_hfo().sysclk(), Hertz::mhz(216));
    }

    #[test]
    fn one_candidate_per_frequency() {
        let m = OperatingModes::paper();
        let mut freqs: Vec<Hertz> = m.hfo.iter().map(|p| p.sysclk()).collect();
        let before = freqs.len();
        freqs.dedup();
        assert_eq!(before, freqs.len(), "duplicate frequencies in HFO set");
    }

    #[test]
    fn candidates_are_min_vco_per_frequency() {
        let m = OperatingModes::paper();
        let space = ConfigSpace::paper();
        for cand in &m.hfo {
            for other in space.enumerate_pll() {
                if other.sysclk() == cand.sysclk() {
                    assert!(cand.vco_output() <= other.vco_output());
                }
            }
        }
    }

    #[test]
    fn fig4_is_a_subset() {
        let fig4 = OperatingModes::fig4();
        assert_eq!(fig4.hfo.len(), 5);
        let paper = OperatingModes::paper();
        for p in &fig4.hfo {
            assert!(paper.hfo.contains(p));
        }
    }

    #[test]
    fn all_candidates_valid() {
        for p in OperatingModes::paper().hfo {
            assert!(p.validate().is_ok());
        }
    }
}
