//! Versioned, serializable deployment-plan artifacts.
//!
//! A [`crate::DeploymentPlan`] is the output of an expensive optimization
//! (DSE sweep + solver); this module makes it *portable*: a plan optimized
//! in one process can be written to JSON, shipped, validated against the
//! receiving planner and [`crate::Planner::deploy`]-ed in another process
//! — the compile-once / replay-many posture of the compiled schedules,
//! lifted to the whole plan.
//!
//! # Schema
//!
//! The artifact is a single JSON object (hand-rolled writer and parser —
//! the workspace is offline, so no serde):
//!
//! ```json
//! {
//!   "artifact": "dae-dvfs-deployment-plan",
//!   "schema_version": 1,
//!   "target": "stm32f767",
//!   "model": "vww",
//!   "model_fingerprint": "9f86d081884c7d65",
//!   "config_fingerprint": "2c26b46b68ffc68f",
//!   "qos_secs": 0.0123,
//!   "predicted_latency_secs": 0.0119,
//!   "predicted_energy_j": 0.0009,
//!   "decisions": [
//!     {"layer": "pw3", "kind": "pointwise", "granularity": 8,
//!      "source": "hse", "source_hz": 50000000,
//!      "pllm": 25, "plln": 150, "pllp": 2,
//!      "latency_secs": 0.0004, "energy_j": 0.00003,
//!      "switches": 12, "first_stage_secs": 0.00002}
//!   ]
//! }
//! ```
//!
//! Floating-point values are emitted with Rust's shortest-round-trip
//! formatting and parsed with `str::parse::<f64>`, so a round trip is
//! bit-identical for every finite value (pinned by property tests).
//!
//! # Fingerprints & invalidation
//!
//! `model_fingerprint` hashes the lowered layer profiles,
//! `config_fingerprint` hashes the full [`DseConfig`] (modes, costs,
//! power/CPU/memory models, DP resolution). An import
//! ([`crate::DeploymentPlan::from_artifact`]) is rejected with
//! [`DaeDvfsError::ArtifactMismatch`] unless schema version, target id,
//! model name, both fingerprints *and* the decision count agree with the
//! receiving planner — the same invalidation rule compiled schedules
//! follow (any change to the model or the board description invalidates),
//! enforced across process boundaries.

use std::fmt::Write as _;

use stm32_power::Joules;
use stm32_rcc::{ClockSource, Hertz, PllConfig};
use tinynn::LayerKind;

use crate::dse::DseConfig;
use crate::error::DaeDvfsError;
use crate::pipeline::{DeploymentPlan, LayerDecision};
use crate::planner::Planner;
use crate::schedule::CompiledLayer;

/// Version of the artifact JSON schema this build writes and accepts.
pub const PLAN_ARTIFACT_SCHEMA_VERSION: u32 = 1;

/// The `"artifact"` discriminator value.
const ARTIFACT_KIND: &str = "dae-dvfs-deployment-plan";

// ---- fingerprints -------------------------------------------------------

/// 64-bit FNV-1a over a byte string (also the service cache's shard
/// mixer — one primitive, one set of constants).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Fingerprint of a lowered model: the model name plus every compiled
/// layer profile. Any change to shapes, quantization-derived op counts or
/// layer order changes the fingerprint.
pub fn model_fingerprint(model_name: &str, layers: &[CompiledLayer]) -> u64 {
    let mut repr = String::from(model_name);
    for layer in layers {
        let _ = write!(repr, "|{:?}", layer.profile());
    }
    fnv1a(repr.as_bytes())
}

/// Fingerprint of a full exploration configuration (the board
/// description): modes, granularities, cache, switch costs, power, CPU
/// and memory models, DP resolution.
pub fn config_fingerprint(config: &DseConfig) -> u64 {
    fnv1a(format!("{config:?}").as_bytes())
}

// ---- the artifact type --------------------------------------------------

/// One serialized per-layer decision.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct ArtifactDecision {
    /// Layer name.
    pub layer: String,
    /// Layer kind (`depthwise` / `pointwise` / `rest`).
    pub kind: LayerKind,
    /// Chosen decoupling granularity.
    pub granularity: u8,
    /// The chosen HFO PLL configuration.
    pub hfo: PllConfig,
    /// Layer latency under this decision, seconds.
    pub latency_secs: f64,
    /// Layer energy under this decision, joules.
    pub energy_j: f64,
    /// Clock switches the layer performs.
    pub switches: u64,
    /// Duration of the layer's first staging segment, seconds.
    pub first_stage_secs: f64,
}

/// A versioned, serializable deployment plan.
///
/// Produce one with [`DeploymentPlan::to_artifact`], serialize with
/// [`PlanArtifact::to_json`], and on the receiving side parse with
/// [`PlanArtifact::from_json`] and validate + decode with
/// [`DeploymentPlan::from_artifact`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct PlanArtifact {
    /// Schema version the artifact was written with.
    pub schema_version: u32,
    /// Identifier of the target platform the plan was optimized for.
    pub target: String,
    /// Model name.
    pub model: String,
    /// Fingerprint of the lowered model (see [`model_fingerprint`]).
    pub model_fingerprint: u64,
    /// Fingerprint of the board configuration (see
    /// [`config_fingerprint`]).
    pub config_fingerprint: u64,
    /// The QoS window the plan was optimized for, seconds.
    pub qos_secs: f64,
    /// Predicted inference latency, seconds.
    pub predicted_latency_secs: f64,
    /// Predicted inference energy, joules.
    pub predicted_energy_j: f64,
    /// Per-layer decisions in execution order.
    pub decisions: Vec<ArtifactDecision>,
}

impl PlanArtifact {
    /// Packages a plan under explicit provenance (target id and
    /// fingerprints). [`DeploymentPlan::to_artifact`] is the planner-aware
    /// convenience over this.
    pub fn from_plan(
        plan: &DeploymentPlan,
        target: impl Into<String>,
        model_fingerprint: u64,
        config_fingerprint: u64,
    ) -> Self {
        PlanArtifact {
            schema_version: PLAN_ARTIFACT_SCHEMA_VERSION,
            target: target.into(),
            model: plan.model.clone(),
            model_fingerprint,
            config_fingerprint,
            qos_secs: plan.qos_secs,
            predicted_latency_secs: plan.predicted_latency_secs,
            predicted_energy_j: plan.predicted_energy.as_f64(),
            decisions: plan
                .decisions
                .iter()
                .map(|d| ArtifactDecision {
                    layer: d.name.clone(),
                    kind: d.kind,
                    granularity: d.point.granularity.0,
                    hfo: d.point.hfo,
                    latency_secs: d.point.latency_secs,
                    energy_j: d.point.energy.as_f64(),
                    switches: d.point.switches,
                    first_stage_secs: d.point.first_stage_secs,
                })
                .collect(),
        }
    }

    /// Decodes the artifact back into a [`DeploymentPlan`] *without*
    /// provenance validation — the raw inverse of
    /// [`PlanArtifact::from_plan`]. Use [`DeploymentPlan::from_artifact`]
    /// for the validated import path.
    ///
    /// # Errors
    ///
    /// [`DaeDvfsError::ArtifactParse`] if a decision's PLL parameters are
    /// outside the datasheet windows, or any time/energy value is
    /// negative or non-finite (JSON numbers like `1e999` parse to
    /// infinity; letting them through would produce plans the writer
    /// cannot re-serialize).
    pub fn to_plan_unchecked(&self) -> Result<DeploymentPlan, DaeDvfsError> {
        let finite = |what: &str, unit: &str, v: f64| {
            if v.is_finite() && v >= 0.0 {
                Ok(v)
            } else {
                Err(parse_err(format!(
                    "{what}: {unit} must be non-negative and finite, got {v}"
                )))
            }
        };
        let energy = |what: &str, j: f64| finite(what, "energy", j).map(Joules::new);
        let time = |what: &str, secs: f64| finite(what, "time", secs);
        let decisions = self
            .decisions
            .iter()
            .map(|d| {
                d.hfo.validate().map_err(|e| DaeDvfsError::ArtifactParse {
                    reason: format!("layer {:?}: invalid PLL configuration: {e}", d.layer),
                })?;
                Ok(LayerDecision {
                    name: d.layer.clone(),
                    kind: d.kind,
                    point: crate::dse::DsePoint {
                        granularity: crate::dae::Granularity(d.granularity),
                        hfo: d.hfo,
                        latency_secs: time(&d.layer, d.latency_secs)?,
                        energy: energy(&d.layer, d.energy_j)?,
                        switches: d.switches,
                        first_stage_secs: time(&d.layer, d.first_stage_secs)?,
                    },
                })
            })
            .collect::<Result<Vec<_>, DaeDvfsError>>()?;
        Ok(DeploymentPlan {
            model: self.model.clone(),
            qos_secs: time("qos_secs", self.qos_secs)?,
            decisions,
            predicted_latency_secs: time("predicted_latency_secs", self.predicted_latency_secs)?,
            predicted_energy: energy("predicted_energy_j", self.predicted_energy_j)?,
        })
    }

    /// Serializes the artifact to its JSON schema.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + 256 * self.decisions.len());
        out.push_str("{\n");
        let _ = writeln!(out, "  \"artifact\": \"{ARTIFACT_KIND}\",");
        let _ = writeln!(out, "  \"schema_version\": {},", self.schema_version);
        let _ = writeln!(out, "  \"target\": {},", json_quote(&self.target));
        let _ = writeln!(out, "  \"model\": {},", json_quote(&self.model));
        let _ = writeln!(
            out,
            "  \"model_fingerprint\": \"{:016x}\",",
            self.model_fingerprint
        );
        let _ = writeln!(
            out,
            "  \"config_fingerprint\": \"{:016x}\",",
            self.config_fingerprint
        );
        let _ = writeln!(out, "  \"qos_secs\": {},", json_f64(self.qos_secs));
        let _ = writeln!(
            out,
            "  \"predicted_latency_secs\": {},",
            json_f64(self.predicted_latency_secs)
        );
        let _ = writeln!(
            out,
            "  \"predicted_energy_j\": {},",
            json_f64(self.predicted_energy_j)
        );
        out.push_str("  \"decisions\": [\n");
        for (i, d) in self.decisions.iter().enumerate() {
            let source = match d.hfo.source() {
                ClockSource::Hsi => "\"source\": \"hsi\", \"source_hz\": 0".to_string(),
                ClockSource::Hse(f) => {
                    format!("\"source\": \"hse\", \"source_hz\": {}", f.as_u64())
                }
            };
            let _ = write!(
                out,
                "    {{\"layer\": {}, \"kind\": \"{}\", \"granularity\": {}, {source}, \
                 \"pllm\": {}, \"plln\": {}, \"pllp\": {}, \"latency_secs\": {}, \
                 \"energy_j\": {}, \"switches\": {}, \"first_stage_secs\": {}}}",
                json_quote(&d.layer),
                d.kind,
                d.granularity,
                d.hfo.pllm(),
                d.hfo.plln(),
                d.hfo.pllp(),
                json_f64(d.latency_secs),
                json_f64(d.energy_j),
                d.switches,
                json_f64(d.first_stage_secs),
            );
            out.push_str(if i + 1 < self.decisions.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses an artifact from its JSON schema.
    ///
    /// # Errors
    ///
    /// [`DaeDvfsError::ArtifactParse`] for malformed JSON, a wrong
    /// `"artifact"` discriminator, missing fields or out-of-range values.
    pub fn from_json(text: &str) -> Result<Self, DaeDvfsError> {
        Self::from_value(&json::parse(text)?)
    }

    /// Parses an artifact from an already-parsed [`json::Value`] — the
    /// same decoding as [`PlanArtifact::from_json`], for callers that
    /// embed an artifact inside a larger JSON document (e.g. the on-disk
    /// registry's envelope, `crate::registry`).
    ///
    /// # Errors
    ///
    /// [`DaeDvfsError::ArtifactParse`] under the same conditions as
    /// [`PlanArtifact::from_json`].
    pub fn from_value(value: &json::Value) -> Result<Self, DaeDvfsError> {
        let obj = value.as_object("artifact root")?;
        let kind = obj.get_str("artifact")?;
        if kind != ARTIFACT_KIND {
            return Err(parse_err(format!(
                "not a deployment-plan artifact: {kind:?}"
            )));
        }
        let decisions_value = obj.get("decisions")?;
        let decisions = decisions_value
            .as_array("decisions")?
            .iter()
            .map(|v| {
                let d = v.as_object("decision")?;
                let source = match d.get_str("source")? {
                    "hsi" => ClockSource::Hsi,
                    "hse" => ClockSource::hse(Hertz::new(d.get_u64("source_hz")?)),
                    other => return Err(parse_err(format!("unknown clock source {other:?}"))),
                };
                let kind = match d.get_str("kind")? {
                    "depthwise" => LayerKind::Depthwise,
                    "pointwise" => LayerKind::Pointwise,
                    "rest" => LayerKind::Rest,
                    other => return Err(parse_err(format!("unknown layer kind {other:?}"))),
                };
                let granularity = u8::try_from(d.get_u64("granularity")?)
                    .map_err(|_| parse_err("granularity out of range".into()))?;
                Ok(ArtifactDecision {
                    layer: d.get_str("layer")?.to_string(),
                    kind,
                    granularity,
                    hfo: PllConfig::new_unchecked(
                        source,
                        u32::try_from(d.get_u64("pllm")?)
                            .map_err(|_| parse_err("pllm out of range".into()))?,
                        u32::try_from(d.get_u64("plln")?)
                            .map_err(|_| parse_err("plln out of range".into()))?,
                        u32::try_from(d.get_u64("pllp")?)
                            .map_err(|_| parse_err("pllp out of range".into()))?,
                    ),
                    latency_secs: d.get_f64("latency_secs")?,
                    energy_j: d.get_f64("energy_j")?,
                    switches: d.get_u64("switches")?,
                    first_stage_secs: d.get_f64("first_stage_secs")?,
                })
            })
            .collect::<Result<Vec<_>, DaeDvfsError>>()?;
        Ok(PlanArtifact {
            schema_version: u32::try_from(obj.get_u64("schema_version")?)
                .map_err(|_| parse_err("schema_version out of range".into()))?,
            target: obj.get_str("target")?.to_string(),
            model: obj.get_str("model")?.to_string(),
            model_fingerprint: obj.get_hex64("model_fingerprint")?,
            config_fingerprint: obj.get_hex64("config_fingerprint")?,
            qos_secs: obj.get_f64("qos_secs")?,
            predicted_latency_secs: obj.get_f64("predicted_latency_secs")?,
            predicted_energy_j: obj.get_f64("predicted_energy_j")?,
            decisions,
        })
    }
}

impl DeploymentPlan {
    /// Packages this plan as a versioned artifact carrying the planner's
    /// target id and model/configuration fingerprints.
    pub fn to_artifact(&self, planner: &Planner) -> PlanArtifact {
        PlanArtifact::from_plan(
            self,
            planner.target().id(),
            model_fingerprint(&planner.model().name, planner.layers()),
            config_fingerprint(planner.config()),
        )
    }

    /// Validates an artifact against `planner` and decodes it back into a
    /// deployable plan.
    ///
    /// # Errors
    ///
    /// [`DaeDvfsError::ArtifactMismatch`] if the schema version, target
    /// id, model name, either fingerprint or the decision count disagree
    /// with the planner; [`DaeDvfsError::ArtifactParse`] if a decision is
    /// undecodable.
    pub fn from_artifact(
        artifact: &PlanArtifact,
        planner: &Planner,
    ) -> Result<DeploymentPlan, DaeDvfsError> {
        let mismatch = |field: &'static str, expected: String, found: String| {
            Err(DaeDvfsError::ArtifactMismatch {
                field,
                expected,
                found,
            })
        };
        if artifact.schema_version != PLAN_ARTIFACT_SCHEMA_VERSION {
            return mismatch(
                "schema_version",
                PLAN_ARTIFACT_SCHEMA_VERSION.to_string(),
                artifact.schema_version.to_string(),
            );
        }
        if artifact.target != planner.target().id() {
            return mismatch(
                "target",
                planner.target().id().to_string(),
                artifact.target.clone(),
            );
        }
        if artifact.model != planner.model().name {
            return mismatch(
                "model",
                planner.model().name.clone(),
                artifact.model.clone(),
            );
        }
        let expected_model = model_fingerprint(&planner.model().name, planner.layers());
        if artifact.model_fingerprint != expected_model {
            return mismatch(
                "model_fingerprint",
                format!("{expected_model:016x}"),
                format!("{:016x}", artifact.model_fingerprint),
            );
        }
        let expected_config = config_fingerprint(planner.config());
        if artifact.config_fingerprint != expected_config {
            return mismatch(
                "config_fingerprint",
                format!("{expected_config:016x}"),
                format!("{:016x}", artifact.config_fingerprint),
            );
        }
        if artifact.decisions.len() != planner.layers().len() {
            return mismatch(
                "decisions",
                planner.layers().len().to_string(),
                artifact.decisions.len().to_string(),
            );
        }
        artifact.to_plan_unchecked()
    }
}

// ---- JSON primitives ----------------------------------------------------

fn parse_err(reason: String) -> DaeDvfsError {
    DaeDvfsError::ArtifactParse { reason }
}

/// Escapes and quotes a string for JSON.
///
/// Shared by every hand-rolled JSON emitter in the workspace (the
/// artifact writer here, `repro_bench::json` downstream) so escaping
/// rules cannot diverge.
pub fn json_quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a finite `f64` so that parsing the text recovers the exact bit
/// pattern (Rust's `Display` is shortest-round-trip). Always includes a
/// decimal point or exponent-free integer form acceptable to JSON.
fn json_f64(v: f64) -> String {
    debug_assert!(v.is_finite(), "plan artifacts require finite values");
    // `Display` prints integral floats without a fraction ("3"), which is
    // valid JSON; negative zero round-trips as "-0".
    format!("{v}")
}

/// The minimal JSON subset parser behind [`PlanArtifact::from_json`]:
/// objects, arrays, strings (with escapes), numbers (kept as raw text so
/// `f64` parsing is exact), booleans and null.
///
/// Public so downstream emitters (e.g. `repro_bench`'s benchmark summary)
/// can self-validate their hand-rolled output against the same parser the
/// plan-artifact reader uses, instead of growing a second one.
pub mod json {
    use super::parse_err;
    use crate::error::DaeDvfsError;

    /// A parsed JSON value. Numbers keep their raw text.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        Num(String),
        Str(String),
        Arr(Vec<Value>),
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        pub fn as_object(&self, what: &str) -> Result<Object<'_>, DaeDvfsError> {
            match self {
                Value::Obj(fields) => Ok(Object { fields }),
                other => Err(parse_err(format!("{what}: expected object, got {other:?}"))),
            }
        }

        pub fn as_array(&self, what: &str) -> Result<&[Value], DaeDvfsError> {
            match self {
                Value::Arr(items) => Ok(items),
                other => Err(parse_err(format!("{what}: expected array, got {other:?}"))),
            }
        }
    }

    /// Field access over a parsed object.
    pub struct Object<'a> {
        fields: &'a [(String, Value)],
    }

    impl<'a> Object<'a> {
        pub fn get(&self, key: &'static str) -> Result<&'a Value, DaeDvfsError> {
            self.fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| parse_err(format!("missing field {key:?}")))
        }

        pub fn get_str(&self, key: &'static str) -> Result<&'a str, DaeDvfsError> {
            match self.get(key)? {
                Value::Str(s) => Ok(s),
                other => Err(parse_err(format!("{key}: expected string, got {other:?}"))),
            }
        }

        pub fn get_f64(&self, key: &'static str) -> Result<f64, DaeDvfsError> {
            match self.get(key)? {
                Value::Num(raw) => raw
                    .parse::<f64>()
                    .map_err(|e| parse_err(format!("{key}: bad number {raw:?}: {e}"))),
                other => Err(parse_err(format!("{key}: expected number, got {other:?}"))),
            }
        }

        pub fn get_u64(&self, key: &'static str) -> Result<u64, DaeDvfsError> {
            match self.get(key)? {
                Value::Num(raw) => raw
                    .parse::<u64>()
                    .map_err(|e| parse_err(format!("{key}: bad integer {raw:?}: {e}"))),
                other => Err(parse_err(format!("{key}: expected integer, got {other:?}"))),
            }
        }

        /// A 64-bit fingerprint serialized as a 16-digit hex string.
        pub fn get_hex64(&self, key: &'static str) -> Result<u64, DaeDvfsError> {
            let s = self.get_str(key)?;
            u64::from_str_radix(s, 16)
                .map_err(|e| parse_err(format!("{key}: bad fingerprint {s:?}: {e}")))
        }
    }

    /// Parses a complete JSON document (one value plus whitespace).
    pub fn parse(text: &str) -> Result<Value, DaeDvfsError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(parse_err(format!("trailing characters at byte {}", p.pos)));
        }
        Ok(value)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while let Some(&b) = self.bytes.get(self.pos) {
                if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }

        fn peek(&self) -> Result<u8, DaeDvfsError> {
            self.bytes
                .get(self.pos)
                .copied()
                .ok_or_else(|| parse_err("unexpected end of input".into()))
        }

        fn expect(&mut self, b: u8) -> Result<(), DaeDvfsError> {
            if self.peek()? == b {
                self.pos += 1;
                Ok(())
            } else {
                Err(parse_err(format!(
                    "expected {:?} at byte {}",
                    b as char, self.pos
                )))
            }
        }

        fn expect_literal(&mut self, lit: &str) -> Result<(), DaeDvfsError> {
            if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
                self.pos += lit.len();
                Ok(())
            } else {
                Err(parse_err(format!("expected {lit:?} at byte {}", self.pos)))
            }
        }

        fn value(&mut self) -> Result<Value, DaeDvfsError> {
            match self.peek()? {
                b'{' => self.object(),
                b'[' => self.array(),
                b'"' => Ok(Value::Str(self.string()?)),
                b't' => self.expect_literal("true").map(|()| Value::Bool(true)),
                b'f' => self.expect_literal("false").map(|()| Value::Bool(false)),
                b'n' => self.expect_literal("null").map(|()| Value::Null),
                b'-' | b'0'..=b'9' => self.number(),
                other => Err(parse_err(format!(
                    "unexpected character {:?} at byte {}",
                    other as char, self.pos
                ))),
            }
        }

        fn object(&mut self) -> Result<Value, DaeDvfsError> {
            self.expect(b'{')?;
            let mut fields = Vec::new();
            self.skip_ws();
            if self.peek()? == b'}' {
                self.pos += 1;
                return Ok(Value::Obj(fields));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                self.skip_ws();
                let value = self.value()?;
                fields.push((key, value));
                self.skip_ws();
                match self.peek()? {
                    b',' => self.pos += 1,
                    b'}' => {
                        self.pos += 1;
                        return Ok(Value::Obj(fields));
                    }
                    other => {
                        return Err(parse_err(format!(
                            "expected ',' or '}}', got {:?} at byte {}",
                            other as char, self.pos
                        )))
                    }
                }
            }
        }

        fn array(&mut self) -> Result<Value, DaeDvfsError> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek()? == b']' {
                self.pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                self.skip_ws();
                items.push(self.value()?);
                self.skip_ws();
                match self.peek()? {
                    b',' => self.pos += 1,
                    b']' => {
                        self.pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    other => {
                        return Err(parse_err(format!(
                            "expected ',' or ']', got {:?} at byte {}",
                            other as char, self.pos
                        )))
                    }
                }
            }
        }

        fn string(&mut self) -> Result<String, DaeDvfsError> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                let start = self.pos;
                // Fast-forward over the unescaped run.
                while let Some(&b) = self.bytes.get(self.pos) {
                    if b == b'"' || b == b'\\' {
                        break;
                    }
                    self.pos += 1;
                }
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|e| parse_err(format!("invalid UTF-8 in string: {e}")))?,
                );
                match self.peek()? {
                    b'"' => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    b'\\' => {
                        self.pos += 1;
                        match self.peek()? {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'n' => out.push('\n'),
                            b'r' => out.push('\r'),
                            b't' => out.push('\t'),
                            b'b' => out.push('\u{8}'),
                            b'f' => out.push('\u{c}'),
                            b'u' => {
                                self.pos += 1;
                                let code = self.hex4()?;
                                let c = if (0xD800..0xDC00).contains(&code) {
                                    // Surrogate pair: expect \uDC00-\uDFFF.
                                    self.expect(b'\\')?;
                                    self.expect(b'u')?;
                                    let low = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(parse_err("invalid low surrogate".into()));
                                    }
                                    let combined =
                                        0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    char::from_u32(code)
                                };
                                out.push(
                                    c.ok_or_else(|| parse_err("invalid unicode escape".into()))?,
                                );
                                continue;
                            }
                            other => {
                                return Err(parse_err(format!(
                                    "unknown escape \\{:?}",
                                    other as char
                                )))
                            }
                        }
                        self.pos += 1;
                    }
                    _ => unreachable!("loop exits only on quote or backslash"),
                }
            }
        }

        /// Parses exactly four hex digits (after `\u`), leaving `pos` on
        /// the next character.
        fn hex4(&mut self) -> Result<u32, DaeDvfsError> {
            if self.pos + 4 > self.bytes.len() {
                return Err(parse_err("truncated unicode escape".into()));
            }
            let digits = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                .map_err(|_| parse_err("invalid unicode escape".into()))?;
            let code = u32::from_str_radix(digits, 16)
                .map_err(|_| parse_err(format!("invalid unicode escape \\u{digits}")))?;
            self.pos += 4;
            Ok(code)
        }

        fn number(&mut self) -> Result<Value, DaeDvfsError> {
            let start = self.pos;
            if self.peek()? == b'-' {
                self.pos += 1;
            }
            while let Some(&b) = self.bytes.get(self.pos) {
                if matches!(b, b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            if self.pos == start {
                return Err(parse_err(format!("empty number at byte {start}")));
            }
            let raw =
                std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
            Ok(Value::Num(raw.to_string()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dae::Granularity;
    use crate::dse::DsePoint;
    use stm32_rcc::PllConfig;

    fn pll(mhz_n: u32) -> PllConfig {
        PllConfig::new(ClockSource::hse(Hertz::mhz(50)), 25, mhz_n, 2).expect("valid")
    }

    fn sample_plan() -> DeploymentPlan {
        DeploymentPlan {
            model: "unit \"quoted\"\nmodel".into(),
            qos_secs: 0.1 + 0.2, // deliberately non-representable: 0.30000000000000004
            decisions: vec![
                LayerDecision {
                    name: "pw0".into(),
                    kind: LayerKind::Pointwise,
                    point: DsePoint {
                        granularity: Granularity(8),
                        hfo: pll(150),
                        latency_secs: 1.2345678901234567e-3,
                        energy: Joules::new(7.0e-5),
                        switches: 17,
                        first_stage_secs: 3.3e-6,
                    },
                },
                LayerDecision {
                    name: "rest1".into(),
                    kind: LayerKind::Rest,
                    point: DsePoint {
                        granularity: Granularity(0),
                        hfo: pll(216),
                        latency_secs: 0.25,
                        energy: Joules::new(-0.0),
                        switches: 0,
                        first_stage_secs: 0.0,
                    },
                },
            ],
            predicted_latency_secs: f64::MIN_POSITIVE,
            predicted_energy: Joules::new(1e300),
        }
    }

    #[test]
    fn json_round_trip_is_bit_identical() {
        let plan = sample_plan();
        let artifact = PlanArtifact::from_plan(&plan, "stm32f767", 0xdead_beef, 0x1234);
        let text = artifact.to_json();
        let parsed = PlanArtifact::from_json(&text).expect("parses");
        assert_eq!(parsed, artifact);
        let back = parsed.to_plan_unchecked().expect("decodes");
        assert_eq!(back.model, plan.model);
        assert_eq!(back.qos_secs.to_bits(), plan.qos_secs.to_bits());
        assert_eq!(
            back.predicted_latency_secs.to_bits(),
            plan.predicted_latency_secs.to_bits()
        );
        assert_eq!(
            back.predicted_energy.as_f64().to_bits(),
            plan.predicted_energy.as_f64().to_bits()
        );
        assert_eq!(back.decisions, plan.decisions);
    }

    #[test]
    fn malformed_json_is_a_parse_error() {
        for bad in [
            "",
            "{",
            "{\"artifact\": \"dae-dvfs-deployment-plan\"",
            "[1,2,3]",
            "{\"artifact\": \"something-else\"}",
            "{\"artifact\": \"dae-dvfs-deployment-plan\", \"schema_version\": \"x\"}",
        ] {
            assert!(
                matches!(
                    PlanArtifact::from_json(bad),
                    Err(DaeDvfsError::ArtifactParse { .. })
                ),
                "{bad:?} should fail to parse"
            );
        }
    }

    #[test]
    fn missing_field_names_the_field() {
        let err = PlanArtifact::from_json(
            "{\"artifact\": \"dae-dvfs-deployment-plan\", \"model\": \"m\"}",
        )
        .unwrap_err();
        assert!(err.to_string().contains("decisions") || err.to_string().contains("schema"));
    }

    #[test]
    fn non_finite_times_rejected_at_decode() {
        // JSON numbers like 1e999 lex fine and parse to infinity; the
        // decoder must refuse them so imported plans stay serializable.
        let plan = sample_plan();
        for field in 0..3 {
            let mut artifact = PlanArtifact::from_plan(&plan, "t", 1, 2);
            match field {
                0 => artifact.qos_secs = f64::INFINITY,
                1 => artifact.predicted_latency_secs = f64::NAN,
                _ => artifact.decisions[0].latency_secs = f64::INFINITY,
            }
            assert!(
                matches!(
                    artifact.to_plan_unchecked(),
                    Err(DaeDvfsError::ArtifactParse { .. })
                ),
                "field {field} should be rejected"
            );
        }
        // End to end: an overflowing literal parses to infinity and is
        // refused at decode, not silently accepted.
        let mut artifact = PlanArtifact::from_plan(&plan, "t", 1, 2);
        artifact.qos_secs = 1.0;
        let json = artifact
            .to_json()
            .replace("\"qos_secs\": 1", "\"qos_secs\": 1e999");
        let parsed = PlanArtifact::from_json(&json).expect("overflowing literal still parses");
        assert!(parsed.qos_secs.is_infinite());
        assert!(matches!(
            parsed.to_plan_unchecked(),
            Err(DaeDvfsError::ArtifactParse { .. })
        ));
    }

    #[test]
    fn invalid_pll_rejected_at_decode() {
        let plan = sample_plan();
        let mut artifact = PlanArtifact::from_plan(&plan, "t", 1, 2);
        artifact.decisions[0].hfo =
            PllConfig::new_unchecked(ClockSource::hse(Hertz::mhz(50)), 20, 100, 2);
        assert!(matches!(
            artifact.to_plan_unchecked(),
            Err(DaeDvfsError::ArtifactParse { .. })
        ));
    }

    #[test]
    fn fingerprints_are_stable_and_sensitive() {
        let a = config_fingerprint(&DseConfig::paper());
        let b = config_fingerprint(&DseConfig::paper());
        assert_eq!(a, b, "fingerprint must be deterministic");
        let c = config_fingerprint(&DseConfig::paper().with_dp_resolution(999));
        assert_ne!(a, c, "config changes must change the fingerprint");
    }

    #[test]
    fn string_escapes_round_trip() {
        for s in [
            "plain",
            "with \"quotes\" and \\backslashes\\",
            "control\tchars\nnewline\r",
            "unicode: Ωμέγα 漢字 🎛",
        ] {
            let quoted = json_quote(s);
            match json::parse(&quoted).expect("parses") {
                json::Value::Str(back) => assert_eq!(back, s),
                other => panic!("expected string, got {other:?}"),
            }
        }
    }

    #[test]
    fn unicode_escapes_parse() {
        match json::parse("\"\\u00e9\\ud83c\\udf9b\"").expect("parses") {
            json::Value::Str(s) => assert_eq!(s, "é🎛"),
            other => panic!("expected string, got {other:?}"),
        }
    }
}
