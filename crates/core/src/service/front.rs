//! The `PlanService` front end: worker pool, bounded submission queue,
//! tickets, drain and stats.
//!
//! See the [module docs](crate::service) for the architecture; this file
//! holds the moving parts. Locking is deliberately simple: the
//! submission queue is one mutex + condvar, and the cache's shard locks
//! are only ever taken *while holding* the queue lock on the submit path
//! (never the other way around), so the lock order is acyclic. Workers
//! take the queue lock to pop a batch, release it to solve, and touch
//! only cache/ticket locks to publish results. That acyclic order is
//! executable, not just documented: every lock here is a
//! [`crate::sync::RankedMutex`] (queue 10 < cache-shard 20 < ticket 30 <
//! timing 40), and under `debug_assertions` an out-of-rank acquisition
//! panics with both sites — see the [`crate::sync`] module docs.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::artifact::{config_fingerprint, model_fingerprint};
use crate::error::{DaeDvfsError, RegistryError, ServiceError};
use crate::obs::{self, PathStamp, Receipt, ServePath};
use crate::pipeline::DeploymentPlan;
use crate::planner::Planner;
use crate::registry::PlanRegistry;
use crate::request::PlanRequest;
use crate::service::cache::{CacheStats, Lookup, PlanCache, PlanKey, ServedPlan};
use crate::service::coalesce::{canonicalize, solve_batch, GroupKey};
use crate::service::ServiceConfig;
use crate::sync::{lock, rank, wait, wait_timeout, RankedCondvar, RankedMutex};

/// Handle to a planner registered with a [`PlanService`]; cheap to copy
/// and required by [`PlanService::submit`].
///
/// Keys index into the service they came from — a key from one service
/// is rejected by another (unless it happens to be in range, in which
/// case it addresses that service's planner at the same position).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannerKey(pub(crate) usize);

#[derive(Debug)]
struct Registered {
    planner: Arc<Planner>,
    model_fingerprint: u64,
    config_fingerprint: u64,
}

/// One admitted request waiting in the queue (always a cache-miss
/// *leader*; hits and joiners never occupy queue slots).
#[derive(Debug)]
struct Pending {
    planner: usize,
    group: GroupKey,
    key: PlanKey,
    window_secs: f64,
    ticket: Arc<TicketInner>,
}

#[derive(Debug)]
struct TicketInner {
    slot: RankedMutex<Option<(Result<ServedPlan, ServiceError>, PathStamp)>>,
    ready: RankedCondvar,
}

impl TicketInner {
    fn new() -> Arc<Self> {
        Arc::new(TicketInner {
            slot: RankedMutex::new(rank::TICKET, None),
            ready: RankedCondvar::new(),
        })
    }

    fn fulfill(&self, result: Result<ServedPlan, ServiceError>, stamp: PathStamp) {
        *lock(&self.slot) = Some((result, stamp));
        self.ready.notify_all();
    }

    fn wait_stamped(&self) -> (Result<ServedPlan, ServiceError>, PathStamp) {
        let mut slot = lock(&self.slot);
        loop {
            if let Some((result, stamp)) = slot.as_ref() {
                return (result.clone(), *stamp);
            }
            slot = wait(&self.ready, slot);
        }
    }

    fn ready(&self) -> bool {
        lock(&self.slot).is_some()
    }
}

/// A ticket's backing state: inline hits are answered at submit time and
/// carry their result by value — no shared slot, no condvar, no heap
/// allocation on the hot path.
#[derive(Debug)]
enum TicketState {
    /// Answered inline (cache-hit fast path): the result travelled back
    /// on the submitting thread's stack, stamped with its serving path.
    Ready(Result<ServedPlan, ServiceError>, PathStamp),
    /// Waiting on a worker or an in-flight leader.
    Pending(Arc<TicketInner>),
}

/// A submitted request's result handle. Obtained from
/// [`PlanService::submit`]; every admitted ticket is fulfilled before
/// [`PlanService::run`] returns (graceful drain), so [`PlanTicket::wait`]
/// never blocks past the serving scope. Cache-hit submissions come back
/// already answered ([`PlanTicket::ready`] is immediately true) without
/// touching the queue or a worker.
#[derive(Debug)]
pub struct PlanTicket {
    state: TicketState,
}

impl PlanTicket {
    /// Blocks until the request is answered and returns the shared plan
    /// (an `Arc` clone of the cached entry) or the request's typed error.
    pub fn wait(self) -> Result<Arc<DeploymentPlan>, ServiceError> {
        self.wait_served().map(ServedPlan::into_plan)
    }

    /// Like [`PlanTicket::wait`], but keeps the plan paired with its
    /// canonical artifact serialization ([`ServedPlan`]) — the
    /// zero-serialization handle the HTTP layer answers with.
    pub fn wait_served(self) -> Result<ServedPlan, ServiceError> {
        self.wait_stamped().0
    }

    /// Like [`PlanTicket::wait_served`], but also reports *how* the
    /// request was answered (the [`crate::obs::ServePath`] stamp every
    /// fulfillment carries) — the building block of
    /// [`PlanService::plan_receipted`].
    pub(crate) fn wait_stamped(self) -> (Result<ServedPlan, ServiceError>, PathStamp) {
        match self.state {
            TicketState::Ready(result, stamp) => (result, stamp),
            TicketState::Pending(inner) => inner.wait_stamped(),
        }
    }

    /// Whether the result is already available ([`PlanTicket::wait`]
    /// would return without blocking).
    pub fn ready(&self) -> bool {
        match &self.state {
            TicketState::Ready(..) => true,
            TicketState::Pending(inner) => inner.ready(),
        }
    }
}

#[derive(Debug)]
struct Queue {
    items: VecDeque<Pending>,
    /// Workers are running (inside [`PlanService::run`]).
    serving: bool,
    /// Drain has begun: no new admissions, workers exit on empty.
    draining: bool,
    max_depth: usize,
}

#[derive(Debug, Default)]
struct Counters {
    submitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    batches: AtomicU64,
    batched_requests: AtomicU64,
    max_batch: AtomicU64,
    inline_hits: AtomicU64,
    bytes_served: AtomicU64,
    enqueued: AtomicU64,
}

#[derive(Debug, Default)]
struct Timing {
    accumulated: Duration,
    current: Option<Instant>,
}

/// Point-in-time service counters ([`PlanService::stats`]).
///
/// Consistency invariant: once the service has drained,
/// `cache.hits + cache.misses == submitted == completed` — every
/// admitted request performed exactly one cache lookup and was fulfilled
/// exactly once (`rejected` submissions never reach the cache), and
/// `inline_hits <= cache.hits` — inline answers are the subset of hits
/// served on the lock-free fast path. With a registry attached the
/// invariant extends across the cold tier:
/// `cache.inserted == registry_hits + registry_writes` — every plan that
/// entered the LRU either came off disk or was written through to it
/// (modulo advisory store failures, which leave the plan memory-only).
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct ServiceStats {
    /// Requests admitted (ticket handed out).
    pub submitted: u64,
    /// Tickets fulfilled (including failures).
    pub completed: u64,
    /// Submissions rejected before admission (backpressure, invalid
    /// request, unknown planner, not serving).
    pub rejected: u64,
    /// Tickets fulfilled with an error.
    pub failed: u64,
    /// Coalesced batches solved by workers.
    pub batches: u64,
    /// Leader requests answered across all batches.
    pub batched_requests: u64,
    /// Largest single batch.
    pub max_batch: u64,
    /// Cache hits answered inline on the submit fast path: no queue
    /// slot, no ticket allocation, no worker handoff. Always
    /// `<= cache.hits` (hits observed under the queue lock — a
    /// startup/drain race — are fulfilled through a ticket instead).
    pub inline_hits: u64,
    /// Cumulative payload bytes of successfully answered requests (the
    /// shared canonical artifact serialization; failed requests
    /// contribute nothing).
    pub bytes_served: u64,
    /// Leaders pushed onto the submission queue. Hits, joiners and
    /// rejected submissions never enqueue, so a fully warm trace adds
    /// zero.
    pub enqueued: u64,
    /// Current submission-queue depth.
    pub queue_depth: u64,
    /// High-water mark of the submission queue.
    pub max_queue_depth: u64,
    /// Cumulative wall-clock time spent serving (across
    /// [`PlanService::run`] scopes).
    pub elapsed_secs: f64,
    /// Cache misses answered from the on-disk registry without a solve
    /// (0 when no registry is attached).
    pub registry_hits: u64,
    /// Fresh solves written through to the on-disk registry (0 when no
    /// registry is attached).
    pub registry_writes: u64,
    /// Registry entries quarantined as corrupt or mismatched (0 when no
    /// registry is attached).
    pub quarantined: u64,
    /// Plan-cache counters.
    pub cache: CacheStats,
    /// Per-path end-to-end latency histograms, recorded for requests
    /// served through [`PlanService::plan_receipted`] (the HTTP serving
    /// path). Power-of-two nanosecond buckets, one lane per
    /// [`crate::obs::ServePath`].
    pub paths: obs::PathStats,
}

impl ServiceStats {
    /// Fraction of admitted requests answered from the cache.
    pub fn hit_rate(&self) -> f64 {
        self.cache.hit_rate()
    }

    /// Completed requests per serving second (0 before any serving).
    pub fn throughput_rps(&self) -> f64 {
        if self.elapsed_secs > 0.0 {
            self.completed as f64 / self.elapsed_secs
        } else {
            0.0
        }
    }

    /// Fraction of admitted requests answered inline on the submit fast
    /// path (0 before any submission).
    pub fn inline_hit_rate(&self) -> f64 {
        if self.submitted > 0 {
            self.inline_hits as f64 / self.submitted as f64
        } else {
            0.0
        }
    }

    /// Mean batch size across coalesced solves (0 before any batch).
    pub fn mean_batch(&self) -> f64 {
        if self.batches > 0 {
            self.batched_requests as f64 / self.batches as f64
        } else {
            0.0
        }
    }
}

/// The concurrent plan-serving front end: a fingerprint-keyed plan cache
/// plus a request coalescer behind a worker pool.
///
/// Construct with [`PlanService::new`], [`PlanService::register`] one or
/// more planners, then enter the serving scope with
/// [`PlanService::run`] — workers live on `std::thread::scope`, so the
/// service borrows its planners instead of demanding `'static`
/// ownership. Inside the scope, any thread holding `&PlanService` may
/// [`PlanService::submit`] (non-blocking, typed backpressure) or
/// [`PlanService::plan`] (submit + wait).
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use dae_dvfs::{PlanRequest, Planner, PlanService, ServiceConfig};
/// use tinynn::models::vww_sized;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let planner = Arc::new(Planner::new(&vww_sized(32), &Default::default())?);
/// let mut service = PlanService::new(ServiceConfig::default())?;
/// let key = service.register(planner);
/// let plan = service.run(|svc| svc.plan(key, &PlanRequest::slack(0.3)))?;
/// assert!(plan.predicted_latency_secs <= plan.qos_secs);
/// assert_eq!(service.stats().completed, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct PlanService {
    config: ServiceConfig,
    planners: Vec<Registered>,
    cache: PlanCache<Arc<TicketInner>>,
    /// The persistent cold tier, when attached: consulted by workers on
    /// every cache miss before solving, written through after every
    /// fresh solve ([`PlanService::attach_registry`]).
    registry: Option<PlanRegistry>,
    queue: RankedMutex<Queue>,
    arrived: RankedCondvar,
    counters: Counters,
    /// Lock-free per-path latency histograms, fed by
    /// [`PlanService::plan_receipted`].
    paths: obs::PathHistograms,
    timing: RankedMutex<Timing>,
    /// Lock-free mirrors of the queue's `serving`/`draining` flags: the
    /// submit fast path serves cache hits without touching the queue
    /// mutex, so hot-key traffic contends only on the cache shards. The
    /// queue's own flags stay authoritative for admission and workers.
    serving_hint: AtomicBool,
    draining_hint: AtomicBool,
}

/// Guarantees the drain begins even when the serving closure panics:
/// without it, workers would wait on `arrived` forever and
/// `std::thread::scope`'s implicit join would deadlock the unwind.
struct DrainOnDrop<'a>(&'a PlanService);

impl Drop for DrainOnDrop<'_> {
    fn drop(&mut self) {
        lock(&self.0.queue).draining = true;
        self.0.draining_hint.store(true, Ordering::Release);
        self.0.arrived.notify_all();
    }
}

/// Runs [`PlanService::run`]'s post-scope cleanup (stop serving, settle
/// the timing clock) on both the normal path and an unwinding one, so a
/// panicked serving closure leaves the service stopped but reusable.
struct StopServingOnDrop<'a>(&'a PlanService);

impl Drop for StopServingOnDrop<'_> {
    fn drop(&mut self) {
        self.0.serving_hint.store(false, Ordering::Release);
        lock(&self.0.queue).serving = false;
        let mut timing = lock(&self.0.timing);
        if let Some(started) = timing.current.take() {
            timing.accumulated += started.elapsed();
        }
    }
}

impl PlanService {
    /// A service with no planners yet; [`PlanService::register`] at least
    /// one before serving.
    ///
    /// # Errors
    ///
    /// [`DaeDvfsError::InvalidRequest`] naming the offending
    /// [`ServiceConfig`] field for degenerate configurations.
    pub fn new(config: ServiceConfig) -> Result<Self, DaeDvfsError> {
        config.validate()?;
        Ok(PlanService {
            cache: PlanCache::new(config.cache_capacity, config.cache_shards),
            config,
            planners: Vec::new(),
            registry: None,
            queue: RankedMutex::new(
                rank::QUEUE,
                Queue {
                    items: VecDeque::new(),
                    serving: false,
                    draining: false,
                    max_depth: 0,
                },
            ),
            arrived: RankedCondvar::new(),
            counters: Counters::default(),
            paths: obs::PathHistograms::new(),
            timing: RankedMutex::new(rank::TIMING, Timing::default()),
            serving_hint: AtomicBool::new(false),
            draining_hint: AtomicBool::new(false),
        })
    }

    /// Registers a planner and returns its submission key. Fingerprints
    /// are derived here, once — two planners built from the same model
    /// and board configuration get equal fingerprints and therefore
    /// share cache entries and coalesced batches.
    pub fn register(&mut self, planner: Arc<Planner>) -> PlannerKey {
        let model_fingerprint = model_fingerprint(&planner.model().name, planner.layers());
        let config_fingerprint = config_fingerprint(planner.config());
        self.planners.push(Registered {
            planner,
            model_fingerprint,
            config_fingerprint,
        });
        PlannerKey(self.planners.len() - 1)
    }

    /// The planner a key addresses, if it belongs to this service.
    pub fn planner(&self, key: PlannerKey) -> Option<&Arc<Planner>> {
        self.planners.get(key.0).map(|r| &r.planner)
    }

    /// Attaches a persistent on-disk registry as the cold tier below the
    /// LRU. Register every planner **first**: attaching re-validates each
    /// stored entry against the currently registered planners (replaying
    /// it through [`DeploymentPlan::from_artifact`]) and quarantines
    /// corrupt or mismatched files before the registry serves its first
    /// hit. Once attached, workers consult the registry on every cache
    /// miss before solving and write every fresh solve through.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Io`] when the registry directory cannot be
    /// scanned; individual bad entries are quarantined, not errors.
    pub fn attach_registry(&mut self, registry: PlanRegistry) -> Result<(), RegistryError> {
        let planners: Vec<(u64, u64, &Planner)> = self
            .planners
            .iter()
            .map(|r| {
                (
                    r.model_fingerprint,
                    r.config_fingerprint,
                    r.planner.as_ref(),
                )
            })
            .collect();
        registry.revalidate(&planners)?;
        self.registry = Some(registry);
        Ok(())
    }

    /// The attached registry, if any.
    pub fn registry(&self) -> Option<&PlanRegistry> {
        self.registry.as_ref()
    }

    /// The service's configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Runs the worker pool for the duration of `f`: workers spawn on a
    /// `std::thread::scope`, `f` receives `&self` to submit against (from
    /// as many threads as it likes), and on return the service **drains**
    /// — no new admissions, every queued request is still answered — and
    /// joins its workers before handing back `f`'s result.
    ///
    /// # Panics
    ///
    /// Panics when called re-entrantly (the service is already serving),
    /// or if a worker thread panics.
    pub fn run<R: Send>(&self, f: impl FnOnce(&Self) -> R + Send) -> R {
        {
            let mut queue = lock(&self.queue);
            assert!(!queue.serving, "PlanService::run is not re-entrant");
            queue.serving = true;
            queue.draining = false;
        }
        self.draining_hint.store(false, Ordering::Release);
        self.serving_hint.store(true, Ordering::Release);
        lock(&self.timing).current = Some(Instant::now());
        let _stop_serving = StopServingOnDrop(self);
        std::thread::scope(|s| {
            for _ in 0..self.effective_workers() {
                s.spawn(|| self.worker_loop());
            }
            // The guard drains on unwind too: a panic in `f` must still
            // release the workers or the scope's join would deadlock.
            let drain = DrainOnDrop(self);
            let out = f(self);
            drop(drain);
            out
        })
    }

    /// The number of worker threads [`PlanService::run`] spawns.
    fn effective_workers(&self) -> usize {
        let workers = if self.config.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.config.workers
        };
        workers.max(1)
    }

    /// Submits a request; never blocks. On success the returned ticket
    /// will be fulfilled by a worker (or was already fulfilled from the
    /// cache). Identical in-flight requests are deduplicated: only a
    /// cache-miss *leader* occupies a queue slot, so backpressure applies
    /// to distinct work, not to raw request volume.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownPlanner`] for a foreign key;
    /// [`ServiceError::NotServing`] outside [`PlanService::run`] or
    /// after the drain began; [`ServiceError::Plan`] for requests that
    /// fail validation/canonicalization; [`ServiceError::QueueFull`]
    /// when the bounded queue cannot admit a new leader.
    pub fn submit(
        &self,
        key: PlannerKey,
        request: &PlanRequest,
    ) -> Result<PlanTicket, ServiceError> {
        self.submit_keyed(key, request).map(|(ticket, _)| ticket)
    }

    /// [`PlanService::submit`] plus the request's canonical cache
    /// identity — the [`PlanKey`] the receipt fingerprints.
    fn submit_keyed(
        &self,
        key: PlannerKey,
        request: &PlanRequest,
    ) -> Result<(PlanTicket, PlanKey), ServiceError> {
        let Some(registered) = self.planners.get(key.0) else {
            self.counters.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(ServiceError::UnknownPlanner { key: key.0 });
        };
        let canonical = canonicalize(
            &registered.planner,
            registered.model_fingerprint,
            registered.config_fingerprint,
            request,
            self.config.qos_quantum_secs,
        )
        .map_err(|e| {
            self.counters.rejected.fetch_add(1, Ordering::Relaxed);
            ServiceError::Plan(e)
        })?;

        // Fast path: completed hits are answered inline, without the
        // queue mutex, a ticket allocation, or a worker handoff — the
        // result rides back on the submitting thread's stack and
        // hot-key traffic contends only on the cache shards. The hints
        // are a conservative snapshot — a stale `true` can at most
        // serve one more hit while the drain begins (harmless: no queue
        // slot, the request is already answered); when stale-`false`,
        // the locked path below re-checks authoritatively.
        if self.serving_hint.load(Ordering::Acquire) && !self.draining_hint.load(Ordering::Acquire)
        {
            if let Some(served) = self.cache.get(canonical.key) {
                self.counters.submitted.fetch_add(1, Ordering::Relaxed);
                self.counters.inline_hits.fetch_add(1, Ordering::Relaxed);
                self.counters
                    .bytes_served
                    .fetch_add(served.bytes().len() as u64, Ordering::Relaxed);
                self.counters.completed.fetch_add(1, Ordering::Relaxed);
                return Ok((
                    PlanTicket {
                        state: TicketState::Ready(
                            Ok(served),
                            PathStamp::instant(ServePath::InlineHit),
                        ),
                    },
                    canonical.key,
                ));
            }
        }

        let ticket = TicketInner::new();
        // For misses, the cache lookup happens under the queue lock:
        // admission and leadership are decided together, so a leader
        // that cannot be queued rolls its flight back immediately.
        let mut queue = lock(&self.queue);
        if !queue.serving || queue.draining {
            drop(queue);
            self.counters.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(ServiceError::NotServing);
        }
        match self.cache.lookup_or_join(canonical.key, ticket.clone()) {
            Lookup::Hit(served, waiter) => {
                drop(queue);
                self.counters.submitted.fetch_add(1, Ordering::Relaxed);
                self.fulfill(
                    &waiter,
                    &Ok(served),
                    PathStamp::instant(ServePath::CacheHit),
                );
                Ok((
                    PlanTicket {
                        state: TicketState::Pending(ticket),
                    },
                    canonical.key,
                ))
            }
            Lookup::Joined => {
                drop(queue);
                self.counters.submitted.fetch_add(1, Ordering::Relaxed);
                Ok((
                    PlanTicket {
                        state: TicketState::Pending(ticket),
                    },
                    canonical.key,
                ))
            }
            Lookup::Lead(waiter) => {
                if queue.items.len() >= self.config.queue_capacity {
                    drop(queue);
                    // The queue lock is released, so a concurrent submit
                    // may join the doomed flight before `abort` removes
                    // it; those stray waiters are failed here (their
                    // misses were counted, so completing them with the
                    // error keeps hits + misses == admitted; `abort`
                    // un-counts only the lead's own lookup).
                    let full = Err(ServiceError::QueueFull {
                        capacity: self.config.queue_capacity,
                    });
                    for stray in self.cache.abort(canonical.key) {
                        self.fulfill(&stray, &full, PathStamp::instant(ServePath::FlightJoin));
                    }
                    self.counters.rejected.fetch_add(1, Ordering::Relaxed);
                    return Err(ServiceError::QueueFull {
                        capacity: self.config.queue_capacity,
                    });
                }
                queue.items.push_back(Pending {
                    planner: key.0,
                    group: canonical.group,
                    key: canonical.key,
                    window_secs: canonical.window_secs,
                    ticket: waiter,
                });
                queue.max_depth = queue.max_depth.max(queue.items.len());
                drop(queue);
                self.counters.submitted.fetch_add(1, Ordering::Relaxed);
                self.counters.enqueued.fetch_add(1, Ordering::Relaxed);
                // notify_all, not notify_one: a worker lingering for
                // same-group stragglers also sleeps on this condvar, and
                // a single wakeup aimed at an idle worker could be
                // swallowed by a lingerer that takes nothing from the
                // queue, stalling a different-group request.
                self.arrived.notify_all();
                Ok((
                    PlanTicket {
                        state: TicketState::Pending(ticket),
                    },
                    canonical.key,
                ))
            }
        }
    }

    /// Fulfills one ticket and keeps the completion counters exact:
    /// every fulfillment counts `completed`, errors count `failed`, and
    /// successes accumulate their shared payload into `bytes_served`.
    /// The `stamp` records *how* the ticket was answered, for receipts.
    fn fulfill(
        &self,
        ticket: &TicketInner,
        result: &Result<ServedPlan, ServiceError>,
        stamp: PathStamp,
    ) {
        ticket.fulfill(result.clone(), stamp);
        self.counters.completed.fetch_add(1, Ordering::Relaxed);
        match result {
            Ok(served) => {
                self.counters
                    .bytes_served
                    .fetch_add(served.bytes().len() as u64, Ordering::Relaxed);
            }
            Err(_) => {
                self.counters.failed.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Submit and wait: the blocking convenience for callers that want
    /// the plan inline.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PlanService::submit`], plus the request's own
    /// planning error.
    pub fn plan(
        &self,
        key: PlannerKey,
        request: &PlanRequest,
    ) -> Result<Arc<DeploymentPlan>, ServiceError> {
        self.submit(key, request)?.wait()
    }

    /// Like [`PlanService::plan`], but returns the plan paired with its
    /// canonical artifact serialization ([`ServedPlan`]): the
    /// zero-serialization handle — cache hits hand back the bytes
    /// rendered once at insert, never a fresh serialization.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PlanService::plan`].
    pub fn plan_served(
        &self,
        key: PlannerKey,
        request: &PlanRequest,
    ) -> Result<ServedPlan, ServiceError> {
        self.submit(key, request)?.wait_served()
    }

    /// Like [`PlanService::plan_served`], but pairs the answer with its
    /// audit [`Receipt`]: the request's full canonical identity, the
    /// serving path that answered it, the FNV-1a hash of the exact bytes
    /// served, and per-stage timing. Also records the request's
    /// end-to-end latency on the path's histogram lane
    /// ([`ServiceStats::paths`]). The receipt's `plan_hash` is a
    /// bit-identity pin: for a given key it must agree across paths,
    /// restarts and machines.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PlanService::plan_served`] (failed requests
    /// produce no receipt).
    pub fn plan_receipted(
        &self,
        key: PlannerKey,
        request: &PlanRequest,
    ) -> Result<(ServedPlan, Receipt), ServiceError> {
        let start = obs::monotonic_nanos();
        let (ticket, plan_key) = self.submit_keyed(key, request)?;
        let (result, stamp) = ticket.wait_stamped();
        let served = result?;
        let total_nanos = obs::monotonic_nanos().saturating_sub(start);
        self.paths.record(stamp.path, total_nanos);
        let receipt = Receipt {
            key: plan_key,
            path: stamp.path,
            solver: crate::registry::solver_tag(plan_key.solver),
            artifact_schema_version: crate::artifact::PLAN_ARTIFACT_SCHEMA_VERSION,
            plan_hash: served.bytes_hash(),
            solve_nanos: stamp.solve_nanos,
            total_nanos,
        };
        Ok((served, receipt))
    }

    /// A point-in-time counters snapshot.
    pub fn stats(&self) -> ServiceStats {
        let registry = self
            .registry
            .as_ref()
            .map(|r| r.stats())
            .unwrap_or_default();
        let (queue_depth, max_queue_depth) = {
            let queue = lock(&self.queue);
            (queue.items.len() as u64, queue.max_depth as u64)
        };
        let elapsed = {
            let timing = lock(&self.timing);
            timing.accumulated
                + timing
                    .current
                    .map(|started| started.elapsed())
                    .unwrap_or_default()
        };
        ServiceStats {
            submitted: self.counters.submitted.load(Ordering::Relaxed),
            completed: self.counters.completed.load(Ordering::Relaxed),
            rejected: self.counters.rejected.load(Ordering::Relaxed),
            failed: self.counters.failed.load(Ordering::Relaxed),
            batches: self.counters.batches.load(Ordering::Relaxed),
            batched_requests: self.counters.batched_requests.load(Ordering::Relaxed),
            max_batch: self.counters.max_batch.load(Ordering::Relaxed),
            inline_hits: self.counters.inline_hits.load(Ordering::Relaxed),
            bytes_served: self.counters.bytes_served.load(Ordering::Relaxed),
            enqueued: self.counters.enqueued.load(Ordering::Relaxed),
            queue_depth,
            max_queue_depth,
            elapsed_secs: elapsed.as_secs_f64(),
            registry_hits: registry.hits,
            registry_writes: registry.writes,
            quarantined: registry.quarantined,
            cache: self.cache.stats(),
            paths: self.paths.snapshot(),
        }
    }

    fn worker_loop(&self) {
        while let Some(batch) = self.next_batch() {
            self.solve(batch);
        }
    }

    /// Pops the next batch: the oldest queued request plus every queued
    /// request of the same group, bounded by `max_batch`; with a non-zero
    /// `batch_linger`, waits up to that long for same-group stragglers
    /// before solving. Returns `None` when the queue is drained and the
    /// worker should exit.
    fn next_batch(&self) -> Option<Vec<Pending>> {
        let mut queue = lock(&self.queue);
        let first = loop {
            if let Some(pending) = queue.items.pop_front() {
                break pending;
            }
            if queue.draining {
                return None;
            }
            queue = wait(&self.arrived, queue);
        };
        let group = first.group;
        let mut batch = vec![first];
        Self::extract_group(&mut queue.items, group, self.config.max_batch, &mut batch);
        if self.config.batch_linger > Duration::ZERO {
            let deadline = Instant::now() + self.config.batch_linger;
            while batch.len() < self.config.max_batch && !queue.draining {
                let Some(remaining) = deadline
                    .checked_duration_since(Instant::now())
                    .filter(|d| !d.is_zero())
                else {
                    break;
                };
                let (guard, timeout) = wait_timeout(&self.arrived, queue, remaining);
                queue = guard;
                Self::extract_group(&mut queue.items, group, self.config.max_batch, &mut batch);
                if timeout.timed_out() {
                    break;
                }
            }
        }
        Some(batch)
    }

    /// Moves queued requests matching `group` into `batch` (up to `cap`
    /// total), preserving the relative order of everything left behind.
    fn extract_group(
        items: &mut VecDeque<Pending>,
        group: GroupKey,
        cap: usize,
        batch: &mut Vec<Pending>,
    ) {
        let mut i = 0;
        while i < items.len() && batch.len() < cap {
            if items[i].group == group {
                match items.remove(i) {
                    Some(pending) => batch.push(pending),
                    // `i < items.len()` makes this unreachable; an empty
                    // removal simply ends the scan rather than panicking
                    // a worker (panic hygiene: no unwrap/expect here).
                    None => break,
                }
            } else {
                i += 1;
            }
        }
    }

    /// Solves one coalesced batch and publishes every result: the cache
    /// is completed first (releasing joined waiters), then all tickets
    /// are fulfilled.
    ///
    /// With a registry attached, each leader first consults the cold
    /// tier: disk hits are published without a solve (and without
    /// counting toward the batch counters — `batches` counts *solves*),
    /// and only the remainder pays for the coalesced solve, whose fresh
    /// plans are then written through to disk.
    fn solve(&self, batch: Vec<Pending>) {
        let planner = &self.planners[batch[0].planner].planner;
        let batch = match &self.registry {
            Some(registry) => {
                let mut remaining = Vec::with_capacity(batch.len());
                for pending in batch {
                    match registry.load(pending.key, planner) {
                        Some(served) => {
                            let waiters = self.cache.complete(pending.key, Some(served.clone()));
                            let outcome = Ok(served);
                            // The leader paid for the disk load; joiners
                            // merely shared its flight.
                            self.fulfill(
                                &pending.ticket,
                                &outcome,
                                PathStamp::instant(ServePath::RegistryHit),
                            );
                            for ticket in waiters {
                                self.fulfill(
                                    &ticket,
                                    &outcome,
                                    PathStamp::instant(ServePath::FlightJoin),
                                );
                            }
                        }
                        None => remaining.push(pending),
                    }
                }
                remaining
            }
            None => batch,
        };
        if batch.is_empty() {
            return;
        }
        self.counters.batches.fetch_add(1, Ordering::Relaxed);
        self.counters
            .batched_requests
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        self.counters
            .max_batch
            .fetch_max(batch.len() as u64, Ordering::Relaxed);
        let group = batch[0].group;
        let windows: Vec<f64> = batch.iter().map(|p| p.window_secs).collect();
        // Each worker gets its share of the machine for the swept path's
        // extraction striping; the workers themselves already provide
        // batch-level parallelism, so this avoids oversubscription.
        let sweep_threads = (std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            / self.effective_workers())
        .max(1);
        // A panicking solve must still release the batch's tickets (and
        // any joined waiters) before the panic unwinds the worker —
        // otherwise a submitter blocked in `PlanTicket::wait` inside the
        // serving closure would deadlock the scope's join.
        let solve_start = obs::monotonic_nanos();
        let results = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            solve_batch(
                planner,
                self.config.mode,
                group.solver,
                group.dp_resolution,
                &windows,
                sweep_threads,
            )
        }));
        let solve_nanos = obs::monotonic_nanos().saturating_sub(solve_start);
        // Leaders of a shared solve are stamped with the batch they rode
        // in (each paid the whole shared solve, so each carries its full
        // duration); a singleton batch is a plain solve.
        let leader_stamp = PathStamp {
            path: if batch.len() > 1 {
                ServePath::Coalesced {
                    batch: batch.len() as u32,
                }
            } else {
                ServePath::Solved
            },
            solve_nanos,
        };
        let results = match results {
            Ok(results) => results,
            Err(payload) => {
                let panicked = Err(ServiceError::WorkerPanicked);
                for pending in batch {
                    let waiters = self.cache.complete(pending.key, None);
                    self.fulfill(&pending.ticket, &panicked, leader_stamp);
                    for ticket in waiters {
                        self.fulfill(
                            &ticket,
                            &panicked,
                            PathStamp::instant(ServePath::FlightJoin),
                        );
                    }
                }
                std::panic::resume_unwind(payload);
            }
        };
        for (pending, result) in batch.into_iter().zip(results) {
            let outcome: Result<ServedPlan, ServiceError> = match result {
                Ok(plan) => {
                    // The one serialization this plan will ever get: the
                    // rendered JSON becomes the registry entry's embedded
                    // artifact *and* the cached response bytes, so disk,
                    // LRU and the wire all serve the same bytes.
                    let plan = Arc::new(plan);
                    let artifact_json = plan.to_artifact(planner).to_json();
                    if let Some(registry) = &self.registry {
                        // Write-through: a failed store is advisory (the
                        // plan is still served from memory);
                        // `registry_writes` counts successes only, so the
                        // cold-tier invariant
                        // `inserted == registry_hits + registry_writes`
                        // can lag by exactly the failed stores, never
                        // silently drift.
                        let _ = registry.store_json(pending.key, &artifact_json);
                    }
                    let bytes: Arc<[u8]> = artifact_json.into_bytes().into();
                    Ok(ServedPlan::new(plan, bytes))
                }
                Err(e) => Err(ServiceError::Plan(e)),
            };
            let waiters = self
                .cache
                .complete(pending.key, outcome.as_ref().ok().cloned());
            self.fulfill(&pending.ticket, &outcome, leader_stamp);
            for ticket in waiters {
                self.fulfill(&ticket, &outcome, PathStamp::instant(ServePath::FlightJoin));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dse::DseConfig;
    use crate::service::CoalesceMode;
    use tinynn::models::vww_sized;

    fn small_planner() -> Arc<Planner> {
        Arc::new(Planner::new(&vww_sized(32), &DseConfig::paper()).expect("planner builds"))
    }

    fn exact_config() -> ServiceConfig {
        ServiceConfig::default()
            .with_workers(2)
            .with_mode(CoalesceMode::Exact)
    }

    #[test]
    fn submit_outside_run_is_not_serving() {
        let mut service = PlanService::new(ServiceConfig::default()).unwrap();
        let key = service.register(small_planner());
        assert_eq!(
            service.submit(key, &PlanRequest::slack(0.3)).unwrap_err(),
            ServiceError::NotServing
        );
        assert_eq!(service.stats().rejected, 1);
        assert_eq!(service.stats().submitted, 0);
    }

    #[test]
    fn foreign_keys_and_invalid_requests_are_rejected_before_admission() {
        let mut service = PlanService::new(ServiceConfig::default()).unwrap();
        let key = service.register(small_planner());
        service.run(|svc| {
            assert_eq!(
                svc.submit(PlannerKey(7), &PlanRequest::slack(0.3))
                    .unwrap_err(),
                ServiceError::UnknownPlanner { key: 7 }
            );
            assert!(matches!(
                svc.submit(key, &PlanRequest::qos(f64::NAN)).unwrap_err(),
                ServiceError::Plan(DaeDvfsError::InvalidRequest { .. })
            ));
        });
        let stats = service.stats();
        assert_eq!(stats.rejected, 2);
        assert_eq!(stats.submitted, 0);
        assert_eq!(stats.cache.lookups(), 0);
    }

    #[test]
    fn queue_full_is_typed_backpressure_and_rolls_the_flight_back() {
        let mut service = PlanService::new(
            ServiceConfig::default()
                .with_queue_capacity(1)
                .with_mode(CoalesceMode::Exact),
        )
        .unwrap();
        let key = service.register(small_planner());
        // Mark the service as serving without spawning workers, so queued
        // leaders stay queued and the capacity bound is observable.
        lock(&service.queue).serving = true;
        let first = service.submit(key, &PlanRequest::slack(0.3)).unwrap();
        assert!(!first.ready());
        // A duplicate joins the in-flight leader: no queue slot needed.
        let joined = service.submit(key, &PlanRequest::slack(0.3)).unwrap();
        assert!(!joined.ready());
        // A distinct request needs a slot and the queue is full.
        assert_eq!(
            service.submit(key, &PlanRequest::slack(0.5)).unwrap_err(),
            ServiceError::QueueFull { capacity: 1 }
        );
        let stats = service.stats();
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.queue_depth, 1);
        // The aborted leader's lookup was rolled back: accounting stays
        // hits + misses == submitted.
        assert_eq!(stats.cache.lookups(), 2);
        // The rejected window can be admitted once capacity frees up; a
        // fresh leader is nominated (no stale flight left behind).
        lock(&service.queue).items.clear();
        let retried = service.submit(key, &PlanRequest::slack(0.5)).unwrap();
        assert!(!retried.ready());
        lock(&service.queue).serving = false;
    }

    #[test]
    fn duplicate_requests_compute_once_and_share_the_plan() {
        let mut service = PlanService::new(exact_config()).unwrap();
        let key = service.register(small_planner());
        let request = PlanRequest::slack(0.3);
        let plans = service.run(|svc| {
            let tickets: Vec<_> = (0..6)
                .map(|_| svc.submit(key, &request).expect("admitted"))
                .collect();
            tickets
                .into_iter()
                .map(|t| t.wait().expect("planned"))
                .collect::<Vec<_>>()
        });
        for plan in &plans {
            assert_eq!(&**plan, &*plans[0]);
        }
        let stats = service.stats();
        assert_eq!(stats.submitted, 6);
        assert_eq!(stats.completed, 6);
        assert_eq!(stats.cache.lookups(), 6);
        // Exactly one solve: everything else hit the cache or joined the
        // in-flight leader.
        assert_eq!(stats.cache.inserted, 1);
        assert_eq!(stats.cache.hits + stats.cache.misses, 6);
        assert_eq!(stats.failed, 0);
    }

    #[test]
    fn slack_and_equivalent_window_share_one_cache_entry() {
        let mut service = PlanService::new(exact_config()).unwrap();
        let planner = small_planner();
        let baseline = planner.baseline_latency().unwrap();
        let key = service.register(planner);
        let window = tinyengine::qos_window(baseline, 0.3);
        service.run(|svc| {
            let a = svc.plan(key, &PlanRequest::slack(0.3)).unwrap();
            let b = svc.plan(key, &PlanRequest::qos(window)).unwrap();
            assert_eq!(&*a, &*b);
        });
        let stats = service.stats();
        assert_eq!(stats.cache.inserted, 1);
        assert_eq!(stats.cache.hits, 1);
    }

    #[test]
    fn equal_fingerprint_planners_share_the_cache() {
        let mut service = PlanService::new(exact_config()).unwrap();
        let key_a = service.register(small_planner());
        let key_b = service.register(small_planner());
        service.run(|svc| {
            let a = svc.plan(key_a, &PlanRequest::slack(0.3)).unwrap();
            let b = svc.plan(key_b, &PlanRequest::slack(0.3)).unwrap();
            assert_eq!(&*a, &*b);
        });
        let stats = service.stats();
        assert_eq!(stats.cache.inserted, 1);
        assert_eq!(stats.cache.hits, 1);
    }

    #[test]
    fn quantized_windows_coalesce_onto_one_entry_and_stay_feasible() {
        let quantum = 1e-4;
        let mut service = PlanService::new(exact_config().with_qos_quantum_secs(quantum)).unwrap();
        let planner = small_planner();
        let baseline = planner.baseline_latency().unwrap();
        let key = service.register(planner);
        // Anchor mid-quantum so the jitter cannot straddle a boundary.
        let base =
            (tinyengine::qos_window(baseline, 0.4) / quantum).floor() * quantum + quantum / 2.0;
        let jittered: Vec<f64> = (0..4).map(|i| base + i as f64 * 1e-6).collect();
        let plans = service.run(|svc| {
            jittered
                .iter()
                .map(|&w| svc.plan(key, &PlanRequest::qos(w)).unwrap())
                .collect::<Vec<_>>()
        });
        for (plan, &requested) in plans.iter().zip(&jittered) {
            // The canonical window never exceeds the requested one, so
            // the shared plan is feasible for every jittered request.
            assert!(plan.qos_secs <= requested);
            assert!(plan.predicted_latency_secs <= requested);
            assert_eq!(&**plan, &*plans[0]);
        }
        assert_eq!(service.stats().cache.inserted, 1);
    }

    #[test]
    fn infeasible_requests_fail_typed_and_are_not_cached() {
        let mut service = PlanService::new(exact_config()).unwrap();
        let key = service.register(small_planner());
        service.run(|svc| {
            for _ in 0..2 {
                let err = svc.plan(key, &PlanRequest::qos(1e-9)).unwrap_err();
                assert!(matches!(err, ServiceError::Plan(DaeDvfsError::Qos(_))));
            }
        });
        let stats = service.stats();
        assert_eq!(stats.failed, 2);
        assert_eq!(stats.completed, 2);
        // Failures are never cached: both requests missed.
        assert_eq!(stats.cache.inserted, 0);
        assert_eq!(stats.cache.hits, 0);
    }

    #[test]
    fn swept_mode_coalesces_a_burst_into_few_batches() {
        let mut service = PlanService::new(
            ServiceConfig::default()
                .with_workers(1)
                .with_mode(CoalesceMode::Swept)
                .with_batch_linger(Duration::from_millis(20)),
        )
        .unwrap();
        let planner = small_planner();
        let baseline = planner.baseline_latency().unwrap();
        let key = service.register(planner.clone());
        let windows: Vec<f64> = (0..6)
            .map(|i| tinyengine::qos_window(baseline, 0.15 + 0.1 * i as f64))
            .collect();
        let plans = service.run(|svc| {
            let tickets: Vec<_> = windows
                .iter()
                .map(|&w| svc.submit(key, &PlanRequest::qos(w)).expect("admitted"))
                .collect();
            tickets
                .into_iter()
                .map(|t| t.wait().expect("planned"))
                .collect::<Vec<_>>()
        });
        // Batch-invariance: each coalesced answer equals its singleton
        // sweep, bit for bit.
        for (plan, &w) in plans.iter().zip(&windows) {
            let solo = planner.sweep([w]).unwrap().remove(0);
            assert_eq!(&**plan, &solo);
        }
        let stats = service.stats();
        assert!(stats.batches < 6, "burst was not coalesced: {stats:?}");
        assert!(stats.max_batch >= 2);
        assert_eq!(stats.batched_requests, 6);
    }

    #[test]
    fn run_drains_every_admitted_ticket() {
        let mut service = PlanService::new(exact_config()).unwrap();
        let key = service.register(small_planner());
        let tickets = service.run(|svc| {
            (0..4)
                .map(|i| {
                    svc.submit(key, &PlanRequest::slack(0.2 + 0.1 * i as f64))
                        .expect("admitted")
                })
                .collect::<Vec<_>>()
        });
        // `run` returned: the drain has fulfilled every ticket already.
        for ticket in &tickets {
            assert!(ticket.ready());
        }
        for ticket in tickets {
            ticket.wait().expect("planned during drain");
        }
        assert_eq!(service.stats().completed, 4);
        // And submissions after the scope are rejected again.
        assert_eq!(
            service.submit(key, &PlanRequest::slack(0.3)).unwrap_err(),
            ServiceError::NotServing
        );
    }

    #[test]
    fn panicking_serving_closure_drains_and_leaves_the_service_reusable() {
        let mut service = PlanService::new(exact_config()).unwrap();
        let key = service.register(small_planner());
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            service.run(|svc| {
                svc.plan(key, &PlanRequest::slack(0.3)).unwrap();
                panic!("serving closure exploded");
            })
        }));
        // The panic propagated (no deadlock on the worker join) and the
        // service stopped cleanly.
        assert!(unwound.is_err());
        assert_eq!(
            service.submit(key, &PlanRequest::slack(0.3)).unwrap_err(),
            ServiceError::NotServing
        );
        // A later run serves again (and hits the still-warm cache).
        let plan = service
            .run(|svc| svc.plan(key, &PlanRequest::slack(0.3)))
            .unwrap();
        assert!(plan.predicted_latency_secs <= plan.qos_secs);
        assert_eq!(service.stats().cache.hits, 1);
    }

    #[test]
    fn hit_fast_path_counts_like_the_locked_path() {
        let mut service = PlanService::new(exact_config()).unwrap();
        let key = service.register(small_planner());
        let served = service.run(|svc| {
            svc.plan(key, &PlanRequest::slack(0.3)).unwrap();
            for _ in 0..4 {
                svc.plan(key, &PlanRequest::slack(0.3)).unwrap();
            }
            svc.plan_served(key, &PlanRequest::slack(0.3)).unwrap()
        });
        let stats = service.stats();
        assert_eq!(stats.submitted, 6);
        assert_eq!(stats.completed, 6);
        assert_eq!(stats.cache.hits, 5);
        assert_eq!(stats.cache.misses, 1);
        // All five hits were answered inline: no ticket, no queue slot.
        assert_eq!(stats.inline_hits, 5);
        assert!(stats.inline_hits <= stats.cache.hits);
        assert_eq!(stats.enqueued, 1);
        assert!((stats.inline_hit_rate() - 5.0 / 6.0).abs() < 1e-12);
        // Every fulfillment accumulated the same shared payload.
        assert_eq!(stats.bytes_served, 6 * served.bytes().len() as u64);
    }

    #[test]
    fn locked_path_hit_serves_the_same_bytes_without_an_inline_count() {
        let mut service = PlanService::new(exact_config()).unwrap();
        let planner = small_planner();
        let key = service.register(planner.clone());
        // Warm the cache with one solve.
        let warm = service
            .run(|svc| svc.plan_served(key, &PlanRequest::slack(0.3)))
            .unwrap();
        // Mark the queue as serving without raising the lock-free hints:
        // the fast path is skipped and the hit happens under the queue
        // lock (the startup-race path).
        {
            let mut queue = lock(&service.queue);
            queue.serving = true;
            queue.draining = false;
        }
        let served = service
            .submit(key, &PlanRequest::slack(0.3))
            .unwrap()
            .wait_served()
            .unwrap();
        lock(&service.queue).serving = false;
        assert_eq!(served.bytes(), warm.bytes());
        // Byte-identical to a fresh serialization of the same plan.
        assert_eq!(
            &**served.bytes(),
            served.plan().to_artifact(&planner).to_json().as_bytes()
        );
        let stats = service.stats();
        assert_eq!(stats.cache.hits, 1);
        assert_eq!(stats.inline_hits, 0, "locked-path hits are not inline");
        assert_eq!(stats.completed, 2);
    }

    #[test]
    fn stats_snapshot_reports_throughput_and_batches() {
        let stats = ServiceStats {
            submitted: 10,
            completed: 10,
            rejected: 1,
            failed: 0,
            batches: 2,
            batched_requests: 6,
            max_batch: 4,
            inline_hits: 7,
            bytes_served: 0,
            enqueued: 3,
            queue_depth: 0,
            max_queue_depth: 5,
            elapsed_secs: 2.0,
            registry_hits: 0,
            registry_writes: 0,
            quarantined: 0,
            cache: CacheStats::default(),
            paths: obs::PathStats::empty(),
        };
        assert!((stats.throughput_rps() - 5.0).abs() < 1e-12);
        assert!((stats.mean_batch() - 3.0).abs() < 1e-12);
        assert!((stats.inline_hit_rate() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn receipts_stamp_the_serving_path_and_pin_the_served_bytes() {
        let mut service = PlanService::new(exact_config()).unwrap();
        let key = service.register(small_planner());
        let (cold, warm) = service.run(|svc| {
            let cold = svc.plan_receipted(key, &PlanRequest::slack(0.3)).unwrap();
            let warm = svc.plan_receipted(key, &PlanRequest::slack(0.3)).unwrap();
            (cold, warm)
        });
        let (cold_served, cold_receipt) = cold;
        let (warm_served, warm_receipt) = warm;
        assert_eq!(cold_receipt.path, ServePath::Solved);
        assert_eq!(warm_receipt.path, ServePath::InlineHit);
        // Same key, same bytes, same hash — across different paths.
        assert_eq!(cold_receipt.key, warm_receipt.key);
        assert_eq!(cold_receipt.plan_hash, warm_receipt.plan_hash);
        assert_eq!(cold_served.bytes(), warm_served.bytes());
        assert_eq!(cold_receipt.plan_hash, obs::plan_hash(cold_served.bytes()));
        assert_eq!(cold_receipt.solver, "reserve-grid");
        assert_eq!(
            cold_receipt.artifact_schema_version,
            crate::artifact::PLAN_ARTIFACT_SCHEMA_VERSION
        );
        // The solve stage was timed for the leader, not for the hit.
        assert_eq!(warm_receipt.solve_nanos, 0);
        // Both requests landed on their path's histogram lane.
        let stats = service.stats();
        assert_eq!(stats.paths.histograms[ServePath::Solved.index()].count(), 1);
        assert_eq!(
            stats.paths.histograms[ServePath::InlineHit.index()].count(),
            1
        );
        assert_eq!(stats.paths.total_count(), 2);
    }
}
