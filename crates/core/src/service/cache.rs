//! The fingerprint-keyed plan cache: sharded, capacity-bounded LRU with
//! single-flight miss deduplication.
//!
//! A plan is a pure function of `(lowered model, board configuration,
//! solver, QoS window, DP resolution)` — everything else the planner
//! holds is derived from those. [`PlanKey`] captures exactly that tuple,
//! reusing the FNV-1a fingerprints plan artifacts already use for
//! cross-process invalidation ([`crate::model_fingerprint`],
//! [`crate::config_fingerprint`]), so two [`crate::Planner`]s built from
//! the same model and board description share cache entries even though
//! they are distinct objects (and distinct
//! [`crate::service::PlannerKey`]s).
//!
//! The cache is split into shards, each an independently locked
//! `HashMap` + lazy-stamped LRU queue, so concurrent lookups on
//! different keys rarely contend. Every shard also carries the
//! **single-flight table**: the first miss for a key becomes the
//! *leader* ([`Lookup::Lead`]) and computes the plan; concurrent misses
//! for the same key *join* the in-flight entry ([`Lookup::Joined`]) and
//! are fulfilled by the leader when it [`PlanCache::complete`]s — N
//! identical cold requests cost one solve, and only the leader occupies
//! a submission-queue slot.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use crate::sync::{lock, rank, RankedGuard, RankedMutex};

use crate::pipeline::DeploymentPlan;
use crate::request::Solver;

/// The cache identity of one canonical plan request.
///
/// Two requests with equal keys receive the same [`DeploymentPlan`] (the
/// solve is deterministic in these five fields). The window is stored as
/// the bit pattern of the *canonical* window — slack already resolved
/// against the baseline and snapped to the service's QoS quantum — so
/// `PlanRequest::slack(0.3)` and the equivalent absolute window hit the
/// same entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub struct PlanKey {
    /// Fingerprint of the lowered model ([`crate::model_fingerprint`]).
    pub model_fingerprint: u64,
    /// Fingerprint of the board configuration
    /// ([`crate::config_fingerprint`]).
    pub config_fingerprint: u64,
    /// The solver answering the request.
    pub solver: Solver,
    /// Bit pattern of the canonical QoS window in seconds.
    pub window_bits: u64,
    /// DP time-axis resolution the request solves at.
    pub dp_resolution: usize,
}

impl PlanKey {
    /// Stable FNV-1a mix of the key's fields — the same primitive the
    /// artifact fingerprints use ([`crate::artifact::fnv1a`]); used for
    /// shard selection (the map inside a shard uses the standard
    /// hasher) and as the registry's on-disk content address
    /// (`crate::registry`).
    pub(crate) fn fnv(&self) -> u64 {
        let solver_tag = match self.solver {
            Solver::ReserveGrid => 0u64,
            Solver::SequenceDp => 1u64,
            // `Solver` is non-exhaustive for future growth; new solvers
            // must extend this tag table.
            #[allow(unreachable_patterns)]
            _ => u64::MAX,
        };
        let mut bytes = [0u8; 40];
        for (slot, word) in [
            self.model_fingerprint,
            self.config_fingerprint,
            solver_tag,
            self.window_bits,
            self.dp_resolution as u64,
        ]
        .into_iter()
        .enumerate()
        {
            bytes[slot * 8..(slot + 1) * 8].copy_from_slice(&word.to_le_bytes());
        }
        crate::artifact::fnv1a(&bytes)
    }
}

/// A completed plan paired with its canonical serialized artifact — the
/// exact bytes [`crate::PlanArtifact::to_json`] produced when the plan
/// entered the cache. The serving hot path answers with the shared
/// bytes, so a cache hit never re-serializes; cloning is two `Arc`
/// reference bumps.
#[derive(Debug, Clone)]
pub struct ServedPlan {
    plan: Arc<DeploymentPlan>,
    bytes: Arc<[u8]>,
    /// FNV-1a of `bytes`, computed once here so receipts can pin the
    /// served payload without re-hashing tens of kilobytes per request.
    bytes_hash: u64,
}

impl ServedPlan {
    /// Pairs a plan with its canonical artifact serialization. The bytes
    /// must be exactly what `plan.to_artifact(..).to_json()` renders —
    /// the byte-identity proptests pin this pairing on every answer
    /// path. Hashes the bytes once, at construction: every entry is
    /// built exactly once (solve completion or registry load) and then
    /// served arbitrarily many times.
    pub(crate) fn new(plan: Arc<DeploymentPlan>, bytes: Arc<[u8]>) -> Self {
        let bytes_hash = crate::artifact::fnv1a(&bytes);
        ServedPlan {
            plan,
            bytes,
            bytes_hash,
        }
    }

    /// The shared plan.
    pub fn plan(&self) -> &Arc<DeploymentPlan> {
        &self.plan
    }

    /// The canonical artifact JSON (the bytes
    /// [`crate::PlanArtifact::to_json`] rendered once, at insert).
    pub fn bytes(&self) -> &Arc<[u8]> {
        &self.bytes
    }

    /// FNV-1a of [`ServedPlan::bytes`] ([`crate::obs::plan_hash`]),
    /// precomputed at construction — the receipt's `plan_hash`, free on
    /// the serving hot path.
    pub fn bytes_hash(&self) -> u64 {
        self.bytes_hash
    }

    /// Consumes the pair, keeping the plan.
    pub fn into_plan(self) -> Arc<DeploymentPlan> {
        self.plan
    }

    /// Consumes the pair, keeping the serialized bytes.
    pub fn into_bytes(self) -> Arc<[u8]> {
        self.bytes
    }
}

/// Outcome of [`PlanCache::lookup_or_join`].
#[derive(Debug)]
pub(crate) enum Lookup<W> {
    /// A completed plan was resident; the waiter is handed back for the
    /// caller to fulfill immediately.
    Hit(ServedPlan, W),
    /// Another caller is already computing this key; the waiter was
    /// attached to the in-flight entry and will be fulfilled when the
    /// leader completes.
    Joined,
    /// The caller is now this key's leader: it must compute the plan and
    /// call [`PlanCache::complete`] (or [`PlanCache::abort`] if the
    /// request never starts).
    Lead(W),
}

/// Point-in-time cache counters, aggregated over every shard.
///
/// `hits + misses` equals the number of lookups; `joined` (a subset of
/// `misses`) counts lookups deduplicated onto an in-flight leader.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
#[non_exhaustive]
pub struct CacheStats {
    /// Lookups answered from a resident completed plan.
    pub hits: u64,
    /// Lookups that found no completed plan (leaders + joiners).
    pub misses: u64,
    /// Misses deduplicated onto an already-in-flight computation.
    pub joined: u64,
    /// Completed plans inserted.
    pub inserted: u64,
    /// Resident plans evicted by the LRU capacity bound.
    pub evicted: u64,
    /// Completed plans currently resident.
    pub entries: u64,
}

impl CacheStats {
    /// Total lookups observed.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups answered from a resident plan (0 when no
    /// lookups happened yet).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.lookups();
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }
}

#[derive(Debug)]
struct Entry {
    served: ServedPlan,
    /// Stamp of this entry's most recent touch; recency-queue records
    /// with older stamps are stale and skipped lazily.
    stamp: u64,
}

#[derive(Debug)]
struct Shard<W> {
    map: HashMap<PlanKey, Entry>,
    /// Lazy LRU order: `(key, stamp)` pushed on every touch; a record is
    /// live only while its stamp matches the entry's current stamp.
    recency: VecDeque<(PlanKey, u64)>,
    tick: u64,
    /// Single-flight table: key → waiters attached to the in-flight
    /// leader (the leader itself is not in the list).
    flights: HashMap<PlanKey, Vec<W>>,
    hits: u64,
    misses: u64,
    joined: u64,
    inserted: u64,
    evicted: u64,
}

impl<W> Shard<W> {
    fn new() -> Self {
        Shard {
            map: HashMap::new(),
            recency: VecDeque::new(),
            tick: 0,
            flights: HashMap::new(),
            hits: 0,
            misses: 0,
            joined: 0,
            inserted: 0,
            evicted: 0,
        }
    }

    /// Records a touch of `key` and compacts the recency queue when the
    /// lazy stamps have let it grow well past the live entry count.
    fn touch(&mut self, key: PlanKey, capacity: usize) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(entry) = self.map.get_mut(&key) {
            entry.stamp = tick;
        }
        self.recency.push_back((key, tick));
        if self.recency.len() > capacity.max(4) * 8 {
            let map = &self.map;
            self.recency
                .retain(|(k, s)| map.get(k).is_some_and(|e| e.stamp == *s));
        }
    }

    /// Evicts the least-recently-used live entry (skipping stale lazy
    /// records).
    fn evict_lru(&mut self) {
        while let Some((key, stamp)) = self.recency.pop_front() {
            if self.map.get(&key).is_some_and(|e| e.stamp == stamp) {
                self.map.remove(&key);
                self.evicted += 1;
                return;
            }
        }
    }
}

/// The sharded plan cache. `W` is the waiter token attached to in-flight
/// entries (the service uses its ticket handle); the cache never
/// inspects it.
#[derive(Debug)]
pub(crate) struct PlanCache<W> {
    /// Shard locks carry [`rank::CACHE_SHARD`]: above the submission
    /// queue (taken while holding it on the submit path), below tickets.
    shards: Vec<RankedMutex<Shard<W>>>,
    /// Completed-entry capacity per shard (the configured total split
    /// evenly, floored at one).
    shard_capacity: usize,
}

impl<W> PlanCache<W> {
    /// A cache holding at most ~`capacity` completed plans across
    /// `shards` independently locked shards.
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        PlanCache {
            shard_capacity: capacity.div_ceil(shards).max(1),
            shards: (0..shards)
                .map(|_| RankedMutex::new(rank::CACHE_SHARD, Shard::new()))
                .collect(),
        }
    }

    fn shard(&self, key: &PlanKey) -> RankedGuard<'_, Shard<W>> {
        let index = (key.fnv() % self.shards.len() as u64) as usize;
        lock(&self.shards[index])
    }

    /// Looks `key` up without any single-flight side effects: returns the
    /// resident plan-plus-bytes pair (counting a hit and touching the
    /// LRU) or `None` — in which case **nothing** was counted, so a
    /// follow-up [`PlanCache::lookup_or_join`] still accounts the
    /// request exactly once.
    pub fn get(&self, key: PlanKey) -> Option<ServedPlan> {
        let mut shard = self.shard(&key);
        let served = shard.map.get(&key).map(|e| e.served.clone())?;
        shard.hits += 1;
        shard.touch(key, self.shard_capacity);
        Some(served)
    }

    /// Looks `key` up; on a miss, either joins the in-flight leader or
    /// nominates the caller as leader (see [`Lookup`]).
    pub fn lookup_or_join(&self, key: PlanKey, waiter: W) -> Lookup<W> {
        let mut shard = self.shard(&key);
        if let Some(served) = shard.map.get(&key).map(|e| e.served.clone()) {
            shard.hits += 1;
            shard.touch(key, self.shard_capacity);
            return Lookup::Hit(served, waiter);
        }
        shard.misses += 1;
        if let Some(waiters) = shard.flights.get_mut(&key) {
            waiters.push(waiter);
            shard.joined += 1;
            return Lookup::Joined;
        }
        shard.flights.insert(key, Vec::new());
        Lookup::Lead(waiter)
    }

    /// Completes `key`'s in-flight computation: caches the plan and its
    /// canonical serialization (when `Some`, evicting LRU entries past
    /// capacity) and returns every waiter that joined, for the leader to
    /// fulfill. On `None` (the solve failed) nothing is cached — the
    /// next request for the key leads a fresh attempt.
    pub fn complete(&self, key: PlanKey, served: Option<ServedPlan>) -> Vec<W> {
        let mut shard = self.shard(&key);
        let waiters = shard.flights.remove(&key).unwrap_or_default();
        if let Some(served) = served {
            if shard.map.len() >= self.shard_capacity && !shard.map.contains_key(&key) {
                shard.evict_lru();
            }
            shard.map.insert(key, Entry { served, stamp: 0 });
            shard.inserted += 1;
            shard.touch(key, self.shard_capacity);
        }
        waiters
    }

    /// Rolls back a [`Lookup::Lead`] whose request was never admitted
    /// (e.g. the submission queue was full): removes the flight, undoes
    /// the lead's miss count, and returns any waiters that managed to
    /// join, for the caller to fail.
    pub fn abort(&self, key: PlanKey) -> Vec<W> {
        let mut shard = self.shard(&key);
        let waiters = shard.flights.remove(&key).unwrap_or_default();
        shard.misses = shard.misses.saturating_sub(1);
        waiters
    }

    /// Aggregated counters across every shard.
    pub fn stats(&self) -> CacheStats {
        let mut stats = CacheStats::default();
        for shard in &self.shards {
            let shard = lock(shard);
            stats.hits += shard.hits;
            stats.misses += shard.misses;
            stats.joined += shard.joined;
            stats.inserted += shard.inserted;
            stats.evicted += shard.evicted;
            stats.entries += shard.map.len() as u64;
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm32_power::Joules;

    fn key(window_bits: u64) -> PlanKey {
        PlanKey {
            model_fingerprint: 0x1111,
            config_fingerprint: 0x2222,
            solver: Solver::ReserveGrid,
            window_bits,
            dp_resolution: 2000,
        }
    }

    fn plan(qos: f64) -> ServedPlan {
        ServedPlan::new(
            Arc::new(DeploymentPlan {
                model: "m".into(),
                qos_secs: qos,
                decisions: Vec::new(),
                predicted_latency_secs: qos * 0.9,
                predicted_energy: Joules::new(1.0),
            }),
            Arc::from(
                format!("{{\"qos\": {qos}}}")
                    .into_bytes()
                    .into_boxed_slice(),
            ),
        )
    }

    /// A miss that leads, completes, and is then hit.
    #[test]
    fn miss_complete_hit_roundtrip() {
        let cache: PlanCache<u32> = PlanCache::new(8, 2);
        match cache.lookup_or_join(key(1), 7) {
            Lookup::Lead(w) => assert_eq!(w, 7),
            other => panic!("expected Lead, got {other:?}"),
        }
        assert!(cache.complete(key(1), Some(plan(0.5))).is_empty());
        match cache.lookup_or_join(key(1), 8) {
            Lookup::Hit(served, w) => {
                assert_eq!(served.plan().qos_secs, 0.5);
                // The hit hands back the bytes the insert provided,
                // byte-for-byte (shared, never re-rendered).
                assert_eq!(&**served.bytes(), b"{\"qos\": 0.5}");
                assert_eq!(w, 8);
            }
            other => panic!("expected Hit, got {other:?}"),
        }
        // `get` (the lock-free fast path's lookup) answers the same pair.
        let got = cache.get(key(1)).expect("resident");
        assert_eq!(&**got.bytes(), b"{\"qos\": 0.5}");
        // The precomputed hash is the FNV-1a of exactly those bytes —
        // what receipts report without re-hashing per request.
        assert_eq!(got.bytes_hash(), crate::artifact::fnv1a(got.bytes()));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (2, 1, 1));
        assert_eq!(stats.lookups(), 3);
        assert!((stats.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn concurrent_misses_join_the_leader() {
        let cache: PlanCache<u32> = PlanCache::new(8, 1);
        assert!(matches!(cache.lookup_or_join(key(1), 1), Lookup::Lead(1)));
        assert!(matches!(cache.lookup_or_join(key(1), 2), Lookup::Joined));
        assert!(matches!(cache.lookup_or_join(key(1), 3), Lookup::Joined));
        let waiters = cache.complete(key(1), Some(plan(0.5)));
        assert_eq!(waiters, vec![2, 3]);
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.joined), (3, 2));
        // The plan is now resident for later lookups.
        assert!(matches!(cache.lookup_or_join(key(1), 4), Lookup::Hit(..)));
    }

    #[test]
    fn failed_completion_caches_nothing() {
        let cache: PlanCache<u32> = PlanCache::new(8, 1);
        assert!(matches!(cache.lookup_or_join(key(1), 1), Lookup::Lead(_)));
        assert!(matches!(cache.lookup_or_join(key(1), 2), Lookup::Joined));
        assert_eq!(cache.complete(key(1), None), vec![2]);
        // The next request leads a fresh attempt.
        assert!(matches!(cache.lookup_or_join(key(1), 3), Lookup::Lead(_)));
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let cache: PlanCache<u32> = PlanCache::new(2, 1);
        for bits in [1, 2] {
            assert!(matches!(
                cache.lookup_or_join(key(bits), 0),
                Lookup::Lead(_)
            ));
            cache.complete(key(bits), Some(plan(bits as f64)));
        }
        // Touch key 1 so key 2 is the LRU victim.
        assert!(matches!(cache.lookup_or_join(key(1), 0), Lookup::Hit(..)));
        assert!(matches!(cache.lookup_or_join(key(3), 0), Lookup::Lead(_)));
        cache.complete(key(3), Some(plan(3.0)));
        assert!(matches!(cache.lookup_or_join(key(1), 0), Lookup::Hit(..)));
        assert!(matches!(cache.lookup_or_join(key(3), 0), Lookup::Hit(..)));
        assert!(matches!(cache.lookup_or_join(key(2), 0), Lookup::Lead(_)));
        let stats = cache.stats();
        assert_eq!(stats.evicted, 1);
        assert_eq!(stats.entries, 2);
        cache.abort(key(2));
    }

    #[test]
    fn abort_rolls_back_a_lead() {
        let cache: PlanCache<u32> = PlanCache::new(8, 1);
        assert!(matches!(cache.lookup_or_join(key(1), 1), Lookup::Lead(_)));
        assert!(cache.abort(key(1)).is_empty());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (0, 0));
        // A later request leads again.
        assert!(matches!(cache.lookup_or_join(key(1), 2), Lookup::Lead(_)));
    }

    #[test]
    fn recency_queue_stays_bounded_under_repeated_hits() {
        let cache: PlanCache<u32> = PlanCache::new(4, 1);
        assert!(matches!(cache.lookup_or_join(key(1), 0), Lookup::Lead(_)));
        cache.complete(key(1), Some(plan(1.0)));
        for _ in 0..10_000 {
            assert!(matches!(cache.lookup_or_join(key(1), 0), Lookup::Hit(..)));
        }
        let shard = lock(&cache.shards[0]);
        assert!(
            shard.recency.len() <= 4 * 8 + 1,
            "recency queue grew unbounded: {}",
            shard.recency.len()
        );
    }

    #[test]
    fn distinct_solvers_and_resolutions_do_not_collide() {
        let cache: PlanCache<u32> = PlanCache::new(8, 4);
        let a = key(1);
        let mut b = key(1);
        b.solver = Solver::SequenceDp;
        let mut c = key(1);
        c.dp_resolution = 500;
        for k in [a, b, c] {
            assert!(matches!(cache.lookup_or_join(k, 0), Lookup::Lead(_)));
            cache.complete(k, Some(plan(1.0)));
        }
        assert_eq!(cache.stats().entries, 3);
    }
}
