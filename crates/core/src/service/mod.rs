//! The concurrent plan-serving subsystem: a fingerprint-keyed plan cache
//! plus request coalescing over shared-grid sweeps, behind a worker-pool
//! front end.
//!
//! The planning stack below this module is batch-friendly but
//! request-oblivious: a [`crate::Planner`] answers one
//! [`crate::PlanRequest`] at a time, and [`crate::Planner::sweep`]
//! answers many windows from one DP table — but something still has to
//! turn a *stream* of independent requests (many tenants, mixed models
//! and targets, skewed QoS distributions) into cache hits and coalesced
//! batch solves instead of N cold end-to-end plans. That is
//! [`PlanService`]:
//!
//! 1. **Plan cache** (`cache`): sharded, capacity-bounded LRU keyed by
//!    `(model_fingerprint, config_fingerprint, solver, canonical window,
//!    dp_resolution)` — the artifact-module FNV fingerprints, so two
//!    planners built from the same model/board share entries. Misses are
//!    **single-flight**: concurrent identical requests elect one leader;
//!    everyone else joins its in-flight entry and shares the one solve.
//! 2. **Request coalescer** (`coalesce`): queued leaders are grouped by
//!    `(model, config, solver, resolution)` and each group is answered
//!    with **one** shared-grid DP ([`crate::Planner::sweep`]'s engine)
//!    instead of per-request `plan()` calls, inside a bounded batching
//!    window (`max_batch` requests, optional `batch_linger` wait).
//!    Coalesced answers are *batch-invariant*: bit-identical to a
//!    singleton sweep of the same window, no matter what else was in the
//!    batch. [`CoalesceMode::Exact`] instead answers each distinct
//!    request via [`crate::Planner::plan`], bit-identical to a serial
//!    call.
//! 3. **Front end** (`front`): a worker pool on `std::thread::scope`
//!    ([`PlanService::run`]), a bounded submission queue with typed
//!    backpressure ([`crate::ServiceError::QueueFull`]), graceful drain
//!    (every admitted ticket is answered before `run` returns), and a
//!    [`ServiceStats`] snapshot (throughput, hit rate, batch sizes,
//!    queue depth).
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use dae_dvfs::{PlanRequest, Planner, PlanService, ServiceConfig};
//! use tinynn::models::vww_sized;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let planner = Arc::new(Planner::new(&vww_sized(32), &Default::default())?);
//! let mut service = PlanService::new(ServiceConfig::default().with_workers(2))?;
//! let key = service.register(planner);
//! let (hot, cold) = service.run(|svc| {
//!     let hot = svc.plan(key, &PlanRequest::slack(0.3))?;
//!     // Identical request: answered from the cache, same shared plan.
//!     let again = svc.plan(key, &PlanRequest::slack(0.3))?;
//!     assert!(Arc::ptr_eq(&hot, &again));
//!     let cold = svc.plan(key, &PlanRequest::slack(0.5))?;
//!     Ok::<_, dae_dvfs::ServiceError>((hot, cold))
//! })?;
//! assert!(hot.predicted_latency_secs <= hot.qos_secs);
//! assert!(cold.predicted_latency_secs <= cold.qos_secs);
//! assert_eq!(service.stats().cache.hits, 1);
//! # Ok(())
//! # }
//! ```

use std::time::Duration;

use crate::error::DaeDvfsError;
use crate::request::validate_positive_time;

mod cache;
mod coalesce;
mod front;

pub use cache::{CacheStats, PlanKey, ServedPlan};
pub use coalesce::CoalesceMode;
pub use front::{PlanService, PlanTicket, PlannerKey, ServiceStats};

/// Tuning knobs of a [`PlanService`]; start from `Default` and adjust
/// builder-style.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct ServiceConfig {
    /// Worker threads; `0` (the default) uses the machine's available
    /// parallelism.
    pub workers: usize,
    /// Bound of the submission queue (distinct in-flight leaders, not
    /// raw request volume); submissions past it are rejected with
    /// [`crate::ServiceError::QueueFull`].
    pub queue_capacity: usize,
    /// Completed plans retained across all cache shards (LRU past this).
    pub cache_capacity: usize,
    /// Independently locked cache shards.
    pub cache_shards: usize,
    /// Most leaders one coalesced batch may answer.
    pub max_batch: usize,
    /// How long a worker holding a non-full batch waits for same-group
    /// stragglers before solving (zero: solve immediately).
    pub batch_linger: Duration,
    /// QoS windows are snapped *down* onto this grid before keying the
    /// cache, so jittered near-identical deadlines share one entry; the
    /// snapped window never exceeds the requested one, so shared plans
    /// stay feasible for every caller. Zero (the default) keys exact
    /// windows.
    pub qos_quantum_secs: f64,
    /// How batches are solved (see [`CoalesceMode`]).
    pub mode: CoalesceMode,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 0,
            queue_capacity: 1024,
            cache_capacity: 4096,
            cache_shards: 16,
            max_batch: 64,
            batch_linger: Duration::ZERO,
            qos_quantum_secs: 0.0,
            mode: CoalesceMode::default(),
        }
    }
}

impl ServiceConfig {
    /// Replaces the worker-thread count (builder style; `0` = available
    /// parallelism).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Replaces the submission-queue bound (builder style).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Replaces the plan-cache capacity (builder style).
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Replaces the cache shard count (builder style).
    pub fn with_cache_shards(mut self, shards: usize) -> Self {
        self.cache_shards = shards;
        self
    }

    /// Replaces the batch-size bound (builder style).
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch;
        self
    }

    /// Replaces the batching linger window (builder style).
    pub fn with_batch_linger(mut self, linger: Duration) -> Self {
        self.batch_linger = linger;
        self
    }

    /// Replaces the cache-key QoS quantum (builder style; `0` disables
    /// quantization).
    pub fn with_qos_quantum_secs(mut self, quantum_secs: f64) -> Self {
        self.qos_quantum_secs = quantum_secs;
        self
    }

    /// Replaces the coalescing mode (builder style).
    pub fn with_mode(mut self, mode: CoalesceMode) -> Self {
        self.mode = mode;
        self
    }

    /// Checks every knob for degenerate values.
    ///
    /// # Errors
    ///
    /// [`DaeDvfsError::InvalidRequest`] naming the offending field for a
    /// zero queue/cache/shard/batch bound, or a non-finite / negative
    /// QoS quantum.
    pub fn validate(&self) -> Result<(), DaeDvfsError> {
        for (field, value) in [
            ("queue_capacity", self.queue_capacity),
            ("cache_capacity", self.cache_capacity),
            ("cache_shards", self.cache_shards),
            ("max_batch", self.max_batch),
        ] {
            if value == 0 {
                return Err(DaeDvfsError::InvalidRequest {
                    field,
                    reason: "must be non-zero".into(),
                });
            }
        }
        if self.qos_quantum_secs != 0.0 {
            validate_positive_time("qos_quantum_secs", self.qos_quantum_secs)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        assert!(ServiceConfig::default().validate().is_ok());
    }

    #[test]
    fn zero_bounds_are_rejected_by_field() {
        let cases: [(ServiceConfig, &str); 4] = [
            (
                ServiceConfig::default().with_queue_capacity(0),
                "queue_capacity",
            ),
            (
                ServiceConfig::default().with_cache_capacity(0),
                "cache_capacity",
            ),
            (
                ServiceConfig::default().with_cache_shards(0),
                "cache_shards",
            ),
            (ServiceConfig::default().with_max_batch(0), "max_batch"),
        ];
        for (config, expected) in cases {
            match config.validate().unwrap_err() {
                DaeDvfsError::InvalidRequest { field, .. } => assert_eq!(field, expected),
                other => panic!("expected InvalidRequest, got {other:?}"),
            }
        }
    }

    #[test]
    fn degenerate_quantum_rejected_but_zero_allowed() {
        assert!(ServiceConfig::default()
            .with_qos_quantum_secs(0.0)
            .validate()
            .is_ok());
        for bad in [f64::NAN, f64::INFINITY, -0.5] {
            assert!(matches!(
                ServiceConfig::default()
                    .with_qos_quantum_secs(bad)
                    .validate(),
                Err(DaeDvfsError::InvalidRequest {
                    field: "qos_quantum_secs",
                    ..
                })
            ));
        }
    }
}
